"""Pick the best protocol + slot allocation for a concrete deployment.

Given a client device, a storage budget, and a wireless link, this walks
the paper's decision process: compare client storage footprints, compute
the optimal TDD slot allocation for each protocol (Figure 11), and
estimate single-inference latency with and without each optimization
(Table 1 / §6.1).

Run:  python examples/optimize_deployment.py
"""

from repro import ATOM, EPYC, TINY_IMAGENET, Protocol, profile_network, resnet18
from repro.core.estimator import estimate
from repro.core.wsa import improvement_over_even_split, optimal_upload_fraction

GBPS = 1e9


def main() -> None:
    profile = profile_network(resnet18(TINY_IMAGENET))
    client_storage_gb = 16

    print(f"deployment: {profile.network_name}, Atom client, EPYC server, "
          f"{client_storage_gb} GB client storage, 1 Gbps TDD link\n")

    for protocol in (Protocol.SERVER_GARBLER, Protocol.CLIENT_GARBLER):
        storage = profile.storage(protocol)
        volumes = profile.comm(protocol)
        f_up = optimal_upload_fraction(volumes)
        fits = storage.client_bytes <= client_storage_gb * 1e9
        print(f"{protocol.value}:")
        print(f"  client pre-compute footprint: {storage.client_bytes / 1e9:6.1f} GB"
              f"  -> {'fits' if fits else 'DOES NOT FIT'} in {client_storage_gb} GB")
        print(f"  optimal slot allocation: {f_up:.0%} upload / {1 - f_up:.0%} download"
              f"  (saves {improvement_over_even_split(volumes, GBPS):.0%} vs even)")
        for lphe, wsa, label in (
            (False, False, "no optimizations"),
            (True, False, "+ LPHE"),
            (True, True, "+ LPHE + WSA"),
        ):
            est = estimate(profile, protocol, ATOM, EPYC, GBPS, lphe=lphe, wsa=wsa)
            print(f"  single inference ({label:18s}): "
                  f"{est.total_seconds:7.1f} s "
                  f"(offline {est.offline.total:7.1f} s, "
                  f"online {est.online.total:6.1f} s)")
        print()

    print("recommendation: with a storage-constrained client, Client-Garbler is")
    print("the only protocol that can buffer pre-computes, so it sustains higher")
    print("arrival rates despite slightly worse isolated-inference latency.")


if __name__ == "__main__":
    main()
