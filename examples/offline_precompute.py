"""Offline-then-online serving through the precompute runtime.

Mints offline precomputes — garbled ReLU layers, OT correlations, HE
share vectors — on a multi-core :class:`~repro.runtime.PrecomputePool`,
persists them in a disk-backed :class:`~repro.runtime.PrecomputeStore`
(the functional analogue of the paper's client storage buffer), then
serves inferences whose online phase consumes the stored precomputes one
by one, exactly the buffer-drain cycle the streaming simulator models.

Run:  python examples/offline_precompute.py --workers 4 --precomputes 3

Pooled minting is transcript-identical to sequential minting under the
same seed; --workers only changes wall-clock time (on multi-core hosts).
"""

import argparse
import tempfile
import time

import numpy as np

from repro import (
    HybridProtocol,
    PrecomputePool,
    PrecomputeStore,
    tiny_cnn,
    tiny_dataset,
    toy_params,
)

MODEL_ID = "tiny_cnn_w4"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="precompute pool size (default: REPRO_WORKERS, then all cores)",
    )
    parser.add_argument(
        "--precomputes", type=int, default=2,
        help="how many offline precomputes to mint into the store",
    )
    parser.add_argument(
        "--serve", type=int, default=None, metavar="N",
        help="serve at most N inferences from the store (default: drain "
        "it; pass fewer than --precomputes to leave minted entries on "
        "disk, e.g. for artifact inspection)",
    )
    parser.add_argument(
        "--store", default=None,
        help="store directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=64.0,
        help="store byte budget in MB (LRU eviction above this)",
    )
    args = parser.parse_args()

    params = toy_params(n=256)
    dataset = tiny_dataset(size=4, channels=1, classes=3)
    network = tiny_cnn(dataset, width=4)  # wider conv layers per ROADMAP
    network.randomize_weights(params.t, np.random.default_rng(3))
    print(network.summary())

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-precompute-")
    store = PrecomputeStore(store_dir, byte_budget=int(args.budget_mb * 1e6))
    print(f"\nstore: {store_dir} (budget {args.budget_mb:.0f} MB)")

    # -- offline: mint precomputes on the pool ------------------------------
    with PrecomputePool(workers=args.workers) as pool:
        print(f"minting {args.precomputes} precomputes with {pool.workers} worker(s)...")
        t0 = time.perf_counter()
        for i in range(args.precomputes):
            minter = HybridProtocol(
                network, params, garbler="client", seed=100 + i, pool=pool
            )
            minter.run_offline()
            try:
                name = minter.export_offline(store, MODEL_ID)
            except ValueError as exc:
                # One precompute alone exceeds the budget: the paper's
                # buffer_capacity == 0 case — buffering is impossible.
                print(f"  cannot buffer: {exc}")
                return
            print(f"  minted precompute {name}")
        minted_seconds = time.perf_counter() - t0
    print(
        f"offline phase: {minted_seconds:.2f}s total, "
        f"{store.total_bytes / 1e6:.2f} MB stored, {store.evictions} evictions"
    )

    # -- online: serve inferences from the store ----------------------------
    rng = np.random.default_rng(4)
    served = 0
    while args.serve is None or served < args.serve:
        protocol = HybridProtocol(network, params, garbler="client", seed=999)
        if not protocol.import_offline(store, MODEL_ID):
            break  # buffer drained — the offline pipeline must refill
        x = rng.integers(0, params.t, size=16).tolist()
        t0 = time.perf_counter()
        prediction = protocol.run_online(x)
        online_seconds = time.perf_counter() - t0
        assert prediction == protocol.plaintext_reference(x)
        served += 1
        print(
            f"  inference {served}: online {online_seconds * 1e3:.0f} ms, "
            f"prediction {prediction} (matches plaintext)"
        )
    print(
        f"served {served} inferences from stored precomputes; "
        f"store now holds {store.entry_count} entries"
    )


if __name__ == "__main__":
    main()
