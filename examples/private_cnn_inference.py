"""Private CNN inference with both garbling roles, compared side by side.

Runs the same tiny convolutional network through the Server-Garbler and
Client-Garbler protocols, verifying both give the identical (plaintext-
exact) prediction while exhibiting the communication asymmetries the
paper characterizes: Server-Garbler downloads the garbled circuits in the
offline phase, Client-Garbler uploads them and pays online OT instead.

Run:  python examples/private_cnn_inference.py
"""

import numpy as np

from repro import HybridProtocol, tiny_cnn, tiny_dataset, toy_params


def run_role(network, x, garbler: str):
    # workers=None defers to REPRO_WORKERS: set it (or pass workers=N) to
    # mint the offline phase on a multi-core PrecomputePool — transcripts
    # are byte-identical either way.
    protocol = HybridProtocol(network, toy_params(n=256), garbler=garbler, seed=7)
    protocol.run_offline()
    prediction = protocol.run_online(x)
    return prediction, protocol


def main() -> None:
    params = toy_params(n=256)
    dataset = tiny_dataset(size=4, channels=1, classes=3)
    network = tiny_cnn(dataset, width=4)  # wider conv layers per ROADMAP
    network.randomize_weights(params.t, np.random.default_rng(3))
    print(network.summary())

    x = np.random.default_rng(4).integers(0, params.t, size=16).tolist()
    plaintext = network.forward_mod(
        np.array(x, dtype=object).reshape(1, 4, 4), params.t
    ).tolist()

    print("\nrole            prediction        offline up/down (KB)   online up/down (KB)")
    for garbler in ("server", "client"):
        prediction, protocol = run_role(network, x, garbler)
        assert prediction == plaintext
        s = protocol.channel.summary()
        print(
            f"{garbler + '-garbler':15s} {str(prediction):16s}  "
            f"{s['offline_up'] / 1e3:8.1f} / {s['offline_down'] / 1e3:8.1f}     "
            f"{s['online_up'] / 1e3:7.1f} / {s['online_down'] / 1e3:7.1f}"
        )

    print("\nboth roles agree with plaintext:", plaintext)
    print("note the asymmetry: server-garbler is download-heavy offline (GC")
    print("transfer to the client); client-garbler is upload-heavy offline and")
    print("pays extra online upload for the label OT — exactly Figure 2 vs 6.")


if __name__ == "__main__":
    main()
