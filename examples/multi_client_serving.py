"""Multi-client PI serving: RLP's sweet spot (§5.2), measured for real.

N clients share one server: per-client precomputes are minted on ONE
shared PrecomputePool (the paper's request-level parallelism), admitted
into per-client namespaces of one PrecomputeStore under a *global* byte
budget, and drained by interleaved online requests. Under a tight budget
one client's admission evicts another's least-recently-used precompute,
and the victim's next request pays a demand mint — the measured analogue
of the buffer dynamics the analytic simulator models.

Run:  python examples/multi_client_serving.py --clients 4 --requests 2 \
          --budget-mb 4

Add --pipelined to interleave the background refill mints with online
serving (the serving loop steps every session message by message, so the
overlap is a scheduling decision — compare throughput_rps between modes).

Add --transport socket to (a) run every in-process session pair over
loopback TCP instead of the in-memory transport, and (b) run the
two-process demo: a forked server process hosts ServerSessions behind a
listening socket while this process drives ClientSessions against it —
the client and server genuinely share nothing but serialized wire
messages.

Add --concurrent to serve through the ServingGateway instead: the
serving loop runs in-process with driver threads, then a second demo
forks one OS process per client against a gateway hosted in this
process — many live sockets multiplexed by one selector thread while
refill mints run in background pool workers (compare throughput_rps
and refill_overlap_seconds against the serialized run).

Add --analytic to also run the paper-scale analytic MultiClientSimulator
(resnet18 profile, 16 GB clients) next to the measured tiny-network run.
"""

import argparse
import multiprocessing

import numpy as np

from repro.runtime.serving import ServingReport, demo, demo_network_and_params


def _socket_server_main(port_queue, num_sessions: int, garbler: str) -> None:
    """Server process: accept one connection per inference and serve it.

    Owns the weights; everything it exchanges with the client process is
    a serialized wire message over TCP.
    """
    from repro.core.session import ServerSession
    from repro.network.transport import SocketListener

    network, params = demo_network_and_params()
    with SocketListener() as listener:
        port_queue.put(listener.port)
        for index in range(num_sessions):
            transport = listener.accept(timeout=60.0)
            session = ServerSession(
                network, params=params, garbler=garbler,
                seed=1000 + index, transport=transport,
            )
            session.run_offline()
            session.run_online()
            session.close()


def two_process_demo(clients: int, requests: int, garbler: str = "client") -> None:
    """Full protocol runs across two OS processes over loopback TCP."""
    from repro.core.lowering import lower_network, plaintext_reference
    from repro.core.session import ClientSession
    from repro.network.transport import SocketTransport

    network, params = demo_network_and_params()
    lowered = lower_network(network, params.t)  # this demo's oracle
    total = clients * requests
    port_queue = multiprocessing.Queue()
    server = multiprocessing.Process(
        target=_socket_server_main, args=(port_queue, total, garbler)
    )
    server.start()
    clean = False
    try:
        port = port_queue.get(timeout=30)
        print(
            f"\ntwo-process loopback demo: server pid {server.pid} on "
            f"127.0.0.1:{port}, {clients} client(s) x {requests} request(s)"
        )
        rng = np.random.default_rng(42)
        index = 0
        for c in range(clients):
            for j in range(requests):
                x = rng.integers(0, params.t, size=16).tolist()
                transport = SocketTransport.connect("127.0.0.1", port)
                # ClientSession lowers shape-only: it reads the layer
                # widths and ReLU placement, never the weights.
                session = ClientSession(
                    network, params=params, garbler=garbler,
                    seed=index, transport=transport,
                )
                session.run_offline()
                logits = session.run_online(x)
                session.close()
                assert logits == plaintext_reference(lowered, x)
                summary = session.channel.summary()
                print(
                    f"  client{c} request {j}: logits match the plaintext "
                    f"reference (offline {summary['offline_up'] + summary['offline_down']} B, "
                    f"online {summary['online_up'] + summary['online_down']} B over TCP)"
                )
                index += 1
        clean = True
    finally:
        if not clean:
            # A client-side failure leaves the server blocked in accept();
            # kill it immediately so the real error surfaces without a
            # long join timeout in front of it.
            server.terminate()
        server.join(timeout=60)
        if server.is_alive():
            server.terminate()
            server.join()
    print(
        "two-process demo complete: the parties shared no Python state — "
        "only serialized wire messages (functional fidelity: OT rounds are "
        "simulated, see ARCHITECTURE.md 'Session & transport layering')"
    )


def _gateway_client_main(port: int, client_index: int, requests: int,
                         garbler: str) -> None:
    """Client process: one keep-alive connection, all requests over it.

    Reconstructs the demo network locally only to know the public layer
    shapes and the plaintext oracle; every protocol byte crosses the
    gateway's TCP socket. One HELLO, then a REQ per inference — the
    ClientSession is recycled between requests, never rebuilt.
    """
    from repro.core.lowering import lower_network, plaintext_reference
    from repro.runtime.gateway import GatewayClient

    network, params = demo_network_and_params()
    oracle = lower_network(network, params.t)
    shape = lower_network(network, params.t, shape_only=True)
    rng = np.random.default_rng(4200 + client_index)
    client = GatewayClient(
        "127.0.0.1", port, network, params, garbler=garbler,
        client_id=f"client{client_index}", lowered=shape,
    )
    try:
        for j in range(requests):
            x = rng.integers(0, params.t, size=16).tolist()
            logits = client.request(x, request_index=j)
            assert logits == plaintext_reference(oracle, x)
    finally:
        client.close()


def gateway_forked_demo(clients: int, requests: int, garbler: str = "client",
                        workers: int | None = None,
                        budget_mb: float = 8.0) -> None:
    """One gateway in this process, one forked OS process per client."""
    import shutil
    import tempfile

    from repro.runtime.gateway import ServingGateway
    from repro.runtime.pool import PrecomputePool
    from repro.runtime.store import PrecomputeStore

    network, params = demo_network_and_params()
    root = tempfile.mkdtemp(prefix="repro-gateway-")
    store = PrecomputeStore(root, byte_budget=int(budget_mb * 1e6) or None)
    procs = []
    try:
        with PrecomputePool(workers=workers) as pool:
            gateway = ServingGateway(
                network, params, clients, store, pool=pool, garbler=garbler,
                expected_per_client=requests,
            )
            gateway.start()
            print(
                f"\nforked-client gateway demo: {clients} client process(es) "
                f"x {requests} request(s) against 127.0.0.1:{gateway.port} "
                f"({pool.workers} refill worker(s))"
            )
            procs = [
                multiprocessing.Process(
                    target=_gateway_client_main,
                    args=(gateway.port, c, requests, garbler),
                )
                for c in range(clients)
            ]
            for p in procs:
                p.start()
            gateway.serve(clients * requests, timeout=600.0)
            for p in procs:
                p.join(timeout=60)
            gateway.check_refills()
            gateway.stop()
            report = gateway.report()
        assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]
        print(
            f"  all {len(report.requests)} logit vectors verified in the "
            f"client processes (hit rate {report.hit_rate:.2f})"
        )
        print(
            f"  peak {report.peak_live_sessions} live session(s), refill "
            f"overlap {report.refill_overlap_seconds:.2f}s of "
            f"{report.serve_seconds:.2f}s served, "
            f"{report.throughput_rps:.2f} req/s"
        )
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join()
        shutil.rmtree(root, ignore_errors=True)


def functional_run(args) -> ServingReport:
    # demo() drives the whole mint -> admit -> drain lifecycle and checks
    # every served logit vector against the plaintext field evaluation —
    # eviction pressure must never surface a stale result.
    return demo(
        num_clients=args.clients,
        requests_per_client=args.requests,
        workers=args.workers,
        budget_mb=args.budget_mb,
        store_dir=args.store,
        summary_path=args.summary,
        pipelined=args.pipelined,
        concurrent=args.concurrent,
        transport=args.transport,
    )


def analytic_run() -> None:
    from repro import (
        TINY_IMAGENET,
        OfflineParallelism,
        Protocol,
        SystemConfig,
        profile_network,
        resnet18,
    )
    from repro.core.multiclient import MultiClientConfig, MultiClientSimulator

    profile = profile_network(resnet18(TINY_IMAGENET))
    base = SystemConfig(
        profile=profile,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )
    print("\nanalytic simulator at paper scale (resnet18, 16 GB clients):")
    for clients in (3, 9):
        config = MultiClientConfig(base=base, num_clients=clients)
        result = MultiClientSimulator(config).run(
            mean_interarrival=60 * 60, horizon=24 * 3600, seed=1
        )
        print(
            f"  {clients} clients x 16 GB "
            f"(aggregate {config.aggregate_storage_bytes / 1e9:.0f} GB): "
            f"{len(result.all_completed)} done, fleet mean "
            f"{result.mean_latency / 60:.1f} min, client 0 "
            f"{result.client_mean_latency(0) / 60:.1f} min"
        )
    print("per-client latency stays near the single-client value — aggregate")
    print("storage helps server throughput, not an individual client's buffer.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests", type=int, default=1, help="online requests per client"
    )
    parser.add_argument(
        "--budget-mb", type=float, default=4.0,
        help="global store byte budget in MB (LRU eviction above this; "
        "0 = unbounded)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shared pool size (default: REPRO_WORKERS, then all cores)",
    )
    parser.add_argument(
        "--pipelined", action="store_true",
        help="interleave refill mints with online serving (steady-state "
        "throughput mode)",
    )
    parser.add_argument(
        "--concurrent", action="store_true",
        help="serve through the concurrent socket gateway (selector loop "
        "+ background refill workers); also runs the forked-client demo",
    )
    parser.add_argument(
        "--transport", choices=("memory", "socket"), default=None,
        help="session transport for the serving loop; 'socket' also runs "
        "the two-process loopback demo",
    )
    parser.add_argument(
        "--store", default=None,
        help="store directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="write the queue-depth/occupancy summary JSON here",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="also run the paper-scale analytic multi-client simulator",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable the telemetry spine (tracing + metrics); logits are "
        "byte-identical either way",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --telemetry: export Chrome trace-event JSONL "
        "(load at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="with --telemetry: write Prometheus text exposition here",
    )
    args = parser.parse_args()
    if args.telemetry:
        from repro import telemetry

        telemetry.configure(enabled=True)
    functional_run(args)
    if args.concurrent:
        gateway_forked_demo(
            min(args.clients, 4), max(1, min(args.requests, 2)),
            workers=args.workers, budget_mb=args.budget_mb or 8.0,
        )
    if args.transport == "socket":
        two_process_demo(min(args.clients, 2), max(1, min(args.requests, 2)))
    if args.analytic:
        analytic_run()
    if args.telemetry:
        from repro.telemetry import METRICS, TRACER

        if args.trace_out:
            count = TRACER.export_jsonl(args.trace_out)
            print(f"wrote {count} trace events to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(METRICS.to_prometheus())
            print(f"wrote metrics to {args.metrics_out}")


if __name__ == "__main__":
    main()
