"""Multi-client PI serving: RLP's sweet spot (§5.2's closing discussion).

Nine clients with 16 GB each give the server 144 GB of aggregate
pre-compute storage — similar to the single 140 GB client of Figure 10c —
so the server can run one single-core pre-compute pipeline per client.
Each client's own latency, though, still resembles the single-client
16 GB case, because it can only buffer its own pre-computes.

Run:  python examples/multi_client_serving.py
"""

from repro import (
    TINY_IMAGENET,
    OfflineParallelism,
    Protocol,
    SystemConfig,
    profile_network,
    resnet18,
    simulate_mean_latency,
)
from repro.core.multiclient import MultiClientConfig, MultiClientSimulator


def main() -> None:
    profile = profile_network(resnet18(TINY_IMAGENET))
    base = SystemConfig(
        profile=profile,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )

    print("single client, 16 GB (reference):")
    single = simulate_mean_latency(base, 60 * 60, replications=3)
    print(f"  mean latency at 1 req/60 min: {single['latency'] / 60:.1f} min\n")

    for clients in (3, 6, 9):
        config = MultiClientConfig(base=base, num_clients=clients)
        simulator = MultiClientSimulator(config)
        result = simulator.run(mean_interarrival=60 * 60, horizon=24 * 3600, seed=1)
        print(f"{clients} clients x 16 GB "
              f"(aggregate {config.aggregate_storage_bytes / 1e9:.0f} GB):")
        print(f"  completed inferences: {len(result.all_completed)}")
        print(f"  fleet mean latency:   {result.mean_latency / 60:.1f} min")
        print(f"  client 0 mean:        {result.client_mean_latency(0) / 60:.1f} min")
    print("\nper-client latency stays near the single-client value — aggregate")
    print("storage helps server throughput, not an individual client's buffer.")


if __name__ == "__main__":
    main()
