"""Multi-client PI serving: RLP's sweet spot (§5.2), measured for real.

N clients share one server: per-client precomputes are minted on ONE
shared PrecomputePool (the paper's request-level parallelism), admitted
into per-client namespaces of one PrecomputeStore under a *global* byte
budget, and drained by interleaved online requests. Under a tight budget
one client's admission evicts another's least-recently-used precompute,
and the victim's next request pays a demand mint — the measured analogue
of the buffer dynamics the analytic simulator models.

Run:  python examples/multi_client_serving.py --clients 4 --requests 2 \
          --budget-mb 4

Add --analytic to also run the paper-scale analytic MultiClientSimulator
(resnet18 profile, 16 GB clients) next to the measured tiny-network run.
"""

import argparse

from repro.runtime.serving import ServingReport, demo


def functional_run(args) -> ServingReport:
    # demo() drives the whole mint -> admit -> drain lifecycle and checks
    # every served logit vector against the plaintext field evaluation —
    # eviction pressure must never surface a stale result.
    return demo(
        num_clients=args.clients,
        requests_per_client=args.requests,
        workers=args.workers,
        budget_mb=args.budget_mb,
        store_dir=args.store,
        summary_path=args.summary,
    )


def analytic_run() -> None:
    from repro import (
        TINY_IMAGENET,
        OfflineParallelism,
        Protocol,
        SystemConfig,
        profile_network,
        resnet18,
    )
    from repro.core.multiclient import MultiClientConfig, MultiClientSimulator

    profile = profile_network(resnet18(TINY_IMAGENET))
    base = SystemConfig(
        profile=profile,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )
    print("\nanalytic simulator at paper scale (resnet18, 16 GB clients):")
    for clients in (3, 9):
        config = MultiClientConfig(base=base, num_clients=clients)
        result = MultiClientSimulator(config).run(
            mean_interarrival=60 * 60, horizon=24 * 3600, seed=1
        )
        print(
            f"  {clients} clients x 16 GB "
            f"(aggregate {config.aggregate_storage_bytes / 1e9:.0f} GB): "
            f"{len(result.all_completed)} done, fleet mean "
            f"{result.mean_latency / 60:.1f} min, client 0 "
            f"{result.client_mean_latency(0) / 60:.1f} min"
        )
    print("per-client latency stays near the single-client value — aggregate")
    print("storage helps server throughput, not an individual client's buffer.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests", type=int, default=1, help="online requests per client"
    )
    parser.add_argument(
        "--budget-mb", type=float, default=4.0,
        help="global store byte budget in MB (LRU eviction above this; "
        "0 = unbounded)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shared pool size (default: REPRO_WORKERS, then all cores)",
    )
    parser.add_argument(
        "--store", default=None,
        help="store directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="write the queue-depth/occupancy summary JSON here",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="also run the paper-scale analytic multi-client simulator",
    )
    args = parser.parse_args()
    functional_run(args)
    if args.analytic:
        analytic_run()


if __name__ == "__main__":
    main()
