"""Workload engine + capacity planner: one schedule, two executions.

Generates a bursty, Zipf-skewed arrival schedule, replays the exact same
schedule twice — once functionally against a live concurrent gateway
(every logit checked against the plaintext oracle) and once analytically
through the discrete-event engine — then calibrates the analytic service
model from measured runs and asks the planner: how many pool workers and
how many store entries do N clients at rate lambda need to meet a p95
latency SLO?

Run:  python examples/workload_capacity.py --clients 3 --rate 5 \
          --plan-clients 8 --plan-rate 3

The functional replay drives real keep-alive gateway sessions from one
thread per client, sleeping to each arrival's scheduled time and backing
off on BUSY with the server-suggested retry_after (decorrelated jitter).
The analytic replay consumes the byte-identical schedule through the
simulator, reusing the gateway's own refill-ordering and retry_after
policy functions — model and system share one admission brain.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile

from repro.runtime.pool import PrecomputePool
from repro.runtime.serving import demo_network_and_params
from repro.runtime.store import PrecomputeStore
from repro.workload import (
    SLO,
    BurstEnvelope,
    CapacityPlanner,
    calibrate,
    poisson_schedule,
    replay_analytic,
    replay_functional,
    zipf_rates,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--rate", type=float, default=5.0,
                        help="aggregate offered rate (rps)")
    parser.add_argument("--horizon", type=float, default=1.5)
    parser.add_argument("--skew", type=float, default=1.5,
                        help="Zipf exponent; client 0 is the hot client")
    parser.add_argument("--budget-mb", type=float, default=0.2,
                        help="store byte budget (tight -> evictions)")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--plan-clients", type=int, default=8)
    parser.add_argument("--plan-rate", type=float, default=3.0)
    parser.add_argument("--slo-p95", type=float, default=2.0)
    args = parser.parse_args()

    network, params = demo_network_and_params()

    # One schedule: bursty + skewed, seeded, canonical JSON bytes are
    # the contract between the two executions below.
    schedule = poisson_schedule(
        args.clients,
        zipf_rates(args.clients, args.rate, args.skew),
        horizon=args.horizon,
        seed=11,
        name="burst-skewed",
        burst=BurstEnvelope(on_seconds=args.horizon / 3,
                            off_seconds=args.horizon / 3,
                            off_factor=0.1, seed=3),
        max_per_client=3,
    )
    print(f"schedule {schedule.name!r}: {schedule.total_requests} arrivals, "
          f"per-client counts {schedule.request_counts()}, "
          f"offered {schedule.offered_rate():.2f} rps")

    # Execution 1: functional, against a live gateway under a tight
    # store budget and max_queue=0 so the burst actually defers.
    root = tempfile.mkdtemp(prefix="repro-workload-example-")
    try:
        store = PrecomputeStore(root, byte_budget=int(args.budget_mb * 1e6))
        with PrecomputePool(workers=args.workers) as pool:
            report = replay_functional(
                schedule, network, params, store,
                pool=pool, gateway_max_queue=0,
            )
            workers = pool.workers
    finally:
        shutil.rmtree(root, ignore_errors=True)
    measured = report.workloads[schedule.name]
    print(f"functional: goodput {measured['goodput_rps']:.2f} rps, "
          f"p95 {measured['latency_p95']:.2f}s, "
          f"{report.requests_deferred} deferrals "
          f"(ledger {report.requests_issued} issued = "
          f"{report.requests_admitted} + {report.requests_deferred} + "
          f"{report.requests_rejected})")

    # Calibrate the analytic service model from small measured runs,
    # validate on a held-out schedule, then run execution 2: the same
    # schedule bytes through the discrete-event simulator.
    model, calibration = calibrate(network, params, budget_mb=8.0)
    validation = calibration["validation"]
    print(f"calibrated ({model.fit['method']}): "
          f"online {model.online_seconds * 1e3:.0f} ms, "
          f"demand mint {model.demand_mint_seconds * 1e3:.0f} ms, "
          f"refill mint {model.refill_mint_seconds * 1e3:.0f} ms; "
          f"held-out throughput error {validation['throughput_error']:.1%}")

    analytic = replay_analytic(
        schedule,
        model.service_model(workers=workers, store_entries=2, max_queue=0),
    )
    print(f"analytic (same schedule bytes): "
          f"goodput {analytic['goodput_rps']:.2f} rps, "
          f"p95 {analytic['latency_p95']:.2f}s, "
          f"{analytic['deferred']} deferrals, "
          f"{analytic['evictions']} evictions")

    # The payoff: answer "how many workers / how much store?" for a
    # bigger deployment without running it.
    planner = CapacityPlanner(model)
    plan = planner.plan(
        clients=args.plan_clients,
        rate=args.plan_rate,
        workers_grid=[1, 2, 4],
        store_grid=[4, 8, 16],
        slo=SLO(p95_latency_seconds=args.slo_p95, max_deferral_rate=0.2),
        horizon=20.0,
        seed=0,
    )
    choice = plan["choice"]
    if choice is None:
        print(f"no grid point meets p95 <= {args.slo_p95:g}s for "
              f"{args.plan_clients} clients at {args.plan_rate:g} rps")
    else:
        print(f"plan for {args.plan_clients} clients at "
              f"{args.plan_rate:g} rps: {choice['workers']} worker(s), "
              f"{choice['store_entries']} store entries "
              f"(cost {choice['cost']:g}, predicted p95 "
              f"{choice['latency_p95']:.2f}s, goodput "
              f"{choice['goodput_rps']:.2f} rps)")
        print(json.dumps({k: choice[k] for k in
                          ("workers", "store_entries", "cost")}, sort_keys=True))


if __name__ == "__main__":
    main()
