"""Quickstart: run a real private inference end to end.

Builds a tiny MLP, lowers it to the DELPHI hybrid protocol, and executes
both phases with actual cryptography — BFV homomorphic encryption for the
linear-layer correlations, garbled circuits for the ReLUs, and IKNP OT for
wire labels — then checks the result against plaintext evaluation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HybridProtocol, tiny_dataset, tiny_mlp, toy_params


def main() -> None:
    params = toy_params(n=256)  # small, fast, insecure test parameters
    field = params.t

    # The server's model: a 16 -> 8 -> 3 MLP with random field weights.
    dataset = tiny_dataset(size=4, channels=1, classes=3)
    network = tiny_mlp(dataset, hidden=8)
    network.randomize_weights(field, np.random.default_rng(0))
    print(network.summary())

    # The client's secret input.
    x = np.random.default_rng(1).integers(0, field, size=16).tolist()

    protocol = HybridProtocol(network, params, garbler="client", seed=42)
    print("\nrunning offline phase (HE correlations, garbling, base OT)...")
    protocol.run_offline()
    print("running online phase (masked input, online OT, GC evaluation)...")
    prediction = protocol.run_online(x)

    expected = protocol.plaintext_reference(x)
    assert prediction == expected, "private inference diverged from plaintext!"
    print(f"\nprediction (shares reconstructed): {prediction}")
    print(f"plaintext reference:               {expected}")
    print("bit-exact match: OK")

    summary = protocol.channel.summary()
    print("\ncommunication (bytes):")
    for phase, nbytes in summary.items():
        print(f"  {phase:13s} {nbytes:>10,}")
    print(f"\noperation counters: {protocol.counters}")


if __name__ == "__main__":
    main()
