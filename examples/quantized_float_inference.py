"""Private inference on a *float* model via fixed-point quantization.

Real deployments don't have integer models: DELPHI scales reals by 2^f,
computes over the prime field, and folds the rescaling truncation into the
garbled ReLU. This example quantizes a float MLP, runs the full protocol
with truncating ReLU circuits, and compares the dequantized logits to the
float network.

Run:  python examples/quantized_float_inference.py
"""

import numpy as np

from repro import HybridProtocol, tiny_dataset, tiny_mlp, toy_params
from repro.nn.quantize import FixedPointEncoder, quantize_network

FRACTION_BITS = 5


def main() -> None:
    params = toy_params(n=256)
    rng = np.random.default_rng(7)

    float_net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
    for layer in float_net.layers:
        if getattr(layer, "weights", None) is not None:
            layer.weights = rng.uniform(-0.5, 0.5, size=layer.weights.shape)
    x_float = rng.uniform(0, 0.5, size=16)
    float_logits = float_net.forward(x_float.reshape(1, 4, 4))

    encoder = FixedPointEncoder(modulus=params.t, fraction_bits=FRACTION_BITS)
    quant_net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
    for src, dst in zip(float_net.layers, quant_net.layers):
        if getattr(src, "weights", None) is not None:
            dst.weights = src.weights.copy()
    quantize_network(quant_net, encoder)

    protocol = HybridProtocol(
        quant_net, params, garbler="client", seed=11, truncate_bits=FRACTION_BITS
    )
    protocol.run_offline()
    logits_field = protocol.run_online(encoder.encode_vector(x_float))
    private_logits = encoder.decode_vector(
        logits_field, extra_scale_bits=FRACTION_BITS
    )

    print(f"fixed point: {FRACTION_BITS} fractional bits "
          f"(quantum {1 / encoder.scale})")
    print(f"{'class':>5s} {'float logits':>14s} {'private logits':>15s} {'err':>8s}")
    for i, (f, p) in enumerate(zip(float_logits, private_logits)):
        print(f"{i:5d} {f:14.4f} {p:15.4f} {abs(f - p):8.4f}")
    print(f"\nargmax float={int(np.argmax(float_logits))} "
          f"private={int(np.argmax(private_logits))}")
    assert np.allclose(private_logits, float_logits, atol=0.3)
    print("private logits track the float model within quantization noise")


if __name__ == "__main__":
    main()
