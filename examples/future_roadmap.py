"""Project PI latency under future research advances (the paper's §6).

Accumulates hypothetical improvements — GC accelerators, HE accelerators,
next-generation wireless, and ReLU-lean architectures — on top of the
optimized Client-Garbler protocol and prints the Figure 14 waterfall with
the component breakdown at each step.

Run:  python examples/future_roadmap.py
"""

from repro import TINY_IMAGENET, profile_network, resnet18
from repro.core.future import breakdown_components, waterfall


def main() -> None:
    profile = profile_network(resnet18(TINY_IMAGENET))
    steps = waterfall(profile)

    print("Total PI latency under accumulating optimizations "
          "(ResNet-18 / TinyImageNet):\n")
    previous = None
    for step in steps:
        speedup = ""
        if previous is not None and previous > 0:
            speedup = f"  ({previous / step.total_seconds:4.2f}x step speedup)"
        print(f"  {step.label:16s} {step.total_seconds:8.1f} s  "
              f"offline {step.offline_percent:3.0f}%{speedup}")
        previous = step.total_seconds

    final = steps[-1]
    print(f"\nafter every projected advance, one private inference still takes "
          f"{final.total_seconds:.1f} s")
    print("dominant remaining components:")
    for name, share in sorted(
        breakdown_components(final).items(), key=lambda kv: -kv[1]
    )[:3]:
        print(f"  {name:14s} {share:6.1%}")
    print("\nas the paper concludes: even optimistic accelerators leave PI far")
    print("from plaintext speed — the remaining gap is a systems problem.")


if __name__ == "__main__":
    main()
