"""Characterize a streaming PI deployment (the paper's Figure 7/12 flow).

Profiles ResNet-18 on TinyImageNet, then sweeps inference arrival rates
through the discrete-event system simulator for the baseline Server-
Garbler protocol and the paper's proposed stack (Client-Garbler + layer-
parallel HE + wireless slot allocation), printing the latency
decomposition for each.

Run:  python examples/characterize_workload.py
"""

from repro import (
    TINY_IMAGENET,
    OfflineParallelism,
    Protocol,
    SystemConfig,
    profile_network,
    resnet18,
    simulate_mean_latency,
)


def main() -> None:
    profile = profile_network(resnet18(TINY_IMAGENET))
    print(f"network: {profile.network_name}")
    print(f"  ReLUs: {profile.relu_count:,}")
    print(f"  Server-Garbler client footprint: "
          f"{profile.storage(Protocol.SERVER_GARBLER).client_bytes / 1e9:.1f} GB")
    print(f"  Client-Garbler client footprint: "
          f"{profile.storage(Protocol.CLIENT_GARBLER).client_bytes / 1e9:.1f} GB")

    systems = {
        "baseline  (SG, 64 GB, sequential, even split)": SystemConfig(
            profile=profile,
            protocol=Protocol.SERVER_GARBLER,
            client_storage_bytes=64e9,
            wsa=False,
            parallelism=OfflineParallelism.SEQUENTIAL,
        ),
        "proposed  (CG, 16 GB, LPHE, WSA)": SystemConfig(
            profile=profile,
            protocol=Protocol.CLIENT_GARBLER,
            client_storage_bytes=16e9,
            wsa=True,
            parallelism=OfflineParallelism.LPHE,
        ),
    }

    for label, config in systems.items():
        print(f"\n{label}")
        print(f"  {'arrival':>12s} {'latency':>9s} {'queue':>8s} "
              f"{'offline':>8s} {'online':>8s} {'hit':>5s}")
        for minutes in (100, 54, 36, 28, 22, 18):
            stats = simulate_mean_latency(
                config, minutes * 60, replications=3
            )
            print(
                f"  1 per {minutes:3d} min "
                f"{stats['latency'] / 60:8.1f}m {stats['queue'] / 60:7.1f}m "
                f"{stats['offline'] / 60:7.1f}m {stats['online'] / 60:7.1f}m "
                f"{stats['hit']:5.0%}"
            )


if __name__ == "__main__":
    main()
