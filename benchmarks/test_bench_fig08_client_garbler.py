"""Bench: regenerate Figure 8 (client storage: Server- vs Client-Garbler)."""

from repro.experiments import fig08_client_garbler
from repro.experiments.common import print_rows


def test_fig08_client_garbler(benchmark):
    rows = benchmark(fig08_client_garbler.run)
    print_rows("Figure 8: client storage by protocol (GB)", rows)
    mean = sum(r["reduction"] for r in rows) / len(rows)
    assert 4.5 < mean < 5.5  # paper: ~5x reduction
