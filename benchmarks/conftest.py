"""Shared pytest-benchmark configuration for the per-figure benches.

Each bench regenerates one of the paper's tables or figures, printing the
rows it produces (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them) and asserting the headline claim of that experiment.

Primitive-bench timings are additionally written to
``BENCH_primitives.json`` at the repo root, keyed by the active compute
backend, so the perf trajectory of the crypto substrate is machine-readable
across PRs. Run the suite under each backend to populate both columns::

    REPRO_BACKEND=python pytest benchmarks/test_bench_primitives.py
    REPRO_BACKEND=numpy  pytest benchmarks/test_bench_primitives.py
"""

import json
import os
import platform
import time

import pytest

BENCH_JSON = "BENCH_primitives.json"
_PRIMITIVES_MODULE = "test_bench_primitives"


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def _collect_primitive_stats(session):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return {}
    stats = {}
    for bench in getattr(bench_session, "benchmarks", []):
        fullname = getattr(bench, "fullname", "") or ""
        if _PRIMITIVES_MODULE not in fullname:
            continue
        try:
            stats[bench.name] = {
                "mean_s": bench.stats.mean,
                "min_s": bench.stats.min,
                "rounds": bench.stats.rounds,
                # Host provenance per row: scaling annotations and perf
                # diffs are only comparable between rows recorded on
                # like-for-like hardware.
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
            }
        except (AttributeError, TypeError):  # incomplete run; skip quietly
            continue
        extra = dict(getattr(bench, "extra_info", None) or {})
        if extra:
            stats[bench.name]["extra"] = extra
    return stats


def _annotate_pool_scaling(results):
    """Wall-clock + per-core efficiency for pooled rows.

    Pool-size scaling rows carry ``extra.workers``; the ``workers == 1``
    row is the single-core oracle. Efficiency = t1 / (w * tw), so a value
    near 1.0 means linear scaling and a regression shows up as a drop in
    the JSON diff. Computed over the merged results so partial runs keep
    annotations consistent with the stored baseline.
    """
    baseline = None
    pooled = []
    for stats in results.values():
        workers = stats.get("extra", {}).get("workers")
        if workers is None:
            continue
        pooled.append((workers, stats))
        if workers == 1:
            baseline = stats["min_s"]
    for workers, stats in pooled:
        stats["wall_clock_s"] = stats["min_s"]
        cpus = stats.get("extra", {}).get("cpu_count")
        if cpus is not None and cpus < workers:
            # A row recorded on a core-starved host measures IPC overhead,
            # not scaling; the bench now fails before recording one, but a
            # stale merged row must not keep advertising an efficiency.
            stats.pop("speedup_vs_w1", None)
            stats.pop("per_core_efficiency", None)
            stats["insufficient_cores"] = True
            continue
        if baseline is not None and stats["min_s"] > 0:
            stats["speedup_vs_w1"] = round(baseline / stats["min_s"], 3)
            stats["per_core_efficiency"] = round(
                baseline / (workers * stats["min_s"]), 3
            )


def pytest_sessionfinish(session, exitstatus):
    """Merge this run's primitive timings into BENCH_primitives.json."""
    stats = _collect_primitive_stats(session)
    if not stats:
        return
    from repro.backend import get_backend

    path = session.config.rootpath / BENCH_JSON
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    backends = existing.setdefault("backends", {})
    entry = backends.setdefault(get_backend().name, {})
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entry["python"] = platform.python_version()
    # Merge per test so a partial run (-k/::test selection) refreshes only
    # the benches it actually executed instead of clobbering the column.
    entry.setdefault("results", {}).update(stats)
    _annotate_pool_scaling(entry["results"])
    try:
        path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    except OSError:  # read-only checkout: benches still ran fine
        pass
