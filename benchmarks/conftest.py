"""Shared pytest-benchmark configuration for the per-figure benches.

Each bench regenerates one of the paper's tables or figures, printing the
rows it produces (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them) and asserting the headline claim of that experiment.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
