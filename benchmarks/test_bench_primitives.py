"""Micro-benchmarks of the cryptographic substrates themselves.

Not a paper figure — these measure this library's own primitive throughput
(BFV ops, garbling, OT extension) so regressions in the functional layer
are visible, and they ground the "pure Python is ~10^3-10^4x slower than
the paper's testbed" substitution note in DESIGN.md.
"""

import numpy as np

from repro.crypto.rng import SecureRandom
from repro.gc.circuit import int_to_bits
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import toy_params
from repro.ot.extension import iknp_transfer

PARAMS = toy_params(n=256)


def test_bench_bfv_encrypt(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(1))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    pt = encoder.encode(list(range(100)))
    benchmark(lambda: ctx.encrypt(pk, pt))


def test_bench_bfv_mul_plain(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(2))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    pt = encoder.encode([7] * PARAMS.n)
    benchmark(lambda: ctx.mul_plain(ct, pt))


def test_bench_bfv_rotation(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(3))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    g = encoder.galois_element_for_rotation(1)
    gk = ctx.galois_keygen(sk, [g])
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    benchmark(lambda: ctx.rotate(ct, g, gk))


def test_bench_garble_relu(benchmark):
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbler = Garbler(SecureRandom(4))
    benchmark(lambda: garbler.garble(circuit))


def test_bench_evaluate_relu(benchmark):
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbled, encoding = Garbler(SecureRandom(5)).garble(circuit)
    labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(123, 17))
    for wire, bit in zip(
        circuit.evaluator_inputs, int_to_bits(456, 17) + int_to_bits(789, 17)
    ):
        labels[wire] = encoding.label_for(wire, bit)
    evaluator = Evaluator()
    benchmark(lambda: evaluator.evaluate(garbled, labels))


def test_bench_iknp_1000_ots(benchmark):
    rng = np.random.default_rng(0)
    pairs = [(bytes(rng.bytes(16)), bytes(rng.bytes(16))) for _ in range(1000)]
    choices = rng.integers(0, 2, 1000).tolist()
    benchmark.pedantic(
        lambda: iknp_transfer(pairs, choices, SecureRandom(6)),
        rounds=1, iterations=1,
    )
