"""Micro-benchmarks of the cryptographic substrates themselves.

Not a paper figure — these measure this library's own primitive throughput
(NTT, BFV ops, garbling, OT extension) so regressions in the functional
layer are visible, and they ground the "pure Python is ~10^3-10^4x slower
than the paper's testbed" substitution note in DESIGN.md.

The suite runs on :func:`repro.he.params.fast_params` (62-bit ciphertext
modulus) so the same workload is exact on both compute backends: run it
once with ``REPRO_BACKEND=python`` and once with ``REPRO_BACKEND=numpy``
and the per-backend timings land side by side in ``BENCH_primitives.json``
(see ``benchmarks/conftest.py``). The vectorized backend is expected to be
>= 10x faster on the NTT/BFV benches.

The ``*_bigint`` / ``*_rns`` pairs additionally pit the two
representations of the wide-modulus parameter sets against each other at
the same composite q — ``toy_params`` (~100-bit chain) and
``delphi_params`` (~180-bit SEAL-style chain, n=2048) — tracking the
speedup the RNS chain buys on the paper-faithful configurations. Under
the numpy backend the RNS ciphertext multiply at n=2048 is expected to be
>= 3x faster than the bigint oracle.
"""

import dataclasses
import json
import os
import pathlib
import random
import time

import numpy as np
import pytest

from repro.crypto.modmath import find_ntt_prime
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import int_to_bits
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he import polynomial
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.ntt import NegacyclicNtt
from repro.he.params import delphi_params, fast_params, toy_params
from repro.he.polynomial import key_switch_inner
from repro.ot.extension import iknp_transfer
from repro.runtime import PrecomputePool

PARAMS = fast_params(n=256)
RELU_BATCH = 64
# One wider conv layer's worth of activations (ROADMAP: raise benchmark
# network sizes) — e.g. an 8-channel 8x8 feature map.
WIDE_RELU_BATCH = 512
# The pool-scaling batch the acceptance row is measured at.
POOL_RELU_BATCH = 256


def _ntt_multiply_bench(benchmark, n):
    q = find_ntt_prime(62, n)
    ntt = NegacyclicNtt(n, q)
    rng = random.Random(0)
    a = [rng.randrange(q) for _ in range(n)]
    b = [rng.randrange(q) for _ in range(n)]
    benchmark(lambda: ntt.multiply(a, b))


def test_bench_ntt_multiply_1024(benchmark):
    _ntt_multiply_bench(benchmark, 1024)


def test_bench_ntt_multiply_2048(benchmark):
    """The delphi-scale ring degree on a single 62-bit prime."""
    _ntt_multiply_bench(benchmark, 2048)


def test_bench_bfv_encrypt(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(1))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    pt = encoder.encode(list(range(100)))
    benchmark(lambda: ctx.encrypt(pk, pt))


def test_bench_bfv_mul_plain(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(2))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    pt = encoder.encode([7] * PARAMS.n)
    benchmark(lambda: ctx.mul_plain(ct, pt))


def test_bench_bfv_rotation(benchmark):
    ctx = BfvContext(PARAMS, SecureRandom(3))
    encoder = BatchEncoder(PARAMS)
    sk, pk = ctx.keygen()
    g = encoder.galois_element_for_rotation(1)
    gk = ctx.galois_keygen(sk, [g])
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    benchmark(lambda: ctx.rotate(ct, g, gk))


def _mul_plain_bench(benchmark, params, representation, rounds):
    """Ciphertext x plaintext multiply (two ring products) at wide q."""
    params = dataclasses.replace(params, representation=representation)
    ctx = BfvContext(params, SecureRandom(8))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    pt = encoder.encode([7] * params.n)
    benchmark.pedantic(
        lambda: ctx.mul_plain(ct, pt), rounds=rounds, iterations=1,
        warmup_rounds=1,
    )


def test_bench_ct_mul_toy_bigint(benchmark):
    _mul_plain_bench(benchmark, toy_params(n=256), "bigint", rounds=10)


def test_bench_ct_mul_toy_rns(benchmark):
    _mul_plain_bench(benchmark, toy_params(n=256), "rns", rounds=10)


def test_bench_ct_mul_delphi_bigint(benchmark):
    """The acceptance baseline: n=2048, ~180-bit q, bigint oracle ring."""
    _mul_plain_bench(benchmark, delphi_params(), "bigint", rounds=5)


def test_bench_ct_mul_delphi_rns(benchmark):
    """Same multiply on CRT residues (expected >= 3x under numpy)."""
    _mul_plain_bench(benchmark, delphi_params(), "rns", rounds=5)


def _best_ms(fn, rounds=5):
    """Best-of-N wall time in ms (phase probes, not benchmark rows)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return round(min(times) * 1000, 3)


def _rotation_phase_breakdown(ctx, ct, g, gk):
    """Where one delphi-RNS rotation spends its time, phase by phase.

    Three probes: the digit decomposition (the vectorized exact base
    conversion), the full eval-domain key inner product, and the pure
    transform share of that product (the stacked digit forwards plus the
    two-vector inverse each residue ring pays). Recorded as extra_info so
    the JSON diff shows *where* a regression landed, not just that one
    happened.
    """
    p = ctx.params
    rotated = ct.c1.automorphism(g)
    digits = rotated.decompose(p.decomp_bits, p.num_decomp_digits)
    pairs = gk.eval_keys(g)
    rns = digits[0].ctx
    plans = [
        polynomial._context(p.n, prime, be)._ntt._plan
        for prime, be in zip(rns.primes, rns.backends)
    ]

    def transforms_only():
        for i, plan in enumerate(plans):
            fwd = plan.forward_many([d.residues[i] for d in digits])
            plan.inverse_unscaled_many(fwd[:2])

    return {
        "phase_decompose_ms": _best_ms(
            lambda: rotated.decompose(p.decomp_bits, p.num_decomp_digits)
        ),
        "phase_key_product_ms": _best_ms(
            lambda: key_switch_inner(digits, pairs)
        ),
        "phase_ntt_ms": _best_ms(transforms_only),
    }


def _guard_against_committed_baseline(benchmark, name, threshold):
    """REPRO_BENCH_STRICT: fail if this run regressed vs the checked-in
    BENCH_primitives.json row (conftest merges *after* the session, so
    reading it here still sees the committed baseline)."""
    from repro.backend import get_backend

    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_primitives.json"
    try:
        committed = json.loads(path.read_text())
    except (OSError, ValueError):
        return  # no baseline yet: first recording cannot regress
    baseline = (
        committed.get("backends", {})
        .get(get_backend().name, {})
        .get("results", {})
        .get(name, {})
        .get("mean_s")
    )
    if not baseline:
        return
    stats = getattr(benchmark, "stats", None)
    mean = getattr(getattr(stats, "stats", stats), "mean", None)
    if mean is None:
        return  # stats API shifted; the guard must not mask the bench
    assert mean <= baseline * threshold, (
        f"{name} regressed: fresh mean {mean * 1000:.2f} ms vs committed "
        f"baseline {baseline * 1000:.2f} ms (> {threshold}x)"
    )


def test_bench_bfv_rotation_delphi_rns(benchmark):
    """Key-switched rotation at delphi scale on the RNS chain.

    The headline hot-path row: eval-domain Galois keys + the vectorized
    exact base conversion. ``extra_info`` carries the phase breakdown,
    and under ``REPRO_BENCH_STRICT=1`` (CI bench-smoke) the fresh mean
    must stay within 1.3x of the committed baseline.
    """
    params = dataclasses.replace(delphi_params(), representation="rns")
    ctx = BfvContext(params, SecureRandom(13))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    g = encoder.galois_element_for_rotation(1)
    gk = ctx.galois_keygen(sk, [g])
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    benchmark.pedantic(
        lambda: ctx.rotate(ct, g, gk), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info.update(_rotation_phase_breakdown(ctx, ct, g, gk))
    if os.environ.get("REPRO_BENCH_STRICT"):
        _guard_against_committed_baseline(
            benchmark, "test_bench_bfv_rotation_delphi_rns", threshold=1.3
        )


def test_bench_rns_decompose_delphi(benchmark):
    """The key-switch digit decomposition alone at delphi scale.

    This is the operation the exact fast base conversion replaced — it
    used to reconstruct every ~180-bit coefficient through bigint CRT.
    Isolated so the decompose share of a rotation regression is visible
    without untangling the fused key product.
    """
    params = dataclasses.replace(delphi_params(), representation="rns")
    ctx = BfvContext(params, SecureRandom(17))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    ct = ctx.encrypt(pk, encoder.encode(list(range(100))))
    rotated = ct.c1.automorphism(
        encoder.galois_element_for_rotation(1)
    )
    benchmark.pedantic(
        lambda: rotated.decompose(params.decomp_bits, params.num_decomp_digits),
        rounds=5, iterations=1, warmup_rounds=1,
    )


def test_bench_garble_relu(benchmark):
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbler = Garbler(SecureRandom(4))
    benchmark(lambda: garbler.garble(circuit))


def test_bench_garble_relu_layer(benchmark):
    """One ReLU layer's worth of circuits through the batch garbler."""
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbler = Garbler(SecureRandom(14))
    benchmark.pedantic(
        lambda: garbler.garble_batch(circuit, RELU_BATCH), rounds=1, iterations=1
    )


def test_bench_garble_relu_layer_wide(benchmark):
    """A wider conv layer's GC batch (512 activations, n=2048-era shapes)."""
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbler = Garbler(SecureRandom(16))
    benchmark.pedantic(
        lambda: garbler.garble_batch(circuit, WIDE_RELU_BATCH),
        rounds=1, iterations=1,
    )


def _pooled_garble_bench(benchmark, workers):
    """Pool-size scaling row: one n=256 ReLU batch through the pool.

    ``workers=1`` runs the identical shard jobs inline, so the w1 row is
    the single-core baseline the per-core efficiency of the w2/w4 rows is
    computed against (see benchmarks/conftest.py). The recorded rows are
    transcript-identical across pool sizes by construction.

    On a host with fewer cores than requested workers the row would
    measure IPC overhead, not scaling — a misleading number that once
    landed in BENCH_primitives.json from a 1-CPU container. Never record
    it: skip on small hosts (tier-1 collects this file), and fail loudly
    under ``REPRO_BENCH_STRICT=1`` — which CI's bench-smoke job sets, so
    a core-starved runner breaks the build instead of the baseline.
    """
    cpus = os.cpu_count() or 1
    if cpus < workers:
        message = (
            f"pool-scaling bench requested {workers} workers but this host "
            f"has {cpus} CPU(s): per_core_efficiency would measure IPC "
            f"overhead, not scaling — record this row on a >= {workers}-core "
            "host"
        )
        if os.environ.get("REPRO_BENCH_STRICT"):
            pytest.fail(message)
        pytest.skip(message)
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    with PrecomputePool(workers=workers) as pool:
        if workers > 1:
            # Warm the fork + initializer cost out of the measured rounds.
            pool.garble_batch(circuit, 16, rng=SecureRandom(0))
        benchmark.pedantic(
            lambda: pool.garble_batch(
                circuit, POOL_RELU_BATCH, rng=SecureRandom(21)
            ),
            rounds=2, iterations=1,
        )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["batch"] = POOL_RELU_BATCH
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_garble_relu_pool_w1(benchmark):
    _pooled_garble_bench(benchmark, 1)


def test_bench_garble_relu_pool_w2(benchmark):
    _pooled_garble_bench(benchmark, 2)


def test_bench_garble_relu_pool_w4(benchmark):
    _pooled_garble_bench(benchmark, 4)


def test_bench_evaluate_relu_layer(benchmark):
    """One ReLU layer's worth of circuits through the batch evaluator."""
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    batch = Garbler(SecureRandom(15)).garble_batch(circuit, RELU_BATCH)
    labels_batch = []
    for garbled, encoding in batch:
        labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(123, 17))
        for wire, bit in zip(
            circuit.evaluator_inputs, int_to_bits(456, 17) + int_to_bits(789, 17)
        ):
            labels[wire] = encoding.label_for(wire, bit)
        labels_batch.append(labels)
    evaluator = Evaluator()
    benchmark.pedantic(
        lambda: evaluator.evaluate_batch([g for g, _ in batch], labels_batch),
        rounds=1,
        iterations=1,
    )


def test_bench_evaluate_relu(benchmark):
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)
    garbled, encoding = Garbler(SecureRandom(5)).garble(circuit)
    labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(123, 17))
    for wire, bit in zip(
        circuit.evaluator_inputs, int_to_bits(456, 17) + int_to_bits(789, 17)
    ):
        labels[wire] = encoding.label_for(wire, bit)
    evaluator = Evaluator()
    benchmark(lambda: evaluator.evaluate(garbled, labels))


def test_bench_iknp_1000_ots(benchmark):
    rng = np.random.default_rng(0)
    pairs = [(bytes(rng.bytes(16)), bytes(rng.bytes(16))) for _ in range(1000)]
    choices = rng.integers(0, 2, 1000).tolist()
    benchmark.pedantic(
        lambda: iknp_transfer(pairs, choices, SecureRandom(6)),
        rounds=1, iterations=1,
    )
