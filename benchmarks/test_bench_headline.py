"""Bench: the paper's headline claims (1.8x speedup, 2.24x arrival rate)."""

from repro.experiments import headline
from repro.experiments.common import print_rows


def test_headline_claims(benchmark):
    rows = benchmark(headline.run)
    print_rows("Headline: proposed vs baseline", rows)
    speedup = headline.mean_total_speedup()
    rate = headline.mean_rate_improvement()
    print(f"mean speedup {speedup:.2f}x (paper 1.8x); rate gain {rate:.2f}x (paper 2.24x)")
    assert 1.5 <= speedup <= 2.2
    assert 1.5 <= rate <= 2.6
    r18 = [r for r in rows if r["model"] == "ResNet-18" and r["dataset"] == "TinyImageNet"][0]
    assert 1.9 <= r18["rate_improvement"] <= 2.6  # paper: 2.24x
