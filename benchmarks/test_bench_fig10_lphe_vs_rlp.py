"""Bench: regenerate Figure 10 (LPHE vs RLP across storage budgets)."""

from repro.experiments import fig10_lphe_vs_rlp
from repro.experiments.common import print_rows


def test_fig10_low_storage(once):
    rows = once(fig10_lphe_vs_rlp.run, storage_gb=16, replications=2)
    print_rows("Figure 10a: LPHE vs RLP at 16 GB", rows)
    lphe = [r for r in rows if r["strategy"] == "lphe"]
    rlp = [r for r in rows if r["strategy"] == "rlp"]
    assert lphe[0]["mean_latency_min"] <= rlp[0]["mean_latency_min"] * 1.05


def test_fig10_high_storage(once):
    rows = once(fig10_lphe_vs_rlp.run, storage_gb=140, replications=2)
    print_rows("Figure 10c: LPHE vs RLP at 140 GB", rows)
    lphe = [r for r in rows if r["strategy"] == "lphe"]
    rlp = [r for r in rows if r["strategy"] == "rlp"]
    assert rlp[-1]["mean_latency_min"] < lphe[-1]["mean_latency_min"]
