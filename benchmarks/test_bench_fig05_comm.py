"""Bench: regenerate Figure 5 (communication latency vs bandwidth)."""

from repro.experiments import fig05_comm
from repro.experiments.common import print_rows


def test_fig05_comm(benchmark):
    rows = benchmark(fig05_comm.run)
    print_rows("Figure 5: communication latency vs bandwidth", rows)
    gigabit = rows[-1]
    assert 10 <= gigabit["total_min"] <= 15  # paper: ~11 min at 1 Gbps
    assert fig05_comm.download_share() > 0.8
