"""Bench: regenerate Figure 4 (compute latency per primitive)."""

from repro.experiments import fig04_compute
from repro.experiments.common import print_rows


def test_fig04_compute(benchmark):
    rows = benchmark(fig04_compute.run)
    print_rows("Figure 4: compute latency per primitive (minutes)", rows)
    for row in rows:
        assert row["he_eval_min"] > row["gc_eval_min"] > row["gc_garble_min"]
    anchor = [
        r for r in rows if r["model"] == "ResNet-18" and r["dataset"] == "TinyImageNet"
    ][0]
    assert 17 < anchor["he_eval_min"] < 19  # paper: 17.76 min
