"""Bench: regenerate Figure 12 (baseline vs proposed, end to end)."""

import pytest

from repro.experiments import fig12_end_to_end
from repro.experiments.common import print_rows


@pytest.mark.parametrize(
    "model,dataset",
    [("ResNet-32", "CIFAR-100"), ("ResNet-18", "TinyImageNet")],
)
def test_fig12_panel(once, model, dataset):
    rows = once(fig12_end_to_end.run, model, dataset, replications=2,
                horizon_hours=6.0)
    print_rows(f"Figure 12: {model} on {dataset}", rows)
    by_system = {}
    for row in rows:
        by_system.setdefault(row["system"], []).append(row["mean_latency_min"])
    # Proposed protocol: lower latency at the lowest rate and at saturation.
    assert by_system["Proposed-16GB"][0] <= by_system["SG-16GB"][0] * 1.05
    assert by_system["Proposed-16GB"][-1] < by_system["SG-16GB"][-1]


def test_fig12_full_sweep(once):
    rows = once(fig12_end_to_end.run_all, replications=1, horizon_hours=4.0)
    assert len(rows) == 6 * 4 * 6  # pairs x systems x rates
