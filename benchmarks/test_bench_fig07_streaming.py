"""Bench: regenerate Figure 7 (streaming latency decomposition)."""

from repro.experiments import fig07_streaming
from repro.experiments.common import print_rows


def test_fig07_streaming(once):
    rows = once(fig07_streaming.run, replications=3)
    print_rows("Figure 7: streaming latency decomposition", rows)
    assert rows[0]["offline_min"] < 1.0  # online-only at near-zero rate
    assert rows[-1]["queue_min"] > rows[0]["queue_min"]  # queue builds up
    assert rows[-1]["mean_latency_min"] > 3 * rows[0]["mean_latency_min"]
