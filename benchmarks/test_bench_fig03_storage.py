"""Bench: regenerate Figure 3 (client storage per inference)."""

from repro.experiments import fig03_storage
from repro.experiments.common import print_rows


def test_fig03_storage(benchmark):
    rows = benchmark(fig03_storage.run)
    print_rows("Figure 3: client storage per inference (GB)", rows)
    for row in rows:
        assert abs(row["client_storage_gb"] - row["paper_gb"]) / row["paper_gb"] < 0.10
