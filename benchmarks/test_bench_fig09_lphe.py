"""Bench: regenerate Figure 9 (sequential vs layer-parallel HE)."""

from repro.experiments import fig09_lphe
from repro.experiments.common import print_rows


def test_fig09_lphe(benchmark):
    rows = benchmark(fig09_lphe.run)
    print_rows("Figure 9: sequential vs LPHE (seconds)", rows)
    assert all(r["speedup"] > 5 for r in rows)
    assert 7 <= fig09_lphe.mean_speedup() <= 16  # paper: 9.7x
