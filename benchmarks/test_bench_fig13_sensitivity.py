"""Bench: regenerate Figure 13 (client/server compute sensitivity)."""

import pytest

from repro.experiments import fig13_sensitivity
from repro.experiments.common import print_rows


@pytest.mark.parametrize("server_scale", [1, 4])
def test_fig13_panel(once, server_scale):
    rows = once(fig13_sensitivity.run, server_scale=server_scale, replications=1)
    print_rows(f"Figure 13: AMD server ({server_scale}x)", rows)
    by_system = {}
    for row in rows:
        by_system.setdefault(row["system"], []).append(row["mean_latency_min"])
    # CG with 16 GB buffers a pre-compute; SG cannot -> CG wins at low rate.
    assert by_system["CG - Atom"][0] < by_system["SG - Atom"][0]


def test_fig13_garble_anchors(benchmark):
    lat = benchmark(fig13_sensitivity.garble_latencies)
    assert abs(lat["Atom"] - 382.6) / 382.6 < 0.1
    assert abs(lat["i5"] - 107.2) / 107.2 < 0.1
    assert abs(lat["i5 (2x)"] - 53.8) / 53.8 < 0.1
