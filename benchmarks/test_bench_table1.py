"""Bench: regenerate Table 1 (Server-Garbler time breakdown)."""

from repro.experiments import table1
from repro.experiments.common import print_rows


def test_table1(benchmark):
    rows = benchmark(table1.run)
    print_rows("Table 1: Server-Garbler breakdown (seconds)", rows)
    totals = [r for r in rows if r["phase"] == "total"][0]
    assert abs(totals["Total"] - 2052) / 2052 < 0.08
