"""Ablation benches for design choices DESIGN.md calls out.

Not paper figures — these probe the sensitivity of our reproduction to its
own modeling decisions:

* LPHE core-count scaling (LPT scheduling vs the all-cores assumption);
* half-gates vs classic four-row garbling (ReLU size and hash work);
* share-field width vs garbled-ReLU cost (why 41 bits costs what it does);
* TDD slot quantization (continuous optimum vs 10-subframe granularity);
* precomputed OT vs full IKNP online bytes (the Client-Garbler online OT).
"""

import pytest

from repro.core.wsa import comm_seconds, optimal_upload_fraction
from repro.crypto.rng import SecureRandom
from repro.gc.classic import ClassicGarbler
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit, relu_and_gates
from repro.network.bandwidth import TddLink
from repro.nn.datasets import TINY_IMAGENET
from repro.nn.models import resnet18
from repro.ot.extension import ot_extension_online_bytes
from repro.ot.precomputed import online_ot_bytes
from repro.profiling.devices import EPYC
from repro.profiling.model_costs import Protocol, profile_network


@pytest.fixture(scope="module")
def r18_tiny():
    return profile_network(resnet18(TINY_IMAGENET))


def test_ablation_lphe_core_scaling(benchmark, r18_tiny):
    """LPHE makespan vs available cores (LPT bin packing)."""

    def sweep():
        return {
            cores: r18_tiny.he_lphe_seconds(EPYC, cores)
            for cores in (1, 2, 4, 8, 17, 18, 32)
        }

    result = benchmark(sweep)
    print("\nLPHE makespan by cores:", {k: round(v, 1) for k, v in result.items()})
    assert result[1] == pytest.approx(r18_tiny.he_sequential_seconds(EPYC))
    assert result[32] == result[18]  # no gain past one core per layer
    values = [result[c] for c in (1, 2, 4, 8, 18)]
    assert values == sorted(values, reverse=True)


def test_ablation_half_gates_vs_classic(benchmark):
    """Half-gates halves garbled-ReLU size vs the classic 4-row tables."""
    spec = ReluCircuitSpec(bits=17, modulus=(1 << 17) - 1, mask_owner="evaluator")
    circuit = build_relu_circuit(spec)

    def garble_both():
        half, _ = Garbler(SecureRandom(1)).garble(circuit)
        classic, _ = ClassicGarbler(SecureRandom(2)).garble(circuit)
        return half.size_bytes, classic.size_bytes

    half_bytes, classic_bytes = benchmark(garble_both)
    print(f"\ngarbled ReLU bytes: half-gates {half_bytes}, classic {classic_bytes}")
    assert classic_bytes == pytest.approx(2 * half_bytes, rel=0.02)


def test_ablation_field_width_vs_relu_cost(benchmark):
    """AND gates per ReLU scale linearly in the share width."""

    def sweep():
        return {bits: relu_and_gates(bits) for bits in (8, 16, 24, 32, 41)}

    ands = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nANDs per ReLU by share width:", ands)
    assert 12 <= ands[41] / 41 <= 14  # ~13 ANDs per bit
    ratio = ands[32] / ands[16]
    assert 1.9 <= ratio <= 2.1


def test_ablation_wsa_quantization(benchmark, r18_tiny):
    """10-subframe TDD quantization costs at most a few percent."""
    volumes = r18_tiny.comm(Protocol.CLIENT_GARBLER)

    def compare():
        f_star = optimal_upload_fraction(volumes)
        continuous = comm_seconds(volumes, TddLink(1e9, f_star))
        quantized = comm_seconds(volumes, TddLink(1e9, f_star, quantized=True))
        return continuous, quantized

    continuous, quantized = benchmark(compare)
    print(f"\nWSA latency: continuous {continuous:.1f}s, quantized {quantized:.1f}s")
    assert quantized >= continuous
    assert quantized / continuous < 1.05


def test_ablation_precomputed_ot_online_bytes(benchmark):
    """OT precomputation shrinks the Client-Garbler online OT traffic."""

    def sweep():
        n = 41 * 2_228_224  # one choice bit per share bit, R18/Tiny
        return ot_extension_online_bytes(n), online_ot_bytes(n)

    full, precomputed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nonline OT bytes: full IKNP {full / 1e9:.2f} GB, "
          f"precomputed {precomputed / 1e9:.2f} GB")
    assert precomputed < full
