"""Bench: regenerate Figure 11 (wireless slot allocation sweep)."""

from repro.experiments import fig11_wsa
from repro.experiments.common import print_rows


def test_fig11_wsa(benchmark):
    rows = benchmark(fig11_wsa.run)
    print_rows("Figure 11: WSA sweep at 1 Gbps", rows)
    stats = fig11_wsa.optima()
    assert stats["server-garbler"]["optimal_download_mbps"] > 700  # paper: 802
    assert stats["client-garbler"]["optimal_upload_mbps"] > 750  # paper: 835
    for protocol in stats.values():
        assert 0 < protocol["improvement_vs_even"] <= 0.40  # paper: up to 35%
