"""Bench: regenerate Figure 14 (future-optimization waterfall)."""

from repro.experiments import fig14_future
from repro.experiments.common import print_rows


def test_fig14_future(benchmark):
    rows = benchmark(fig14_future.run)
    print_rows("Figure 14: future-optimization waterfall (seconds)", rows)
    for row in rows:
        assert abs(row["total_s"] - row["paper_s"]) / row["paper_s"] < 0.35, row["step"]
    components = fig14_future.components()
    print_rows("Figure 14 (bottom): normalized components (%)", components)
