"""The paired c0/c1 transform: correctness and pinned NTT op-counts.

``mul_plain`` and ``rotate`` multiply one shared operand (the lifted
plaintext, a key-switch digit) into both ciphertext components. The
shared operand must be forward-transformed once, and all transforms must
land in batched plan calls (`forward_many` / `inverse_unscaled_many`)
rather than per-product passes. A call-counting stub wrapped around the
cached NTT plan pins the exact op counts so the batching cannot silently
regress to the 4-forward/2-inverse shape.
"""

import dataclasses
import random
from collections import Counter

import pytest

from repro.backend import available_backends, get_backend
from repro.crypto.modmath import find_ntt_prime
from repro.crypto.rng import SecureRandom
from repro.he import polynomial
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.ntt import NegacyclicNtt
from repro.he.params import fast_params, toy_params
from repro.he.polynomial import RingPoly, clear_ntt_cache, multiply_shared


class CountingPlan:
    """Wraps an NttPlan, counting calls and transformed vectors."""

    def __init__(self, plan):
        self._plan = plan
        self.calls = Counter()
        self.vectors = Counter()

    def _wrap(self, name, vecs_counted):
        def call(*args):
            self.calls[name] += 1
            self.vectors[name] += vecs_counted(*args)
            return getattr(self._plan, name)(*args)

        return call

    def __getattr__(self, name):
        if name in ("forward", "inverse", "inverse_unscaled"):
            return self._wrap(name, lambda vec: 1)
        if name == "forward_pair":
            return self._wrap(name, lambda a, b: 2)
        if name in ("forward_many", "inverse_unscaled_many"):
            return self._wrap(name, lambda vecs: len(vecs))
        return getattr(self._plan, name)


def _counted_context(n, q, backend):
    """The cached NegacyclicNtt for (n, q, backend) with a counting plan."""
    ctx = polynomial._context(n, q, backend)
    counter = CountingPlan(ctx._ntt._plan)
    ctx._ntt._plan = counter
    return ctx, counter


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ntt_cache()
    yield
    clear_ntt_cache()


class TestMultiplySharedCorrectness:
    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("q_bits", (24, 40))
    def test_matches_separate_multiplies(self, backend_name, q_bits):
        rng = random.Random(q_bits)
        n = 64
        q = find_ntt_prime(q_bits, n)
        be = get_backend(backend_name)
        ntt = NegacyclicNtt(n, q, backend=be)
        shared = [rng.randrange(q) for _ in range(n)]
        others = [[rng.randrange(q) for _ in range(n)] for _ in range(3)]
        sv = be.asvec(shared, q)
        ov = [be.asvec(o, q) for o in others]
        batched = [be.tolist(v) for v in ntt.multiply_shared_vec(sv, ov)]
        separate = [ntt.multiply(shared, o) for o in others]
        assert batched == separate

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_ring_poly_helper(self, backend_name):
        rng = random.Random(8)
        n = 32
        q = find_ntt_prime(30, n)
        be = get_backend(backend_name)
        shared = RingPoly([rng.randrange(q) for _ in range(n)], q, backend=be)
        others = [
            RingPoly([rng.randrange(q) for _ in range(n)], q, backend=be)
            for _ in range(2)
        ]
        got = multiply_shared(shared, others)
        assert [p.coeffs for p in got] == [(shared * o).coeffs for o in others]

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_empty_others_returns_empty(self, backend_name):
        n = 32
        q = find_ntt_prime(28, n)
        be = get_backend(backend_name)
        ntt = NegacyclicNtt(n, q, backend=be)
        shared = be.asvec(list(range(n)), q)
        assert ntt.multiply_shared_vec(shared, []) == []
        poly = RingPoly(list(range(n)), q, backend=be)
        assert multiply_shared(poly, []) == []

    def test_ring_mismatch_raises_like_elementwise_path(self):
        rng = random.Random(3)
        n = 32
        q_a, q_b = find_ntt_prime(28, n), find_ntt_prime(29, n)
        shared = RingPoly([rng.randrange(q_a) for _ in range(n)], q_a)
        other = RingPoly([rng.randrange(q_b) for _ in range(n)], q_b)
        with pytest.raises(ValueError):
            multiply_shared(shared, [other])
        with pytest.raises(ValueError):
            shared * other  # the contract multiply_shared mirrors

    def test_rns_poly_helper(self):
        from repro.backend import RnsContext
        from repro.he.polynomial import RnsPoly

        params = toy_params(n=64)
        rng = random.Random(12)
        ctx = RnsContext.for_primes(params.rns_primes)
        mk = lambda: RnsPoly.from_coeffs(
            ctx, [rng.randrange(params.q) for _ in range(64)]
        )
        shared, a, b = mk(), mk(), mk()
        got = multiply_shared(shared, [a, b])
        assert [p.coeffs for p in got] == [
            (shared * a).coeffs,
            (shared * b).coeffs,
        ]


class TestPinnedOpCounts:
    def _rig(self, params):
        ctx = BfvContext(params, SecureRandom(4))
        encoder = BatchEncoder(params)
        sk, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode(list(range(8))))
        return ctx, encoder, sk, ct

    def test_mul_plain_is_one_batched_forward_and_inverse(self):
        params = fast_params(n=64)
        ctx, encoder, sk, ct = self._rig(params)
        _, counter = _counted_context(params.n, params.q, ctx._rq)
        ctx.mul_plain(ct, encoder.encode([5] * params.n))
        # One stacked forward of {lifted plaintext, c0, c1}; one stacked
        # inverse of the two products. No per-vector transform calls.
        assert counter.calls == Counter(
            {"forward_many": 1, "inverse_unscaled_many": 1}
        )
        assert counter.vectors["forward_many"] == 3
        assert counter.vectors["inverse_unscaled_many"] == 2

    def test_rotate_batches_per_key_digit(self):
        params = fast_params(n=64)
        ctx, encoder, sk, ct = self._rig(params)
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        _, counter = _counted_context(params.n, params.q, ctx._rq)
        ctx.rotate(ct, g, gk)
        digits = params.num_decomp_digits
        # Fused key switch: every digit forward lands in ONE stacked pass,
        # the key components arrive pre-transformed (eval-domain storage,
        # zero key-side forwards here), and the eval-domain accumulation
        # needs just one two-vector inverse for (c0_delta, c1_delta).
        assert counter.calls == Counter(
            {"forward_many": 1, "inverse_unscaled_many": 1}
        )
        assert counter.vectors["forward_many"] == digits
        assert counter.vectors["inverse_unscaled_many"] == 2

    def test_rotate_skips_key_side_forward_transforms(self):
        # The eval-domain cache is built at keygen; rotations afterwards
        # never forward-transform key material, only the decomposed digits.
        params = fast_params(n=64)
        ctx, encoder, sk, ct = self._rig(params)
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        assert g in gk._eval  # eager population at keygen
        _, counter = _counted_context(params.n, params.q, ctx._rq)
        for _ in range(3):
            ctx.rotate(ct, g, gk)
        digits = params.num_decomp_digits
        assert counter.vectors["forward_many"] == 3 * digits
        assert counter.calls["forward"] == 0  # no per-key transforms at all

    def test_rns_mul_plain_batches_every_residue_ring(self):
        params = dataclasses.replace(toy_params(n=64), representation="rns")
        ctx, encoder, sk, ct = self._rig(params)
        counters = []
        for prime, be in zip(ctx._rns.primes, ctx._rns.backends):
            counters.append(_counted_context(params.n, prime, be)[1])
        ctx.mul_plain(ct, encoder.encode([3] * params.n))
        for counter in counters:
            assert counter.calls == Counter(
                {"forward_many": 1, "inverse_unscaled_many": 1}
            )
            assert counter.vectors["forward_many"] == 3

    def test_batched_output_still_decrypts(self):
        params = fast_params(n=64)
        ctx, encoder, sk, ct = self._rig(params)
        ct = ctx.mul_plain(ct, encoder.encode([5] * params.n))
        assert encoder.decode(ctx.decrypt(sk, ct))[:8] == [
            5 * v % params.t for v in range(8)
        ]
