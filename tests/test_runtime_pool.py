"""Pooled-vs-sequential parity for the offline precompute runtime.

The design invariant of :mod:`repro.runtime.pool` is that pooling never
changes an output bit: all randomness is drawn by the parent in the
sequential order and jobs are pure functions of pre-drawn material. These
tests enforce byte-identity between pooled and sequential garbling, OT
extension, Galois key generation, and whole protocol offline phases, plus
the fork-safety contract of the worker initializer.
"""

import os

import pytest

import repro.runtime.state as runtime_state
from repro.backend import (
    RnsContext,
    active_backend_name,
    reset_backend_selection,
    set_backend,
)
from repro.crypto.rng import SecureRandom
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import fast_params, toy_params
from repro.he.polynomial import RingPoly, ntt_cache_size
from repro.network.serialize import (
    serialize_garbled_circuit,
    serialize_input_encoding,
)
from repro.ot.extension import iknp_transfer
from repro.runtime import (
    PrecomputePool,
    derive_worker_seed,
    plan_shards,
    reset_process_state,
    resolve_workers,
)

PARAMS = fast_params(n=256)


def relu_circuit():
    spec = ReluCircuitSpec(bits=17, modulus=PARAMS.t, mask_owner="evaluator")
    return build_relu_circuit(spec)


def batch_bytes(batch):
    return b"".join(
        serialize_garbled_circuit(garbled) + serialize_input_encoding(encoding)
        for garbled, encoding in batch
    )


# -- worker resolution and shard planning ---------------------------------------


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(3) == 3
    assert resolve_workers(None, default=1) == 1
    assert resolve_workers(None) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_workers(None, default=1) == 5
    assert resolve_workers(2) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    with pytest.warns(RuntimeWarning):
        assert resolve_workers(None, default=1) == 1  # fail soft, loudly
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert resolve_workers(None, default=1) == 1  # floored at one


def test_resolve_workers_warns_naming_the_bad_value(monkeypatch):
    """An unparseable REPRO_WORKERS must not be silently swallowed.

    The fallback is deliberate (a broken environment should not kill a
    run), but the warning must name the offending value so the user can
    see why their worker-count setting had no effect.
    """
    monkeypatch.setenv("REPRO_WORKERS", "all-the-cores")
    with pytest.warns(RuntimeWarning, match="all-the-cores"):
        assert resolve_workers(None, default=1) == 1
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        resolve_workers(None)
    # A parseable value stays silent...
    monkeypatch.setenv("REPRO_WORKERS", "2")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_workers(None, default=1) == 2
        # ...and so does an explicit argument, which never consults env.
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert resolve_workers(4) == 4


def test_plan_shards_covers_and_balances():
    plans = plan_shards([100], workers=4, min_shard=8, oversubscribe=4)
    ranges = plans[0]
    assert ranges[0][0] == 0 and ranges[-1][1] == 100
    assert all(hi > lo for lo, hi in ranges)
    assert [lo for lo, _ in ranges[1:]] == [hi for _, hi in ranges[:-1]]
    sizes = [hi - lo for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1  # even split
    assert min(sizes) >= 7  # ~min_shard


def test_plan_shards_is_skew_aware():
    # One wide layer among small ones: the target comes from the total,
    # so the wide layer splits finely while small layers stay whole.
    plans = plan_shards([512, 16, 16], workers=4, min_shard=8, oversubscribe=4)
    assert len(plans[0]) > 8
    assert len(plans[1]) == 1 and len(plans[2]) == 1
    assert plans[1][0] == (0, 16)


def test_plan_shards_edge_cases():
    assert plan_shards([0], workers=2) == [[]]
    assert plan_shards([1], workers=8) == [[(0, 1)]]
    assert plan_shards([], workers=2) == []


# -- pooled garbling parity -----------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_pool_garble_batch_matches_sequential_vectorized(workers):
    circuit = relu_circuit()
    expected = Garbler(SecureRandom(99)).garble_batch(circuit, 40)
    with PrecomputePool(workers=workers, min_shard=4) as pool:
        pooled = pool.garble_batch(circuit, 40, rng=SecureRandom(99))
    assert batch_bytes(pooled) == batch_bytes(expected)
    # The parent's shared topology object is rebound on every instance
    # (the batched evaluator's fast path requires identity).
    assert all(garbled.circuit is circuit for garbled, _ in pooled)


def test_pool_garble_batch_matches_sequential_scalar():
    circuit = relu_circuit()
    expected = Garbler(SecureRandom(7)).garble_batch(circuit, 9, vectorize=False)
    with PrecomputePool(workers=2, min_shard=2) as pool:
        pooled = pool.garble_batch(
            circuit, 9, rng=SecureRandom(7), vectorize=False
        )
    assert batch_bytes(pooled) == batch_bytes(expected)


def test_pool_garble_batch_edges():
    circuit = relu_circuit()
    with PrecomputePool(workers=2) as pool:
        assert pool.garble_batch(circuit, 0, rng=SecureRandom(1)) == []
        single = pool.garble_batch(circuit, 1, rng=SecureRandom(1))
    expected = Garbler(SecureRandom(1)).garble_batch(circuit, 1)
    assert batch_bytes(single) == batch_bytes(expected)


def test_pool_garble_layers_matches_per_layer_sequential():
    circuit = relu_circuit()
    counts = [48, 8]
    with PrecomputePool(workers=2, min_shard=4) as pool:
        batches = pool.garble_layers(
            [(circuit, count, SecureRandom(30 + i)) for i, count in enumerate(counts)]
        )
    for i, count in enumerate(counts):
        expected = Garbler(SecureRandom(30 + i)).garble_batch(circuit, count)
        assert batch_bytes(batches[i]) == batch_bytes(expected)


# -- pooled OT extension parity -------------------------------------------------


def test_pool_iknp_transfer_matches_sequential():
    rng = SecureRandom(17)
    pairs = [
        (rng.bytes(16), rng.bytes(16)) for _ in range(300)
    ]
    choices = [rng.bit() for _ in range(300)]
    expected, tr_expected = iknp_transfer(pairs, choices, SecureRandom(5))
    with PrecomputePool(workers=2, min_shard=16) as pool:
        pooled, tr_pooled = pool.iknp_transfer(pairs, choices, SecureRandom(5))
    assert pooled == expected
    assert tr_pooled == tr_expected


# -- pooled Galois keygen parity ------------------------------------------------


def test_pool_galois_keygen_matches_sequential():
    encoder = BatchEncoder(PARAMS)
    g = encoder.galois_element_for_rotation(1)

    ctx_seq = BfvContext(PARAMS, SecureRandom(11))
    sk_seq, _ = ctx_seq.keygen()
    gk_seq = ctx_seq.galois_keygen(sk_seq, [g])

    ctx_pool = BfvContext(PARAMS, SecureRandom(11))
    sk_pool, _ = ctx_pool.keygen()
    with PrecomputePool(workers=2) as pool:
        gk_pool = pool.galois_keygen(ctx_pool, sk_pool, [g])

    assert sorted(gk_seq.keys) == sorted(gk_pool.keys)
    for (k0_a, k1_a), (k0_b, k1_b) in zip(gk_seq.keys[g], gk_pool.keys[g]):
        assert k0_a.coeffs == k0_b.coeffs
        assert k1_a.coeffs == k1_b.coeffs


def test_pool_galois_keygen_rns_chain():
    """Pooled keygen on an RNS-chained parameter set (worker re-registers
    the composite factorization; coefficients stay oracle-exact)."""
    params = toy_params(n=256)
    encoder = BatchEncoder(params)
    g = encoder.galois_element_for_rotation(1)

    ctx_seq = BfvContext(params, SecureRandom(23))
    sk_seq, _ = ctx_seq.keygen()
    gk_seq = ctx_seq.galois_keygen(sk_seq, [g])

    ctx_pool = BfvContext(params, SecureRandom(23))
    sk_pool, _ = ctx_pool.keygen()
    with PrecomputePool(workers=2) as pool:
        gk_pool = pool.galois_keygen(ctx_pool, sk_pool, [g])

    for (k0_a, k1_a), (k0_b, k1_b) in zip(gk_seq.keys[g], gk_pool.keys[g]):
        assert k0_a.coeffs == k0_b.coeffs
        assert k1_a.coeffs == k1_b.coeffs


# -- fork-safety / process state ------------------------------------------------


def test_reset_process_state_clears_caches_and_reselects(monkeypatch):
    original = active_backend_name()
    try:
        # Populate the process-global caches.
        RingPoly([1, 2, 3, 4], 12289) * RingPoly([4, 3, 2, 1], 12289)
        RnsContext.for_primes(toy_params(n=256).rns_primes)
        assert ntt_cache_size() > 0
        assert len(RnsContext._cache) > 0
        set_backend("python")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        reset_process_state()
        assert ntt_cache_size() == 0
        assert len(RnsContext._cache) == 0
        # Selection re-read from the worker's own environment, dropping
        # the parent's programmatic set_backend().
        assert active_backend_name() == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        reset_process_state()
        assert active_backend_name() == "auto"
    finally:
        set_backend(original)


def test_derive_worker_seed_is_stable_and_distinct():
    seeds = {derive_worker_seed(123, i) for i in range(8)}
    assert len(seeds) == 8
    assert derive_worker_seed(123, 0) == derive_worker_seed(123, 0)
    assert derive_worker_seed(123, 0) != derive_worker_seed(124, 0)


def _worker_probe(_job):
    """Pool job: report this worker's identity and first private draws."""
    return (
        runtime_state.worker_index(),
        runtime_state.worker_rng().bytes(8),
        os.getpid(),
    )


def test_pool_workers_have_independent_rngs():
    with PrecomputePool(workers=2, seed=123) as pool:
        probes = pool.map_jobs(_worker_probe, list(range(8)))
    pids = {pid for _, _, pid in probes}
    assert os.getpid() not in pids  # really ran in child processes
    assert all(index is not None for index, _, _ in probes)
    # Every draw is distinct (streams advance and never collide) and no
    # worker continues the parent's stream for the same base seed.
    draws = {draw for _, draw, _ in probes}
    assert len(draws) == len(probes)
    assert SecureRandom(123).bytes(8) not in draws


def test_system_config_threads_workers_into_protocol(monkeypatch):
    """SystemConfig.workers reaches the functional protocol's pool size."""
    import numpy as np

    from repro.core.system import SystemConfig
    from repro.nn.datasets import tiny_dataset
    from repro.nn.models import tiny_mlp
    from repro.profiling.model_costs import Protocol, profile_network

    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=8)
    profile = profile_network(network)
    config = SystemConfig(
        profile=profile, protocol=Protocol.CLIENT_GARBLER, workers=2
    )
    assert config.precompute_workers() == 2
    network.randomize_weights(
        config.functional_bfv_params().t, np.random.default_rng(0)
    )
    protocol = config.functional_protocol(network, seed=3)
    assert protocol._workers == 2
    assert protocol.garbler_role == "client"
    protocol.run_offline()
    x = np.random.default_rng(1).integers(0, protocol.params.t, size=16).tolist()
    assert protocol.run_online(x) == protocol.plaintext_reference(x)


def _worker_backend_probe(_job):
    """Pool job: report the backend selection this worker resolved."""
    return active_backend_name()


def test_pool_forwards_backend_selection_to_workers(monkeypatch):
    """A pool-level backend choice survives the worker's env reset."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    with PrecomputePool(workers=2, backend="python") as pool:
        probes = pool.map_jobs(_worker_backend_probe, list(range(4)))
    assert set(probes) == {"python"}


def test_protocol_pool_inherits_explicit_backend(monkeypatch):
    """HybridProtocol's own pool carries the protocol's backend choice."""
    import numpy as np

    import repro.runtime.pool as pool_module
    from repro import HybridProtocol, tiny_dataset, tiny_mlp

    captured = {}
    real_pool = pool_module.PrecomputePool

    def capturing_pool(*args, **kwargs):
        captured.update(kwargs)
        return real_pool(*args, **kwargs)

    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setattr(pool_module, "PrecomputePool", capturing_pool)
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=4)
    network.randomize_weights(PARAMS.t, np.random.default_rng(0))
    protocol = HybridProtocol(
        network, PARAMS, garbler="server", seed=1, backend="python", workers=2
    )
    protocol.run_offline()
    assert captured["backend"] == "python"
    assert captured["representation"] == "bigint"


def test_pool_inline_when_single_worker():
    circuit = relu_circuit()
    pool = PrecomputePool(workers=1)
    pool.garble_batch(circuit, 8, rng=SecureRandom(3))
    assert pool._pool is None  # no processes were spawned
    assert runtime_state.worker_index() is None  # parent untouched
    pool.close()


# -- async submission surface ----------------------------------------------------


def test_apply_async_inline_resolves_at_submit():
    """workers<=1 runs the job inline: ready immediately, same process."""
    import math

    with PrecomputePool(workers=1) as pool:
        seen = []
        job = pool.apply_async(math.sqrt, 16.0, callback=seen.append)
        assert job.ready()
        assert job.get() == 4.0
        assert seen == [4.0]  # callback ran synchronously
        assert pool._pool is None  # still no processes


def test_apply_async_inline_captures_exceptions():
    import math

    with PrecomputePool(workers=1) as pool:
        seen = []
        job = pool.apply_async(math.sqrt, -1.0, callback=seen.append)
        assert job.ready()  # resolved — to an error
        with pytest.raises(ValueError):
            job.get()
        assert seen == []  # callback must not fire on failure


def test_apply_async_pooled_runs_in_worker():
    import math
    import time

    with PrecomputePool(workers=2) as pool:
        jobs = [pool.apply_async(math.sqrt, float(n * n)) for n in range(1, 6)]
        assert [job.get(timeout=60) for job in jobs] == [1.0, 2.0, 3.0, 4.0, 5.0]
        deadline = time.monotonic() + 60
        while not all(job.ready() for job in jobs):
            assert time.monotonic() < deadline
        failing = pool.apply_async(math.sqrt, -1.0)
        with pytest.raises(ValueError):
            failing.get(timeout=60)


def test_apply_async_pooled_callback_fires():
    import math
    import time

    with PrecomputePool(workers=2) as pool:
        seen = []
        job = pool.apply_async(math.sqrt, 81.0, callback=seen.append)
        assert job.get(timeout=60) == 9.0
        deadline = time.monotonic() + 60
        while not seen:  # callback runs on the pool's result thread
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert seen == [9.0]


def test_pool_creation_is_thread_safe():
    """Racing first submissions must materialize exactly one process pool."""
    import math
    import threading

    with PrecomputePool(workers=2) as pool:
        barrier = threading.Barrier(4)
        results = []

        def submit():
            barrier.wait()
            results.append(pool.apply_async(math.sqrt, 4.0).get(timeout=60))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert results == [2.0, 2.0, 2.0, 2.0]
        assert pool._pool is not None
