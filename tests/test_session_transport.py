"""Session/transport redesign: transcript parity, framing, deployments.

The acceptance gate of the role-separated API: ``ClientSession`` +
``ServerSession`` over an ``InMemoryTransport`` must reproduce the
pre-redesign monolith's per-phase channel transcript (bytes AND message
counts, both directions, both phases), its logits, and its operation
counters — for both garbler roles, at toy and DELPHI-scale parameters.
The monolith is frozen in :mod:`repro.core._monolith` precisely so this
suite keeps enforcing that gate. On top of parity: transport framing
(including wire-version rejection), independent step-interleaving of many
sessions, and real socket deployments (loopback single-process and a
genuine two-process run).
"""

import multiprocessing

import numpy as np
import pytest

from repro.backend import backend_for
from repro.core._monolith import MonolithHybridProtocol
from repro.core.protocol import DONE, WAITING, HybridProtocol
from repro.core.session import ClientSession, ServerSession
from repro.he.params import delphi_params, toy_params
from repro.network.transport import (
    InMemoryTransport,
    SocketListener,
    SocketTransport,
    TransportClosed,
    TransportError,
)
from repro.nn.datasets import tiny_dataset
from repro.nn.layers import Linear, ReLU
from repro.nn.models import tiny_mlp
from repro.nn.network import Network
from repro.nn.shapes import TensorShape

PARAMS = toy_params(n=256)
P = PARAMS.t


def make_mlp(widths, seed):
    rng = np.random.default_rng(seed)
    layers = []
    for i in range(len(widths) - 1):
        weights = rng.integers(0, P, size=(widths[i + 1], widths[i])).astype(object)
        layers.append(Linear(widths[i], widths[i + 1], weights=weights, name=f"fc{i}"))
        if i < len(widths) - 2:
            layers.append(ReLU(name=f"relu{i}"))
    return Network("mlp", TensorShape(widths[0]), layers)


def phase_transcript(channel):
    """(messages, bytes) per phase/direction — the full accounting state."""
    return {
        (phase, direction): (stats.messages, stats.bytes)
        for phase, directions in channel.phase_stats.items()
        for direction, stats in directions.items()
    }


def assert_parity(net, params, garbler, seed, x):
    mono = MonolithHybridProtocol(net, params, garbler=garbler, seed=seed)
    mono.run_offline()
    logits_mono = mono.run_online(x)

    proto = HybridProtocol(net, params, garbler=garbler, seed=seed)
    proto.run_offline()
    logits = proto.run_online(x)

    assert logits == logits_mono
    assert logits == proto.plaintext_reference(x)
    assert phase_transcript(proto.channel) == phase_transcript(mono.channel)
    # The server session keeps its own books; they must agree byte for byte.
    assert phase_transcript(proto.server.channel) == phase_transcript(mono.channel)
    assert proto.counters == mono.counters
    return proto


class TestMonolithParity:
    """Sessions over InMemoryTransport == the PR-4 monolith, per phase."""

    @pytest.mark.parametrize("garbler", ["server", "client"])
    def test_tiny_mlp_both_roles(self, garbler):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        net.randomize_weights(P, np.random.default_rng(0))
        x = np.random.default_rng(1).integers(0, P, size=16).tolist()
        assert_parity(net, PARAMS, garbler, seed=11, x=x)

    @pytest.mark.parametrize("trial", range(4))
    def test_randomized_architectures(self, trial):
        """Random widths/depths/inputs/roles: parity is not shape-specific."""
        rng = np.random.default_rng(100 + trial)
        depth = int(rng.integers(2, 4))
        widths = [16] + [int(rng.choice([2, 4, 8])) for _ in range(depth - 1)]
        widths.append(int(rng.choice([2, 4])))
        garbler = ["server", "client"][trial % 2]
        net = make_mlp(widths, seed=200 + trial)
        x = rng.integers(0, P, size=16).tolist()
        assert_parity(net, PARAMS, garbler, seed=300 + trial, x=x)

    def test_truncating_protocol(self):
        net = make_mlp([16, 8, 3], seed=7)
        x = np.random.default_rng(8).integers(0, P, size=16).tolist()
        mono = MonolithHybridProtocol(
            net, PARAMS, garbler="server", seed=5, truncate_bits=3
        )
        mono.run_offline()
        proto = HybridProtocol(net, PARAMS, garbler="server", seed=5, truncate_bits=3)
        proto.run_offline()
        assert proto.run_online(x) == mono.run_online(x)
        assert phase_transcript(proto.channel) == phase_transcript(mono.channel)

    def test_delphi_scale_params(self):
        """Parity holds at the paper's 41-bit field / n=2048 ring."""
        params = delphi_params()
        if backend_for(params.t, prefer=params.backend).name != "numpy":
            pytest.skip("delphi-scale parity needs the vectorized backend")
        net = make_mlp([4, 2, 2], seed=3)
        x = [1, 2, 3, 4]
        assert_parity(net, params, "client", seed=17, x=x)


class TestSessionStepping:
    """Sessions are independent state machines a driver can interleave."""

    def _armed_protocols(self, count=2):
        protos = []
        for i in range(count):
            net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
            net.randomize_weights(P, np.random.default_rng(i))
            protos.append(HybridProtocol(net, PARAMS, garbler="client", seed=i))
        return protos

    def test_interleaved_offline_and_online(self):
        """Round-robin stepping N protocols one message at a time works."""
        protos = self._armed_protocols(2)
        for proto in protos:
            proto.start_offline()
        pending = list(protos)
        while pending:
            pending = [p for p in pending if not p.step()]
        xs = [
            np.random.default_rng(10 + i).integers(0, P, size=16).tolist()
            for i in range(len(protos))
        ]
        for proto, x in zip(protos, xs):
            proto.start_online(x)
        pending = list(protos)
        while pending:
            pending = [p for p in pending if not p.step()]
        for proto, x in zip(protos, xs):
            assert proto.client.finish() == proto.plaintext_reference(x)

    def test_step_reports_waiting_until_peer_progresses(self):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
        net.randomize_weights(P, np.random.default_rng(0))
        proto = HybridProtocol(net, PARAMS, garbler="client", seed=1)
        proto.client.start_offline()
        proto.server.start_offline()
        # The server's first act is to wait for the public key.
        assert proto.server.step() == WAITING
        # The client sends keys and the first ciphertext, then waits.
        assert proto.client.step() == WAITING
        # Now the server can consume them and reply.
        assert proto.server.step() == WAITING
        assert proto.client.transport.pending

    def test_online_before_offline_rejected(self):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
        net.randomize_weights(P, np.random.default_rng(0))
        proto = HybridProtocol(net, PARAMS, garbler="client", seed=1)
        with pytest.raises(RuntimeError):
            proto.client.start_online([0] * 16)
        with pytest.raises(RuntimeError):
            proto.server.start_online()

    def test_client_lowering_is_shape_only(self):
        """No weight matrix ever materializes on the client side, and a
        client built from the bare (unweighted) architecture agrees with
        one built from the server's weighted model."""
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        net.randomize_weights(P, np.random.default_rng(0))
        proto = HybridProtocol(net, PARAMS, garbler="client", seed=2)
        assert all(lin.matrix is None for lin in proto.client.lowered.linears)
        assert all(lin.matrix is not None for lin in proto.server.lowered.linears)
        bare = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)  # no weights
        session = ClientSession(bare, params=PARAMS, garbler="client", seed=2)
        assert [
            (lin.n_in, lin.n_out) for lin in session.lowered.linears
        ] == [(lin.n_in, lin.n_out) for lin in proto.client.lowered.linears]

    def test_double_start_rejected(self):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
        net.randomize_weights(P, np.random.default_rng(0))
        proto = HybridProtocol(net, PARAMS, garbler="client", seed=1)
        proto.client.start_offline()
        with pytest.raises(RuntimeError, match="already in progress"):
            proto.client.start_offline()


class TestInMemoryTransport:
    def test_fifo_pair(self):
        a, b = InMemoryTransport.pair()
        a.send(b"one")
        a.send(b"two")
        assert b.recv(wait=False) == b"one"
        assert b.recv(wait=False) == b"two"
        assert b.recv(wait=False) is None
        b.send(b"reply")
        assert a.pending
        assert a.recv(wait=False) == b"reply"

    def test_blocking_recv_raises(self):
        a, _ = InMemoryTransport.pair()
        with pytest.raises(TransportError, match="cannot block"):
            a.recv(wait=True)

    def test_closed_endpoint_rejects(self):
        a, b = InMemoryTransport.pair()
        a.close()
        with pytest.raises(TransportClosed):
            a.send(b"x")


class TestSocketTransport:
    def test_loopback_roundtrip_and_partial_frames(self):
        client, server = SocketTransport.loopback_pair()
        try:
            payloads = [b"a" * 3, b"b" * 70000, b"c"]
            for p in payloads:
                client.send(p)
            got = []
            while len(got) < len(payloads):
                frame = server.recv(wait=False)
                if frame is not None:
                    got.append(frame)
            assert got == payloads
            server.send(b"pong")
            assert client.recv(wait=True) == b"pong"
        finally:
            client.close()
            server.close()

    def test_send_burst_larger_than_kernel_buffers_never_blocks(self):
        """A one-sided frame burst parks in the userspace outbox instead
        of wedging sendall against a peer on the same thread."""
        client, server = SocketTransport.loopback_pair()
        try:
            payloads = [bytes([i]) * (1 << 20) for i in range(8)]  # 8 MB
            for p in payloads:  # must return promptly, not deadlock
                client.send(p)
            got = []
            while len(got) < len(payloads):
                frame = server.recv(wait=False)
                if frame is None:
                    assert client.pending or server.pending  # in flight
                    continue
                got.append(frame)
            assert got == payloads
        finally:
            client.close()
            server.close()

    def test_peer_close_raises(self):
        client, server = SocketTransport.loopback_pair()
        client.close()
        with pytest.raises(TransportClosed):
            server.recv(wait=True)
        server.close()

    def test_loopback_protocol_end_to_end(self):
        """Full offline+online over real kernel sockets, single process."""
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        net.randomize_weights(P, np.random.default_rng(0))
        x = np.random.default_rng(4).integers(0, P, size=16).tolist()
        memory = HybridProtocol(net, PARAMS, garbler="client", seed=9)
        memory.run_offline()
        logits_memory = memory.run_online(x)

        proto = HybridProtocol(net, PARAMS, garbler="client", seed=9, transport="socket")
        try:
            proto.run_offline()
            logits = proto.run_online(x)
        finally:
            proto.close()
        assert logits == logits_memory
        assert phase_transcript(proto.channel) == phase_transcript(memory.channel)


def _two_process_server(port_queue, garbler):
    """Child process: serve exactly one inference over TCP."""
    params = toy_params(n=256)
    net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
    net.randomize_weights(params.t, np.random.default_rng(0))
    with SocketListener() as listener:
        port_queue.put(listener.port)
        transport = listener.accept(timeout=60.0)
    session = ServerSession(net, params=params, garbler=garbler, seed=2, transport=transport)
    session.run_offline()
    session.run_online()
    session.close()


@pytest.mark.parametrize("garbler", ["client"])
def test_two_process_socket_inference(garbler):
    """Client and server in separate OS processes, wire bytes only."""
    net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
    net.randomize_weights(P, np.random.default_rng(0))
    x = np.random.default_rng(5).integers(0, P, size=16).tolist()

    queue = multiprocessing.Queue()
    server = multiprocessing.Process(
        target=_two_process_server, args=(queue, garbler)
    )
    server.start()
    try:
        port = queue.get(timeout=30)
        transport = SocketTransport.connect("127.0.0.1", port)
        session = ClientSession(
            net, params=PARAMS, garbler=garbler, seed=1, transport=transport
        )
        session.run_offline()
        logits = session.run_online(x)
        session.close()
    finally:
        server.join(timeout=60)
        if server.is_alive():  # pragma: no cover - cleanup on failure only
            server.terminate()
            server.join()
    assert server.exitcode == 0
    from repro.core.lowering import lower_network, plaintext_reference

    assert logits == plaintext_reference(lower_network(net, P), x)


class TestWireVersioning:
    """The transport framing contract: magic + version precede everything."""

    def test_version_mismatch_rejected_with_clear_error(self):
        from repro.network import serialize

        blob = serialize.serialize_field_vector([1, 2, 3], P)
        bumped = blob[:2] + bytes([serialize.WIRE_VERSION + 1]) + blob[3:]
        with pytest.raises(ValueError, match="version"):
            serialize.deserialize_field_vector(bumped)

    def test_bad_magic_rejected(self):
        from repro.network import serialize

        blob = serialize.serialize_field_vector([1], P)
        with pytest.raises(ValueError, match="magic"):
            serialize.deserialize_field_vector(b"XX" + blob[2:])

    def test_wrong_format_code_rejected(self):
        from repro.network import serialize

        blob = serialize.serialize_labels([b"x" * 16])
        with pytest.raises(ValueError, match="format"):
            serialize.deserialize_field_vector(blob)

    def test_session_rejects_mismatched_peer_version(self):
        """A version-skewed first message fails loudly, not mid-protocol."""
        from repro.network import serialize

        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
        net.randomize_weights(P, np.random.default_rng(0))
        proto = HybridProtocol(net, PARAMS, garbler="client", seed=1)
        proto.client.start_offline()
        proto.server.start_offline()
        assert proto.client.step() == WAITING  # pk + gk + first ct in flight
        frame = proto.server.transport.recv(wait=False)  # the public key
        skewed = frame[:2] + bytes([serialize.WIRE_VERSION + 9]) + frame[3:]
        # Re-inject the skewed frame at the front of the server's inbox.
        proto.server.transport._inbox.appendleft(skewed)
        with pytest.raises(ValueError, match="version"):
            proto.server.step()
        # A failed phase must never look finished: the generator is dead,
        # further steps are no-ops, and offline stays incomplete.
        assert proto.server.step() == DONE
        assert not proto.server.offline_done
        with pytest.raises(RuntimeError, match="offline phase must run"):
            proto.server.start_online()


class TestSessionLifecycle:
    """Connection/request split: sessions are explicit state machines that
    can be recycled for the next request with ``reset_for_request()``."""

    def _proto(self, seed=21):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=4)
        net.randomize_weights(P, np.random.default_rng(0))
        return HybridProtocol(net, PARAMS, garbler="client", seed=seed)

    def test_lifecycle_progression(self):
        from repro.core.session import (
            LIFE_COMPLETE,
            LIFE_NEW,
            LIFE_ONLINE,
            LIFE_READY,
        )

        proto = self._proto()
        assert proto.client.lifecycle == LIFE_NEW
        assert proto.server.lifecycle == LIFE_NEW
        proto.run_offline()
        assert proto.client.lifecycle == LIFE_READY
        assert proto.server.lifecycle == LIFE_READY
        proto.start_online([0] * 16)
        assert proto.client.lifecycle == LIFE_ONLINE
        assert proto.server.lifecycle == LIFE_ONLINE
        for _ in proto.drive_steps():
            pass
        logits = proto.client.finish()
        assert proto.client.lifecycle == LIFE_COMPLETE
        assert proto.server.lifecycle == LIFE_COMPLETE
        assert logits == proto.plaintext_reference([0] * 16)

    def test_reset_recycles_sessions_for_next_request(self):
        """One session pair, N requests: every request's logits match the
        plaintext reference and channel accounting keeps accumulating."""
        from repro.core.session import LIFE_NEW

        proto = self._proto()
        rng = np.random.default_rng(33)
        proto.run_offline()
        first_x = rng.integers(0, P, size=16).tolist()
        assert proto.run_online(first_x) == proto.plaintext_reference(first_x)
        bytes_after_first = proto.channel.total_bytes

        proto.reset_for_request()
        assert proto.client.lifecycle == LIFE_NEW
        assert proto.server.lifecycle == LIFE_NEW
        second_x = rng.integers(0, P, size=16).tolist()
        proto.run_offline()
        assert proto.run_online(second_x) == proto.plaintext_reference(second_x)
        # Same transport, same channel: the books span both requests.
        assert proto.channel.total_bytes > bytes_after_first

    def test_repeat_offline_without_reset_rejected(self):
        proto = self._proto()
        proto.run_offline()
        with pytest.raises(RuntimeError, match="reset_for_request"):
            proto.client.start_offline()

    def test_online_before_offline_rejected(self):
        proto = self._proto()
        with pytest.raises(RuntimeError, match="offline phase must run"):
            proto.client.start_online([0] * 16)

    def test_reset_mid_phase_rejected(self):
        proto = self._proto()
        proto.client.start_offline()
        proto.server.start_offline()
        proto.client.step()
        with pytest.raises(RuntimeError, match="phase is in progress"):
            proto.client.reset_for_request()

    def test_online_rerun_from_complete_without_full_reset(self):
        """COMPLETE -> start_online is legal: a stored precompute can be
        reloaded into the same session objects (the gateway's hit path
        after a recycle)."""
        proto = self._proto()
        proto.run_offline()
        x = [1] * 16
        logits = proto.run_online(x)
        assert logits == proto.plaintext_reference(x)
