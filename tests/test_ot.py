"""Tests for base OT and IKNP OT extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.network.channel import Channel
from repro.ot.base import BaseOtReceiver, BaseOtSender, run_base_ot
from repro.ot.extension import (
    KAPPA,
    base_ot_offline_bytes,
    iknp_transfer,
    ot_extension_online_bytes,
)


class TestBaseOt:
    def test_receiver_gets_chosen_message(self):
        pairs = [(b"zero" + bytes(12), b"one!" + bytes(12)) for _ in range(4)]
        choices = [0, 1, 1, 0]
        got = run_base_ot(pairs, choices, SecureRandom(1))
        for g, c, (m0, m1) in zip(got, choices, pairs):
            assert g == (m1 if c else m0)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_all_choice_patterns(self, choices):
        rnd = random.Random(42)
        pairs = [(rnd.randbytes(16), rnd.randbytes(16)) for _ in choices]
        got = run_base_ot(pairs, choices, SecureRandom(2))
        for g, c, (m0, m1) in zip(got, choices, pairs):
            assert g == (m1 if c else m0)

    def test_variable_message_lengths(self):
        pairs = [(b"a" * 5, b"b" * 5), (b"c" * 100, b"d" * 100)]
        got = run_base_ot(pairs, [1, 0], SecureRandom(3))
        assert got == [b"b" * 5, b"c" * 100]

    def test_sender_point_count_validation(self):
        sender = BaseOtSender(SecureRandom(4))
        with pytest.raises(ValueError):
            sender.encrypt([1, 2], [(b"x" * 16, b"y" * 16)])

    def test_unchosen_message_stays_hidden(self):
        """Decrypting the wrong slot must NOT give the other message."""
        pairs = [(b"m0" + bytes(14), b"m1" + bytes(14))]
        sender = BaseOtSender(SecureRandom(5))
        receiver = BaseOtReceiver([0], SecureRandom(6))
        points = receiver.points(sender.public)
        cts = sender.encrypt(points, pairs)
        # Receiver key only opens slot 0; slot 1 under the same key is junk.
        wrong = BaseOtReceiver([1], SecureRandom(6))
        garbage = wrong.decrypt(sender.public, cts)
        assert garbage[0] != pairs[0][1]

    def test_channel_accounting(self):
        channel = Channel()
        pairs = [(b"x" * 16, b"y" * 16)] * 3
        run_base_ot(pairs, [0, 1, 0], SecureRandom(7), channel=channel)
        assert channel.total_bytes > 0
        assert channel.uplink.bytes > 0  # receiver points
        assert channel.downlink.bytes > 0  # public key + ciphertexts


class TestIknpExtension:
    def test_correctness_bulk(self):
        rnd = random.Random(0)
        n = 200
        pairs = [(rnd.randbytes(16), rnd.randbytes(16)) for _ in range(n)]
        choices = [rnd.getrandbits(1) for _ in range(n)]
        got, transcript = iknp_transfer(pairs, choices, SecureRandom(8))
        for g, c, (m0, m1) in zip(got, choices, pairs):
            assert g == (m1 if c else m0)
        assert transcript.total_bytes > 0

    def test_empty_batch(self):
        got, transcript = iknp_transfer([], [], SecureRandom(9))
        assert got == []
        assert transcript.total_bytes == 0

    def test_single_ot(self):
        got, _ = iknp_transfer([(b"A" * 16, b"B" * 16)], [1], SecureRandom(10))
        assert got == [b"B" * 16]

    def test_all_zero_choices(self):
        pairs = [(bytes([i] * 16), bytes([255 - i] * 16)) for i in range(50)]
        got, _ = iknp_transfer(pairs, [0] * 50, SecureRandom(11))
        assert got == [p[0] for p in pairs]

    def test_all_one_choices(self):
        pairs = [(bytes([i] * 16), bytes([255 - i] * 16)) for i in range(50)]
        got, _ = iknp_transfer(pairs, [1] * 50, SecureRandom(12))
        assert got == [p[1] for p in pairs]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            iknp_transfer([(b"x" * 16, b"y" * 16)], [0, 1])

    def test_ragged_messages_rejected(self):
        with pytest.raises(ValueError):
            iknp_transfer([(b"x" * 16, b"y" * 8)], [0])

    def test_longer_messages(self):
        rnd = random.Random(1)
        pairs = [(rnd.randbytes(48), rnd.randbytes(48)) for _ in range(10)]
        choices = [rnd.getrandbits(1) for _ in range(10)]
        got, _ = iknp_transfer(pairs, choices, SecureRandom(13))
        for g, c, (m0, m1) in zip(got, choices, pairs):
            assert g == (m1 if c else m0)


class TestCommunicationModel:
    def test_online_bytes_scale_linearly(self):
        one = ot_extension_online_bytes(1000)
        two = ot_extension_online_bytes(2000)
        assert 1.9 < two / one < 2.1

    def test_online_bytes_formula(self):
        n = 800
        assert ot_extension_online_bytes(n) == KAPPA * (n // 8) + 2 * n * 16

    def test_base_ot_offline_constant(self):
        assert base_ot_offline_bytes() == 32 + KAPPA * 32 + 2 * KAPPA * 16

    def test_transcript_matches_model(self):
        """Measured transcript of the real protocol tracks the analytic model."""
        rnd = random.Random(2)
        n = 256
        pairs = [(rnd.randbytes(16), rnd.randbytes(16)) for _ in range(n)]
        choices = [rnd.getrandbits(1) for _ in range(n)]
        _, transcript = iknp_transfer(pairs, choices, SecureRandom(14))
        model = ot_extension_online_bytes(n)
        measured = transcript.column_bytes + transcript.ciphertext_bytes
        assert measured == model
