"""Tests for the BFV scheme: correctness, homomorphism, noise, rotations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import BfvParams, delphi_params, toy_params
from repro.he.polynomial import RingPoly


@pytest.fixture(scope="module")
def setup():
    params = toy_params(n=128)
    ctx = BfvContext(params, SecureRandom(42))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    return params, ctx, encoder, sk, pk


class TestParams:
    def test_toy_params_valid(self):
        p = toy_params(n=128)
        assert (p.q - 1) % (2 * p.n) == 0
        assert (p.t - 1) % (2 * p.n) == 0

    def test_delta(self):
        p = toy_params(n=128)
        assert p.delta == p.q // p.t

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            BfvParams(n=100, q=401, t=11)

    def test_t_not_below_q_rejected(self):
        p = toy_params(n=128)
        with pytest.raises(ValueError):
            BfvParams(n=p.n, q=p.t, t=p.q)

    def test_ciphertext_bytes(self):
        p = toy_params(n=128)
        assert p.ciphertext_bytes == 2 * 128 * ((p.q_bits + 7) // 8)

    def test_delphi_params_shape(self):
        p = delphi_params()
        assert p.n == 2048
        assert p.t.bit_length() == 41
        # SEAL-style ~180-bit RNS chain: six distinct 30-bit NTT primes.
        assert p.q.bit_length() == 180
        assert len(p.rns_primes) == 6
        assert len(set(p.rns_primes)) == 6
        product = 1
        for prime in p.rns_primes:
            assert prime.bit_length() == 30
            assert prime < 1 << 31
            assert (prime - 1) % (2 * p.n) == 0
            product *= prime
        assert product == p.q

    def test_toy_params_carry_rns_chain(self):
        p = toy_params(n=128)
        assert p.rns_primes is not None
        product = 1
        for prime in p.rns_primes:
            assert (prime - 1) % (2 * p.n) == 0
            product *= prime
        assert product == p.q
        assert p.resolve_representation() in ("bigint", "rns")


class TestEncryptDecrypt:
    def test_roundtrip(self, setup):
        params, ctx, encoder, sk, pk = setup
        values = list(range(50))
        ct = ctx.encrypt(pk, encoder.encode(values))
        assert encoder.decode(ctx.decrypt(sk, ct))[:50] == values

    @given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=64))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, setup, values):
        params, ctx, encoder, sk, pk = setup
        values = [v % params.t for v in values]
        ct = ctx.encrypt(pk, encoder.encode(values))
        assert encoder.decode(ctx.decrypt(sk, ct))[: len(values)] == values

    def test_fresh_ciphertext_has_budget(self, setup):
        params, ctx, encoder, sk, pk = setup
        ct = ctx.encrypt(pk, encoder.encode([1, 2, 3]))
        assert ctx.noise_budget_bits(sk, ct) > 40

    def test_unreduced_plaintext_rejected(self, setup):
        params, ctx, encoder, sk, pk = setup
        bad = RingPoly([params.t] + [0] * (params.n - 1), params.t + 1)
        with pytest.raises(ValueError):
            ctx.encrypt(pk, bad)

    def test_wrong_degree_rejected(self, setup):
        params, ctx, encoder, sk, pk = setup
        bad = RingPoly([1] * (params.n // 2), params.t)
        with pytest.raises(ValueError):
            ctx.encrypt(pk, bad)


class TestHomomorphism:
    def test_ciphertext_addition(self, setup):
        params, ctx, encoder, sk, pk = setup
        a, b = [5, 10, 15], [1, 2, 3]
        ct = ctx.encrypt(pk, encoder.encode(a)) + ctx.encrypt(pk, encoder.encode(b))
        assert encoder.decode(ctx.decrypt(sk, ct))[:3] == [6, 12, 18]

    def test_ciphertext_subtraction(self, setup):
        params, ctx, encoder, sk, pk = setup
        a, b = [5, 10, 15], [1, 2, 3]
        ct = ctx.encrypt(pk, encoder.encode(a)) - ctx.encrypt(pk, encoder.encode(b))
        assert encoder.decode(ctx.decrypt(sk, ct))[:3] == [4, 8, 12]

    def test_negation(self, setup):
        params, ctx, encoder, sk, pk = setup
        ct = -ctx.encrypt(pk, encoder.encode([7]))
        assert encoder.decode(ctx.decrypt(sk, ct))[0] == params.t - 7

    def test_add_plain(self, setup):
        params, ctx, encoder, sk, pk = setup
        ct = ctx.add_plain(ctx.encrypt(pk, encoder.encode([5])), encoder.encode([3]))
        assert encoder.decode(ctx.decrypt(sk, ct))[0] == 8

    def test_sub_plain(self, setup):
        params, ctx, encoder, sk, pk = setup
        ct = ctx.sub_plain(ctx.encrypt(pk, encoder.encode([5])), encoder.encode([3]))
        assert encoder.decode(ctx.decrypt(sk, ct))[0] == 2

    def test_mul_plain(self, setup):
        params, ctx, encoder, sk, pk = setup
        values = [1, 2, 3, 4]
        weights = [9, 8, 7, 6]
        ct = ctx.mul_plain(
            ctx.encrypt(pk, encoder.encode(values)),
            encoder.encode(weights + [0] * (params.n - 4)),
        )
        decoded = encoder.decode(ctx.decrypt(sk, ct))[:4]
        assert decoded == [v * w % params.t for v, w in zip(values, weights)]

    @given(
        st.integers(min_value=0, max_value=2**17 - 1),
        st.integers(min_value=0, max_value=2**17 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_mul_plain_property(self, setup, a, b):
        params, ctx, encoder, sk, pk = setup
        a, b = a % params.t, b % params.t
        ct = ctx.mul_plain(ctx.encrypt(pk, encoder.encode([a])), encoder.encode([b] * params.n))
        assert encoder.decode(ctx.decrypt(sk, ct))[0] == a * b % params.t

    def test_wrap_around_modulus(self, setup):
        params, ctx, encoder, sk, pk = setup
        v = params.t - 1
        ct = ctx.add_plain(ctx.encrypt(pk, encoder.encode([v])), encoder.encode([2]))
        assert encoder.decode(ctx.decrypt(sk, ct))[0] == 1


class TestRotations:
    def test_rotate_by_one(self, setup):
        params, ctx, encoder, sk, pk = setup
        row = params.row_size
        values = list(range(row)) * 2
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        ct = ctx.rotate(ctx.encrypt(pk, encoder.encode(values)), g, gk)
        decoded = encoder.decode(ctx.decrypt(sk, ct))
        assert decoded[:row] == [(i + 1) % row for i in range(row)]

    def test_rotate_rows_independently(self, setup):
        params, ctx, encoder, sk, pk = setup
        row = params.row_size
        values = [1] * row + [2] * row
        g = encoder.galois_element_for_rotation(3)
        gk = ctx.galois_keygen(sk, [g])
        ct = ctx.rotate(ctx.encrypt(pk, encoder.encode(values)), g, gk)
        decoded = encoder.decode(ctx.decrypt(sk, ct))
        assert decoded[:row] == [1] * row
        assert decoded[row:] == [2] * row

    def test_missing_galois_key_raises(self, setup):
        params, ctx, encoder, sk, pk = setup
        gk = ctx.galois_keygen(sk, [encoder.galois_element_for_rotation(1)])
        ct = ctx.encrypt(pk, encoder.encode([1]))
        with pytest.raises(KeyError):
            ctx.rotate(ct, encoder.galois_element_for_rotation(2), gk)

    def test_full_row_rotation_is_identity(self, setup):
        params, ctx, encoder, sk, pk = setup
        row = params.row_size
        values = list(range(row)) * 2
        ct = ctx.encrypt(pk, encoder.encode(values))
        g1 = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g1])
        for _ in range(row):
            ct = ctx.rotate(ct, g1, gk)
        assert encoder.decode(ctx.decrypt(sk, ct)) == values

    def test_row_swap(self, setup):
        params, ctx, encoder, sk, pk = setup
        row = params.row_size
        values = [1] * row + [2] * row
        g = encoder.galois_element_for_row_swap()
        gk = ctx.galois_keygen(sk, [g])
        ct = ctx.rotate(ctx.encrypt(pk, encoder.encode(values)), g, gk)
        decoded = encoder.decode(ctx.decrypt(sk, ct))
        assert decoded[:row] == [2] * row
        assert decoded[row:] == [1] * row
