"""Concurrent serving gateway: correctness under real concurrency.

The gateway multiplexes many live client sockets on one selector thread
while refill mints run through the pool's async surface — none of which
may change a single output bit. These tests pin that down:

* logits served concurrently are byte-identical to per-client sequential
  reference runs (same mint seeds), with full hit rate and the same mint
  count as the serialized drain;
* under a byte budget tight enough to evict, misses demand-run the
  offline phase over the wire and still match the plaintext oracle;
* forked OS-process clients (nothing shared but the socket) verify their
  logits and exit clean;
* a client that dies mid-protocol is dropped without disturbing the
  other live sessions;
* on a multi-core host, concurrent serving beats the serialized drain on
  ``throughput_rps`` (the whole point of the overlap).
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro import HybridProtocol, tiny_dataset, tiny_mlp
from repro.core.lowering import lower_network, plaintext_reference
from repro.he.params import fast_params
from repro.network.transport import SocketTransport
from repro.runtime import (
    PrecomputePool,
    PrecomputeStore,
    ServingGateway,
    ServingLoop,
    request_inference,
)
from repro.runtime.gateway import (
    decode_hello,
    decode_offer,
    encode_hello,
    encode_offer,
    pick_refill_client,
)

PARAMS = fast_params(n=256)


def _network(hidden=8):
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=hidden)
    network.randomize_weights(PARAMS.t, np.random.default_rng(0))
    return network


# -- wire codecs and refill policy ----------------------------------------------


def test_gateway_wire_codecs_roundtrip():
    assert decode_hello(encode_hello("client7", 3)) == ("client7", 3)
    assert decode_hello(encode_hello("", 0)) == ("", 0)
    hit, blob = decode_offer(encode_offer(True, b"precompute-bytes"))
    assert hit and blob == b"precompute-bytes"
    hit, blob = decode_offer(encode_offer(False))
    assert not hit and blob == b""
    from repro.network.transport import TransportError

    with pytest.raises(TransportError):
        decode_hello(encode_offer(True, b"x"))
    with pytest.raises(TransportError):
        decode_offer(encode_hello("client0", 0))


def test_pick_refill_client_prefers_earliest_miss():
    # Client 1 drains fastest relative to its buffer: it misses first.
    assert pick_refill_client([1, 1, 1], [2.0, 1.0, 4.0], [1.0, 2.0, 1.0]) == 1
    # Only credited clients are eligible.
    assert pick_refill_client([0, 1, 0], [2.0, 9.0, 0.0], [5.0, 0.1, 5.0]) == 1
    # Never-consuming clients (rate 0) rank last, tie-broken by buffer.
    assert pick_refill_client([1, 1], [3.0, 1.0], [0.0, 0.0]) == 1
    # No credits anywhere: nothing to refill.
    assert pick_refill_client([0, 0], [1.0, 1.0], [1.0, 1.0]) is None


# -- concurrent serving correctness ---------------------------------------------


def test_concurrent_serving_matches_sequential_reference(tmp_path):
    """3 clients x 2 requests through the gateway: logits byte-identical
    to per-client sequential mint-then-serve runs, full hit rate, and the
    same number of mints as the serialized drain would perform."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 3, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(2)
        report = loop.run(2, inputs=inputs)

    assert report.concurrent
    assert len(report.requests) == 6
    assert report.hit_rate == 1.0  # ample budget: no request paid a miss
    assert report.demand_mints == 0
    assert report.minted == 6  # prefill + refills == the serialized count
    assert report.dropped_sessions == 0
    assert report.peak_live_sessions >= 1
    assert loop.minted == [2, 2, 2]
    for request in report.requests:
        c = int(request.client[len("client"):])
        sequential = HybridProtocol(
            network, PARAMS, garbler="client",
            seed=loop.mint_seed(c, request.index),
        )
        sequential.run_offline()
        assert request.logits == sequential.run_online(inputs[c][request.index])

    summary = report.summary()
    assert summary["concurrent"] is True
    for key in ("refill_overlap_seconds", "peak_live_sessions",
                "dropped_sessions"):
        assert key in summary
    import json

    json.dumps(summary)  # must stay uploadable by the CI smoke job


def test_concurrent_serving_under_eviction_pressure(tmp_path):
    """A budget that can't hold every client's precompute: admissions
    evict, evicted clients demand-run the offline phase over the wire,
    and every logit vector still matches the plaintext oracle."""
    network = _network()
    store = PrecomputeStore(tmp_path, byte_budget=200_000)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 3, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(2)
        report = loop.run(2, inputs=inputs)

    assert len(report.requests) == 6
    assert report.evictions > 0  # the budget actually bit
    assert store.total_bytes <= 200_000  # never exceeded
    lowered = lower_network(network, PARAMS.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )


# -- forked OS-process clients ---------------------------------------------------


def _forked_client_main(port, client_index, requests):
    """Child process: request inferences and verify logits, or exit 1."""
    from repro.runtime.gateway import request_inference

    network = _network()
    oracle = lower_network(network, PARAMS.t)
    shape = lower_network(network, PARAMS.t, shape_only=True)
    rng = np.random.default_rng(900 + client_index)
    for j in range(requests):
        x = rng.integers(0, PARAMS.t, size=16).tolist()
        logits = request_inference(
            "127.0.0.1", port, network, PARAMS, x, garbler="client",
            client_id=f"client{client_index}", request_index=j, lowered=shape,
        )
        assert logits == plaintext_reference(oracle, x)


def test_gateway_serves_forked_client_processes(tmp_path):
    """N real OS processes against one gateway: nothing shared but TCP."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    clients, requests = 2, 1
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, clients, store, pool=pool, garbler="client",
            expected_per_client=requests,
        )
        gateway.start()
        procs = [
            multiprocessing.Process(
                target=_forked_client_main, args=(gateway.port, c, requests)
            )
            for c in range(clients)
        ]
        try:
            for p in procs:
                p.start()
            gateway.serve(clients * requests, timeout=300.0)
            for p in procs:
                p.join(timeout=60)
            gateway.check_refills()
        finally:
            gateway.stop()
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join()
    assert [p.exitcode for p in procs] == [0] * clients
    report = gateway.report()
    assert len(report.requests) == clients * requests
    assert report.hit_rate == 1.0
    assert report.dropped_sessions == 0
    served = {(r.client, r.index) for r in report.requests}
    assert served == {(f"client{c}", j) for c in range(clients)
                      for j in range(requests)}


# -- failure isolation -----------------------------------------------------------


def test_gateway_drops_dead_client_without_disturbing_others(tmp_path):
    """A client that vanishes mid-protocol costs exactly its own session."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 2, store, pool=pool, garbler="client",
            expected_per_client=1,
        )
        gateway.start()
        survivor_logits = []
        errors = []

        def victim():
            # Handshake through the offer — a hit consumes client1's
            # precompute — then die without ever starting the online phase.
            try:
                transport = SocketTransport.connect(
                    "127.0.0.1", gateway.port, retries=5
                )
                transport.send(encode_hello("client1", 0))
                hit, _ = decode_offer(transport.recv(wait=True))
                assert hit
                transport._sock.close()  # abrupt death, no clean close
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        def survivor():
            try:
                x = list(range(16))
                survivor_logits.append(
                    request_inference(
                        "127.0.0.1", gateway.port, network, PARAMS, x,
                        garbler="client", client_id="client0",
                    )
                )
            except BaseException as exc:
                errors.append(exc)

        try:
            victim_thread = threading.Thread(target=victim, daemon=True)
            victim_thread.start()
            survivor_thread = threading.Thread(target=survivor, daemon=True)
            survivor_thread.start()
            gateway.serve(1, timeout=300.0)
            # The victim's death is observed asynchronously; keep polling
            # until the gateway notices and drops it.
            deadline = time.monotonic() + 60
            while gateway.dropped_sessions < 1:
                assert time.monotonic() < deadline
                gateway.poll(0.05)
            victim_thread.join(timeout=60)
            survivor_thread.join(timeout=60)
        finally:
            gateway.stop()

    assert errors == []
    assert gateway.dropped_sessions == 1
    report = gateway.report()
    assert len(report.requests) == 1  # only the survivor completed
    assert report.requests[0].client == "client0"
    oracle = lower_network(network, PARAMS.t)
    assert survivor_logits == [plaintext_reference(oracle, list(range(16)))]


# -- wall-clock overlap ----------------------------------------------------------


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wall-clock overlap needs at least two cores",
)
def test_concurrent_throughput_beats_serialized(tmp_path):
    """With refill mints in worker processes, the drain window must shrink
    versus the serialized mint-then-serve schedule on the same pool."""
    network = _network()
    reports = {}
    for mode in ("serialized", "concurrent"):
        store = PrecomputeStore(tmp_path / mode)
        with PrecomputePool(workers=2, min_shard=4) as pool:
            loop = ServingLoop(
                network, PARAMS, 3, store, pool=pool, garbler="client",
                concurrent=(mode == "concurrent"),
            )
            inputs = loop.draw_inputs(2)
            reports[mode] = loop.run(2, inputs=inputs)

    serialized, concurrent = reports["serialized"], reports["concurrent"]
    assert {tuple(r.logits) for r in concurrent.requests} == {
        tuple(r.logits) for r in serialized.requests
    }
    assert concurrent.refill_overlap_seconds > 0.0
    assert concurrent.throughput_rps > serialized.throughput_rps, (
        f"concurrent {concurrent.throughput_rps:.2f} req/s did not beat "
        f"serialized {serialized.throughput_rps:.2f} req/s"
    )
