"""Concurrent serving gateway: correctness under real concurrency.

The gateway multiplexes many live client sockets on one selector thread
while refill mints run through the pool's async surface — none of which
may change a single output bit. These tests pin that down:

* logits served concurrently are byte-identical to per-client sequential
  reference runs (same mint seeds), with full hit rate and the same mint
  count as the serialized drain;
* under a byte budget tight enough to evict, misses demand-run the
  offline phase over the wire and still match the plaintext oracle;
* forked OS-process clients (nothing shared but the socket) verify their
  logits and exit clean;
* a client that dies mid-protocol is dropped without disturbing the
  other live sessions;
* on a multi-core host, concurrent serving beats the serialized drain on
  ``throughput_rps`` (the whole point of the overlap).
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro import HybridProtocol, tiny_dataset, tiny_mlp
from repro.core.lowering import lower_network, plaintext_reference
from repro.he.params import fast_params
from repro.network.transport import SocketTransport
from repro.runtime import (
    PrecomputePool,
    PrecomputeStore,
    ServingGateway,
    ServingLoop,
    request_inference,
)
from repro.runtime.gateway import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_WAIT_SECONDS,
    MAX_RETRY_AFTER,
    GatewayClient,
    adaptive_retry_after,
    decode_busy,
    decode_done,
    decode_goaway,
    decode_hello,
    decode_offer,
    decode_request,
    encode_busy,
    encode_done,
    encode_goaway,
    encode_hello,
    encode_offer,
    encode_request,
    pick_refill_client,
    resolve_max_queue,
    resolve_wait_seconds,
)

PARAMS = fast_params(n=256)


def _network(hidden=8):
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=hidden)
    network.randomize_weights(PARAMS.t, np.random.default_rng(0))
    return network


# -- wire codecs and refill policy ----------------------------------------------


def test_gateway_wire_codecs_roundtrip():
    assert decode_hello(encode_hello("client7")) == "client7"
    assert decode_hello(encode_hello("")) == ""
    assert decode_request(encode_request(3)) == 3
    assert decode_request(encode_request(0)) == 0
    hit, blob = decode_offer(encode_offer(True, b"precompute-bytes"))
    assert hit and blob == b"precompute-bytes"
    hit, blob = decode_offer(encode_offer(False))
    assert not hit and blob == b""
    assert decode_done(encode_done(7, True)) == (7, True)
    assert decode_done(encode_done(0, False)) == (0, False)
    assert decode_busy(encode_busy(0.25)) == 0.25
    assert decode_busy(encode_busy(-1.0)) == 0.0  # clamped on encode
    assert decode_goaway(encode_goaway("backlog over max_queue")) == (
        "backlog over max_queue"
    )
    assert decode_goaway(encode_goaway()) == ""
    from repro.network.transport import TransportError

    with pytest.raises(TransportError):
        decode_hello(encode_offer(True, b"x"))
    with pytest.raises(TransportError):
        decode_offer(encode_hello("client0"))
    with pytest.raises(TransportError):
        decode_request(encode_done(0, False))
    with pytest.raises(TransportError):
        decode_busy(encode_goaway("nope"))


def test_gateway_rejects_legacy_single_request_hello():
    """A GWH1 peer gets a targeted error, not a generic frame mismatch."""
    from repro.network.transport import TransportError

    legacy = b"GWH1" + b"client0" + b"\x00\x00\x00\x00"
    with pytest.raises(TransportError, match="GWH2 keep-alive"):
        decode_hello(legacy)


def test_admission_knob_resolution(monkeypatch):
    """Explicit > environment > default, warning on unparseable env."""
    monkeypatch.delenv("REPRO_GATEWAY_WAIT_S", raising=False)
    monkeypatch.delenv("REPRO_GATEWAY_MAX_QUEUE", raising=False)
    assert resolve_wait_seconds() == DEFAULT_WAIT_SECONDS
    assert resolve_max_queue() == DEFAULT_MAX_QUEUE
    assert resolve_wait_seconds(2.5) == 2.5
    assert resolve_max_queue(3) == 3

    monkeypatch.setenv("REPRO_GATEWAY_WAIT_S", "7.5")
    monkeypatch.setenv("REPRO_GATEWAY_MAX_QUEUE", "12")
    assert resolve_wait_seconds() == 7.5
    assert resolve_max_queue() == 12
    # Explicit still wins over the environment.
    assert resolve_wait_seconds(1.0) == 1.0
    assert resolve_max_queue(1) == 1

    monkeypatch.setenv("REPRO_GATEWAY_WAIT_S", "soon")
    monkeypatch.setenv("REPRO_GATEWAY_MAX_QUEUE", "lots")
    with pytest.warns(RuntimeWarning, match="REPRO_GATEWAY_WAIT_S"):
        assert resolve_wait_seconds() == DEFAULT_WAIT_SECONDS
    with pytest.warns(RuntimeWarning, match="REPRO_GATEWAY_MAX_QUEUE"):
        assert resolve_max_queue() == DEFAULT_MAX_QUEUE


def test_pick_refill_client_prefers_earliest_miss():
    # Client 1 drains fastest relative to its buffer: it misses first.
    assert pick_refill_client([1, 1, 1], [2.0, 1.0, 4.0], [1.0, 2.0, 1.0]) == 1
    # Only credited clients are eligible.
    assert pick_refill_client([0, 1, 0], [2.0, 9.0, 0.0], [5.0, 0.1, 5.0]) == 1
    # Never-consuming clients (rate 0) rank last, tie-broken by buffer.
    assert pick_refill_client([1, 1], [3.0, 1.0], [0.0, 0.0]) == 1
    # No credits anywhere: nothing to refill.
    assert pick_refill_client([0, 0], [1.0, 1.0], [1.0, 1.0]) is None


# -- concurrent serving correctness ---------------------------------------------


def test_concurrent_serving_matches_sequential_reference(tmp_path):
    """3 clients x 2 requests through the gateway: logits byte-identical
    to per-client sequential mint-then-serve runs, full hit rate, and the
    same number of mints as the serialized drain would perform."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 3, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(2)
        report = loop.run(2, inputs=inputs)

    assert report.concurrent
    assert len(report.requests) == 6
    assert report.hit_rate == 1.0  # ample budget: no request paid a miss
    assert report.demand_mints == 0
    assert report.minted == 6  # prefill + refills == the serialized count
    assert report.dropped_sessions == 0
    assert report.peak_live_sessions >= 1
    assert loop.minted == [2, 2, 2]
    for request in report.requests:
        c = int(request.client[len("client"):])
        sequential = HybridProtocol(
            network, PARAMS, garbler="client",
            seed=loop.mint_seed(c, request.index),
        )
        sequential.run_offline()
        assert request.logits == sequential.run_online(inputs[c][request.index])

    summary = report.summary()
    assert summary["concurrent"] is True
    for key in ("refill_overlap_seconds", "peak_live_sessions",
                "dropped_sessions"):
        assert key in summary
    import json

    json.dumps(summary)  # must stay uploadable by the CI smoke job


def test_concurrent_serving_under_eviction_pressure(tmp_path):
    """A budget that can't hold every client's precompute: admissions
    evict, evicted clients demand-run the offline phase over the wire,
    and every logit vector still matches the plaintext oracle."""
    network = _network()
    store = PrecomputeStore(tmp_path, byte_budget=200_000)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 3, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(2)
        report = loop.run(2, inputs=inputs)

    assert len(report.requests) == 6
    assert report.evictions > 0  # the budget actually bit
    assert store.total_bytes <= 200_000  # never exceeded
    lowered = lower_network(network, PARAMS.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )


# -- forked OS-process clients ---------------------------------------------------


def _forked_client_main(port, client_index, requests):
    """Child process: request inferences and verify logits, or exit 1."""
    from repro.runtime.gateway import request_inference

    network = _network()
    oracle = lower_network(network, PARAMS.t)
    shape = lower_network(network, PARAMS.t, shape_only=True)
    rng = np.random.default_rng(900 + client_index)
    for j in range(requests):
        x = rng.integers(0, PARAMS.t, size=16).tolist()
        logits = request_inference(
            "127.0.0.1", port, network, PARAMS, x, garbler="client",
            client_id=f"client{client_index}", request_index=j, lowered=shape,
        )
        assert logits == plaintext_reference(oracle, x)


def test_gateway_serves_forked_client_processes(tmp_path):
    """N real OS processes against one gateway: nothing shared but TCP."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    clients, requests = 2, 1
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, clients, store, pool=pool, garbler="client",
            expected_per_client=requests,
        )
        gateway.start()
        procs = [
            multiprocessing.Process(
                target=_forked_client_main, args=(gateway.port, c, requests)
            )
            for c in range(clients)
        ]
        try:
            for p in procs:
                p.start()
            gateway.serve(clients * requests, timeout=300.0)
            for p in procs:
                p.join(timeout=60)
            gateway.check_refills()
        finally:
            gateway.stop()
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join()
    assert [p.exitcode for p in procs] == [0] * clients
    report = gateway.report()
    assert len(report.requests) == clients * requests
    assert report.hit_rate == 1.0
    assert report.dropped_sessions == 0
    served = {(r.client, r.index) for r in report.requests}
    assert served == {(f"client{c}", j) for c in range(clients)
                      for j in range(requests)}


# -- failure isolation -----------------------------------------------------------


def test_gateway_drops_dead_client_without_disturbing_others(tmp_path):
    """A client that vanishes mid-protocol costs exactly its own session."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 2, store, pool=pool, garbler="client",
            expected_per_client=1,
        )
        gateway.start()
        survivor_logits = []
        errors = []

        def victim():
            # Handshake through the offer — a hit consumes client1's
            # precompute — then die without ever starting the online phase.
            try:
                transport = SocketTransport.connect(
                    "127.0.0.1", gateway.port, retries=5
                )
                transport.send(encode_hello("client1"))
                transport.send(encode_request(0))
                hit, _ = decode_offer(transport.recv(wait=True))
                assert hit
                transport._sock.close()  # abrupt death, no clean close
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        def survivor():
            try:
                x = list(range(16))
                survivor_logits.append(
                    request_inference(
                        "127.0.0.1", gateway.port, network, PARAMS, x,
                        garbler="client", client_id="client0",
                    )
                )
            except BaseException as exc:
                errors.append(exc)

        try:
            victim_thread = threading.Thread(target=victim, daemon=True)
            victim_thread.start()
            survivor_thread = threading.Thread(target=survivor, daemon=True)
            survivor_thread.start()
            gateway.serve(1, timeout=300.0)
            # The victim's death is observed asynchronously; keep polling
            # until the gateway notices and drops it.
            deadline = time.monotonic() + 60
            while gateway.dropped_sessions < 1:
                assert time.monotonic() < deadline
                gateway.poll(0.05)
            victim_thread.join(timeout=60)
            survivor_thread.join(timeout=60)
        finally:
            gateway.stop()

    assert errors == []
    assert gateway.dropped_sessions == 1
    report = gateway.report()
    assert len(report.requests) == 1  # only the survivor completed
    assert report.requests[0].client == "client0"
    oracle = lower_network(network, PARAMS.t)
    assert survivor_logits == [plaintext_reference(oracle, list(range(16)))]


# -- wall-clock overlap ----------------------------------------------------------


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wall-clock overlap needs at least two cores",
)
def test_concurrent_throughput_beats_serialized(tmp_path):
    """With refill mints in worker processes, the drain window must shrink
    versus the serialized mint-then-serve schedule on the same pool."""
    network = _network()
    reports = {}
    for mode in ("serialized", "concurrent"):
        store = PrecomputeStore(tmp_path / mode)
        with PrecomputePool(workers=2, min_shard=4) as pool:
            loop = ServingLoop(
                network, PARAMS, 3, store, pool=pool, garbler="client",
                concurrent=(mode == "concurrent"),
            )
            inputs = loop.draw_inputs(2)
            reports[mode] = loop.run(2, inputs=inputs)

    serialized, concurrent = reports["serialized"], reports["concurrent"]
    assert {tuple(r.logits) for r in concurrent.requests} == {
        tuple(r.logits) for r in serialized.requests
    }
    assert concurrent.refill_overlap_seconds > 0.0
    assert concurrent.throughput_rps > serialized.throughput_rps, (
        f"concurrent {concurrent.throughput_rps:.2f} req/s did not beat "
        f"serialized {serialized.throughput_rps:.2f} req/s"
    )


# -- keep-alive connections and admission -----------------------------------------


def test_keepalive_connections_serve_many_requests(tmp_path):
    """4 clients x 4 requests over exactly 4 connections.

    Each serving driver opens ONE keep-alive connection and issues all of
    its requests over it (``connections_accepted == num_clients``, not
    ``num_requests``), every logit vector matches the plaintext oracle —
    plus a full sequential protocol reference per client — and the
    admission ledger balances."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 4, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(4)
        report = loop.run(4, inputs=inputs)

    assert len(report.requests) == 16
    assert report.connections_accepted == 4  # one socket per client, reused
    assert report.requests_admitted == 16
    assert report.requests_rejected == 0
    assert (
        report.requests_admitted
        + report.requests_deferred
        + report.requests_rejected
        == report.requests_issued
    )
    assert report.dropped_sessions == 0
    per_client: dict = {}
    for request in report.requests:
        per_client.setdefault(request.client, []).append(request.index)
    assert all(sorted(v) == [0, 1, 2, 3] for v in per_client.values())
    lowered = lower_network(network, PARAMS.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )
    # One full sequential protocol reference per client (logits are
    # seed-independent, so the reference seed does not matter).
    for c in range(4):
        request = next(
            r for r in report.requests
            if r.client == f"client{c}" and r.index == 0
        )
        sequential = HybridProtocol(
            network, PARAMS, garbler="client", seed=loop.mint_seed(c, 0),
        )
        sequential.run_offline()
        assert request.logits == sequential.run_online(inputs[c][0])

    summary = report.summary()
    assert summary["connections_accepted"] == 4
    assert summary["requests_issued"] == summary["requests_admitted"] + (
        summary["requests_deferred"] + summary["requests_rejected"]
    )


def test_gateway_saturation_defers_and_recovers(tmp_path):
    """``max_queue=0``: any REQ arriving while refill work is in flight
    is answered BUSY; keep-alive clients back off and retry, every
    request still completes with oracle-clean logits, and the admission
    ledger balances with non-zero deferrals."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 3, store, pool=pool, garbler="client",
            concurrent=True, gateway_max_queue=0,
        )
        inputs = loop.draw_inputs(2)
        report = loop.run(2, inputs=inputs)

    assert len(report.requests) == 6
    assert report.requests_deferred > 0  # the threshold actually bit
    assert report.requests_rejected == 0  # deferral cap is unlimited here
    assert report.requests_admitted == 6
    assert (
        report.requests_admitted
        + report.requests_deferred
        + report.requests_rejected
        == report.requests_issued
    )
    lowered = lower_network(network, PARAMS.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )


def _pump_for_frame(gateway, transport, timeout=30.0):
    """Poll the gateway's selector until the client socket yields a frame."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        gateway.poll(0.05)
        frame = transport.recv(wait=False)
        if frame is not None:
            return frame
    raise AssertionError("no frame from gateway within timeout")


def test_gateway_busy_then_goaway_raw_frames(tmp_path):
    """Raw admission wire semantics, single-threaded: a REQ over the
    backlog threshold gets BUSY carrying the configured retry-after, and
    blowing the deferral cap gets GOAWAY with a reason."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 1, store, pool=pool, garbler="client",
            prefill=0, refill=False, max_queue=0, max_request_deferrals=1,
            busy_retry_after=0.01,
        )
        gateway.start()
        try:
            # Fake an in-flight mint backlog so admission must defer.
            with gateway._state_lock:
                gateway._pending_mints[0] = 3
            transport = SocketTransport.connect(
                "127.0.0.1", gateway.port, retries=5
            )
            transport.send(encode_hello("client0"))
            transport.send(encode_request(0))
            assert decode_busy(_pump_for_frame(gateway, transport)) == 0.01
            transport.send(encode_request(0))
            reason = decode_goaway(_pump_for_frame(gateway, transport))
            assert "backlog" in reason
            transport.close()
        finally:
            with gateway._state_lock:
                gateway._pending_mints[0] = 0
            gateway.stop(drain=False)

    assert gateway.requests_issued == 2
    assert gateway.requests_deferred == 1
    assert gateway.requests_rejected == 1
    assert gateway.requests_admitted == 0
    assert gateway.dropped_sessions == 0  # rejection is not a mid-protocol death


def test_midstream_stats_on_keepalive_connection(tmp_path):
    """A GWS1 probe between two requests on one live connection: the
    stats frame is answered in-stream, the connection keeps serving, the
    second request's logits are clean, and the whole connection used a
    single recycled server session."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    oracle = lower_network(network, PARAMS.t)
    shape = lower_network(network, PARAMS.t, shape_only=True)
    box: dict = {}
    errors = []
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 1, store, pool=pool, garbler="client",
            expected_per_client=2,
        )
        gateway.start()

        def drive():
            try:
                client = GatewayClient(
                    "127.0.0.1", gateway.port, network, PARAMS,
                    garbler="client", client_id="client0", lowered=shape,
                )
                try:
                    box[0] = client.request(list(range(16)), request_index=0)
                    box["stats"] = client.stats()
                    box[1] = client.request(
                        list(range(16, 32)), request_index=1
                    )
                finally:
                    client.close()
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        thread = threading.Thread(target=drive, daemon=True)
        try:
            thread.start()
            gateway.serve(2, timeout=300.0)
            thread.join(timeout=60.0)
            gateway.check_refills()
        finally:
            gateway.stop()

    assert errors == []
    assert box[0] == plaintext_reference(oracle, list(range(16)))
    assert box[1] == plaintext_reference(oracle, list(range(16, 32)))
    stats = box["stats"]
    assert stats["admission"]["connections_accepted"] == 1
    rows = [r for r in stats["connections"] if r["client"] == "client0"]
    assert rows and rows[0]["requests_completed"] == 1  # taken between reqs
    assert gateway._session_counter == 1  # one session, recycled, not two
    assert gateway.connections_accepted == 1
    assert gateway.requests_admitted == 2


# -- adaptive retry_after and client-side backoff ---------------------------------


def test_adaptive_retry_after_scales_with_backlog():
    floor = 0.05
    # No measured mints yet: the fixed constant stands.
    assert adaptive_retry_after(10, 0, 0.0, 4, floor) == floor
    # One excess request, one worker: wait about one mint.
    assert adaptive_retry_after(1, 0, 0.4, 1, floor) == pytest.approx(0.4)
    # Deeper excess drains linearly...
    assert adaptive_retry_after(3, 0, 0.4, 1, floor) == pytest.approx(1.2)
    # ...and parallel mint slots divide it.
    assert adaptive_retry_after(3, 0, 0.4, 2, floor) == pytest.approx(0.6)
    # Backlog at/under the threshold still waits for >= one mint slot.
    assert adaptive_retry_after(2, 8, 0.4, 1, floor) == pytest.approx(0.4)
    # Tiny mint times clamp up to the floor, huge backlogs down to the cap.
    assert adaptive_retry_after(1, 0, 0.001, 1, floor) == floor
    assert adaptive_retry_after(10_000, 0, 0.4, 1, floor) == MAX_RETRY_AFTER
    assert adaptive_retry_after(10_000, 0, 0.4, 1, floor, cap=2.0) == 2.0


def test_gateway_retry_after_tracks_measured_mints(tmp_path):
    """The BUSY hint starts at the fixed floor and follows the running
    mean of measured mint times once the estimator has samples."""
    network = _network()
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 2, PrecomputeStore(tmp_path), pool=pool,
            garbler="client", max_queue=0,
        )
        assert gateway._retry_after_locked() == gateway.busy_retry_after
        gateway._note_mint_seconds(0.4)
        gateway._note_mint_seconds(0.6)
        # Mean mint 0.5s, empty backlog -> one mint's worth of wait.
        assert gateway._retry_after_locked() == pytest.approx(0.5)


def test_gateway_per_client_refill_caps(tmp_path):
    """A skewed schedule hands the gateway per-client expected counts."""
    network = _network()
    with PrecomputePool(workers=1) as pool:
        with pytest.raises(ValueError, match="match num_clients"):
            ServingGateway(
                network, PARAMS, 2, PrecomputeStore(tmp_path / "bad"),
                pool=pool, expected_per_client=[3],
            )
        gateway = ServingGateway(
            network, PARAMS, 3, PrecomputeStore(tmp_path / "ok"), pool=pool,
            garbler="client", expected_per_client=[3, 1, 0],
        )
        gateway.minted = [2, 1, 0]
        assert gateway._may_mint_locked(0)  # under its cap
        assert not gateway._may_mint_locked(1)  # at its cap
        assert not gateway._may_mint_locked(2)  # zero-request client


class _ScriptedTransport:
    """Feeds a GatewayClient a scripted frame sequence; records sends."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.sent = []

    def send(self, frame):
        self.sent.append(bytes(frame))

    def recv(self, wait=True):
        return self.frames.pop(0)


def _scripted_client(frames, seed=7):
    """A GatewayClient wired to a scripted transport (no socket, no
    session — only the admission/backoff path is exercised)."""
    import random

    client = object.__new__(GatewayClient)
    client.client_id = "client0"
    client.max_busy_retries = 1000
    client.issued = client.admitted = client.deferred = client.rejected = 0
    client.retry_sleep_seconds = 0.0
    client._next_index = 0
    client._closed = False
    client._backoff_rng = random.Random(seed)
    client._backoff_cap = 2 * MAX_RETRY_AFTER
    client.transport = _ScriptedTransport(frames)
    return client


def test_client_backoff_honors_hint_with_decorrelated_jitter(monkeypatch):
    """First retry sleeps exactly the server hint; later retries jitter
    in [hint, 3 x previous] capped at 2 x MAX_RETRY_AFTER, and every
    sleep lands in local_stats."""
    from repro.network.transport import TransportError

    sleeps = []
    monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
    hint = 0.2
    frames = [encode_busy(hint)] * 4 + [encode_goaway("drained")]
    client = _scripted_client(frames)
    with pytest.raises(TransportError, match="drained"):
        client.request([0])

    assert len(sleeps) == 4
    assert sleeps[0] == pytest.approx(hint)  # uniform(hint, hint) == hint
    prev = sleeps[0]
    for s in sleeps[1:]:
        assert hint <= s <= min(2 * MAX_RETRY_AFTER, 3 * prev) + 1e-9
        prev = s
    stats = client.local_stats()
    assert stats["issued"] == 5  # original + 4 retries
    assert stats["deferred"] == stats["busy_retries"] == 4
    assert stats["rejected"] == 1
    assert stats["admitted"] == 0
    assert stats["retry_sleep_seconds"] == pytest.approx(sum(sleeps), abs=1e-5)


def test_client_backoff_seeded_determinism(monkeypatch):
    monkeypatch.setattr(time, "sleep", lambda s: None)
    from repro.network.transport import TransportError

    def run(seed):
        client = _scripted_client(
            [encode_busy(0.1)] * 6 + [encode_goaway("bye")], seed=seed
        )
        with pytest.raises(TransportError):
            client.request([0])
        return client.retry_sleep_seconds

    assert run(3) == run(3)
    assert run(3) != run(4)
