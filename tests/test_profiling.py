"""Tests for device profiles, calibration anchors, and cost synthesis.

These encode the paper's measured numbers as regression bounds: if the
model drifts away from the testbed anchors, these tests fail.
"""

import pytest

from repro.nn.datasets import CIFAR100, TINY_IMAGENET
from repro.nn.models import resnet18, resnet32, vgg16
from repro.profiling import calibration as cal
from repro.profiling.devices import ATOM, EPYC, EPYC_4X, I5, I5_2X, with_storage
from repro.profiling.model_costs import Protocol, profile_network


@pytest.fixture(scope="module")
def r18_tiny():
    return profile_network(resnet18(TINY_IMAGENET))


def within(value, target, tolerance):
    return target * (1 - tolerance) <= value <= target * (1 + tolerance)


class TestDevices:
    def test_scaled_device(self):
        fast = EPYC.scaled(4.0)
        assert fast.gc_hash_seconds == EPYC.gc_hash_seconds / 4
        assert fast.he_scale == 4.0

    def test_with_storage(self):
        dev = with_storage(ATOM, 64)
        assert dev.storage_bytes == 64e9
        assert dev.gc_hash_seconds == ATOM.gc_hash_seconds

    def test_garble_eval_ratio_is_two(self):
        """Half-gates: garbling hashes twice as much as evaluating."""
        assert EPYC.garble_seconds(1000) == 2 * EPYC.evaluate_seconds(1000)

    def test_device_ordering(self):
        assert ATOM.gc_hash_seconds > I5.gc_hash_seconds > I5_2X.gc_hash_seconds
        assert I5_2X.gc_hash_seconds > EPYC.gc_hash_seconds


class TestGcAnchors:
    def test_atom_garble(self, r18_tiny):
        assert within(r18_tiny.garble_seconds(ATOM), cal.PAPER_ATOM_GARBLE_SECONDS, 0.10)

    def test_atom_eval(self, r18_tiny):
        assert within(r18_tiny.gc_eval_seconds(ATOM), cal.PAPER_ATOM_EVAL_SECONDS, 0.10)

    def test_epyc_garble(self, r18_tiny):
        assert within(r18_tiny.garble_seconds(EPYC), cal.PAPER_EPYC_GARBLE_SECONDS, 0.10)

    def test_epyc_eval(self, r18_tiny):
        assert within(r18_tiny.gc_eval_seconds(EPYC), cal.PAPER_EPYC_EVAL_SECONDS, 0.10)

    def test_i5_garble_matches_section_5_5(self, r18_tiny):
        assert within(r18_tiny.garble_seconds(I5), 107.2, 0.10)
        assert within(r18_tiny.garble_seconds(I5_2X), 53.8, 0.10)

    def test_faster_server_scales(self, r18_tiny):
        assert within(
            r18_tiny.garble_seconds(EPYC_4X),
            r18_tiny.garble_seconds(EPYC) / 4,
            0.01,
        )


class TestHeAnchors:
    def test_sequential_anchor_exact(self, r18_tiny):
        """The fit is anchored exactly at the Table 1 HE time."""
        assert within(r18_tiny.he_sequential_seconds(EPYC), 1080.0, 0.001)

    def test_lphe_in_paper_regime(self, r18_tiny):
        lphe = r18_tiny.he_lphe_seconds(EPYC)
        # Paper: 141 s. Our op-count model lands within ~25%.
        assert 90 <= lphe <= 175

    def test_lphe_speedup_regime(self):
        """Paper: 9.7x mean speedup across all pairs."""
        speedups = []
        for net in (
            resnet18(TINY_IMAGENET), vgg16(TINY_IMAGENET), resnet32(TINY_IMAGENET),
            resnet18(CIFAR100), vgg16(CIFAR100), resnet32(CIFAR100),
        ):
            p = profile_network(net)
            speedups.append(p.he_sequential_seconds(EPYC) / p.he_lphe_seconds(EPYC))
        mean = sum(speedups) / len(speedups)
        assert 7 <= mean <= 16
        assert all(s > 5 for s in speedups)

    def test_lphe_bounded_by_longest_layer(self, r18_tiny):
        longest = max(r18_tiny.he_layer_seconds)
        assert r18_tiny.he_lphe_seconds(EPYC) == pytest.approx(longest)

    def test_lphe_with_fewer_cores(self, r18_tiny):
        one_core = r18_tiny.he_lphe_seconds(EPYC, cores=1)
        assert one_core == pytest.approx(r18_tiny.he_sequential_seconds(EPYC))
        four = r18_tiny.he_lphe_seconds(EPYC, cores=4)
        assert r18_tiny.he_lphe_seconds(EPYC) < four < one_core

    def test_ss_anchor(self, r18_tiny):
        assert within(r18_tiny.ss_online_seconds(EPYC), 0.61, 0.001)


class TestStorage:
    def test_sg_client_storage_41gb(self, r18_tiny):
        gb = r18_tiny.storage(Protocol.SERVER_GARBLER).client_bytes / 1e9
        assert within(gb, 41.0, 0.05)

    def test_cg_client_storage_8gb(self, r18_tiny):
        gb = r18_tiny.storage(Protocol.CLIENT_GARBLER).client_bytes / 1e9
        assert within(gb, 8.0, 0.05)

    def test_role_reversal_swaps_footprints(self, r18_tiny):
        sg = r18_tiny.storage(Protocol.SERVER_GARBLER)
        cg = r18_tiny.storage(Protocol.CLIENT_GARBLER)
        assert sg.client_bytes == cg.server_bytes
        assert sg.server_bytes == cg.client_bytes

    def test_five_x_reduction(self, r18_tiny):
        sg = r18_tiny.storage(Protocol.SERVER_GARBLER).client_bytes
        cg = r18_tiny.storage(Protocol.CLIENT_GARBLER).client_bytes
        assert 4.5 < sg / cg < 5.5


class TestCommunication:
    def test_sg_download_dominates(self, r18_tiny):
        v = r18_tiny.comm(Protocol.SERVER_GARBLER)
        assert v.download / v.total > 0.75  # paper: 81.5%

    def test_cg_upload_dominates(self, r18_tiny):
        v = r18_tiny.comm(Protocol.CLIENT_GARBLER)
        assert v.upload / v.total > 0.75

    def test_sg_offline_comm_at_even_split(self, r18_tiny):
        """Paper Table 1: 704 s at 1 Gbps even split."""
        v = r18_tiny.comm(Protocol.SERVER_GARBLER)
        bw = 500e6 / 8
        seconds = v.offline_up / bw + v.offline_down / bw
        assert within(seconds, 704.0, 0.12)

    def test_sg_online_comm_at_even_split(self, r18_tiny):
        v = r18_tiny.comm(Protocol.SERVER_GARBLER)
        bw = 500e6 / 8
        seconds = v.online_up / bw + v.online_down / bw
        assert within(seconds, 42.5, 0.15)

    def test_cg_online_costs_more_than_sg_online(self, r18_tiny):
        """Client-Garbler moves OT online (27.1 -> 101 s in the paper)."""
        sg = r18_tiny.comm(Protocol.SERVER_GARBLER)
        cg = r18_tiny.comm(Protocol.CLIENT_GARBLER)
        assert cg.online_up + cg.online_down > sg.online_up + sg.online_down

    def test_comm_scales_with_relus(self):
        tiny = profile_network(resnet18(CIFAR100))
        big = profile_network(resnet18(TINY_IMAGENET))
        ratio = (
            big.comm(Protocol.SERVER_GARBLER).total
            / tiny.comm(Protocol.SERVER_GARBLER).total
        )
        assert 3.3 < ratio < 4.3  # ReLUs scale 4x


class TestEnergy:
    def test_garbling_costs_more_energy(self, r18_tiny):
        sg = r18_tiny.client_energy_joules(Protocol.SERVER_GARBLER)
        cg = r18_tiny.client_energy_joules(Protocol.CLIENT_GARBLER)
        assert within(cg / sg, 2.33 / 1.25, 0.01)  # paper: 1.8x

    def test_absolute_energy(self, r18_tiny):
        cg = r18_tiny.client_energy_joules(Protocol.CLIENT_GARBLER)
        assert within(cg, 2.33e-4 * r18_tiny.relu_count, 0.001)


class TestCalibrationInternals:
    def test_ands_per_relu(self):
        assert 450 <= cal.ANDS_PER_RELU <= 620

    def test_gc_wire_bytes_close_to_measured(self):
        assert 0.85 <= cal.GC_WIRE_BYTES_PER_RELU / cal.GC_CLIENT_BYTES_PER_RELU <= 1.1

    def test_ot_byte_formulas(self):
        assert cal.ot_pair_bytes(41) == 2 * 16 * 41
        assert cal.ot_column_bytes(41) == 16 * 41

    def test_unit_costs_cached_and_positive(self):
        costs = cal.fitted_he_unit_costs()
        assert costs.plain_mult > 0
        assert costs.rotation == pytest.approx(3 * costs.plain_mult)
        assert cal.fitted_he_unit_costs() is costs  # lru cached
