"""Arrival generators: seeded determinism, empirical rates, invariants.

The schedule is the contract between the functional and analytic
drivers, so its guarantees are pinned here: same seed → byte-identical
canonical JSON; Poisson empirical rates near nominal; Zipf skew orders
per-client counts; burst envelopes tile the horizon and thin OFF
windows; closed-loop think gaps accumulate into the nominal offsets;
malformed schedules are rejected at construction.
"""

import json

import pytest

from repro.workload.generators import (
    MODE_CLOSED,
    MODE_OPEN,
    Arrival,
    BurstEnvelope,
    Schedule,
    closed_schedule,
    poisson_schedule,
    uniform_schedule,
    zipf_rates,
)


# ---------------------------------------------------------------- determinism


def test_poisson_seeded_determinism_byte_identical():
    a = poisson_schedule(3, 4.0, horizon=5.0, seed=42)
    b = poisson_schedule(3, 4.0, horizon=5.0, seed=42)
    assert a.to_json() == b.to_json()
    c = poisson_schedule(3, 4.0, horizon=5.0, seed=43)
    assert a.to_json() != c.to_json()


def test_closed_seeded_determinism():
    a = closed_schedule(4, 5, 0.3, seed=7)
    b = closed_schedule(4, 5, 0.3, seed=7)
    assert a.to_json() == b.to_json()
    assert a.to_json() != closed_schedule(4, 5, 0.3, seed=8).to_json()


def test_client_streams_independent_of_population():
    """Adding a client must not disturb existing clients' arrivals."""
    small = poisson_schedule(2, 3.0, horizon=4.0, seed=9)
    large = poisson_schedule(3, 3.0, horizon=4.0, seed=9)
    for c in (0, 1):
        small_lane = [a.at for a in small.arrivals if a.client == c]
        large_lane = [a.at for a in large.arrivals if a.client == c]
        assert small_lane == large_lane


def test_burst_thinning_on_client_stream_is_deterministic():
    burst = BurstEnvelope(on_seconds=1.0, off_seconds=1.0, off_factor=0.2,
                          seed=5)
    a = poisson_schedule(2, 6.0, horizon=4.0, seed=3, burst=burst)
    b = poisson_schedule(2, 6.0, horizon=4.0, seed=3, burst=burst)
    assert a.to_json() == b.to_json()


# ------------------------------------------------------------ empirical rates


def test_poisson_empirical_rate_within_tolerance():
    rate = 20.0
    horizon = 50.0
    s = poisson_schedule(1, rate, horizon=horizon, seed=0)
    # ~1000 expected arrivals; 3-sigma band for a Poisson count is
    # ~±9.5%, allow 15% for slack.
    empirical = s.total_requests / horizon
    assert empirical == pytest.approx(rate, rel=0.15)


def test_zipf_rates_sum_and_order():
    rates = zipf_rates(5, 10.0, 1.2)
    assert sum(rates) == pytest.approx(10.0)
    assert rates == sorted(rates, reverse=True)
    assert rates[0] > rates[-1]
    # skew=0 degenerates to uniform
    flat = zipf_rates(5, 10.0, 0.0)
    assert all(r == pytest.approx(2.0) for r in flat)


def test_zipf_skew_orders_empirical_counts():
    s = poisson_schedule(3, zipf_rates(3, 12.0, 1.5), horizon=30.0, seed=1)
    counts = s.request_counts()
    assert counts[0] > counts[1] > counts[2]


# ------------------------------------------------------------- burst envelope


def test_burst_windows_tile_horizon():
    burst = BurstEnvelope(on_seconds=0.5, off_seconds=0.5, seed=2)
    windows = burst.windows(10.0)
    assert windows[0][0] == 0.0
    assert windows[-1][1] == 10.0
    for (s0, e0, on0), (s1, e1, on1) in zip(windows, windows[1:]):
        assert e0 == s1  # contiguous
        assert on0 != on1  # alternating
    assert burst.duty_cycle == pytest.approx(0.5)


def test_burst_off_windows_thin_arrivals():
    """With off_factor=0, no arrival may land inside an OFF window, and
    the total count drops versus the unmodulated schedule."""
    burst = BurstEnvelope(on_seconds=1.0, off_seconds=1.0, off_factor=0.0,
                          seed=4)
    plain = poisson_schedule(2, 8.0, horizon=10.0, seed=6)
    thinned = poisson_schedule(2, 8.0, horizon=10.0, seed=6, burst=burst)
    assert thinned.total_requests < plain.total_requests
    windows = burst.windows(10.0)
    off = [(s, e) for s, e, on in windows if not on]
    for a in thinned.arrivals:
        assert not any(s <= a.at < e for s, e in off)


def test_burst_duty_cycle_reflected_in_counts():
    """Thinned count should land near duty_cycle × unmodulated count."""
    burst = BurstEnvelope(on_seconds=2.0, off_seconds=2.0, off_factor=0.0,
                          seed=8)
    plain = poisson_schedule(1, 30.0, horizon=40.0, seed=10)
    thinned = poisson_schedule(1, 30.0, horizon=40.0, seed=10, burst=burst)
    ratio = thinned.total_requests / plain.total_requests
    assert 0.25 <= ratio <= 0.75  # expected 0.5, generous band

def test_burst_envelope_validation():
    with pytest.raises(ValueError):
        BurstEnvelope(on_seconds=0.0, off_seconds=1.0)
    with pytest.raises(ValueError):
        BurstEnvelope(on_seconds=1.0, off_seconds=1.0, off_factor=1.5)


# ----------------------------------------------------------------- closed loop


def test_closed_think_gaps_accumulate():
    s = closed_schedule(2, 4, 0.25, seed=0)
    assert s.mode == MODE_CLOSED
    for lane in s.per_client():
        running = 0.0
        for a in lane:
            assert a.think > 0.0
            running += a.think
            assert a.at == pytest.approx(running)


def test_closed_fixed_distribution():
    s = closed_schedule(2, 3, 0.1, seed=0, distribution="fixed")
    assert all(a.think == pytest.approx(0.1) for a in s.arrivals)
    assert all(a.at == pytest.approx(0.1 * (a.index + 1))
               for a in s.arrivals)


def test_closed_think_mean_empirical():
    s = closed_schedule(1, 400, 0.5, seed=3)
    mean = sum(a.think for a in s.arrivals) / s.total_requests
    assert mean == pytest.approx(0.5, rel=0.2)


# ------------------------------------------------------ schedule type contract


def test_uniform_schedule_shape():
    s = uniform_schedule(3, 2, 0.5)
    assert s.mode == MODE_OPEN
    assert s.request_counts() == [2, 2, 2]
    assert s.arrivals[0].at == 0.0
    # staggered: client lanes offset by period / num_clients
    lanes = s.per_client()
    assert lanes[1][0].at == pytest.approx(0.5 / 3)


def test_max_per_client_caps_counts():
    s = poisson_schedule(2, 50.0, horizon=10.0, seed=0, max_per_client=3)
    assert s.request_counts() == [3, 3]


def test_json_round_trip_preserves_bytes():
    s = poisson_schedule(3, zipf_rates(3, 5.0, 1.2), horizon=3.0, seed=11,
                         burst=BurstEnvelope(1.0, 1.0, 0.1, seed=2),
                         max_per_client=4)
    blob = s.to_json()
    back = Schedule.from_json(blob)
    assert back.to_json() == blob
    assert back.request_counts() == s.request_counts()
    assert back.meta == s.meta


def test_json_version_skew_rejected():
    blob = json.loads(uniform_schedule(1, 1, 1.0).to_json())
    blob["version"] = 99
    with pytest.raises(ValueError, match="version skew"):
        Schedule.from_json(json.dumps(blob))


def test_schedule_invariants_rejected():
    ok = Arrival(client=0, index=0, at=0.0)
    with pytest.raises(ValueError, match="mode"):
        Schedule("x", "weird", 1, 1.0, 0, (ok,))
    with pytest.raises(ValueError, match="consecutive"):
        Schedule("x", MODE_OPEN, 1, 1.0, 0,
                 (Arrival(client=0, index=1, at=0.0),))
    with pytest.raises(ValueError, match="sorted"):
        Schedule("x", MODE_OPEN, 1, 1.0, 0,
                 (Arrival(0, 0, at=1.0), Arrival(0, 1, at=0.5)))
    with pytest.raises(ValueError, match="client"):
        Schedule("x", MODE_OPEN, 1, 1.0, 0,
                 (Arrival(client=3, index=0, at=0.0),))
    with pytest.raises(ValueError, match=">= 0"):
        Schedule("x", MODE_OPEN, 1, 1.0, 0,
                 (Arrival(0, 0, at=0.0, think=-1.0),))


def test_offered_rate_and_span():
    s = uniform_schedule(2, 2, 1.0)
    assert s.span() == pytest.approx(2.0)
    assert s.offered_rate() == pytest.approx(4 / 2.0)


def test_rate_validation():
    with pytest.raises(ValueError):
        poisson_schedule(2, [1.0], horizon=1.0)
    with pytest.raises(ValueError):
        poisson_schedule(1, 0.0, horizon=1.0)
    with pytest.raises(ValueError):
        zipf_rates(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        zipf_rates(2, 1.0, -1.0)
    with pytest.raises(ValueError):
        closed_schedule(1, 1, 0.1, distribution="weibull")


def test_legacy_shim_still_imports():
    from repro.simulation.workload import (
        InferenceRequest,
        PoissonWorkload,
        deterministic_arrivals,
    )

    w = PoissonWorkload(mean_interarrival=0.5, horizon=5.0, seed=1)
    times = w.arrival_times()
    assert times == sorted(times)
    assert all(0 < t < 5.0 for t in times)
    assert w.rate_per_minute == pytest.approx(120.0)
    assert deterministic_arrivals(1.0, 3.5) == [1.0, 2.0, 3.0]
    r = InferenceRequest(index=0, arrival_time=1.0, service_start=2.0,
                         completion_time=3.0)
    assert r.queue_seconds == 1.0
    assert r.latency == 2.0
