"""Tests for the boolean circuit builder and plaintext evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.circuit import Circuit, CircuitBuilder, int_to_bits, words_to_int


def eval_words(circuit, garbler_words, evaluator_words, bits):
    g_bits = [b for w in garbler_words for b in int_to_bits(w, bits)]
    e_bits = [b for w in evaluator_words for b in int_to_bits(w, bits)]
    return circuit.evaluate_plain(g_bits, e_bits)


class TestBitHelpers:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, v):
        assert words_to_int(int_to_bits(v, 32)) == v

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)


class TestSingleBitGates:
    @pytest.mark.parametrize("ga", [0, 1])
    @pytest.mark.parametrize("ea", [0, 1])
    def test_truth_tables(self, ga, ea):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output(
            [b.xor(x, y), b.and_(x, y), b.or_(x, y), b.not_(x), b.mux_bit(x, y, b.zero)]
        )
        c = b.build()
        out = c.evaluate_plain([ga], [ea])
        assert out == [ga ^ ea, ga & ea, ga | ea, 1 - ga, ea if ga else 0]

    def test_constants(self):
        b = CircuitBuilder()
        b.mark_output([b.zero, b.one])
        assert b.build().evaluate_plain([], []) == [0, 1]

    def test_input_length_validation(self):
        b = CircuitBuilder()
        b.garbler_input()
        c = b.build()
        with pytest.raises(ValueError):
            c.evaluate_plain([], [])
        with pytest.raises(ValueError):
            c.evaluate_plain([1], [0])


class TestArithmetic:
    BITS = 8

    def _adder(self):
        b = CircuitBuilder()
        x = b.garbler_input_word(self.BITS)
        y = b.evaluator_input_word(self.BITS)
        s, carry = b.add(x, y)
        b.mark_output(s + [carry])
        return b.build()

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=50)
    def test_add(self, a, c):
        out = eval_words(self._adder(), [a], [c], self.BITS)
        assert words_to_int(out) == a + c

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=50)
    def test_sub_and_borrow(self, a, c):
        b = CircuitBuilder()
        x = b.garbler_input_word(self.BITS)
        y = b.evaluator_input_word(self.BITS)
        d, borrow = b.sub(x, y)
        b.mark_output(d + [borrow])
        out = eval_words(b.build(), [a], [c], self.BITS)
        assert out[-1] == (1 if a < c else 0)
        assert words_to_int(out[:-1]) == (a - c) % 256

    @given(st.integers(min_value=0, max_value=250), st.integers(min_value=0, max_value=250))
    @settings(max_examples=50)
    def test_add_mod(self, a, c):
        p = 251
        a, c = a % p, c % p
        b = CircuitBuilder()
        x = b.garbler_input_word(self.BITS)
        y = b.evaluator_input_word(self.BITS)
        b.mark_output(b.add_mod(x, y, p))
        out = eval_words(b.build(), [a], [c], self.BITS)
        assert words_to_int(out) == (a + c) % p

    @given(st.integers(min_value=0, max_value=250), st.integers(min_value=0, max_value=250))
    @settings(max_examples=50)
    def test_sub_mod(self, a, c):
        p = 251
        a, c = a % p, c % p
        b = CircuitBuilder()
        x = b.garbler_input_word(self.BITS)
        y = b.evaluator_input_word(self.BITS)
        b.mark_output(b.sub_mod(x, y, p))
        out = eval_words(b.build(), [a], [c], self.BITS)
        assert words_to_int(out) == (a - c) % p

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40)
    def test_geq_const(self, a):
        threshold = 137
        b = CircuitBuilder()
        x = b.garbler_input_word(self.BITS)
        b.mark_output([b.geq_const(x, threshold)])
        out = eval_words(b.build(), [a], [], self.BITS)
        assert out[0] == (1 if a >= threshold else 0)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=40)
    def test_mux_word(self, a, c, sel):
        b = CircuitBuilder()
        s = b.garbler_input()
        x = b.garbler_input_word(self.BITS)
        y = b.evaluator_input_word(self.BITS)
        b.mark_output(b.mux_word(s, x, y))
        g_bits = [sel] + int_to_bits(a, self.BITS)
        out = b.build().evaluate_plain(g_bits, int_to_bits(c, self.BITS))
        assert words_to_int(out) == (a if sel else c)

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.add(b.garbler_input_word(4), b.evaluator_input_word(5))
        with pytest.raises(ValueError):
            b.sub(b.garbler_input_word(4), b.evaluator_input_word(5))
        with pytest.raises(ValueError):
            b.mux_word(b.one, [b.zero] * 3, [b.zero] * 2)


class TestGateCounting:
    def test_counts(self):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output([b.xor(x, y), b.and_(x, y)])
        c = b.build()
        assert c.and_count == 1
        assert c.xor_count == 1

    def test_xor_heavy_circuits_are_cheap(self):
        """Free-XOR economics: NOT/XOR add no AND gates."""
        b = CircuitBuilder()
        x = b.garbler_input()
        w = x
        for _ in range(100):
            w = b.not_(w)
        b.mark_output([w])
        assert b.build().and_count == 0
