"""Randomized bit-exactness parity between the numpy and python backends.

The numpy backend's whole claim is "same function, faster": every kernel
must agree with the arbitrary-precision python reference bit for bit.
These tests draw random inputs across both reduction regimes (direct
q < 2^31 and Shoup 2^31 <= q < 2^63) and assert list-level equality on
NTT transforms, RingPoly arithmetic, BFV round-trips, and one end-to-end
protocol inference. Also covers the backend registry's fallback rules
and the bounded NTT-context cache.
"""

import random

import pytest

from repro.backend import available_backends, backend_for, get_backend, set_backend
from repro.crypto.modmath import (
    find_ntt_prime,
    matvec_mod,
    mod_add_vec,
    mod_mul_vec,
    mod_pow_vec,
    mod_sub_vec,
)
from repro.crypto.rng import SecureRandom
from repro.he import polynomial
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator
from repro.he.ntt import NegacyclicNtt, Ntt
from repro.he.params import fast_params
from repro.he.polynomial import RingPoly, clear_ntt_cache, ntt_cache_size

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="numpy backend unavailable"
)

PY = None
NP = None


def setup_module(module):
    global PY, NP
    PY = get_backend("python")
    NP = get_backend("numpy")


# Both reduction regimes: direct (q < 2^31) and Shoup (q >= 2^31).
Q_BITS = (18, 30, 40, 62)


def rand_vec(rng, n, q):
    return [rng.randrange(q) for _ in range(n)]


class TestKernelParity:
    @pytest.mark.parametrize("q_bits", Q_BITS)
    def test_elementwise_ops(self, q_bits):
        rng = random.Random(q_bits)
        n = 128
        q = find_ntt_prime(q_bits, n)
        a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
        va, vb = NP.asvec(a, q), NP.asvec(b, q)
        assert NP.tolist(NP.add(va, vb, q)) == PY.add(a, b, q)
        assert NP.tolist(NP.sub(va, vb, q)) == PY.sub(a, b, q)
        assert NP.tolist(NP.neg(va, q)) == PY.neg(a, q)
        assert NP.tolist(NP.mul(va, vb, q)) == PY.mul(a, b, q)
        s = rng.randrange(q)
        assert NP.tolist(NP.scalar_mul(va, s, q)) == PY.scalar_mul(a, s, q)

    @pytest.mark.parametrize("q_bits", Q_BITS)
    def test_ntt_forward_inverse(self, q_bits):
        rng = random.Random(100 + q_bits)
        n = 256
        q = find_ntt_prime(q_bits, n)
        ntt_py = NegacyclicNtt(n, q, backend=PY)
        ntt_np = NegacyclicNtt(n, q, backend=NP)
        for _ in range(3):
            coeffs = rand_vec(rng, n, q)
            fwd_py = ntt_py.forward(coeffs)
            fwd_np = ntt_np.forward(coeffs)
            assert fwd_py == fwd_np
            assert ntt_py.inverse(fwd_py) == ntt_np.inverse(fwd_np) == coeffs

    @pytest.mark.parametrize("q_bits", (30, 62))
    def test_cyclic_ntt(self, q_bits):
        rng = random.Random(200 + q_bits)
        n = 64
        q = find_ntt_prime(q_bits, n)
        ntt_py = Ntt(n, q, backend=PY)
        ntt_np = Ntt(n, q, backend=NP)
        values = rand_vec(rng, n, q)
        assert ntt_py.forward(values) == ntt_np.forward(values)
        assert ntt_py.inverse(values) == ntt_np.inverse(values)

    @pytest.mark.parametrize("q_bits", Q_BITS)
    def test_negacyclic_multiply(self, q_bits):
        rng = random.Random(300 + q_bits)
        n = 64
        q = find_ntt_prime(q_bits, n)
        ntt_py = NegacyclicNtt(n, q, backend=PY)
        ntt_np = NegacyclicNtt(n, q, backend=NP)
        a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
        assert ntt_py.multiply(a, b) == ntt_np.multiply(a, b)

    @pytest.mark.parametrize("q_bits", Q_BITS)
    def test_ring_poly_ops(self, q_bits):
        rng = random.Random(400 + q_bits)
        n = 128
        q = find_ntt_prime(q_bits, n)
        a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
        pa, pb = RingPoly(a, q, backend=PY), RingPoly(b, q, backend=PY)
        na, nb = RingPoly(a, q, backend=NP), RingPoly(b, q, backend=NP)
        assert (pa + pb).coeffs == (na + nb).coeffs
        assert (pa - pb).coeffs == (na - nb).coeffs
        assert (-pa).coeffs == (-na).coeffs
        assert (pa * pb).coeffs == (na * nb).coeffs
        s = rng.randrange(q)
        assert (pa * s).coeffs == (na * s).coeffs
        assert pa.automorphism(3).coeffs == na.automorphism(3).coeffs
        digits_py = pa.decompose(4, 8)
        digits_np = na.decompose(4, 8)
        assert [d.coeffs for d in digits_py] == [d.coeffs for d in digits_np]
        # Negative / unreduced construction agrees too.
        raw = [rng.randrange(-q, 2 * q) for _ in range(n)]
        assert RingPoly(raw, q, backend=PY) == RingPoly(raw, q, backend=NP)

    @pytest.mark.parametrize("q_bits", (18, 41, 62))
    def test_vector_helpers(self, q_bits):
        rng = random.Random(500 + q_bits)
        n = 32
        q = find_ntt_prime(q_bits, 16) if q_bits != 41 else find_ntt_prime(41, 16)
        a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
        for name in ("python", "numpy"):
            set_backend(name)
            try:
                assert mod_add_vec(a, b, q) == [(x + y) % q for x, y in zip(a, b)]
                assert mod_sub_vec(a, b, q) == [(x - y) % q for x, y in zip(a, b)]
                assert mod_mul_vec(a, b, q) == [x * y % q for x, y in zip(a, b)]
                assert mod_pow_vec(a, 13, q) == [pow(x, 13, q) for x in a]
                matrix = [rand_vec(rng, n, q) for _ in range(8)]
                want = [
                    sum(w * x for w, x in zip(row, a)) % q for row in matrix
                ]
                assert matvec_mod(matrix, a, q) == want
            finally:
                set_backend("auto")


class TestBfvParity:
    def test_encrypt_decrypt_roundtrip_identical(self):
        params = fast_params(n=128)
        values = list(range(100))
        results = {}
        for name in ("python", "numpy"):
            set_backend(name)
            try:
                clear_ntt_cache()
                ctx = BfvContext(params, SecureRandom(7))
                encoder = BatchEncoder(params)
                sk, pk = ctx.keygen()
                pt = encoder.encode(values)
                ct = ctx.encrypt(pk, pt)
                decoded = encoder.decode(ctx.decrypt(sk, ct))
                results[name] = {
                    "plaintext": pt.coeffs,
                    "c0": ct.c0.coeffs,
                    "c1": ct.c1.coeffs,
                    "decoded": decoded[:100],
                }
            finally:
                set_backend("auto")
        # Same seeded randomness: the entire transcript must match exactly.
        assert results["python"] == results["numpy"]
        assert results["numpy"]["decoded"] == values

    def test_matvec_parity(self):
        params = fast_params(n=128)
        rng = random.Random(1)
        t = params.t
        n_in = n_out = 8
        matrix = [[rng.randrange(t) for _ in range(n_in)] for _ in range(n_out)]
        x = [rng.randrange(t) for _ in range(n_in)]
        want = [
            sum(matrix[i][j] * x[j] for j in range(n_in)) % t for i in range(n_out)
        ]
        outputs = {}
        for name in ("python", "numpy"):
            set_backend(name)
            try:
                clear_ntt_cache()
                ctx = BfvContext(params, SecureRandom(9))
                encoder = BatchEncoder(params)
                sk, pk = ctx.keygen()
                gk = ctx.galois_keygen(sk, [encoder.galois_element_for_rotation(1)])
                evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
                ct = ctx.encrypt(pk, encoder.encode(evaluator.pack_vector(x)))
                ct_y = evaluator.matvec(ct, matrix)
                assert ctx.noise_budget_bits(sk, ct_y) > 0
                outputs[name] = encoder.decode(ctx.decrypt(sk, ct_y))[:n_out]
            finally:
                set_backend("auto")
        assert outputs["python"] == outputs["numpy"] == want


class TestProtocolParity:
    def test_end_to_end_inference(self):
        import numpy as np

        from repro.core.protocol import HybridProtocol
        from repro.nn.datasets import tiny_dataset
        from repro.nn.models import tiny_mlp

        params = fast_params(n=256)
        net = tiny_mlp(tiny_dataset(size=2, classes=2), hidden=4)
        net.randomize_weights(params.t, np.random.default_rng(0))
        x = list(range(4))
        runs = {}
        for name in ("python", "numpy"):
            set_backend(name)
            try:
                clear_ntt_cache()
                proto = HybridProtocol(net, params, garbler="client", seed=21)
                proto.run_offline()
                logits = proto.run_online(x)
                assert logits == proto.plaintext_reference(x)
                runs[name] = (logits, proto.channel.total_bytes)
            finally:
                set_backend("auto")
        # Identical logits and identical transcript byte accounting.
        assert runs["python"] == runs["numpy"]


class TestBackendSelection:
    def test_oversized_modulus_falls_back_to_python(self):
        huge = (1 << 100) + 277  # anything >= 2^63 must not hit numpy
        assert backend_for(huge).name == "python"
        assert backend_for(huge, prefer="numpy").name == "python"
        set_backend("numpy")
        try:
            assert backend_for(huge).name == "python"
            assert backend_for((1 << 61) + 1).name == "numpy"
        finally:
            set_backend("auto")

    def test_explicit_python_never_uses_numpy(self):
        set_backend("python")
        try:
            assert backend_for(97).name == "python"
            assert get_backend().name == "python"
        finally:
            set_backend("auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("cuda")
        with pytest.raises(ValueError):
            get_backend("tpu")

    def test_params_backend_preference(self):
        params = fast_params(n=128, backend="python")
        ctx = BfvContext(params, SecureRandom(0))
        assert ctx._rq.name == "python"

    def test_unavailable_preference_fails_soft(self):
        # A config naming a backend this machine lacks must stay portable.
        assert backend_for(97, prefer="cuda").name in ("python", "numpy")

    def test_signed_ndarray_entries_reduced_exactly(self):
        import numpy as np

        q = 97
        raw = np.array([-1, -96, 5, 300], dtype=np.int64)
        got = NP.tolist(NP.asvec(raw, q))
        assert got == [96, 1, 5, 300 % 97]
        assert NP.tolist(NP.asvec(raw.astype(np.float64), q)) == got

    def test_protocol_preference_overrides_global(self):
        import numpy as np

        from repro.core.protocol import HybridProtocol
        from repro.nn.datasets import tiny_dataset
        from repro.nn.models import tiny_mlp

        net = tiny_mlp(tiny_dataset(size=2, classes=2), hidden=4)
        params = fast_params(n=128)
        net.randomize_weights(params.t, np.random.default_rng(1))
        set_backend("python")
        try:
            proto = HybridProtocol(net, params, seed=3, backend="numpy")
            assert proto._vectorize_gc
            assert isinstance(proto.lowered.linears[0].matrix, np.ndarray)
            inverse = HybridProtocol(net, params, seed=3, backend="python")
            assert not inverse._vectorize_gc
            assert isinstance(inverse.lowered.linears[0].matrix, list)
        finally:
            set_backend("auto")

    def test_system_config_threads_backend(self):
        from repro.core.system import SystemConfig
        from repro.nn.datasets import tiny_dataset
        from repro.nn.models import tiny_mlp
        from repro.profiling.model_costs import profile_network

        profile = profile_network(tiny_mlp(tiny_dataset(size=2, classes=2)))
        config = SystemConfig(profile=profile, compute_backend="python")
        params = config.functional_bfv_params(n=128)
        assert params.backend == "python"
        ctx = BfvContext(params, SecureRandom(0))
        assert ctx._rq.name == "python"

    def test_wide_modulus_matrix_stays_exact_lists(self):
        # 41-bit share prime: q^2 overflows uint64, so the numpy backend
        # must keep the list representation and the exact matvec path.
        from repro.crypto.modmath import find_prime_one_mod

        q = find_prime_one_mod(41, 2)
        rows = [[q - 1, 2], [3, q - 2]]
        mat = NP.asmatrix(rows, q)
        assert isinstance(mat, list)
        want = [((q - 1) * 5 + 2 * 7) % q, (3 * 5 + (q - 2) * 7) % q]
        assert NP.matvec_mod(mat, [5, 7], q) == want


class TestNttCache:
    def test_cache_is_bounded(self):
        clear_ntt_cache()
        n = 16
        made = 0
        bits = 20
        while made < polynomial._NTT_CACHE_MAX + 8:
            q = find_ntt_prime(bits, n)
            RingPoly([1] * n, q) * RingPoly([2] * n, q)
            bits += 1
            made += 1
        assert ntt_cache_size() <= polynomial._NTT_CACHE_MAX
        clear_ntt_cache()
        assert ntt_cache_size() == 0
