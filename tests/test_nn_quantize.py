"""Tests for fixed-point quantization and truncating ReLU circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import HybridProtocol
from repro.gc.circuit import int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit, relu_reference
from repro.crypto.rng import SecureRandom
from repro.he.params import toy_params
from repro.nn.datasets import tiny_dataset
from repro.nn.models import tiny_mlp
from repro.nn.quantize import (
    FixedPointEncoder,
    fixed_point_reference,
    quantize_network,
)

PARAMS = toy_params(n=256)
P = PARAMS.t


class TestFixedPointEncoder:
    ENCODER = FixedPointEncoder(modulus=P, fraction_bits=5)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_roundtrip_within_quantum(self, value):
        enc = self.ENCODER
        decoded = enc.decode(enc.encode(value))
        assert abs(decoded - value) <= 0.5 / enc.scale + 1e-9

    def test_negative_representation(self):
        enc = self.ENCODER
        assert enc.encode(-1.0) == P - enc.scale
        assert enc.decode(P - enc.scale) == -1.0

    def test_overflow_rejected(self):
        with pytest.raises(OverflowError):
            self.ENCODER.encode(self.ENCODER.max_magnitude * 2)

    def test_extra_scale_decoding(self):
        enc = self.ENCODER
        # A product of two scale-f values carries scale 2f.
        a, b = 1.5, 2.0
        product_field = enc.encode(a) * enc.encode(b) % P
        assert enc.decode(product_field, extra_scale_bits=enc.fraction_bits) == a * b

    def test_vector_helpers(self):
        enc = self.ENCODER
        values = [0.5, -0.25, 1.0]
        encoded = enc.encode_vector(values)
        assert enc.decode_vector(encoded) == values


class TestTruncatingRelu:
    @given(
        st.integers(min_value=0, max_value=65520),
        st.integers(min_value=0, max_value=65520),
        st.integers(min_value=0, max_value=65520),
    )
    @settings(max_examples=10, deadline=None)
    def test_garbled_truncation_matches_reference(self, sa, sb, r):
        p = 65521
        spec = ReluCircuitSpec(bits=16, modulus=p, mask_owner="evaluator", truncate_bits=4)
        circuit = build_relu_circuit(spec)
        garbled, encoding = Garbler(SecureRandom(1)).garble(circuit)
        labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(sa % p, 16))
        for w, bit in zip(
            circuit.evaluator_inputs, int_to_bits(sb % p, 16) + int_to_bits(r % p, 16)
        ):
            labels[w] = encoding.label_for(w, bit)
        evaluator = Evaluator()
        bits = evaluator.decode(garbled, evaluator.evaluate(garbled, labels))
        assert words_to_int(bits) == relu_reference(sa % p, sb % p, r % p, p, 4)

    def test_truncation_is_free(self):
        """The shift adds no AND gates over the plain ReLU circuit."""
        plain = build_relu_circuit(
            ReluCircuitSpec(bits=16, modulus=65521, mask_owner="evaluator")
        )
        truncating = build_relu_circuit(
            ReluCircuitSpec(
                bits=16, modulus=65521, mask_owner="evaluator", truncate_bits=6
            )
        )
        assert truncating.and_count == plain.and_count

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReluCircuitSpec(bits=16, modulus=65521, mask_owner="evaluator", truncate_bits=16)


class TestQuantizedPrivateInference:
    def _float_net(self, seed):
        rng = np.random.default_rng(seed)
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        for layer in net.layers:
            if hasattr(layer, "weights") and layer.weights is not None:
                layer.weights = rng.uniform(-0.5, 0.5, size=layer.weights.shape)
        return net

    def test_protocol_matches_fixed_point_reference(self):
        f = 5
        encoder = FixedPointEncoder(modulus=P, fraction_bits=f)
        net = quantize_network(self._float_net(0), encoder)
        rng = np.random.default_rng(1)
        x_float = rng.uniform(0, 0.5, size=16)
        x_field = encoder.encode_vector(x_float)

        protocol = HybridProtocol(net, PARAMS, garbler="client", seed=3, truncate_bits=f)
        protocol.run_offline()
        logits_field = protocol.run_online(x_field)
        expected = fixed_point_reference(net, x_field, encoder)
        got = encoder.decode_vector(logits_field, extra_scale_bits=f)
        assert got == pytest.approx(expected, abs=1e-9)

    def test_approximates_float_inference(self):
        """Dequantized private logits track the float network's logits."""
        f = 5
        float_net = self._float_net(2)
        rng = np.random.default_rng(3)
        x_float = rng.uniform(0, 0.5, size=16)
        float_logits = float_net.forward(x_float.reshape(1, 4, 4))

        encoder = FixedPointEncoder(modulus=P, fraction_bits=f)
        quant_net = quantize_network(self._float_net(2), encoder)
        x_field = encoder.encode_vector(x_float)
        protocol = HybridProtocol(
            quant_net, PARAMS, garbler="server", seed=4, truncate_bits=f
        )
        protocol.run_offline()
        got = encoder.decode_vector(protocol.run_online(x_field), extra_scale_bits=f)
        # Quantization noise: a few quanta per accumulated term.
        assert np.allclose(got, float_logits, atol=0.3)

    def test_argmax_preserved(self):
        """The predicted class usually survives quantization."""
        f = 5
        float_net = self._float_net(5)
        rng = np.random.default_rng(6)
        hits = 0
        encoder = FixedPointEncoder(modulus=P, fraction_bits=f)
        quant_net = quantize_network(self._float_net(5), encoder)
        for trial in range(3):
            x_float = rng.uniform(0, 0.5, size=16)
            float_pred = int(np.argmax(float_net.forward(x_float.reshape(1, 4, 4))))
            protocol = HybridProtocol(
                quant_net, PARAMS, garbler="client", seed=10 + trial, truncate_bits=f
            )
            protocol.run_offline()
            got = encoder.decode_vector(
                protocol.run_online(encoder.encode_vector(x_float)),
                extra_scale_bits=f,
            )
            hits += int(np.argmax(got)) == float_pred
        assert hits >= 2
