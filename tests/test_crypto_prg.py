"""Tests for the PRG and hashing primitives used by the GC/OT substrates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prg import (
    LABEL_BYTES,
    Prg,
    hash_label,
    hash_pair,
    key_derivation,
    xor_bytes,
)


class TestHashLabel:
    def test_output_length(self):
        assert len(hash_label(b"\x00" * 16, 0)) == LABEL_BYTES

    def test_deterministic(self):
        assert hash_label(b"a" * 16, 5) == hash_label(b"a" * 16, 5)

    def test_tweak_separates_domains(self):
        assert hash_label(b"a" * 16, 0) != hash_label(b"a" * 16, 1)

    def test_label_sensitivity(self):
        assert hash_label(b"a" * 16, 0) != hash_label(b"b" * 16, 0)


class TestHashPair:
    def test_arg_order_matters(self):
        a, b = b"x" * 16, b"y" * 16
        assert hash_pair(a, b, 0) != hash_pair(b, a, 0)

    def test_length(self):
        assert len(hash_pair(b"1" * 16, b"2" * 16, 9)) == LABEL_BYTES


class TestXorBytes:
    @given(st.binary(min_size=1, max_size=64))
    def test_self_inverse(self, data):
        zero = bytes(len(data))
        assert xor_bytes(data, data) == zero
        assert xor_bytes(data, zero) == data

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_commutative(self, a, b):
        assert xor_bytes(a, b) == xor_bytes(b, a)

    @given(
        st.binary(min_size=8, max_size=8),
        st.binary(min_size=8, max_size=8),
        st.binary(min_size=8, max_size=8),
    )
    def test_associative(self, a, b, c):
        assert xor_bytes(xor_bytes(a, b), c) == xor_bytes(a, xor_bytes(b, c))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestPrg:
    def test_deterministic(self):
        assert Prg(b"seed").read(100) == Prg(b"seed").read(100)

    def test_different_seeds_differ(self):
        assert Prg(b"seed1").read(32) != Prg(b"seed2").read(32)

    def test_stream_continuity(self):
        """Reading 10+10 bytes equals reading 20 bytes once."""
        p1 = Prg(b"s")
        combined = p1.read(10) + p1.read(10)
        assert combined == Prg(b"s").read(20)

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            Prg(b"")

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            Prg(b"s").read(-1)

    @given(st.integers(min_value=1, max_value=256))
    def test_read_int_bit_bound(self, bits):
        value = Prg(b"q").read_int(bits)
        assert 0 <= value < (1 << bits)

    def test_read_bits(self):
        bits = Prg(b"b").read_bits(64)
        assert len(bits) == 64
        assert set(bits) <= {0, 1}
        assert 10 < sum(bits) < 54  # sanity: not constant


class TestKeyDerivation:
    def test_length(self):
        assert len(key_derivation(b"a", b"b")) == LABEL_BYTES

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc") — length framing works.
        assert key_derivation(b"ab", b"c") != key_derivation(b"a", b"bc")
