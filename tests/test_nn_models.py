"""Tests for the network builders — ReLU counts are the paper's Figure 3."""

import numpy as np
import pytest

from repro.nn.datasets import CIFAR100, IMAGENET, TINY_IMAGENET, tiny_dataset
from repro.nn.models import resnet18, resnet32, tiny_cnn, tiny_mlp, vgg16

# ReLU counts that reproduce the paper's storage figure (18.2 KB/ReLU).
PAPER_RELUS = {
    ("ResNet-32", "CIFAR-100"): 303_104,
    ("VGG-16", "CIFAR-100"): 276_480,
    ("ResNet-18", "CIFAR-100"): 557_056,
    ("ResNet-32", "TinyImageNet"): 1_212_416,
    ("VGG-16", "TinyImageNet"): 1_105_920,
    ("ResNet-18", "TinyImageNet"): 2_228_224,
    ("ResNet-18", "ImageNet"): 27_295_744,
}


class TestReluCounts:
    @pytest.mark.parametrize(
        "builder,dataset,key",
        [
            (resnet32, CIFAR100, ("ResNet-32", "CIFAR-100")),
            (vgg16, CIFAR100, ("VGG-16", "CIFAR-100")),
            (resnet18, CIFAR100, ("ResNet-18", "CIFAR-100")),
            (resnet32, TINY_IMAGENET, ("ResNet-32", "TinyImageNet")),
            (vgg16, TINY_IMAGENET, ("VGG-16", "TinyImageNet")),
            (resnet18, TINY_IMAGENET, ("ResNet-18", "TinyImageNet")),
            (resnet18, IMAGENET, ("ResNet-18", "ImageNet")),
        ],
    )
    def test_counts_match_paper(self, builder, dataset, key):
        assert builder(dataset).relu_count == PAPER_RELUS[key]

    def test_storage_figure3(self):
        """41 GB for ResNet-18 on TinyImageNet at 18.2 KB per ReLU."""
        gb = resnet18(TINY_IMAGENET).relu_count * 18.2e3 / 1e9
        assert 40 < gb < 42

    def test_relus_scale_with_resolution(self):
        """TinyImageNet (64x64) has 4x the ReLUs of CIFAR (32x32)."""
        small = resnet18(CIFAR100).relu_count
        large = resnet18(TINY_IMAGENET).relu_count
        assert large == 4 * small


class TestArchitectureShapes:
    def test_resnet18_linear_layer_count(self):
        # 17 convolutions plus the final FC (the paper quotes 17 HE layers).
        assert resnet18(TINY_IMAGENET).linear_layer_count == 18

    def test_resnet32_linear_layer_count(self):
        assert resnet32(CIFAR100).linear_layer_count == 32

    def test_vgg16_linear_layer_count(self):
        assert vgg16(CIFAR100).linear_layer_count == 14  # 13 convs + 1 FC
        assert vgg16(IMAGENET).linear_layer_count == 16  # 13 convs + 3 FC

    def test_output_shapes(self):
        assert resnet18(CIFAR100).output_shape.elements == 100
        assert resnet32(TINY_IMAGENET).output_shape.elements == 200
        assert vgg16(IMAGENET).output_shape.elements == 1000

    def test_parameter_counts_reasonable(self):
        # ResNet-18 ~11M parameters; ResNet-32 ~0.46M; VGG-16 ~15M (conv).
        assert 10e6 < resnet18(CIFAR100).parameter_count < 12.5e6
        assert 0.4e6 < resnet32(CIFAR100).parameter_count < 0.6e6
        assert 14e6 < vgg16(CIFAR100).parameter_count < 16e6

    def test_ordering_more_relus_more_params(self):
        """Paper §3: ResNet-32 -> VGG-16 -> ResNet-18 increases ReLUs."""
        r32 = resnet32(TINY_IMAGENET)
        v16 = vgg16(TINY_IMAGENET)
        r18 = resnet18(TINY_IMAGENET)
        assert v16.relu_count < r32.relu_count < r18.relu_count


class TestTinyModels:
    def test_tiny_mlp_runs(self):
        ds = tiny_dataset(size=4)
        net = tiny_mlp(ds, hidden=8)
        out = net.forward(np.ones((1, 4, 4)))
        assert out.shape == (4,)

    def test_tiny_cnn_runs(self):
        ds = tiny_dataset(size=4)
        net = tiny_cnn(ds, width=2)
        out = net.forward(np.ones((1, 4, 4)))
        assert out.shape == (4,)

    def test_randomize_and_forward_mod(self):
        ds = tiny_dataset(size=4)
        net = tiny_cnn(ds, width=2)
        net.randomize_weights(97, np.random.default_rng(0))
        x = np.ones((1, 4, 4), dtype=object)
        out = net.forward_mod(x, 97)
        assert all(0 <= v < 97 for v in out.tolist())

    def test_input_validation(self):
        net = tiny_mlp(tiny_dataset(size=4))
        with pytest.raises(ValueError):
            net.forward(np.ones((1, 8, 8)))

    def test_summary_mentions_key_counts(self):
        text = resnet18(CIFAR100).summary()
        assert "ReLUs" in text and "557,056" in text
