"""Tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Container, Environment, Resource, Store


class TestTimeline:
    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)

        env.process(proc(env))
        env.run()
        assert env.now == 5.0

    def test_sequential_timeouts(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [1.0, 3.5]

    def test_parallel_processes_interleave(self):
        env = Environment()
        log = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(proc(env, "slow", 10))
        env.process(proc(env, "fast", 1))
        env.run()
        assert log == [(1, "fast"), (10, "slow")]

    def test_run_until_stops_early(self):
        env = Environment()

        def proc(env):
            yield env.timeout(100)

        env.process(proc(env))
        env.run(until=7)
        assert env.now == 7

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_process_return_value(self):
        env = Environment()
        results = []

        def child(env):
            yield env.timeout(3)
            return 42

        def parent(env):
            value = yield env.process(child(env))
            results.append(value)

        env.process(parent(env))
        env.run()
        assert results == [42]

    def test_yield_non_event_raises(self):
        env = Environment()

        def proc(env):
            yield 5

        env.process(proc(env))
        with pytest.raises(TypeError):
            env.run()

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_event_ordering_property(self, delays):
        """Completion order always sorted by delay regardless of spawn order."""
        env = Environment()
        log = []

        def proc(env, delay):
            yield env.timeout(delay)
            log.append(delay)

        for d in delays:
            env.process(proc(env, d))
        env.run()
        assert log == sorted(delays)


class TestEvents:
    def test_manual_event(self):
        env = Environment()
        log = []

        def waiter(env, event):
            value = yield event
            log.append((env.now, value))

        def firer(env, event):
            yield env.timeout(4)
            event.succeed("go")

        event = env.event()
        env.process(waiter(env, event))
        env.process(firer(env, event))
        env.run()
        assert log == [(4, "go")]

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_all_of(self):
        env = Environment()
        log = []

        def child(env, d):
            yield env.timeout(d)
            return d

        def parent(env):
            procs = [env.process(child(env, d)) for d in (3, 1, 2)]
            values = yield env.all_of(procs)
            log.append((env.now, values))

        env.process(parent(env))
        env.run()
        assert log == [(3, [3, 1, 2])]

    def test_all_of_empty(self):
        env = Environment()
        log = []

        def parent(env):
            values = yield env.all_of([])
            log.append(values)

        env.process(parent(env))
        env.run()
        assert log == [[]]


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        log = []

        def worker(env, res, name):
            yield res.request()
            log.append((env.now, name, "start"))
            yield env.timeout(10)
            log.append((env.now, name, "end"))
            res.release()

        res = Resource(env, capacity=1)
        env.process(worker(env, res, "a"))
        env.process(worker(env, res, "b"))
        env.run()
        assert log == [(0, "a", "start"), (10, "a", "end"), (10, "b", "start"), (20, "b", "end")]

    def test_capacity_two_runs_in_parallel(self):
        env = Environment()
        done = []

        def worker(env, res):
            yield res.request()
            yield env.timeout(10)
            res.release()
            done.append(env.now)

        res = Resource(env, capacity=2)
        for _ in range(4):
            env.process(worker(env, res))
        env.run()
        assert done == [10, 10, 20, 20]

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def hog(env, res):
            yield res.request()
            yield env.timeout(100)
            res.release()

        def waiter(env, res):
            yield res.request()
            res.release()

        env.process(hog(env, res))
        env.process(waiter(env, res))
        env.run(until=50)
        assert res.queue_length == 1

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestContainer:
    def test_get_blocks_until_put(self):
        env = Environment()
        log = []

        def consumer(env, box):
            yield box.get(5)
            log.append(env.now)

        def producer(env, box):
            yield env.timeout(8)
            yield box.put(5)

        box = Container(env, capacity=10)
        env.process(consumer(env, box))
        env.process(producer(env, box))
        env.run()
        assert log == [8]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        log = []

        def producer(env, box):
            yield box.put(6)
            log.append(("first", env.now))
            yield box.put(6)
            log.append(("second", env.now))

        def consumer(env, box):
            yield env.timeout(5)
            yield box.get(6)

        box = Container(env, capacity=10)
        env.process(producer(env, box))
        env.process(consumer(env, box))
        env.run()
        assert log == [("first", 0), ("second", 5)]

    def test_initial_level(self):
        env = Environment()
        box = Container(env, capacity=10, init=10)
        assert box.level == 10

    def test_init_above_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        got = []

        def consumer(env, store):
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        store = Store(env)
        store.put("a")
        store.put("b")
        env.process(consumer(env, store))
        env.run()
        assert got == ["a", "b"]

    def test_get_blocks(self):
        env = Environment()
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env, store):
            yield env.timeout(3)
            store.put("x")

        store = Store(env)
        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [(3, "x")]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
