"""Tests for the byte-counting two-party channel."""

import pytest

from repro.network.channel import CLIENT, SERVER, Channel, wire_size


class TestWireSize:
    def test_bytes(self):
        assert wire_size(b"hello") == 5

    def test_int_charged_as_field_element(self):
        assert wire_size(7) == 6
        assert wire_size(7, field_bytes=8) == 8

    def test_bool(self):
        assert wire_size(True) == 1

    def test_none(self):
        assert wire_size(None) == 0

    def test_containers_recursive(self):
        assert wire_size([b"ab", b"cd"]) == 4
        assert wire_size((1, 2, 3)) == 18
        assert wire_size({1: b"xy"}) == 8

    def test_object_with_size_attribute(self):
        class Sized:
            byte_size = 99

        assert wire_size(Sized()) == 99

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            wire_size(object())


class TestChannel:
    def test_fifo_delivery(self):
        ch = Channel()
        ch.send(CLIENT, b"first")
        ch.send(CLIENT, b"second")
        assert ch.recv(SERVER) == b"first"
        assert ch.recv(SERVER) == b"second"

    def test_direction_separation(self):
        ch = Channel()
        ch.send(CLIENT, b"up")
        ch.send(SERVER, b"down!")
        assert ch.uplink.bytes == 2
        assert ch.downlink.bytes == 5
        assert ch.recv(SERVER) == b"up"
        assert ch.recv(CLIENT) == b"down!"

    def test_empty_recv_raises(self):
        ch = Channel()
        with pytest.raises(RuntimeError):
            ch.recv(CLIENT)

    def test_unknown_sender_rejected(self):
        ch = Channel()
        with pytest.raises(ValueError):
            ch.send("mallory", b"hi")

    def test_explicit_byte_override(self):
        ch = Channel()
        ch.send(CLIENT, b"x", nbytes=1000)
        assert ch.uplink.bytes == 1000

    def test_phase_accounting(self):
        ch = Channel()
        ch.send(CLIENT, b"offline-up")
        ch.set_phase("online")
        ch.send(SERVER, b"online-down")
        summary = ch.summary()
        assert summary["offline_up"] == 10
        assert summary["online_down"] == 11
        assert summary["offline_down"] == 0
        assert summary["online_up"] == 0

    def test_unknown_phase_rejected(self):
        ch = Channel()
        with pytest.raises(ValueError):
            ch.set_phase("midnight")

    def test_total_bytes(self):
        ch = Channel()
        ch.send(CLIENT, b"abc")
        ch.send(SERVER, b"defg")
        assert ch.total_bytes == 7

    def test_message_counters(self):
        ch = Channel()
        for _ in range(5):
            ch.send(CLIENT, b"m")
        assert ch.uplink.messages == 5
