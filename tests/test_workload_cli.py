"""CLI workload entry points: schedule building and the demo pipeline."""

import json

import pytest

from repro.workload.cli import WORKLOAD_KINDS, build_schedule, demo_workload


def _build(kind, **overrides):
    knobs = dict(clients=3, rate=4.0, horizon=2.0, requests=3, skew=1.2,
                 think=0.2, seed=0)
    knobs.update(overrides)
    return build_schedule(kind, **knobs)


def test_build_schedule_kinds():
    poisson = _build("poisson")
    assert poisson.mode == "open"
    assert poisson.meta["burst"] is None
    # Uniform split: every client shares the same rate.
    assert len(set(poisson.meta["rates"])) == 1

    skewed = _build("skewed")
    rates = skewed.meta["rates"]
    assert rates == sorted(rates, reverse=True) and rates[0] > rates[-1]

    burst = _build("burst")
    assert burst.meta["burst"] is not None
    assert burst.meta["rates"][0] > burst.meta["rates"][-1]

    closed = _build("closed")
    assert closed.mode == "closed"
    assert closed.request_counts() == [3, 3, 3]

    assert set(WORKLOAD_KINDS) == {"poisson", "closed", "burst", "skewed"}


def test_build_schedule_deterministic():
    assert _build("burst").to_json() == _build("burst").to_json()


def test_demo_workload_unknown_kind():
    with pytest.raises(ValueError, match="unknown workload kind"):
        demo_workload("weird")


def test_demo_workload_end_to_end(tmp_path, capsys):
    """The CLI pipeline: generate, replay, oracle-check, write artifact."""
    out = tmp_path / "run.json"
    report = demo_workload(
        "poisson",
        clients=2,
        rate=4.0,
        horizon=0.6,
        requests=2,
        seed=0,
        workers=2,
        out_path=str(out),
    )
    assert report.workloads["poisson"]["requests"] == len(report.requests)
    printed = capsys.readouterr().out
    assert "match the plaintext reference" in printed
    artifact = json.loads(out.read_text())
    assert artifact["schedule"]["name"] == "poisson"
    summary = artifact["summary"]
    assert summary["requests_admitted"] + summary["requests_deferred"] + (
        summary["requests_rejected"]
    ) == summary["requests_issued"]


def test_main_dispatches_workload(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "cli.json"
    rc = main([
        "--workload", "closed", "--workload-clients", "2",
        "--workload-requests", "2", "--workload-think", "0.05",
        "--workers", "2", "--workload-out", str(out),
    ])
    assert rc == 0
    assert json.loads(out.read_text())["schedule"]["mode"] == "closed"
    assert "closed" in capsys.readouterr().out
