"""Tests for homomorphic linear algebra (diagonal matvec, conv lowering)."""

import numpy as np
import pytest

from repro.crypto.rng import SecureRandom
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator, required_rotation_steps
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def rig():
    params = toy_params(n=128)
    ctx = BfvContext(params, SecureRandom(3))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    gk = ctx.galois_keygen(sk, [encoder.galois_element_for_rotation(1)])
    return params, ctx, encoder, sk, pk, gk


def run_matvec(rig, matrix, vector):
    params, ctx, encoder, sk, pk, gk = rig
    evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
    packed = evaluator.pack_vector(vector)
    ct = ctx.encrypt(pk, encoder.encode(packed))
    ct_out = evaluator.matvec(ct, matrix)
    return encoder.decode(ctx.decrypt(sk, ct_out))[: len(matrix)], evaluator


class TestMatvec:
    def test_identity(self, rig):
        params = rig[0]
        n = 8
        eye = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        x = list(range(1, n + 1))
        y, _ = run_matvec(rig, eye, x)
        assert y == x

    def test_random_square(self, rig):
        params = rig[0]
        rng = np.random.default_rng(11)
        n = 16
        m = rng.integers(0, params.t, size=(n, n)).tolist()
        x = rng.integers(0, params.t, size=n).tolist()
        y, _ = run_matvec(rig, m, x)
        expected = [sum(m[i][j] * x[j] for j in range(n)) % params.t for i in range(n)]
        assert y == expected

    def test_rectangular_tall(self, rig):
        """More outputs than inputs (n_out > n_in)."""
        params = rig[0]
        rng = np.random.default_rng(5)
        m = rng.integers(0, 100, size=(32, 8)).tolist()
        x = rng.integers(0, 100, size=8).tolist()
        y, _ = run_matvec(rig, m, x)
        expected = [sum(m[i][j] * x[j] for j in range(8)) % params.t for i in range(32)]
        assert y == expected

    def test_rectangular_wide(self, rig):
        """Fewer outputs than inputs (n_out < n_in)."""
        params = rig[0]
        rng = np.random.default_rng(6)
        m = rng.integers(0, 100, size=(4, 16)).tolist()
        x = rng.integers(0, 100, size=16).tolist()
        y, _ = run_matvec(rig, m, x)
        expected = [sum(m[i][j] * x[j] for j in range(16)) % params.t for i in range(4)]
        assert y == expected

    def test_rotation_count(self, rig):
        m = [[1] * 16 for _ in range(4)]
        _, evaluator = run_matvec(rig, m, list(range(16)))
        assert evaluator.rotations_performed == 15
        assert evaluator.plain_mults_performed == 16

    def test_width_must_divide_row(self, rig):
        params, ctx, encoder, sk, pk, gk = rig
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
        with pytest.raises(ValueError):
            evaluator.pack_vector([1] * 7)

    def test_too_tall_rejected(self, rig):
        params, ctx, encoder, sk, pk, gk = rig
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
        packed = evaluator.pack_vector([1] * 8)
        ct = ctx.encrypt(pk, encoder.encode(packed))
        too_tall = [[0] * 8 for _ in range(params.row_size + 1)]
        with pytest.raises(ValueError):
            evaluator.matvec(ct, too_tall)


class TestConvLowering:
    def test_identity_kernel(self, rig):
        params = rig[0]
        w = np.zeros((1, 1, 3, 3), dtype=np.int64)
        w[0, 0, 1, 1] = 1
        m = HomomorphicLinearEvaluator.conv_as_matrix(w, (1, 4, 4), 1, params.t)
        x = np.arange(16)
        y = np.array(m) @ x % params.t
        assert (y == x).all()

    def test_matches_plaintext_conv(self, rig):
        """Lowered matrix agrees with direct convolution arithmetic."""
        params = rig[0]
        rng = np.random.default_rng(8)
        c_in, c_out, h, w, k = 2, 3, 4, 4, 3
        weights = rng.integers(0, 20, size=(c_out, c_in, k, k))
        x = rng.integers(0, 20, size=(c_in, h, w))
        matrix = HomomorphicLinearEvaluator.conv_as_matrix(
            weights, (c_in, h, w), 1, params.t
        )
        y_matrix = (np.array(matrix) @ x.reshape(-1)) % params.t
        # Direct dense conv with zero padding.
        padded = np.zeros((c_in, h + 2, w + 2), dtype=np.int64)
        padded[:, 1:-1, 1:-1] = x
        expected = np.zeros((c_out, h, w), dtype=np.int64)
        for oc in range(c_out):
            for oy in range(h):
                for ox in range(w):
                    window = padded[:, oy : oy + k, ox : ox + k]
                    expected[oc, oy, ox] = (weights[oc] * window).sum() % params.t
        assert (y_matrix.reshape(c_out, h, w) == expected).all()

    def test_channel_mismatch_rejected(self, rig):
        params = rig[0]
        w = np.zeros((1, 2, 3, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            HomomorphicLinearEvaluator.conv_as_matrix(w, (3, 4, 4), 1, params.t)

    def test_end_to_end_encrypted_conv(self, rig):
        """Encrypted conv via lowering equals plaintext conv."""
        params = rig[0]
        rng = np.random.default_rng(9)
        weights = rng.integers(0, 10, size=(2, 1, 3, 3))
        x = rng.integers(0, 10, size=(1, 4, 4))
        matrix = HomomorphicLinearEvaluator.conv_as_matrix(
            weights, (1, 4, 4), 1, params.t
        )
        y, _ = run_matvec(rig, matrix, x.reshape(-1).tolist())
        expected = (np.array(matrix) @ x.reshape(-1)) % params.t
        assert y == expected.tolist()


class TestRequiredRotations:
    def test_steps(self):
        assert required_rotation_steps(4) == [1, 2, 3]
        assert required_rotation_steps(1) == []
