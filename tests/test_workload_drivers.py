"""One schedule, two executions — and the saturation acceptance case.

Pins the workload engine's core contract: the functional gateway replay
and the analytic discrete-event replay consume byte-identical schedule
JSON and report the same column block; a skewed + bursty schedule under
a starved store and zero admission queue drives real deferrals with a
balanced admission ledger while every served logit still matches the
plaintext oracle.
"""

import shutil
import tempfile

import pytest

from repro.core.lowering import lower_network, plaintext_reference
from repro.runtime.pool import PrecomputePool
from repro.runtime.serving import demo_network_and_params
from repro.runtime.store import PrecomputeStore
from repro.workload.drivers import (
    ServiceModel,
    draw_schedule_inputs,
    replay_analytic,
    replay_functional,
)
from repro.workload.generators import (
    BurstEnvelope,
    Schedule,
    closed_schedule,
    poisson_schedule,
    uniform_schedule,
    zipf_rates,
)

NETWORK, PARAMS = demo_network_and_params()


def _functional(schedule, *, budget_mb=8.0, workers=2, **kwargs):
    root = tempfile.mkdtemp(prefix="repro-workload-test-")
    try:
        store = PrecomputeStore(root, byte_budget=int(budget_mb * 1e6))
        with PrecomputePool(workers=workers) as pool:
            return replay_functional(
                schedule, NETWORK, PARAMS, store, pool=pool, **kwargs
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _saturation_schedule():
    return poisson_schedule(
        3,
        zipf_rates(3, 5.0, 1.5),
        horizon=1.5,
        seed=11,
        name="burst-skewed",
        burst=BurstEnvelope(on_seconds=0.6, off_seconds=0.5, off_factor=0.1,
                            seed=3),
        max_per_client=3,
    )


def test_one_schedule_two_executions():
    """Both drivers consume the same bytes and report the same columns."""
    schedule = uniform_schedule(2, 2, 0.3, name="pair")
    blob = schedule.to_json()
    # The analytic run consumes a schedule reconstructed from the very
    # bytes the functional run serializes — the canonical-JSON contract.
    reloaded = Schedule.from_json(blob)
    assert reloaded.to_json() == blob

    report = _functional(schedule)
    measured = report.workloads["pair"]

    predicted = replay_analytic(
        reloaded,
        ServiceModel(
            online_seconds=0.2,
            demand_mint_seconds=0.2,
            refill_mint_seconds=0.35,
            workers=2,
        ),
    )
    shared = {
        "mode", "requests", "latency_p50", "latency_p95", "latency_p99",
        "mean_latency", "deferral_rate", "rejected", "goodput_rps",
        "offered_rps", "makespan_seconds",
    }
    assert shared <= set(measured) and shared <= set(predicted)
    assert measured["mode"] == predicted["mode"] == "open"
    assert measured["requests"] == predicted["requests"] == 4
    assert measured["offered_rps"] == predicted["offered_rps"]
    assert predicted["goodput_rps"] > 0
    assert measured["goodput_rps"] > 0
    # All four completions measured; gateway ledger balances.
    assert report.requests_issued == (
        report.requests_admitted
        + report.requests_deferred
        + report.requests_rejected
    )


def test_saturation_deferrals_ledger_and_oracle():
    """The acceptance case: skewed + bursty traffic on a starved gateway
    defers (BUSY) yet never corrupts a result."""
    schedule = _saturation_schedule()
    assert schedule.request_counts()[0] >= schedule.request_counts()[-1]
    inputs = draw_schedule_inputs(schedule, NETWORK, PARAMS)
    report = _functional(
        schedule, budget_mb=0.2, gateway_max_queue=0, inputs=inputs
    )
    assert report.requests_deferred > 0
    assert report.requests_issued == (
        report.requests_admitted
        + report.requests_deferred
        + report.requests_rejected
    )
    assert report.requests_admitted == schedule.total_requests
    columns = report.workloads["burst-skewed"]
    assert columns["busy_retries"] == report.requests_deferred
    assert columns["retry_sleep_seconds"] > 0.0
    assert columns["deferral_rate"] > 0.0
    # Byte-identical logits versus the plaintext oracle for EVERY request.
    lowered = lower_network(NETWORK, PARAMS.t)
    assert len(report.requests) == schedule.total_requests
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )


def test_closed_loop_functional():
    schedule = closed_schedule(2, 2, 0.05, seed=4, name="closed-pair")
    report = _functional(schedule)
    columns = report.workloads["closed-pair"]
    assert columns["mode"] == "closed"
    assert columns["requests"] == 4
    assert columns["latency_p95"] > 0


def test_draw_schedule_inputs_deterministic():
    schedule = uniform_schedule(2, 3, 0.1)
    a = draw_schedule_inputs(schedule, NETWORK, PARAMS)
    b = draw_schedule_inputs(schedule, NETWORK, PARAMS)
    assert a == b
    assert len(a) == 2 and all(len(lane) == 3 for lane in a)
    size = NETWORK.input_shape.elements
    assert all(len(vec) == size for lane in a for vec in lane)
    assert draw_schedule_inputs(schedule, NETWORK, PARAMS, input_seed=2) != a


def test_time_scale_validation():
    schedule = uniform_schedule(1, 1, 0.1)
    with pytest.raises(ValueError, match="time_scale"):
        replay_functional(schedule, NETWORK, PARAMS, None, time_scale=0.0)


# ----------------------------------------------------------- analytic replay


def test_analytic_replay_deterministic():
    schedule = _saturation_schedule()
    model = ServiceModel(
        online_seconds=0.2,
        demand_mint_seconds=0.2,
        refill_mint_seconds=0.35,
        workers=2,
        store_entries=2,
        max_queue=0,
    )
    assert replay_analytic(schedule, model) == replay_analytic(schedule, model)


def test_analytic_counters_balance():
    schedule = _saturation_schedule()
    out = replay_analytic(
        schedule,
        ServiceModel(
            online_seconds=0.2,
            demand_mint_seconds=0.2,
            refill_mint_seconds=0.35,
            workers=2,
            store_entries=2,
            max_queue=0,
        ),
    )
    total = schedule.total_requests
    assert out["requests"] == total
    assert out["hits"] + out["demand_mints"] == total
    assert out["admitted"] == total
    assert out["issued"] == out["admitted"] + out["deferred"]
    assert out["deferred"] > 0  # max_queue=0 must defer under a burst
    assert out["evictions"] > 0  # 2-entry store, 3 clients prefilled


def test_analytic_store_pressure_monotone():
    """More store entries → no more demand mints (hits can only improve)."""
    schedule = poisson_schedule(3, 3.0, horizon=2.0, seed=5,
                                max_per_client=3)
    base = dict(online_seconds=0.1, demand_mint_seconds=0.3,
                refill_mint_seconds=0.3, workers=2)
    starved = replay_analytic(schedule, ServiceModel(**base, store_entries=1))
    roomy = replay_analytic(schedule, ServiceModel(**base, store_entries=None))
    assert starved["demand_mints"] >= roomy["demand_mints"]
    assert roomy["evictions"] == 0


def test_analytic_zero_entry_store_all_demand():
    schedule = uniform_schedule(2, 2, 0.5)
    out = replay_analytic(
        schedule,
        ServiceModel(online_seconds=0.1, demand_mint_seconds=0.2,
                     refill_mint_seconds=0.2, workers=1, store_entries=0,
                     prefill=0),
    )
    assert out["hits"] == 0
    assert out["demand_mints"] == schedule.total_requests


def test_analytic_closed_mode_uses_think_gaps():
    schedule = closed_schedule(1, 3, 0.2, seed=1, distribution="fixed")
    out = replay_analytic(
        schedule,
        ServiceModel(online_seconds=0.1, demand_mint_seconds=0.1,
                     refill_mint_seconds=0.1, workers=1),
    )
    # 3 requests × (0.2 think + 0.1 online), no queueing: makespan ≈ 0.9.
    assert out["requests"] == 3
    assert out["makespan_seconds"] == pytest.approx(0.9, rel=0.2)
