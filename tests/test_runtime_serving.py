"""Multi-client serving loop + pooled online OT.

Enforces the subsystem's two invariants end to end:

* Serving N interleaved clients from one shared pool and per-client store
  namespaces produces logits byte-identical to per-client sequential
  runs — including under a byte budget tight enough that admissions evict
  other clients' precomputes (a miss demand-mints; it must never surface
  a stale or mismatched precompute).
* Threading a pool through ``run_online``'s label OT changes no channel
  byte in either garbler role.
"""

import numpy as np
import pytest

from repro import HybridProtocol, tiny_dataset, tiny_mlp
from repro.core.multiclient import MultiClientConfig, MultiClientSimulator
from repro.core.system import SystemConfig
from repro.he.params import fast_params
from repro.network.channel import Channel
from repro.profiling.model_costs import Protocol, profile_network
from repro.runtime import PrecomputePool, PrecomputeStore, ServingLoop

PARAMS = fast_params(n=256)


def _network(hidden=8):
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=hidden)
    network.randomize_weights(PARAMS.t, np.random.default_rng(0))
    return network


# -- serving loop ---------------------------------------------------------------


def test_serving_loop_matches_per_client_sequential_runs(tmp_path):
    """4 interleaved clients, one shared pool: logits byte-identical to
    each client running its own mint-then-serve sequence alone."""
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=2, min_shard=4) as pool:
        loop = ServingLoop(
            network, PARAMS, 4, store, pool=pool, garbler="client"
        )
        inputs = loop.draw_inputs(1)
        report = loop.run(1, inputs=inputs)

    assert len(report.requests) == 4
    assert report.hit_rate == 1.0  # ample budget: every request buffered
    assert report.demand_mints == 0
    for request in report.requests:
        c = int(request.client[len("client"):])
        sequential = HybridProtocol(
            network, PARAMS, garbler="client", seed=loop.mint_seed(c, 0)
        )
        sequential.run_offline()
        assert request.logits == sequential.run_online(inputs[c][0])


def test_serving_loop_eviction_never_serves_stale(tmp_path):
    """Budget fits ~2 of 4 clients' precomputes: admissions evict, misses
    demand-mint, and every result still matches the plaintext oracle."""
    network = _network()
    store = PrecomputeStore(tmp_path, byte_budget=200_000)
    loop = ServingLoop(network, PARAMS, 4, store, garbler="client")
    inputs = loop.draw_inputs(2)
    report = loop.run(2, inputs=inputs)

    assert report.evictions > 0
    assert report.demand_mints > 0
    assert store.total_bytes <= 200_000
    oracle = HybridProtocol(network, PARAMS, garbler="client", seed=0)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == oracle.plaintext_reference(
            inputs[c][request.index]
        )
    # Queue depths drain monotonically under the round-robin schedule.
    assert [r.queue_depth for r in report.requests] == list(range(7, -1, -1))


def test_serving_loop_without_prefill_demand_mints_everything(tmp_path):
    network = _network()
    store = PrecomputeStore(tmp_path)
    loop = ServingLoop(
        network, PARAMS, 2, store, garbler="client", prefill=0, refill=False
    )
    report = loop.run(1)
    assert report.hit_rate == 0.0
    assert report.demand_mints == 2
    assert report.minted == 2


def test_serving_loop_rejects_budget_below_one_precompute(tmp_path):
    network = _network()
    store = PrecomputeStore(tmp_path, byte_budget=10_000)  # < one entry
    loop = ServingLoop(network, PARAMS, 1, store, garbler="client")
    with pytest.raises(ValueError, match="budget"):
        loop.run(1)


def test_serving_report_summary_is_json_serializable(tmp_path):
    import json

    network = _network()
    loop = ServingLoop(
        network, PARAMS, 2, PrecomputeStore(tmp_path), garbler="server",
        refill=False,
    )
    report = loop.run(1)
    summary = json.loads(json.dumps(report.summary()))
    assert summary["clients"] == 2
    assert summary["requests"] == 2
    assert summary["max_queue_depth"] == report.max_queue_depth
    assert len(summary["occupancy"]) == report.minted + len(report.requests)
    # A reused loop reports only the second run's activity (deltas/slices).
    second = loop.run(1)
    assert second.minted == 2
    assert len(second.occupancy) == second.minted + len(second.requests)


def test_pipelined_serving_matches_sequential_logits(tmp_path):
    """pipelined=True reorders only the schedule: every request's logits
    (and the per-request hit/miss outcome under an ample budget) match
    the serialized drain."""
    network = _network()
    sequential = ServingLoop(
        network, PARAMS, 3, PrecomputeStore(tmp_path / "seq"), garbler="client"
    )
    inputs = sequential.draw_inputs(2)
    report_seq = sequential.run(2, inputs=inputs)

    pipelined = ServingLoop(
        network, PARAMS, 3, PrecomputeStore(tmp_path / "pipe"),
        garbler="client", pipelined=True,
    )
    report_pipe = pipelined.run(2, inputs=inputs)

    assert report_pipe.pipelined and not report_seq.pipelined
    assert len(report_pipe.requests) == len(report_seq.requests)
    by_key = {(r.client, r.index): r.logits for r in report_seq.requests}
    for request in report_pipe.requests:
        assert request.logits == by_key[(request.client, request.index)]
        assert request.hit  # ample budget: refills keep every buffer warm
    assert report_pipe.minted == report_seq.minted


def test_pipelined_report_records_throughput(tmp_path):
    import json

    network = _network()
    loop = ServingLoop(
        network, PARAMS, 2, PrecomputeStore(tmp_path), garbler="client",
        pipelined=True,
    )
    report = loop.run(2)
    summary = json.loads(json.dumps(report.summary()))
    assert summary["pipelined"] is True
    assert summary["serve_seconds"] > 0
    assert summary["throughput_rps"] > 0
    assert summary["throughput_rps"] == pytest.approx(
        len(report.requests) / report.serve_seconds, rel=1e-3
    )
    # Refill wall-clock is measured inside the drain window, not on top.
    assert report.refill_seconds > 0
    assert report.refill_seconds < report.serve_seconds


def test_multiclient_simulator_run_functional(tmp_path):
    """The analytic simulator's deployment executes for real: measured
    wall-clock/queue/occupancy results to validate the model against."""
    network = _network()
    profile = profile_network(network)
    base = SystemConfig(profile=profile, protocol=Protocol.CLIENT_GARBLER)
    config = MultiClientConfig(base=base, num_clients=4)
    simulator = MultiClientSimulator(config)
    store = base.functional_store(tmp_path, byte_budget=0)  # unbounded
    report = simulator.run_functional(network, store, workers=1, seed=7)
    assert report.num_clients == 4
    assert report.hit_rate == 1.0  # prefilled buffer, like the simulator's
    assert report.max_queue_depth == 3
    assert report.total_mint_seconds > 0
    assert all(r.online_seconds > 0 for r in report.requests)


# -- pooled online OT parity ----------------------------------------------------


class RecordingChannel(Channel):
    """Channel that logs every online-phase message for byte comparison."""

    def __init__(self, field_bytes: int = 6):
        super().__init__(field_bytes=field_bytes)
        self.online_log: list[tuple] = []

    @staticmethod
    def _freeze(payload):
        if isinstance(payload, (list, tuple)):
            return tuple(RecordingChannel._freeze(item) for item in payload)
        return payload

    def send(self, sender, payload, nbytes=None):
        size = super().send(sender, payload, nbytes)
        if self.phase == "online":
            self.online_log.append((sender, self._freeze(payload), size))
        return size


def _online_transcript(garbler, pool):
    network = _network()
    protocol = HybridProtocol(network, PARAMS, garbler=garbler, seed=99)
    protocol.run_offline()
    protocol.channel = RecordingChannel(field_bytes=(protocol.bits + 7) // 8)
    x = np.random.default_rng(5).integers(0, PARAMS.t, size=16).tolist()
    logits = protocol.run_online(x, pool=pool)
    assert logits == protocol.plaintext_reference(x)
    return logits, protocol.channel.online_log, protocol.channel.summary()


@pytest.mark.parametrize("garbler", ["server", "client"])
def test_online_pool_path_is_byte_identical(garbler):
    """run_online(pool=...) changes no channel byte in either role.

    The Client-Garbler role routes its per-layer label OTs through the
    pool; the Server-Garbler role has no online OT — in both, logits and
    every online message must match the sequential run bit for bit.
    """
    logits_seq, log_seq, summary_seq = _online_transcript(garbler, pool=None)
    with PrecomputePool(workers=2, min_shard=4) as pool:
        logits_pool, log_pool, summary_pool = _online_transcript(garbler, pool)
    assert logits_pool == logits_seq
    assert log_pool == log_seq
    assert summary_pool == summary_seq


def test_constructor_pool_serves_run_online():
    """A pool passed at construction is picked up by run_online too."""
    network = _network()
    sequential = HybridProtocol(network, PARAMS, garbler="client", seed=4)
    sequential.run_offline()
    with PrecomputePool(workers=2, min_shard=4) as pool:
        pooled = HybridProtocol(
            network, PARAMS, garbler="client", seed=4, pool=pool
        )
        pooled.run_offline()
        x = np.random.default_rng(6).integers(0, PARAMS.t, size=16).tolist()
        assert pooled.run_online(x) == sequential.run_online(x)
        assert pooled._active_pool is None  # cleared after the phase
    assert (
        pooled.channel.summary()["online_up"]
        == sequential.channel.summary()["online_up"]
    )
    assert (
        pooled.channel.summary()["online_down"]
        == sequential.channel.summary()["online_down"]
    )


def test_demo_cleans_up_created_store_dir(tmp_path, monkeypatch, capsys):
    """demo() must remove the temp store dir it created — and only that.

    A host running the smoke entry point repeatedly must not accrete
    orphaned store directories; a caller-supplied ``store_dir`` stays
    untouched (it is the caller's directory, not the demo's).
    """
    import tempfile

    from repro.runtime.serving import demo

    created = []
    real_mkdtemp = tempfile.mkdtemp

    def recording_mkdtemp(*args, **kwargs):
        kwargs.setdefault("dir", str(tmp_path))
        path = real_mkdtemp(*args, **kwargs)
        created.append(path)
        return path

    monkeypatch.setattr(tempfile, "mkdtemp", recording_mkdtemp)
    summary_path = tmp_path / "summary.json"
    demo(
        num_clients=1, requests_per_client=1, workers=1,
        summary_path=str(summary_path),
    )
    assert len(created) == 1
    import json
    import os

    assert not os.path.exists(created[0])  # cleaned up after the run
    summary = json.loads(summary_path.read_text())  # written before cleanup
    assert summary["store_dir"] == created[0]

    supplied = tmp_path / "keep-me"
    supplied.mkdir()
    demo(num_clients=1, requests_per_client=1, workers=1,
         store_dir=str(supplied))
    assert supplied.exists()  # caller-owned directory is preserved
    assert len(created) == 1  # and no temp dir was created for it
