"""Property-based tests: the protocol is exact on random architectures.

Hypothesis drives random MLP widths, weights, inputs, and garbling roles
through the full functional protocol; every run must match the plaintext
field evaluation bit-exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import HybridProtocol
from repro.he.params import toy_params
from repro.nn.datasets import tiny_dataset
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.network import Network
from repro.nn.shapes import TensorShape

PARAMS = toy_params(n=256)
P = PARAMS.t
ROW = PARAMS.row_size


def make_random_mlp(widths: list[int], seed: int) -> Network:
    """A ReLU MLP with the given layer widths (all dividing the row size)."""
    rng = np.random.default_rng(seed)
    layers = []
    for i in range(len(widths) - 1):
        weights = rng.integers(0, P, size=(widths[i + 1], widths[i])).astype(object)
        layers.append(Linear(widths[i], widths[i + 1], weights=weights, name=f"fc{i}"))
        if i < len(widths) - 2:
            layers.append(ReLU(name=f"relu{i}"))
    return Network("random-mlp", TensorShape(widths[0]), layers)


# Widths must divide the packing row (128 for n=256).
width_strategy = st.sampled_from([2, 4, 8, 16])


class TestProtocolProperties:
    @given(
        hidden=width_strategy,
        out=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
        garbler=st.sampled_from(["server", "client"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_two_layer_mlp_exact(self, hidden, out, seed, garbler):
        net = make_random_mlp([16, hidden, out], seed)
        protocol = HybridProtocol(net, PARAMS, garbler=garbler, seed=seed)
        protocol.run_offline()
        rng = np.random.default_rng(seed + 1)
        x = rng.integers(0, P, size=16).tolist()
        assert protocol.run_online(x) == protocol.plaintext_reference(x)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_three_hidden_layers_exact(self, seed):
        net = make_random_mlp([16, 8, 8, 4, 2], seed)
        protocol = HybridProtocol(net, PARAMS, garbler="client", seed=seed)
        protocol.run_offline()
        rng = np.random.default_rng(seed + 2)
        x = rng.integers(0, P, size=16).tolist()
        assert protocol.run_online(x) == protocol.plaintext_reference(x)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        truncate=st.integers(min_value=0, max_value=6),
    )
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_truncating_protocol_exact(self, seed, truncate):
        net = make_random_mlp([16, 8, 3], seed)
        protocol = HybridProtocol(
            net, PARAMS, garbler="server", seed=seed, truncate_bits=truncate
        )
        protocol.run_offline()
        rng = np.random.default_rng(seed + 3)
        x = rng.integers(0, P, size=16).tolist()
        assert protocol.run_online(x) == protocol.plaintext_reference(x)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_roles_agree(self, seed):
        net = make_random_mlp([16, 4, 2], seed)
        rng = np.random.default_rng(seed + 4)
        x = rng.integers(0, P, size=16).tolist()
        results = []
        for garbler in ("server", "client"):
            protocol = HybridProtocol(net, PARAMS, garbler=garbler, seed=seed)
            protocol.run_offline()
            results.append(protocol.run_online(x))
        assert results[0] == results[1]
