"""Disk-backed precompute store: round-trips, LRU eviction, persistence,
and serving the protocol's online phase from precomputes minted earlier."""

import numpy as np
import pytest

from repro import HybridProtocol, tiny_dataset, tiny_mlp
from repro.he.params import fast_params, toy_params
from repro.runtime import PrecomputeStore, StoreKey, params_fingerprint
from repro.runtime.store import KIND_OFFLINE, KIND_RELU

KEY = StoreKey(model="m", params="p", client="c0")


def test_put_get_round_trip(tmp_path):
    store = PrecomputeStore(tmp_path)
    name = store.put(KEY, KIND_RELU, b"hello-bytes")
    assert store.get(KEY, KIND_RELU, name) == b"hello-bytes"
    assert store.total_bytes == len(b"hello-bytes")
    assert store.entry_count == 1
    assert store.names(KEY, KIND_RELU) == [name]
    # Unknown lookups are None / empty, not errors.
    assert store.get(KEY, KIND_RELU, "nope") is None
    assert store.names(KEY, "other") == []


def test_take_consumes_oldest_first(tmp_path):
    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"first", name="a")
    store.put(KEY, KIND_RELU, b"second", name="b")
    assert store.take(KEY, KIND_RELU) == b"first"
    assert store.names(KEY, KIND_RELU) == ["b"]
    assert store.take(KEY, KIND_RELU) == b"second"
    assert store.take(KEY, KIND_RELU) is None
    assert store.entry_count == 0


def test_take_drains_fifo_even_after_peeks(tmp_path):
    """get() refreshes LRU recency but must not reorder the FIFO drain."""
    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"first", name="a")
    store.put(KEY, KIND_RELU, b"second", name="b")
    assert store.get(KEY, KIND_RELU, "a") == b"first"  # peek bumps recency
    assert store.take(KEY, KIND_RELU) == b"first"  # still oldest-inserted
    assert store.take(KEY, KIND_RELU) == b"second"


def test_lru_eviction_respects_access_order(tmp_path):
    store = PrecomputeStore(tmp_path, byte_budget=30)
    store.put(KEY, KIND_RELU, b"x" * 10, name="a")
    store.put(KEY, KIND_RELU, b"x" * 10, name="b")
    store.put(KEY, KIND_RELU, b"x" * 10, name="c")
    assert store.evictions == 0
    # Touch "a" so "b" becomes least recently used.
    assert store.get(KEY, KIND_RELU, "a") is not None
    store.put(KEY, KIND_RELU, b"x" * 10, name="d")
    assert store.evictions == 1
    assert store.get(KEY, KIND_RELU, "b") is None
    assert store.get(KEY, KIND_RELU, "a") is not None
    assert store.total_bytes <= 30


def test_oversized_entry_is_rejected(tmp_path):
    store = PrecomputeStore(tmp_path, byte_budget=8)
    with pytest.raises(ValueError):
        store.put(KEY, KIND_RELU, b"x" * 9)
    assert store.entry_count == 0


def test_index_persists_across_reopen(tmp_path):
    store = PrecomputeStore(tmp_path, byte_budget=100)
    store.put(KEY, KIND_RELU, b"x" * 10, name="a")
    store.put(KEY, KIND_RELU, b"y" * 10, name="b")
    reopened = PrecomputeStore(tmp_path, byte_budget=100)
    assert reopened.entry_count == 2
    assert reopened.get(KEY, KIND_RELU, "a") == b"x" * 10
    # LRU sequencing carries over: "b" is now older than the touched "a".
    reopened.put(KEY, KIND_RELU, b"z" * 90, name="big")
    assert reopened.get(KEY, KIND_RELU, "b") is None
    assert reopened.get(KEY, KIND_RELU, "a") is not None


def test_dotted_ids_cannot_escape_store_root(tmp_path):
    root = tmp_path / "store"
    store = PrecomputeStore(root)
    evil = StoreKey(model="..", params="..", client="..")
    store.put(evil, KIND_RELU, b"payload", name="esc")
    inside = [p for p in root.rglob("*") if p.is_file()]
    outside = [
        p
        for p in tmp_path.rglob("*")
        if p.is_file() and root not in p.parents
    ]
    assert any(p.name == "relu-esc.bin" for p in inside)
    assert outside == []


def test_params_fingerprint_distinguishes_parameter_sets():
    assert params_fingerprint(fast_params(n=256)) != params_fingerprint(
        toy_params(n=256)
    )
    assert params_fingerprint(fast_params(n=256)) == params_fingerprint(
        fast_params(n=256)
    )


# -- index durability ------------------------------------------------------------


def test_save_index_survives_crash_mid_write(tmp_path, monkeypatch):
    """Torn-write regression: index.json is written via temp + os.replace,
    so a crash during the write leaves the previous index intact."""
    import repro.runtime.store as store_module

    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"safe", name="a")

    real_replace = store_module.os.replace

    def crashing_replace(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(store_module.os, "replace", crashing_replace)
    with pytest.raises(OSError):
        store.put(KEY, KIND_RELU, b"lost", name="b")
    monkeypatch.setattr(store_module.os, "replace", real_replace)

    # The published index is the last complete one: valid JSON, entry "a"
    # present, and nothing torn — the old in-place write would have left
    # a truncated file here. "b"'s already-written payload is unindexed,
    # so reopening sweeps it (with a warning) to keep accounting true.
    with pytest.warns(RuntimeWarning, match="not present in the index"):
        reopened = PrecomputeStore(tmp_path)
    assert reopened.get(KEY, KIND_RELU, "a") == b"safe"
    assert "b" not in reopened.names(KEY, KIND_RELU)
    assert not list(tmp_path.rglob("relu-b.bin"))


def test_unindexed_payload_is_swept_on_open(tmp_path):
    """A crash between a payload write and its index update leaves a .bin
    the (valid) index doesn't know about; opening the store deletes it."""
    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"indexed", name="a")
    orphan = tmp_path / "m" / "p" / "c0" / "relu-ghost.bin"
    orphan.write_bytes(b"x" * 50)
    with pytest.warns(RuntimeWarning, match="not present in the index"):
        reopened = PrecomputeStore(tmp_path)
    assert not orphan.exists()
    assert reopened.get(KEY, KIND_RELU, "a") == b"indexed"
    assert reopened.total_bytes == len(b"indexed")


def test_leftover_tmp_index_is_discarded_on_open(tmp_path):
    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"payload", name="a")
    tmp = tmp_path / "index.json.tmp"
    tmp.write_text('{"seq": 99, "entr')  # torn write of a dead process
    reopened = PrecomputeStore(tmp_path)
    assert not tmp.exists()
    assert reopened.get(KEY, KIND_RELU, "a") == b"payload"


@pytest.mark.parametrize(
    "corruption",
    [b"{torn json", b"[1, 2, 3]", b'{"seq": "x", "entries": []}'],
    ids=["torn", "not-a-dict", "wrong-types"],
)
def test_corrupt_index_warns_and_sweeps_orphans(tmp_path, corruption):
    """A reset index must not silently leak payload bytes: every now-
    unindexed .bin file is deleted so byte-budget accounting stays true."""
    store = PrecomputeStore(tmp_path)
    store.put(KEY, KIND_RELU, b"x" * 100, name="a")
    store.put(KEY, KIND_RELU, b"y" * 100, name="b")
    (tmp_path / "index.json").write_bytes(corruption)

    with pytest.warns(RuntimeWarning, match="orphaned payload"):
        reopened = PrecomputeStore(tmp_path, byte_budget=150)
    assert reopened.entry_count == 0
    assert reopened.total_bytes == 0
    assert list(tmp_path.rglob("*.bin")) == []
    # The store is immediately usable again under its budget.
    reopened.put(KEY, KIND_RELU, b"z" * 100, name="c")
    assert reopened.get(KEY, KIND_RELU, "c") == b"z" * 100


def test_missing_index_does_not_warn(tmp_path):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        store = PrecomputeStore(tmp_path / "fresh")
    assert store.entry_count == 0


# -- offline-then-online through the store --------------------------------------


def _protocol(garbler, seed, **kwargs):
    params = fast_params(n=256)
    dataset = tiny_dataset(size=4, channels=1, classes=3)
    network = tiny_mlp(dataset, hidden=8)
    network.randomize_weights(params.t, np.random.default_rng(0))
    return (
        HybridProtocol(network, params, garbler=garbler, seed=seed, **kwargs),
        params,
    )


@pytest.mark.parametrize("garbler", ["server", "client"])
def test_offline_export_import_serves_online(tmp_path, garbler):
    store = PrecomputeStore(tmp_path)
    minter, params = _protocol(garbler, seed=42)
    minter.run_offline()
    minter.export_offline(store, "tiny_mlp")

    x = np.random.default_rng(1).integers(0, params.t, size=16).tolist()
    expected = minter.plaintext_reference(x)

    # A fresh protocol instance (different seed — its own RNG never has
    # to match the minter's) serves the online phase from the store.
    server, _ = _protocol(garbler, seed=777)
    assert server.import_offline(store, "tiny_mlp")
    assert server.run_online(x) == expected
    # Consumed: the buffer drained, a second import finds nothing.
    assert not server.import_offline(store, "tiny_mlp")


def test_import_offline_without_consume_keeps_entry(tmp_path):
    store = PrecomputeStore(tmp_path)
    minter, params = _protocol("server", seed=5)
    minter.run_offline()
    minter.export_offline(store, "tiny_mlp")
    server, _ = _protocol("server", seed=6)
    assert server.import_offline(store, "tiny_mlp", consume=False)
    assert store.entry_count == 1


def test_import_offline_rejects_mismatched_network(tmp_path):
    store = PrecomputeStore(tmp_path)
    minter, params = _protocol("server", seed=5)
    minter.run_offline()
    minter.export_offline(store, "tiny_mlp")

    dataset = tiny_dataset(size=4, channels=1, classes=3)
    other_network = tiny_mlp(dataset, hidden=4)  # different hidden width
    other_network.randomize_weights(params.t, np.random.default_rng(0))
    other = HybridProtocol(other_network, params, garbler="server", seed=6)
    with pytest.raises(ValueError):
        other.import_offline(store, "tiny_mlp")


def test_import_offline_rejects_wrong_garbler_role(tmp_path):
    """A transcript minted under one role must not bind to the other —
    the mask owner flips, so every stored label map keys wrong wires."""
    store = PrecomputeStore(tmp_path)
    minter, _ = _protocol("client", seed=5)
    minter.run_offline()
    minter.export_offline(store, "tiny_mlp")
    other, _ = _protocol("server", seed=6)
    with pytest.raises(ValueError, match="garbler"):
        other.import_offline(store, "tiny_mlp")
    # The rejected entry survives for the protocol it actually fits.
    assert store.entry_count == 1
    match, _ = _protocol("client", seed=7)
    assert match.import_offline(store, "tiny_mlp")


def test_import_offline_rejects_moved_relu_structure(tmp_path):
    """Same linear widths, different ReLU placement: rejected, not consumed."""
    from repro.nn.layers import Flatten, Linear
    from repro.nn.network import Network

    store = PrecomputeStore(tmp_path)
    minter, params = _protocol("server", seed=5)
    minter.run_offline()
    minter.export_offline(store, "tiny_mlp")

    dataset = tiny_dataset(size=4, channels=1, classes=3)
    s = dataset.input_shape
    no_relu = Network(
        "NoRelu", s,
        [
            Flatten(),
            Linear(s.elements, 8, name="fc1"),
            Linear(8, dataset.num_classes, name="fc2"),
        ],
    )
    no_relu.randomize_weights(params.t, np.random.default_rng(0))
    other = HybridProtocol(no_relu, params, garbler="server", seed=6)
    with pytest.raises(ValueError, match="ReLU"):
        other.import_offline(store, "tiny_mlp")
    assert store.entry_count == 1  # rejected transcripts stay buffered


def test_pooled_minting_serves_same_bytes(tmp_path):
    """A workers=2 minted precompute is byte-identical to a sequential one."""
    store_a = PrecomputeStore(tmp_path / "a")
    store_b = PrecomputeStore(tmp_path / "b")
    seq, _ = _protocol("client", seed=42)
    seq.run_offline()
    name_a = seq.export_offline(store_a, "tiny_mlp")
    pooled, _ = _protocol("client", seed=42, workers=2)
    pooled.run_offline()
    name_b = pooled.export_offline(store_b, "tiny_mlp")
    key = StoreKey.for_protocol("tiny_mlp", seq.params, "client0")
    assert store_a.get(key, KIND_OFFLINE, name_a) == store_b.get(
        key, KIND_OFFLINE, name_b
    )
