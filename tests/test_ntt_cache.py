"""Regression tests for the bounded NTT-context LRU cache.

The cache (`repro.he.polynomial._NTT_CACHE`) backs every RingPoly/RnsPoly
multiplication; these tests pin the behaviours the rest of the system
relies on: clearing, the LRU eviction order (recently used entries
survive), per-backend keying, and — new with the RNS chain — that a
chain's per-prime contexts coexist in steady state instead of thrashing.
"""

import random

import pytest

from repro.backend import available_backends, get_backend
from repro.crypto.modmath import find_ntt_prime
from repro.crypto.rng import SecureRandom
from repro.he import polynomial
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import toy_params
from repro.he.polynomial import (
    RingPoly,
    clear_ntt_cache,
    ntt_cache_keys,
    ntt_cache_size,
)

N = 16


def _mul_at(q):
    RingPoly([1] * N, q) * RingPoly([2] * N, q)
    return q


def _distinct_primes(count, start_bits=20):
    primes, bits = [], start_bits
    while len(primes) < count:
        p = find_ntt_prime(bits, N)
        if p not in primes:
            primes.append(p)
        bits += 1
    return primes


class TestLruBasics:
    def test_clear_resets(self):
        _mul_at(find_ntt_prime(20, N))
        assert ntt_cache_size() > 0
        clear_ntt_cache()
        assert ntt_cache_size() == 0
        assert ntt_cache_keys() == ()

    def test_hit_does_not_grow_cache(self):
        clear_ntt_cache()
        q = find_ntt_prime(21, N)
        _mul_at(q)
        size = ntt_cache_size()
        for _ in range(5):
            _mul_at(q)
        assert ntt_cache_size() == size

    def test_eviction_is_oldest_first(self):
        clear_ntt_cache()
        primes = _distinct_primes(polynomial._NTT_CACHE_MAX + 2)
        fill = primes[: polynomial._NTT_CACHE_MAX]
        for q in fill:
            _mul_at(q)
        assert ntt_cache_size() == polynomial._NTT_CACHE_MAX
        # One more insert evicts exactly the oldest entry.
        _mul_at(primes[polynomial._NTT_CACHE_MAX])
        keys = ntt_cache_keys()
        assert len(keys) == polynomial._NTT_CACHE_MAX
        assert all(key[1] != fill[0] for key in keys)
        assert any(key[1] == fill[1] for key in keys)

    def test_reuse_refreshes_lru_position(self):
        clear_ntt_cache()
        primes = _distinct_primes(polynomial._NTT_CACHE_MAX)
        for q in primes:
            _mul_at(q)
        _mul_at(primes[0])  # touch the oldest: it must now survive
        # A fresh prime outside the fill range evicts primes[1] instead.
        _mul_at(find_ntt_prime(60, N))
        keys = ntt_cache_keys()
        assert any(key[1] == primes[0] for key in keys)
        assert all(key[1] != primes[1] for key in keys)
        # The touched entry sits ahead of the new insert, at the MRU end.
        assert keys[-2][1] == primes[0]

    def test_keys_are_per_backend(self):
        clear_ntt_cache()
        q = find_ntt_prime(22, N)
        names = available_backends()
        for name in names:
            be = get_backend(name)
            RingPoly([1] * N, q, backend=be) * RingPoly([2] * N, q, backend=be)
        assert ntt_cache_size() == len(names)
        assert {key[2] for key in ntt_cache_keys()} == set(names)


class TestRnsChainCaching:
    @pytest.fixture()
    def rig(self):
        import dataclasses

        clear_ntt_cache()
        params = dataclasses.replace(toy_params(n=128), representation="rns")
        ctx = BfvContext(params, SecureRandom(11))
        encoder = BatchEncoder(params)
        sk, pk = ctx.keygen()
        return params, ctx, encoder, sk, pk

    def test_chain_fits_comfortably_under_the_bound(self):
        params = toy_params(n=128)
        assert len(params.rns_primes) * 2 <= polynomial._NTT_CACHE_MAX

    def test_one_context_per_chain_prime(self, rig):
        params, ctx, encoder, sk, pk = rig
        ctx.encrypt(pk, encoder.encode([1, 2, 3]))
        cached_q = {key[1] for key in ntt_cache_keys()}
        assert set(params.rns_primes) <= cached_q
        # Nothing should have built a context at the wide composite q.
        assert params.q not in cached_q

    def test_steady_state_does_not_thrash(self, rig):
        params, ctx, encoder, sk, pk = rig
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        ct = ctx.encrypt(pk, encoder.encode(list(range(10))))
        before = set(ntt_cache_keys())
        size_before = ntt_cache_size()
        for _ in range(3):
            ct = ctx.rotate(ctx.mul_plain(ct, encoder.encode([3] * params.n)), g, gk)
        # Repeated full-width ciphertext ops reuse the same per-prime
        # contexts: no new entries, no evictions, no rebuild churn.
        assert set(ntt_cache_keys()) == before
        assert ntt_cache_size() == size_before
        assert encoder.decode(ctx.decrypt(sk, ct))[:3] == [
            27 * v % params.t for v in (3, 4, 5)
        ]


class TestCacheCorrectnessUnderEviction:
    def test_results_survive_eviction_and_rebuild(self):
        """Evicting a context and rebuilding it gives identical products."""
        clear_ntt_cache()
        rng = random.Random(9)
        q = find_ntt_prime(26, N)
        a = [rng.randrange(q) for _ in range(N)]
        b = [rng.randrange(q) for _ in range(N)]
        first = (RingPoly(a, q) * RingPoly(b, q)).coeffs
        for p in _distinct_primes(polynomial._NTT_CACHE_MAX + 1, start_bits=27):
            _mul_at(p)
        assert all(key[1] != q for key in ntt_cache_keys())  # evicted
        assert (RingPoly(a, q) * RingPoly(b, q)).coeffs == first
