"""Tests for OT precomputation and the classic-garbling ablation baseline."""

import random

import pytest

from repro.crypto.rng import SecureRandom
from repro.gc.circuit import CircuitBuilder, int_to_bits, words_to_int
from repro.gc.classic import ClassicEvaluator, ClassicGarbler
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit, relu_reference
from repro.ot.precomputed import online_ot_bytes, precompute_ots


class TestPrecomputedOt:
    def test_correctness(self):
        rnd = random.Random(0)
        n = 64
        sender, receiver = precompute_ots(n, SecureRandom(1))
        pairs = [(rnd.randbytes(16), rnd.randbytes(16)) for _ in range(n)]
        real = [rnd.getrandbits(1) for _ in range(n)]
        corrections = receiver.corrections(real)
        masked = sender.respond(corrections, pairs)
        got = receiver.recover(real, masked)
        for g, c, (m0, m1) in zip(got, real, pairs):
            assert g == (m1 if c else m0)

    def test_all_choice_patterns(self):
        for real_bit in (0, 1):
            sender, receiver = precompute_ots(8, SecureRandom(2))
            pairs = [(bytes([i] * 16), bytes([200 + i] * 16)) for i in range(8)]
            real = [real_bit] * 8
            masked = sender.respond(receiver.corrections(real), pairs)
            got = receiver.recover(real, masked)
            assert got == [p[real_bit] for p in pairs]

    def test_batch_size_mismatch_rejected(self):
        sender, receiver = precompute_ots(4, SecureRandom(3))
        with pytest.raises(ValueError):
            receiver.corrections([0] * 5)
        with pytest.raises(ValueError):
            sender.respond([0] * 4, [(b"x" * 16, b"y" * 16)] * 3)
        with pytest.raises(ValueError):
            receiver.recover([0] * 4, [(b"x" * 16, b"y" * 16)] * 3)

    def test_online_bytes_formula(self):
        # One correction bit per OT plus two masked labels.
        assert online_ot_bytes(800) == 100 + 2 * 800 * 16

    def test_online_cheaper_than_full_iknp(self):
        from repro.ot.extension import ot_extension_online_bytes

        assert online_ot_bytes(10_000) < ot_extension_online_bytes(10_000)

    def test_lengths(self):
        sender, receiver = precompute_ots(5, SecureRandom(4))
        assert len(sender) == len(receiver) == 5


class TestClassicGarbling:
    def _adder(self):
        builder = CircuitBuilder()
        a = builder.garbler_input_word(6)
        b = builder.evaluator_input_word(6)
        total, carry = builder.add(a, b)
        builder.mark_output(total + [carry])
        return builder.build()

    def test_correctness_random(self):
        rnd = random.Random(1)
        circuit = self._adder()
        garbler = ClassicGarbler(SecureRandom(5))
        garbled, encoding = garbler.garble(circuit)
        evaluator = ClassicEvaluator()
        for _ in range(20):
            x, y = rnd.randrange(64), rnd.randrange(64)
            labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(x, 6))
            for w, bit in zip(circuit.evaluator_inputs, int_to_bits(y, 6)):
                labels[w] = encoding.label_for(w, bit)
            bits = evaluator.decode(garbled, evaluator.evaluate(garbled, labels))
            assert words_to_int(bits) == x + y

    def test_relu_circuit_under_classic_garbling(self):
        p = 65521
        spec = ReluCircuitSpec(bits=16, modulus=p, mask_owner="evaluator")
        circuit = build_relu_circuit(spec)
        garbled, encoding = ClassicGarbler(SecureRandom(6)).garble(circuit)
        evaluator = ClassicEvaluator()
        rnd = random.Random(2)
        for _ in range(5):
            sa, sb, r = rnd.randrange(p), rnd.randrange(p), rnd.randrange(p)
            labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(sa, 16))
            for w, bit in zip(
                circuit.evaluator_inputs, int_to_bits(sb, 16) + int_to_bits(r, 16)
            ):
                labels[w] = encoding.label_for(w, bit)
            bits = evaluator.decode(garbled, evaluator.evaluate(garbled, labels))
            assert words_to_int(bits) == relu_reference(sa, sb, r, p)

    def test_half_gates_halve_the_size(self):
        """The ablation claim: classic tables are 2x the half-gates size."""
        spec = ReluCircuitSpec(bits=16, modulus=65521, mask_owner="evaluator")
        circuit = build_relu_circuit(spec)
        classic, _ = ClassicGarbler(SecureRandom(7)).garble(circuit)
        half, _ = Garbler(SecureRandom(8)).garble(circuit)
        assert classic.size_bytes == pytest.approx(2 * half.size_bytes, rel=0.01)

    def test_xor_still_free(self):
        builder = CircuitBuilder()
        a = builder.garbler_input()
        b = builder.evaluator_input()
        builder.mark_output([builder.xor(a, b)])
        garbled, _ = ClassicGarbler(SecureRandom(9)).garble(builder.build())
        assert garbled.tables == {}
