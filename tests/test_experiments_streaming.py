"""Tests for the simulation-backed experiments (Figures 7, 10, 12, 13).

These use reduced replication counts and shortened sweeps so the suite
stays fast while still checking the qualitative claims of each figure.
"""

import pytest

from repro.experiments import (
    fig07_streaming,
    fig10_lphe_vs_rlp,
    fig12_end_to_end,
    fig13_sensitivity,
)


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig07_streaming.run(replications=2)

    def test_low_rate_is_online_only(self, rows):
        first = rows[0]
        assert first["offline_min"] < 1.0
        assert first["queue_min"] < 1.0
        assert 3 <= first["online_min"] <= 7  # paper: ~4 minutes

    def test_latency_grows_with_rate(self, rows):
        assert rows[-1]["mean_latency_min"] > 3 * rows[0]["mean_latency_min"]

    def test_queue_dominates_at_saturation(self, rows):
        last = rows[-1]
        assert last["queue_min"] > last["online_min"]

    def test_hit_rate_declines(self, rows):
        assert rows[-1]["precompute_hit"] < rows[0]["precompute_hit"]


class TestFig10:
    def test_lphe_beats_rlp_at_16gb(self):
        rows = fig10_lphe_vs_rlp.run(storage_gb=16, replications=2)
        lphe = [r for r in rows if r["strategy"] == "lphe"]
        rlp = [r for r in rows if r["strategy"] == "rlp"]
        # Compare at the lowest arrival rate.
        assert lphe[0]["mean_latency_min"] <= rlp[0]["mean_latency_min"] * 1.05

    def test_rlp_capacity_at_140gb(self):
        rows = fig10_lphe_vs_rlp.run(storage_gb=140, replications=2)
        lphe = [r for r in rows if r["strategy"] == "lphe"]
        rlp = [r for r in rows if r["strategy"] == "rlp"]
        # At the highest swept rate, RLP has lower latency than LPHE.
        assert rlp[-1]["mean_latency_min"] < lphe[-1]["mean_latency_min"]


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig12_end_to_end.run("ResNet-32", "CIFAR-100", replications=2)

    def test_proposed_lowest_latency_at_low_rate(self, rows):
        by_system = {}
        for row in rows:
            by_system.setdefault(row["system"], []).append(row["mean_latency_min"])
        for label, latencies in by_system.items():
            if label != "Proposed-16GB":
                assert by_system["Proposed-16GB"][0] <= latencies[0] * 1.05, label

    def test_baseline_saturates_earlier(self, rows):
        by_system = {}
        for row in rows:
            by_system.setdefault(row["system"], []).append(row["mean_latency_min"])
        assert by_system["Proposed-16GB"][-1] < by_system["SG-16GB"][-1]

    def test_more_storage_helps_baseline(self, rows):
        by_system = {}
        for row in rows:
            by_system.setdefault(row["system"], []).append(row["mean_latency_min"])
        assert by_system["SG-64GB"][-1] <= by_system["SG-16GB"][-1] * 1.3


class TestFig13:
    def test_garble_latencies_match_paper(self):
        lat = fig13_sensitivity.garble_latencies()
        assert lat["Atom"] == pytest.approx(382.6, rel=0.1)
        assert lat["i5"] == pytest.approx(107.2, rel=0.1)
        assert lat["i5 (2x)"] == pytest.approx(53.8, rel=0.1)

    def test_faster_client_helps_cg_not_sg(self):
        rows = fig13_sensitivity.run(server_scale=1, replications=1)
        def lat(system, idx=-1):
            matching = [r for r in rows if r["system"] == system]
            return matching[idx]["mean_latency_min"]
        # CG benefits from a faster client at high rates (garbling bound).
        assert lat("CG - i5 (2x)") <= lat("CG - Atom") * 1.1
        # SG at 16 GB cannot buffer: stays slow regardless of client.
        assert lat("SG - Atom", 0) > lat("CG - Atom", 0)
