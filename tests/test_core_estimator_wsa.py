"""Tests for the protocol estimator, WSA optimizer, and bandwidth model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import SpeedupKnobs, estimate
from repro.core.future import waterfall
from repro.core.wsa import (
    comm_seconds,
    improvement_over_even_split,
    optimal_upload_fraction,
    optimize,
    sweep_allocations,
)
from repro.network.bandwidth import GBPS, MBPS, TddLink, even_split
from repro.nn.datasets import TINY_IMAGENET
from repro.nn.models import resnet18
from repro.profiling.model_costs import CommVolumes, Protocol, profile_network


@pytest.fixture(scope="module")
def r18_tiny():
    return profile_network(resnet18(TINY_IMAGENET))


class TestTddLink:
    def test_split(self):
        link = TddLink(1e9, 0.3)
        assert link.upload_bps == pytest.approx(0.3e9)
        assert link.download_bps == pytest.approx(0.7e9)

    def test_transfer_seconds(self):
        link = TddLink(1e9, 0.5)
        assert link.transfer_seconds(625e5, 625e5) == pytest.approx(2.0)

    def test_quantization(self):
        link = TddLink(1e9, 0.34, quantized=True)
        assert link.effective_upload_fraction == pytest.approx(0.3)

    def test_quantization_clamps_extremes(self):
        assert TddLink(1e9, 0.01, quantized=True).effective_upload_fraction == 0.1
        assert TddLink(1e9, 0.99, quantized=True).effective_upload_fraction == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            TddLink(0, 0.5)
        with pytest.raises(ValueError):
            TddLink(1e9, 0.0)
        with pytest.raises(ValueError):
            TddLink(1e9, 1.0)

    def test_even_split_helper(self):
        assert even_split(1e9).upload_fraction == 0.5

    def test_units(self):
        assert GBPS == 1000 * MBPS


class TestWsaOptimum:
    @given(
        st.floats(min_value=1e3, max_value=1e12),
        st.floats(min_value=1e3, max_value=1e12),
    )
    @settings(max_examples=40, deadline=None)
    def test_sqrt_rule_beats_neighbors(self, up, down):
        """The closed form is a true minimum of the transfer-time model."""
        volumes = CommVolumes(up, down, 0, 0)
        f_star = optimal_upload_fraction(volumes)
        best = comm_seconds(volumes, TddLink(1e9, f_star))
        for f in (f_star * 0.9, min(0.999, f_star * 1.1)):
            if 0 < f < 1:
                assert best <= comm_seconds(volumes, TddLink(1e9, f)) + 1e-9

    def test_symmetric_volumes_even_split(self):
        volumes = CommVolumes(1e9, 1e9, 0, 0)
        assert optimal_upload_fraction(volumes) == pytest.approx(0.5)

    def test_download_heavy_prefers_download(self):
        volumes = CommVolumes(1e8, 1e10, 0, 0)
        assert optimal_upload_fraction(volumes) < 0.3

    def test_paper_optima(self, r18_tiny):
        """SG ~802 Mbps download, CG ~835 Mbps upload (within ~7%)."""
        sg = optimal_upload_fraction(r18_tiny.comm(Protocol.SERVER_GARBLER))
        cg = optimal_upload_fraction(r18_tiny.comm(Protocol.CLIENT_GARBLER))
        assert 0.72 <= 1 - sg <= 0.86  # download fraction
        assert 0.78 <= cg <= 0.90  # upload fraction

    def test_improvement_bounded_and_positive(self, r18_tiny):
        for protocol in Protocol:
            gain = improvement_over_even_split(r18_tiny.comm(protocol), 1e9)
            assert 0.0 < gain < 0.40  # paper: up to 35%

    def test_sweep_shape(self, r18_tiny):
        points = sweep_allocations(r18_tiny.comm(Protocol.SERVER_GARBLER), 1e9)
        assert len(points) == 9
        # Server-Garbler: latency increases as upload share grows past optimum.
        assert points[-1].latency_seconds > points[2].latency_seconds

    def test_optimize_returns_consistent_link(self, r18_tiny):
        volumes = r18_tiny.comm(Protocol.CLIENT_GARBLER)
        link, latency = optimize(volumes, 1e9)
        assert latency == pytest.approx(comm_seconds(volumes, link))


class TestEstimator:
    def test_table1_regression(self, r18_tiny):
        est = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=False, wsa=False)
        rows = est.table_rows()
        assert rows["offline"]["HE"] == pytest.approx(1113.8, rel=0.05)
        assert rows["offline"]["GC"] == pytest.approx(25.1, rel=0.1)
        assert rows["offline"]["Comms"] == pytest.approx(704, rel=0.12)
        assert rows["online"]["GC"] == pytest.approx(200, rel=0.1)
        assert rows["online"]["SS"] == pytest.approx(0.61, rel=0.01)
        assert rows["online"]["Comms"] == pytest.approx(42.5, rel=0.15)
        assert rows["total"]["Total"] == pytest.approx(2052, rel=0.08)

    def test_lphe_and_wsa_cut_54_percent(self, r18_tiny):
        """Paper §6.1: LPHE + WSA reduce Server-Garbler latency by 54.6%."""
        base = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=False, wsa=False)
        opt = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=True, wsa=True)
        reduction = 1 - opt.total_seconds / base.total_seconds
        assert 0.45 <= reduction <= 0.62

    def test_client_garbler_online_speedup(self, r18_tiny):
        """Paper §5.1: Client-Garbler gives ~2x online speedup."""
        sg = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=True, wsa=True)
        cg = estimate(r18_tiny, Protocol.CLIENT_GARBLER, lphe=True, wsa=True)
        speedup = sg.online.total / cg.online.total
        assert 1.5 <= speedup <= 2.6

    def test_single_inference_sg_beats_cg(self, r18_tiny):
        """Paper §6.1: for one inference SG* is ~13% faster than CG."""
        sg = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=True, wsa=True)
        cg = estimate(r18_tiny, Protocol.CLIENT_GARBLER, lphe=True, wsa=True)
        assert sg.total_seconds < cg.total_seconds
        assert cg.total_seconds / sg.total_seconds < 1.25

    def test_knobs_monotone(self, r18_tiny):
        base = estimate(r18_tiny, Protocol.CLIENT_GARBLER)
        faster = estimate(
            r18_tiny, Protocol.CLIENT_GARBLER, knobs=SpeedupKnobs(gc=10, he=10)
        )
        assert faster.total_seconds < base.total_seconds

    def test_relu_reduction_shrinks_storage(self, r18_tiny):
        base = estimate(r18_tiny, Protocol.CLIENT_GARBLER)
        fewer = estimate(
            r18_tiny, Protocol.CLIENT_GARBLER, knobs=SpeedupKnobs(relu_reduction=10)
        )
        assert fewer.client_storage_bytes < base.client_storage_bytes / 5

    def test_offline_fraction_dominates(self, r18_tiny):
        est = estimate(r18_tiny, Protocol.SERVER_GARBLER, lphe=False, wsa=False)
        assert 0.8 < est.offline_fraction < 0.95  # paper: 88%


class TestFigure14:
    def test_waterfall_values(self, r18_tiny):
        paper = {
            "Server Garbler*": 930,
            "Client Garbler": 1052,
            "GC FASE 19x": 662,
            "GC 100x": 645,
            "HE 1000x": 492,
            "BW 10x": 54,
            "Fewer ReLUs": 6,
        }
        for step in waterfall(r18_tiny):
            expected = paper[step.label]
            assert 0.7 * expected <= step.total_seconds <= 1.35 * expected, step.label

    def test_waterfall_monotone_after_cg(self, r18_tiny):
        steps = waterfall(r18_tiny)
        totals = [s.total_seconds for s in steps[1:]]  # from Client Garbler on
        assert totals == sorted(totals, reverse=True)

    def test_offline_fraction_stays_majority(self, r18_tiny):
        for step in waterfall(r18_tiny):
            assert step.offline_percent > 60
