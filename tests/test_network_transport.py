"""Transport lifecycle regressions: close/drain, connect retry, listener.

Each test here pins one of the concrete contract fixes that the
concurrent serving gateway depends on:

* ``SocketTransport.recv`` after ``close()`` must still deliver frames
  that were already complete in the userspace buffer (``pending`` was
  advertising them; raising ``TransportClosed`` anyway contradicted it).
* ``SocketTransport.connect`` must not sleep after its *final* failed
  attempt, and must name the attempt count in the error.
* ``SocketListener.accept`` must catch the ``TimeoutError`` builtin
  (``socket.timeout`` is a deprecated alias of it since 3.10) and
  translate it to ``TransportError``.
* The selector hooks — ``fileno()`` / ``needs_flush`` / ``flush()`` on
  transports, ``fileno()`` / ``poll_accept()`` on listeners — behave as
  the gateway's event loop assumes.
"""

import selectors
import socket
import struct
import time

import pytest

from repro.network.transport import (
    SocketListener,
    SocketTransport,
    TransportClosed,
    TransportError,
)


def _frame(payload: bytes) -> bytes:
    return struct.pack("<I", len(payload)) + payload


class TestRecvAfterClose:
    def test_buffered_complete_frames_survive_close(self):
        """Frames fully received before close() are still deliverable."""
        client, server = SocketTransport.loopback_pair()
        try:
            client.send(b"first")
            client.send(b"second")
            # Pull both frames into the server's userspace buffer without
            # consuming them, then close the receiving endpoint.
            deadline = time.monotonic() + 5
            while len(server._buf) < len(_frame(b"first") + _frame(b"second")):
                chunk = server._sock.recv(65536)
                server._buf += chunk
                assert time.monotonic() < deadline
            server.close()
            assert server.pending  # advertised...
            assert server.recv(wait=False) == b"first"  # ...and delivered
            assert server.recv() == b"second"
            with pytest.raises(TransportClosed):
                server.recv()
        finally:
            client.close()
            server.close()

    def test_half_received_frame_is_not_deliverable(self):
        """A frame whose tail never arrived raises, never truncates."""
        client, server = SocketTransport.loopback_pair()
        try:
            server._buf += _frame(b"whole") + _frame(b"torn")[:-2]
            server.close()
            assert server.recv() == b"whole"
            assert not server.pending
            with pytest.raises(TransportClosed):
                server.recv()
        finally:
            client.close()
            server.close()


class TestConnectRetries:
    def _dead_port(self) -> int:
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        return port

    def test_no_sleep_after_final_attempt(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        with pytest.raises(TransportError):
            SocketTransport.connect(
                "127.0.0.1", self._dead_port(), retries=3, delay=0.25
            )
        # 3 attempts, sleeps only *between* them: 2, not 3.
        assert sleeps == [0.25, 0.25]

    def test_single_attempt_never_sleeps(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        with pytest.raises(TransportError):
            SocketTransport.connect(
                "127.0.0.1", self._dead_port(), retries=1, delay=5.0
            )
        assert sleeps == []

    def test_error_reports_attempt_count_and_cause(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda s: None)
        with pytest.raises(TransportError) as excinfo:
            SocketTransport.connect(
                "127.0.0.1", self._dead_port(), retries=3
            )
        message = str(excinfo.value)
        assert "3 attempt(s)" in message
        assert "refused" in message.lower() or "Errno" in message

    def test_zero_retries_still_attempts_once(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda s: None)
        with pytest.raises(TransportError) as excinfo:
            SocketTransport.connect(
                "127.0.0.1", self._dead_port(), retries=0
            )
        assert "1 attempt(s)" in str(excinfo.value)


class TestListener:
    def test_accept_timeout_raises_transport_error(self):
        with SocketListener() as listener:
            with pytest.raises(TransportError, match="accept timed out"):
                listener.accept(timeout=0.05)
            # The listening socket must come back blocking and reusable.
            assert listener._sock.gettimeout() is None
            client = SocketTransport.connect(
                "127.0.0.1", listener.port, retries=1
            )
            server = listener.accept(timeout=5.0)
            client.send(b"after-timeout")
            assert server.recv() == b"after-timeout"
            client.close()
            server.close()

    def test_poll_accept_returns_none_without_pending_connection(self):
        with SocketListener() as listener:
            assert listener.poll_accept() is None
            # And leaves the listener in blocking mode for accept().
            assert listener._sock.getblocking()

    def test_poll_accept_accepts_pending_connection(self):
        with SocketListener() as listener:
            client = SocketTransport.connect(
                "127.0.0.1", listener.port, retries=1
            )
            deadline = time.monotonic() + 5
            server = None
            while server is None and time.monotonic() < deadline:
                server = listener.poll_accept()
            assert server is not None
            assert server._sock.getblocking()  # not inherited non-blocking
            client.send(b"via-poll")
            assert server.recv() == b"via-poll"
            client.close()
            server.close()

    def test_fileno_registers_with_a_selector(self):
        with SocketListener() as listener:
            sel = selectors.DefaultSelector()
            sel.register(listener, selectors.EVENT_READ)
            assert sel.select(timeout=0) == []  # nothing pending yet
            client = SocketTransport.connect(
                "127.0.0.1", listener.port, retries=1
            )
            events = sel.select(timeout=5.0)
            assert len(events) == 1
            server = listener.poll_accept()
            assert server is not None
            sel.close()
            client.close()
            server.close()


class TestSelectorHooks:
    def test_transport_fileno_matches_socket(self):
        client, server = SocketTransport.loopback_pair()
        try:
            assert client.fileno() == client._sock.fileno()
            sel = selectors.DefaultSelector()
            sel.register(server, selectors.EVENT_READ)
            client.send(b"ping")
            assert len(sel.select(timeout=5.0)) == 1
            assert server.recv(wait=False) == b"ping"
            sel.close()
        finally:
            client.close()
            server.close()

    def test_needs_flush_tracks_outbox_and_flush_drains_it(self):
        client, server = SocketTransport.loopback_pair()
        try:
            assert not client.needs_flush
            # Force bytes to park in the userspace outbox by stuffing the
            # kernel buffers: send far more than the socket pair absorbs.
            blob = bytes(1 << 20)
            parked = False
            for _ in range(64):
                client.send(blob)
                if client.needs_flush:
                    parked = True
                    break
            assert parked, "outbox never backed up — enlarge the burst"
            # Drain the peer; flush() must then empty the outbox.
            received = 0
            deadline = time.monotonic() + 30
            while client.needs_flush:
                assert time.monotonic() < deadline
                if server.recv(wait=False) is not None:
                    received += 1
                client.flush()
            assert received > 0
        finally:
            client.close()
            server.close()

    def test_flush_on_closed_transport_is_a_noop(self):
        client, server = SocketTransport.loopback_pair()
        client.close()
        client.flush()  # must not raise
        server.close()


class TestBoundedCloseFlush:
    """close() makes a best effort to deliver queued outbox bytes, but the
    effort is bounded: a peer that never drains cannot pin close() (and
    whoever called it — a gateway GOAWAY, a client bye) forever."""

    def test_close_delivers_queued_frames_to_a_draining_peer(self):
        client, server = SocketTransport.loopback_pair()
        try:
            # Overfill the kernel buffer so some bytes land in the
            # userspace outbox, then close: the bounded flush must still
            # push everything to a peer that is actively reading.
            payload = b"\xab" * 300_000
            client.send(payload)
            client.send(b"tail")
            client.close()
            assert server.recv(wait=True) == payload
            assert server.recv(wait=True) == b"tail"
        finally:
            client.close()
            server.close()

    def test_close_is_bounded_when_peer_never_drains(self, monkeypatch):
        from repro.network import transport as transport_mod

        monkeypatch.setattr(transport_mod, "_CLOSE_FLUSH_SECONDS", 0.3)
        client, server = SocketTransport.loopback_pair()
        try:
            # Shrink both kernel buffers so the outbox genuinely backs up.
            client._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, 8192
            )
            server._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 8192
            )
            client.send(b"\xcd" * 8_000_000)  # far beyond kernel capacity
            assert client.needs_flush  # userspace outbox is holding bytes
            start = time.monotonic()
            client.close()  # peer never reads: must give up, not hang
            elapsed = time.monotonic() - start
            assert elapsed < 5.0, f"close() blocked {elapsed:.1f}s"
        finally:
            server.close()
