"""Tests for plaintext NN layers (float and mod-p semantics)."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    ReLU,
    Residual,
)
from repro.nn.shapes import TensorShape

P = 65521


class TestConv2d:
    def test_identity_kernel(self):
        conv = Conv2d(1, 1, 3)
        conv.weights[0, 0, 1, 1] = 1.0
        x = np.arange(16.0).reshape(1, 4, 4)
        assert np.allclose(conv.forward(x), x)

    def test_shape_same_padding(self):
        conv = Conv2d(3, 8, 3)
        assert conv.output_shape(TensorShape(3, 32, 32)) == TensorShape(8, 32, 32)

    def test_strided_shape(self):
        conv = Conv2d(3, 8, 3, stride=2)
        assert conv.output_shape(TensorShape(3, 32, 32)) == TensorShape(8, 16, 16)

    def test_channel_mismatch_rejected(self):
        conv = Conv2d(3, 8, 3)
        with pytest.raises(ValueError):
            conv.output_shape(TensorShape(4, 32, 32))

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 4)

    def test_forward_mod_matches_float_for_small_ints(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, 3, weights=rng.integers(0, 5, (3, 2, 3, 3)).astype(float))
        x = rng.integers(0, 5, (2, 4, 4))
        float_out = conv.forward(x.astype(float))
        mod_out = conv.forward_mod(x.astype(object), P)
        assert (float_out.astype(int) % P == np.array(mod_out, dtype=int)).all()

    def test_strided_forward(self):
        conv = Conv2d(1, 1, 3, stride=2)
        conv.weights[0, 0, 1, 1] = 1.0
        x = np.arange(16.0).reshape(1, 4, 4)
        out = conv.forward(x)
        assert out.shape == (1, 2, 2)
        assert np.allclose(out, [[[0, 2], [8, 10]]])

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            Conv2d(2, 3, 3, weights=np.zeros((3, 2, 5, 5)))


class TestLinear:
    def test_matvec(self):
        fc = Linear(3, 2, weights=np.array([[1.0, 0, 0], [0, 2.0, 0]]))
        assert np.allclose(fc.forward(np.array([5.0, 6.0, 7.0])), [5.0, 12.0])

    def test_forward_mod_wraps(self):
        fc = Linear(1, 1, weights=np.array([[P - 1]], dtype=object))
        out = fc.forward_mod(np.array([2], dtype=object), P)
        assert out.tolist() == [(2 * (P - 1)) % P]

    def test_shape_validation(self):
        fc = Linear(4, 2)
        with pytest.raises(ValueError):
            fc.output_shape(TensorShape(5))

    def test_accepts_flattened_spatial_input(self):
        fc = Linear(16, 2)
        assert fc.output_shape(TensorShape(1, 4, 4)) == TensorShape(2)


class TestReLU:
    def test_float(self):
        relu = ReLU()
        assert np.allclose(relu.forward(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_mod_centered_convention(self):
        relu = ReLU()
        x = np.array([5, P - 5, (P - 1) // 2, (P + 1) // 2], dtype=object)
        out = relu.forward_mod(x, P)
        assert out.tolist() == [5, 0, (P - 1) // 2, 0]

    def test_mod_preserves_shape(self):
        relu = ReLU()
        x = np.ones((2, 3, 4), dtype=object)
        assert relu.forward_mod(x, P).shape == (2, 3, 4)


class TestPooling:
    def test_avg_pool_float(self):
        pool = AvgPool2d(2)
        x = np.array([[[1.0, 3.0], [5.0, 7.0]]])
        assert np.allclose(pool.forward(x), [[[4.0]]])

    def test_avg_pool_mod_is_sum(self):
        pool = AvgPool2d(2)
        x = np.array([[[1, 3], [5, 7]]], dtype=object)
        assert pool.forward_mod(x, P).tolist() == [[[16]]]

    def test_avg_pool_shape_validation(self):
        pool = AvgPool2d(2)
        with pytest.raises(ValueError):
            pool.output_shape(TensorShape(1, 5, 4))

    def test_global_pool(self):
        gap = GlobalAvgPool()
        x = np.ones((3, 4, 4))
        assert np.allclose(gap.forward(x), [1.0, 1.0, 1.0])
        assert gap.output_shape(TensorShape(3, 4, 4)) == TensorShape(3)


class TestFlatten:
    def test_flatten(self):
        f = Flatten()
        assert f.forward(np.ones((2, 3, 4))).shape == (24,)
        assert f.output_shape(TensorShape(2, 3, 4)) == TensorShape(24)


class TestResidual:
    def test_identity_shortcut(self):
        body = [Conv2d(2, 2, 3)]
        block = Residual(body)
        x = np.ones((2, 4, 4))
        # zero conv weights: residual output equals the shortcut.
        assert np.allclose(block.forward(x), x)

    def test_channel_padding_shortcut(self):
        conv = Conv2d(2, 4, 3)
        block = Residual([conv])
        x = np.ones((2, 4, 4))
        out = block.forward(x)
        assert out.shape == (4, 4, 4)
        assert np.allclose(out[:2], x)  # identity part
        assert np.allclose(out[2:], 0)  # zero-padded channels

    def test_strided_shortcut(self):
        conv = Conv2d(2, 2, 3, stride=2)
        block = Residual([conv])
        x = np.arange(32.0).reshape(2, 4, 4)
        out = block.forward(x)
        assert out.shape == (2, 2, 2)
        assert np.allclose(out, x[:, ::2, ::2])

    def test_forward_mod(self):
        conv = Conv2d(1, 1, 3, weights=np.zeros((1, 1, 3, 3)))
        block = Residual([conv])
        x = np.full((1, 2, 2), P - 1, dtype=object)
        assert block.forward_mod(x, P).tolist() == x.tolist()
