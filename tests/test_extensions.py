"""Tests for the extension modules: multi-client serving, energy,
PI-friendly transforms, analytic queueing, and the CLI."""

import pytest

from repro.core.analytic import (
    best_case_latency,
    max_sustainable_rate_per_minute,
    md1_mean_wait,
    offline_service_seconds,
    online_service_seconds,
    worst_case_latency,
)
from repro.core.multiclient import (
    MultiClientConfig,
    MultiClientSimulator,
)
from repro.core.system import OfflineParallelism, SystemConfig, simulate_mean_latency
from repro.nn.datasets import CIFAR100, TINY_IMAGENET
from repro.nn.models import resnet18, resnet32
from repro.nn.transforms import polynomialize_relus, prune_relus
from repro.profiling.energy import EnergyBudget, client_energy, garbling_energy_ratio
from repro.profiling.model_costs import Protocol, profile_network


@pytest.fixture(scope="module")
def r18_tiny():
    return profile_network(resnet18(TINY_IMAGENET))


@pytest.fixture(scope="module")
def cg_config(r18_tiny):
    return SystemConfig(
        profile=r18_tiny,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )


class TestEnergy:
    def test_ratio_matches_paper(self, r18_tiny):
        assert garbling_energy_ratio(r18_tiny) == pytest.approx(2.33 / 1.25)

    def test_budget_components_positive(self, r18_tiny):
        budget = client_energy(r18_tiny, Protocol.CLIENT_GARBLER)
        assert budget.gc_joules > 0
        assert budget.he_joules > 0
        assert budget.radio_joules > 0
        assert budget.total_joules == pytest.approx(
            budget.gc_joules + budget.he_joules + budget.radio_joules
        )

    def test_radio_dominates_on_big_network(self, r18_tiny):
        """Tens of GB over the radio dwarf the GC crypto energy."""
        budget = client_energy(r18_tiny, Protocol.SERVER_GARBLER)
        assert budget.radio_joules > budget.gc_joules

    def test_battery_fraction(self, r18_tiny):
        budget = client_energy(r18_tiny, Protocol.CLIENT_GARBLER)
        fraction = budget.battery_fraction(battery_wh=15.0)
        assert 0 < fraction < 0.1  # one inference: percent-level battery


class TestTransforms:
    def test_prune_reduces_relus(self):
        net = resnet32(CIFAR100)
        pruned = prune_relus(net, keep_fraction=0.5)
        assert pruned.relu_count <= net.relu_count * 0.55
        assert pruned.relu_count > 0

    def test_prune_keeps_linear_layers(self):
        net = resnet32(CIFAR100)
        pruned = prune_relus(net, keep_fraction=0.3)
        assert pruned.linear_layer_count == net.linear_layer_count

    def test_prune_shrinks_cost_profile(self):
        net = resnet18(TINY_IMAGENET)
        pruned = prune_relus(net, keep_fraction=0.1)
        before = profile_network(net).storage(Protocol.SERVER_GARBLER).client_bytes
        after = profile_network(pruned).storage(Protocol.SERVER_GARBLER).client_bytes
        assert after < before * 0.2

    def test_prune_validation(self):
        with pytest.raises(ValueError):
            prune_relus(resnet32(CIFAR100), keep_fraction=0.0)

    def test_prune_full_keep_is_identity(self):
        net = resnet32(CIFAR100)
        assert prune_relus(net, 1.0).relu_count == net.relu_count

    def test_polynomialize_split(self):
        net = resnet32(CIFAR100)
        costs = polynomialize_relus(net, poly_fraction=0.5)
        total = costs.gc_relus + costs.poly_activations
        assert total == net.relu_count
        assert costs.poly_activations >= 0.5 * total
        assert 0 < costs.gc_fraction < 0.5 + 0.2

    def test_polynomialize_extremes(self):
        net = resnet32(CIFAR100)
        none = polynomialize_relus(net, 0.0)
        assert none.poly_activations == 0
        everything = polynomialize_relus(net, 1.0)
        assert everything.gc_relus == 0

    def test_polynomialize_byte_costs(self):
        net = resnet32(CIFAR100)
        costs = polynomialize_relus(net, 1.0)
        assert costs.beaver_triple_bytes() == 3 * 6 * net.relu_count
        assert costs.online_opening_bytes() == 4 * 6 * net.relu_count

    def test_polynomialize_validation(self):
        with pytest.raises(ValueError):
            polynomialize_relus(resnet32(CIFAR100), 1.5)


class TestAnalytic:
    def test_md1_wait_properties(self):
        assert md1_mean_wait(10, 100) < md1_mean_wait(10, 12)
        assert md1_mean_wait(10, 10) == float("inf")
        assert md1_mean_wait(10, 5) == float("inf")

    def test_best_case_matches_simulator_low_rate(self, cg_config):
        analytic = best_case_latency(cg_config, 100 * 60)
        simulated = simulate_mean_latency(cg_config, 100 * 60, replications=3)
        assert simulated["latency"] == pytest.approx(
            analytic.total_seconds, rel=0.30
        )

    def test_worst_case_brackets_no_buffer(self, r18_tiny):
        config = SystemConfig(
            profile=r18_tiny,
            protocol=Protocol.SERVER_GARBLER,
            client_storage_bytes=16e9,  # cannot buffer 41 GB
            wsa=False,
            parallelism=OfflineParallelism.SEQUENTIAL,
        )
        analytic = worst_case_latency(config, 200 * 60)
        simulated = simulate_mean_latency(config, 200 * 60, replications=2)
        assert simulated["latency"] == pytest.approx(
            analytic.total_seconds, rel=0.30
        )

    def test_simulator_between_bounds(self, cg_config):
        rate = 30 * 60
        best = best_case_latency(cg_config, rate).total_seconds
        worst = worst_case_latency(cg_config, rate).total_seconds
        simulated = simulate_mean_latency(cg_config, rate, replications=3)["latency"]
        assert best * 0.7 <= simulated <= worst * 1.3

    def test_sustainable_rate_ordering(self, r18_tiny, cg_config):
        baseline = SystemConfig(
            profile=r18_tiny,
            protocol=Protocol.SERVER_GARBLER,
            client_storage_bytes=16e9,
            wsa=False,
            parallelism=OfflineParallelism.SEQUENTIAL,
        )
        assert max_sustainable_rate_per_minute(
            cg_config
        ) > max_sustainable_rate_per_minute(baseline)

    def test_service_components(self, cg_config):
        assert 0 < online_service_seconds(cg_config) < offline_service_seconds(cg_config)


class TestMultiClient:
    def test_aggregate_storage(self, cg_config):
        mc = MultiClientConfig(base=cg_config, num_clients=9)
        assert mc.aggregate_storage_bytes == pytest.approx(9 * 16e9)

    def test_validation(self, cg_config):
        with pytest.raises(ValueError):
            MultiClientConfig(base=cg_config, num_clients=0)

    def test_nine_clients_low_rate(self, cg_config):
        """§5.2: each client's latency resembles the single-client 16 GB case."""
        mc = MultiClientConfig(base=cg_config, num_clients=3)
        sim = MultiClientSimulator(mc)
        result = sim.run(mean_interarrival=120 * 60, horizon=12 * 3600, seed=1)
        single = simulate_mean_latency(cg_config, 120 * 60, replications=2)
        assert result.all_completed
        assert result.mean_latency == pytest.approx(single["latency"], rel=0.6)

    def test_server_contention_raises_latency(self, cg_config):
        """More clients at the same per-client rate -> more contention."""
        few = MultiClientSimulator(MultiClientConfig(cg_config, 2)).run(
            60 * 60, 12 * 3600, seed=2
        )
        many = MultiClientSimulator(MultiClientConfig(cg_config, 8)).run(
            60 * 60, 12 * 3600, seed=2
        )
        assert many.mean_latency >= few.mean_latency * 0.8

    def test_per_client_latency_accessor(self, cg_config):
        sim = MultiClientSimulator(MultiClientConfig(cg_config, 2))
        result = sim.run(90 * 60, 8 * 3600, seed=3)
        for c in range(2):
            assert result.client_mean_latency(c) >= 0


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_run_fast_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["fig99"]) == 2
