"""Telemetry spine: tracing, metrics registry, phase accounting, stats.

The spine's contract is observational transparency: with telemetry off,
every call site pays one attribute check and returns shared no-op
singletons (no allocation, no timestamps, no lock traffic); with it on,
logits and wire transcripts are byte-identical to the off run — the
instrumentation only *reads* the clock, never the RNG or the wire.

These tests pin down:

* disabled-path identity (shared null singletons) and a generous
  overhead guard on the disabled hot path;
* on/off logit parity for a full protocol run, with zero events off and
  a validating, phase-covering trace on;
* the Chrome-trace-event schema contract (ts/dur/pid/tid on every
  event, proper nesting per lane) in both directions;
* metrics basics, quantile estimation, exact Prometheus round-trip,
  and order-independent (commutative/associative) snapshot merges;
* cross-process merge through ``PrecomputePool.apply_async`` — worker
  events and counters land in the parent registry exactly once;
* exclusive-time phase accounting summing to the window wall-clock;
* per-frame transport counters keyed by direction and decoded format;
* the concurrent gateway end to end: live GWS1 stats with latency
  quantiles, a phase decomposition that sums to the serve window, and
  an exportable, validating trace — plus the CLI wiring for all of it.
"""

import json
import os
import sys
import time

import numpy as np
import pytest

from repro import HybridProtocol, tiny_dataset, tiny_mlp, telemetry
from repro.he.params import fast_params
from repro.network.serialize import frame_format_name
from repro.network.transport import InMemoryTransport
from repro.runtime import PrecomputePool, PrecomputeStore, ServingLoop
from repro.telemetry import (
    HISTOGRAM_BOUNDS,
    METRICS,
    PHASE_NAMES,
    PHASES,
    TRACER,
    MetricsRegistry,
    PhaseClock,
    prometheus_to_snapshot,
    read_trace_events,
    snapshot_to_prometheus,
    validate_trace_events,
)
from repro.telemetry.metrics import _NULL_INSTRUMENT, series_key
from repro.telemetry.trace import _NULL_SPAN

PARAMS = fast_params(n=256)


def _network(hidden=8):
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=hidden)
    network.randomize_weights(PARAMS.t, np.random.default_rng(0))
    return network


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the global spine off and empty."""
    telemetry.configure(False)
    TRACER.reset()
    METRICS.reset()
    yield
    telemetry.configure(False)
    TRACER.reset()
    METRICS.reset()


# -- disabled path: identity and overhead -----------------------------------------


def test_disabled_apis_return_shared_noop_singletons():
    assert TRACER.span("a") is TRACER.span("b") is _NULL_SPAN
    assert telemetry.section("gc", "x") is _NULL_SPAN
    assert METRICS.counter("c") is _NULL_INSTRUMENT
    assert METRICS.gauge("g") is METRICS.histogram("h") is _NULL_INSTRUMENT
    # No-op instruments swallow everything without recording.
    METRICS.counter("c").inc(5)
    METRICS.histogram("h").observe(1.0)
    with TRACER.span("a"):
        pass
    telemetry.record_frame("send", b"\x01rest")
    assert TRACER.events() == []
    assert METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_disabled_hot_path_overhead_is_bounded():
    """100k disabled spans + counters must stay far under a second.

    The bound is deliberately loose (CI machines vary wildly); what it
    guards against is the disabled path regressing from 'one attribute
    check' to per-call allocation or locking.
    """
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        with TRACER.span("hot"):
            pass
        METRICS.counter("hot").inc()
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"disabled-path overhead {elapsed:.3f}s for {n} calls"


# -- on/off parity over a full protocol run ---------------------------------------


def test_protocol_logits_identical_with_telemetry_on_and_off():
    network = _network()
    x = list(range(16))

    def run_once():
        protocol = HybridProtocol(network, PARAMS, garbler="client", seed=7)
        protocol.run_offline()
        return protocol.run_online(x)

    logits_off = run_once()
    assert TRACER.events() == []  # off means *zero* events, not few

    telemetry.configure(True)
    logits_on = run_once()
    assert logits_on == logits_off

    events = TRACER.events()
    assert events, "enabled run recorded no trace events"
    validate_trace_events(events)
    names = {e["name"] for e in events}
    # The session instrumentation covers HE, GC, and OT work plus the
    # resumable phase windows on both roles.
    assert any(n.startswith("he.") for n in names)
    assert any(n.startswith("gc.") for n in names)
    assert any(n.startswith("ot.") for n in names)
    assert any(n.startswith("session.client.") for n in names)
    assert any(n.startswith("session.server.") for n in names)


# -- trace schema validation -------------------------------------------------------


def _event(name, ts, dur, pid=1, tid=1, ph="X"):
    return {"name": name, "ph": ph, "ts": ts, "dur": dur, "pid": pid, "tid": tid}


def test_validate_trace_events_accepts_proper_nesting():
    events = [
        _event("parent", 0, 100),
        _event("child", 10, 30),
        _event("grandchild", 15, 5),
        _event("sibling", 50, 40),
        _event("other-lane", 20, 200, tid=2),
        _event("touching", 100, 10),  # starts exactly where parent ends
        _event("meta", 0, 0, ph="M"),
        _event("instant", 42, 0, ph="i"),
    ]
    assert validate_trace_events(events) == len(events)


def test_validate_trace_events_rejects_schema_violations():
    with pytest.raises(ValueError, match="missing 'dur'"):
        validate_trace_events(
            [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
        )
    with pytest.raises(ValueError, match="not an int"):
        validate_trace_events([_event("x", 0.5, 1)])
    with pytest.raises(ValueError, match="negative"):
        validate_trace_events([_event("x", -1, 1)])
    with pytest.raises(ValueError, match="overlaps"):
        validate_trace_events([_event("a", 0, 100), _event("b", 50, 100)])


def test_export_jsonl_round_trips_and_validates(tmp_path):
    telemetry.configure(True)
    with TRACER.span("outer", kind="test"):
        with TRACER.span("inner"):
            pass
    TRACER.instant("marker", detail=1)
    path = tmp_path / "trace.jsonl"
    count = TRACER.export_jsonl(path)
    events = read_trace_events(path)
    assert len(events) == count == 3
    assert validate_trace_events(events) == 3
    by_name = {e["name"]: e for e in events}
    outer, inner = by_name["outer"], by_name["inner"]
    assert outer["args"] == {"kind": "test"}
    assert outer["pid"] == inner["pid"] == os.getpid()
    # inner nests inside outer on the same (real) thread lane
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]


def test_read_trace_events_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"name": "ok"}\nnot json\n')
    with pytest.raises(ValueError, match="not valid JSON"):
        read_trace_events(path)
    path.write_text('[1, 2, 3]\n')
    with pytest.raises(ValueError, match="not an object"):
        read_trace_events(path)


def test_virtual_tracks_never_collide_with_thread_ids():
    telemetry.configure(True)
    track = TRACER.new_track("lane")
    assert track >= (1 << 24)
    import threading

    assert threading.get_native_id() < (1 << 24)
    # The allocation named the Perfetto lane via a metadata event.
    metas = [e for e in TRACER.events() if e["ph"] == "M"]
    assert metas and metas[0]["tid"] == track
    assert metas[0]["args"]["name"].startswith("lane#")


# -- metrics registry --------------------------------------------------------------


def test_metrics_basics_and_series_identity():
    registry = MetricsRegistry(enabled=True)
    registry.counter("reqs", client="c0").inc()
    registry.counter("reqs", client="c0").inc(2)
    registry.gauge("depth").set(3)
    registry.gauge("depth").set(1)  # set overwrites (max only on merge)
    snap = registry.snapshot()
    assert snap["counters"] == {series_key("reqs", {"client": "c0"}): 3}
    assert snap["gauges"] == {"depth": 1.0}
    # Label order never forks a series.
    assert series_key("m", {"b": 1, "a": 2}) == series_key("m", {"a": 2, "b": 1})


def test_histogram_quantiles_bracket_observations():
    registry = MetricsRegistry(enabled=True)
    hist = registry.histogram("lat")
    for value in (0.001, 0.002, 0.004, 0.1, 0.5, 1.0, 2.0, 8.0):
        hist.observe(value)
    assert hist.count == 8
    assert hist.sum == pytest.approx(11.607)
    # Log-bucket estimates: correct to within one power-of-two bucket.
    assert 0.001 <= hist.quantile(0.5) <= 0.5
    assert 1.0 <= hist.quantile(0.99) <= 16.0
    assert registry.histogram("empty").quantile(0.5) == 0.0
    # Overflow lands in +Inf, not out of range.
    hist.observe(1e9)
    assert hist.buckets[-1] == 1


def test_prometheus_round_trip_is_exact():
    registry = MetricsRegistry(enabled=True)
    registry.counter("frames", dir="send", format="field_vector").inc(12)
    registry.counter("frames", dir="recv", format="field_vector").inc(11)
    registry.gauge("occupancy_bytes").set(12345.5)
    registry.gauge("entries", store="s0").set(7)
    hist = registry.histogram("request_seconds", client='we"ird\\name')
    for value in (0.01, 0.2, 3.0):
        hist.observe(value)
    text = registry.to_prometheus()
    snap = prometheus_to_snapshot(text)
    assert snap == registry.snapshot()
    assert snapshot_to_prometheus(snap) == text
    # The exposition is self-describing: every family carries a TYPE.
    assert "# TYPE frames counter" in text
    assert "# TYPE request_seconds histogram" in text
    assert 'le="+Inf"' in text


def test_metric_merge_is_order_independent():
    def make(seed):
        registry = MetricsRegistry(enabled=True)
        registry.counter("jobs", worker=str(seed)).inc(seed)
        registry.counter("shared").inc(seed * 10)
        registry.gauge("peak").set(seed * 1.5)
        # Binary-exact values: float addition is only order-independent
        # when no rounding occurs, and that exactness is what keeps the
        # merged exposition byte-identical across snapshot orders.
        registry.histogram("lat").observe(0.25 * seed)
        return registry.snapshot()

    snaps = [make(s) for s in (1, 2, 3)]
    merged = []
    for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
        registry = MetricsRegistry(enabled=True)
        for i in order:
            registry.merge(snaps[i])
        merged.append(registry.to_prometheus())
    assert merged[0] == merged[1] == merged[2]
    snap = prometheus_to_snapshot(merged[0])
    assert snap["counters"]["shared"] == 60  # counters add
    assert snap["gauges"]["peak"] == 4.5  # gauges take the max
    assert snap["histograms"]["lat"]["count"] == 3  # buckets add


# -- cross-process merge through the pool -----------------------------------------


def _worker_job(n):
    """Pool job recording worker-side telemetry (enabled by the wrapper)."""
    with telemetry.TRACER.span("test.worker_job", n=n):
        telemetry.METRICS.counter("test_worker_jobs").inc()
        telemetry.METRICS.histogram("test_worker_values").observe(float(n))
    return n * 2


def test_worker_telemetry_merges_into_parent_exactly_once():
    telemetry.configure(True)
    with PrecomputePool(workers=2) as pool:
        jobs = [pool.apply_async(_worker_job, n) for n in (1, 2, 3)]
        values = [job.get(timeout=120) for job in jobs]
        # get() is idempotent: a second join must not double-merge.
        assert [job.get(timeout=120) for job in jobs] == values
    assert values == [2, 4, 6]

    snap = METRICS.snapshot()
    assert snap["counters"]["test_worker_jobs"] == 3
    assert snap["histograms"]["test_worker_values"]["count"] == 3
    events = TRACER.events()
    worker_events = [e for e in events if e["name"] == "test.worker_job"]
    assert sorted(e["args"]["n"] for e in worker_events) == [1, 2, 3]
    # Worker events carry the *worker's* pid on the shared monotonic
    # timeline, so Perfetto shows them as separate processes.
    assert all(e["pid"] != os.getpid() for e in worker_events)
    assert any(e["name"] == "pool.job" for e in events)
    validate_trace_events(events)


def test_single_worker_pool_skips_tracing_wrapper():
    """workers<=1 runs inline: same process, no payload plumbing."""
    telemetry.configure(True)
    with PrecomputePool(workers=1) as pool:
        assert pool.apply_async(_worker_job, 5).get() == 10
    events = [e for e in TRACER.events() if e["name"] == "test.worker_job"]
    assert len(events) == 1 and events[0]["pid"] == os.getpid()
    assert METRICS.snapshot()["counters"]["test_worker_jobs"] == 1


# -- phase accounting --------------------------------------------------------------


def test_phase_clock_exclusive_times_sum_to_window():
    clock = PhaseClock()
    handle = clock.open_window(root="wire")
    start = time.perf_counter()
    with clock.phase("gc"):
        time.sleep(0.02)
        with clock.phase("ot"):  # nested: excluded from gc's total
            time.sleep(0.02)
        time.sleep(0.01)
    time.sleep(0.01)  # unattributed time lands on the root
    wall = time.perf_counter() - start
    totals = handle.close()
    assert set(totals) <= set(PHASE_NAMES)
    # Exclusive attribution: sleeps land in their own phase only.
    assert totals["gc"] == pytest.approx(0.03, abs=0.02)
    assert totals["ot"] == pytest.approx(0.02, abs=0.02)
    assert totals["wire"] >= 0.01 - 0.002
    # The invariant the 5% CI criterion rests on: the buckets decompose
    # the window wall-clock exactly (accrual covers every instant once).
    assert sum(totals.values()) == pytest.approx(wall, abs=0.005)


def test_phase_clock_requires_and_rejects_windows():
    clock = PhaseClock()
    # No window open: charging is a silent no-op, not an error.
    with clock.phase("gc"):
        pass
    handle = clock.open_window(root="wire")
    with pytest.raises(RuntimeError):
        clock.open_window(root="wire")
    handle.close()
    clock.open_window(root="wire").close()  # reusable after close


def test_section_charges_phase_and_records_span():
    telemetry.configure(True)
    handle = PHASES.open_window(root="wire")
    with telemetry.section("gc", "gc.test_block", width=4):
        time.sleep(0.005)
    totals = handle.close()
    assert totals["gc"] >= 0.004
    spans = [e for e in TRACER.events() if e["name"] == "gc.test_block"]
    assert len(spans) == 1 and spans[0]["args"] == {"width": 4}


# -- transport frame counters ------------------------------------------------------


def test_transport_frames_counted_by_direction_and_format():
    telemetry.configure(True)
    a, b = InMemoryTransport.pair()
    from repro.runtime.gateway import encode_hello

    frame = encode_hello("client0")
    assert frame_format_name(frame) == "gateway_hello"
    a.send(frame)
    assert b.recv(wait=True) == frame
    a.send(b"\xffgarbage")  # not a protocol frame: counted as "unknown"
    b.recv(wait=True)
    a.send(b"PI\x01\xee")  # wire magic with an unregistered format code
    b.recv(wait=True)
    counters = METRICS.snapshot()["counters"]
    hello_send = series_key(
        "transport_frames_total", {"dir": "send", "format": "gateway_hello"}
    )
    hello_recv = series_key(
        "transport_frames_total", {"dir": "recv", "format": "gateway_hello"}
    )
    assert counters[hello_send] == 1
    assert counters[hello_recv] == 1
    bytes_key = series_key(
        "transport_bytes_total", {"dir": "send", "format": "gateway_hello"}
    )
    assert counters[bytes_key] == len(frame)
    unknown = series_key(
        "transport_frames_total", {"dir": "send", "format": "unknown"}
    )
    assert counters[unknown] == 1
    unregistered = series_key(
        "transport_frames_total", {"dir": "send", "format": "fmt_0xee"}
    )
    assert counters[unregistered] == 1


# -- the concurrent gateway, end to end -------------------------------------------


def test_concurrent_gateway_stats_phases_and_trace(tmp_path):
    """2 clients through the gateway with the spine on: live GWS1 stats,
    a phase decomposition summing to the serve window, and a validating
    exported trace — while logits still match the sequential reference."""
    telemetry.configure(True)
    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        loop = ServingLoop(
            network, PARAMS, 2, store, pool=pool, garbler="client",
            concurrent=True,
        )
        inputs = loop.draw_inputs(1)
        report = loop.run(1, inputs=inputs)

    assert len(report.requests) == 2 and report.hit_rate == 1.0
    for request in report.requests:
        c = int(request.client[len("client"):])
        reference = HybridProtocol(
            network, PARAMS, garbler="client",
            seed=loop.mint_seed(c, request.index),
        )
        reference.run_offline()
        assert request.logits == reference.run_online(inputs[c][request.index])

    # Live stats fetched over the GWS1 wire op mid-poll.
    stats = report.gateway_stats
    assert stats["served"] == 2
    assert stats["hit_rate"] == 1.0
    assert stats["dropped_sessions"] == 0
    assert stats["store"]["entries"] >= 0
    assert stats["admission"]["issued"] == 2
    assert stats["admission"]["admitted"] == 2
    assert stats["admission"]["connections_accepted"] == 2
    for c in range(2):
        client = stats["clients"][f"client{c}"]
        assert client["requests"] == 1
        assert client["latency_p50"] > 0
        assert client["latency_p95"] >= client["latency_p50"]
        assert client["latency_p99"] >= client["latency_p95"]
    json.dumps(stats)  # the snapshot must stay JSON-serializable

    # Exclusive phase decomposition of the serve window.
    phases = report.phase_seconds
    assert phases and set(phases) <= set(PHASE_NAMES)
    total = sum(phases.values())
    assert total == pytest.approx(report.serve_seconds, rel=0.15, abs=0.05)
    assert phases.get("queue", 0.0) > 0.0  # selector waits are charged

    summary = report.summary()
    assert summary["phase_seconds"] == {
        k: round(v, 6) for k, v in phases.items()
    }
    assert summary["gateway_stats"]["served"] == 2
    json.dumps(summary)

    # The whole run exports as Perfetto-loadable JSONL.
    path = tmp_path / "trace.jsonl"
    count = TRACER.export_jsonl(path)
    events = read_trace_events(path)
    assert validate_trace_events(events) == count > 0
    names = {e["name"] for e in events}
    for expected in ("gateway.prefill", "gateway.step", "gateway.request",
                     "gateway.connection", "gateway.take_precompute",
                     "session.client.online"):
        assert expected in names, f"missing span {expected!r}"
    # The connection span must enclose its requests' spans: one keep-alive
    # connection per client, each carrying its completed-request count.
    conn_events = [e for e in events if e["name"] == "gateway.connection"]
    assert len(conn_events) == 2
    assert {e["args"]["client"] for e in conn_events} == {
        "client0", "client1"
    }
    assert all(e["args"]["requests"] == 1 for e in conn_events)

    # Admission outcomes land on gateway_requests_total{client, outcome},
    # served results on gateway_served_total{client, result}.
    counters = METRICS.snapshot()["counters"]
    for c in range(2):
        admitted = series_key(
            "gateway_requests_total",
            {"client": f"client{c}", "outcome": "admitted"},
        )
        assert counters[admitted] == 1
        hits = series_key(
            "gateway_served_total", {"client": f"client{c}", "result": "hit"}
        )
        assert counters[hits] == 1


def test_stats_probe_leaves_no_transcript_trace(tmp_path):
    """A GWS1 probe must not mint a session, burn a seed, or count as a
    drop — transcripts stay byte-identical with and without probing."""
    from repro.runtime.gateway import ServingGateway, request_stats

    network = _network()
    store = PrecomputeStore(tmp_path)
    with PrecomputePool(workers=1) as pool:
        gateway = ServingGateway(
            network, PARAMS, 1, store, pool=pool, garbler="client",
            expected_per_client=1,
        )
        gateway.start()
        try:
            import threading

            box = {}

            def probe():
                box["stats"] = request_stats(
                    "127.0.0.1", gateway.port, retries=5
                )

            thread = threading.Thread(target=probe, daemon=True)
            thread.start()
            deadline = time.monotonic() + 30
            while thread.is_alive() and time.monotonic() < deadline:
                gateway.poll(0.05)
            thread.join(timeout=5)
        finally:
            gateway.stop()
    stats = box["stats"]
    assert stats["served"] == 0
    assert stats["live_sessions"] == 0
    assert stats["clients"]["client0"]["requests"] == 0
    assert stats["clients"]["client0"]["expected_time_to_miss"] is None
    assert gateway.dropped_sessions == 0  # a clean probe is not a drop
    assert gateway._session_counter == 0  # no session, no seed burned


# -- CLI wiring --------------------------------------------------------------------


def test_cli_serve_concurrent_with_telemetry_artifacts(tmp_path):
    from repro.__main__ import main

    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.prom"
    summary = tmp_path / "summary.json"
    argv = [
        "--serve", "2", "--serve-requests", "1", "--serve-concurrent",
        "--workers", "1",
        "--serve-summary", str(summary),
        "--telemetry", "--trace-out", str(trace),
        "--metrics-out", str(metrics), "--stats",
    ]
    assert main(argv) == 0

    data = json.loads(summary.read_text())
    for key in ("refill_overlap_seconds", "peak_live_sessions",
                "dropped_sessions", "phase_seconds", "gateway_stats"):
        assert key in data
    assert data["concurrent"] is True
    assert data["gateway_stats"]["served"] == 2
    phases = data["phase_seconds"]
    assert phases and set(phases) <= set(PHASE_NAMES)
    assert sum(phases.values()) == pytest.approx(
        data["serve_seconds"], rel=0.15, abs=0.05
    )

    events = read_trace_events(trace)
    assert validate_trace_events(events) > 0

    text = metrics.read_text()
    snap = prometheus_to_snapshot(text)
    assert snapshot_to_prometheus(snap) == text
    frame_counters = [
        k for k in snap["counters"] if k.startswith("transport_frames_total")
    ]
    assert frame_counters, "transport frame counters missing from exposition"
