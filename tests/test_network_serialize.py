"""Round-trip and size tests for the wire serialization codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.gc.circuit import CircuitBuilder
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import toy_params
from repro.network.serialize import (
    WIRE_MAGIC,
    WIRE_VERSION,
    ciphertext_wire_bytes,
    deserialize_bit_vector,
    deserialize_ciphertext,
    deserialize_field_vector,
    deserialize_galois_keys,
    deserialize_garbled_circuit,
    deserialize_label_lists,
    deserialize_labels,
    deserialize_public_key,
    garbled_circuit_wire_bytes,
    serialize_bit_vector,
    serialize_ciphertext,
    serialize_field_vector,
    serialize_galois_keys,
    serialize_garbled_circuit,
    serialize_label_lists,
    serialize_labels,
    serialize_public_key,
)

PARAMS = toy_params(n=128)


class TestWireHeader:
    """Every format opens with magic + version; skew fails loudly."""

    def test_all_formats_carry_the_header(self):
        blob = serialize_field_vector([1], PARAMS.t)
        assert blob[:2] == WIRE_MAGIC
        assert blob[2] == WIRE_VERSION

    def test_version_mismatch_rejected(self):
        blob = serialize_field_vector([1, 2], PARAMS.t)
        skewed = blob[:2] + bytes([WIRE_VERSION + 1]) + blob[3:]
        with pytest.raises(ValueError, match="version"):
            deserialize_field_vector(skewed)

    def test_bad_magic_rejected(self):
        blob = serialize_labels([b"x" * 16])
        with pytest.raises(ValueError, match="magic"):
            deserialize_labels(b"ZZ" + blob[2:])

    def test_cross_format_confusion_rejected(self):
        blob = serialize_bit_vector([1, 0, 1])
        with pytest.raises(ValueError, match="format"):
            deserialize_labels(blob)


class TestFieldVector:
    @given(st.lists(st.integers(min_value=0, max_value=PARAMS.t - 1), max_size=50))
    @settings(max_examples=30)
    def test_roundtrip(self, values):
        data = serialize_field_vector(values, PARAMS.t)
        assert deserialize_field_vector(data) == values

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            serialize_field_vector([PARAMS.t], PARAMS.t)

    def test_trailing_bytes_rejected(self):
        data = serialize_field_vector([1, 2], PARAMS.t)
        with pytest.raises(ValueError):
            deserialize_field_vector(data + b"\x00")


class TestCiphertext:
    def test_roundtrip_decrypts(self):
        ctx = BfvContext(PARAMS, SecureRandom(1))
        encoder = BatchEncoder(PARAMS)
        sk, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode([5, 6, 7]))
        wire = serialize_ciphertext(ct)
        restored = deserialize_ciphertext(wire, PARAMS)
        assert encoder.decode(ctx.decrypt(sk, restored))[:3] == [5, 6, 7]

    def test_wire_size_matches_prediction(self):
        ctx = BfvContext(PARAMS, SecureRandom(2))
        encoder = BatchEncoder(PARAMS)
        _, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode([1]))
        assert len(serialize_ciphertext(ct)) == ciphertext_wire_bytes(PARAMS)

    def test_wire_size_close_to_analytic(self):
        """Serialized size ≈ the params.ciphertext_bytes accounting."""
        assert ciphertext_wire_bytes(PARAMS) == pytest.approx(
            PARAMS.ciphertext_bytes, rel=0.01
        )

    def test_degree_mismatch_rejected(self):
        ctx = BfvContext(PARAMS, SecureRandom(3))
        encoder = BatchEncoder(PARAMS)
        _, pk = ctx.keygen()
        wire = serialize_ciphertext(ctx.encrypt(pk, encoder.encode([1])))
        other = toy_params(n=256)
        with pytest.raises(ValueError):
            deserialize_ciphertext(wire, other)


class TestKeys:
    def test_public_key_roundtrip_encrypts(self):
        ctx = BfvContext(PARAMS, SecureRandom(21))
        encoder = BatchEncoder(PARAMS)
        sk, pk = ctx.keygen()
        restored = deserialize_public_key(serialize_public_key(pk), PARAMS)
        ct = ctx.encrypt(restored, encoder.encode([9, 8]))
        assert encoder.decode(ctx.decrypt(sk, ct))[:2] == [9, 8]

    def test_galois_keys_roundtrip_rotate(self):
        from repro.he.linear import HomomorphicLinearEvaluator

        ctx = BfvContext(PARAMS, SecureRandom(22))
        encoder = BatchEncoder(PARAMS)
        sk, pk = ctx.keygen()
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        restored = deserialize_galois_keys(serialize_galois_keys(gk), PARAMS)
        values = list(range(8))
        row = encoder.row_size
        packed = values + [0] * (row - len(values))
        ct = ctx.encrypt(pk, encoder.encode(packed + packed))
        rotated = ctx.rotate(ct, g, restored)
        decoded = encoder.decode(ctx.decrypt(sk, rotated))
        assert decoded[:7] == values[1:]
        # Wire sizes match the analytic accounting used by the channel.
        assert restored.byte_size == gk.byte_size

    def test_galois_keys_eval_domain_roundtrip(self):
        """Eval-domain key storage never leaks into the wire format.

        Serialization reads the coefficient-domain ``keys`` only, so the
        bytes are identical whether or not the eval cache is populated;
        a deserialized key set rebuilds its eval form lazily, the
        eval↔coefficient transform round-trips exactly, and rotations
        under original and restored keys are byte-identical.
        """
        ctx = BfvContext(PARAMS, SecureRandom(23))
        encoder = BatchEncoder(PARAMS)
        sk, pk = ctx.keygen()
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        assert g in gk._eval  # keygen populates the eval cache eagerly
        wire = serialize_galois_keys(gk)
        restored = deserialize_galois_keys(wire, PARAMS)
        # Fresh deserialization carries no derived transform state, and
        # the wire bytes do not depend on it.
        assert restored._eval == {}
        assert serialize_galois_keys(restored) == wire
        # Eval form is an exact involution of the stored coefficients.
        for (k0, k1), (e0, e1) in zip(gk.keys[g], gk.eval_keys(g)):
            assert e0.to_coeff().coeffs == k0.coeffs
            assert e1.to_coeff().coeffs == k1.coeffs
        # Restored keys (lazily rebuilt eval form) rotate identically.
        ct = ctx.encrypt(pk, encoder.encode(list(range(8))))
        a = ctx.rotate(ct, g, gk)
        b = ctx.rotate(ct, g, restored)
        assert a.c0.coeffs == b.c0.coeffs and a.c1.coeffs == b.c1.coeffs
        assert g in restored._eval  # first rotation filled the cache


class TestBitVector:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=70))
    @settings(max_examples=30)
    def test_roundtrip(self, bits):
        assert deserialize_bit_vector(serialize_bit_vector(bits)) == bits

    def test_truncated_rejected(self):
        blob = serialize_bit_vector([1] * 9)
        with pytest.raises(ValueError):
            deserialize_bit_vector(blob[:-1])


class TestLabelLists:
    def test_roundtrip(self):
        rng = SecureRandom(31)
        lists = [[rng.bytes(16) for _ in range(n)] for n in (0, 3, 1)]
        assert deserialize_label_lists(serialize_label_lists(lists)) == lists

    def test_trailing_bytes_rejected(self):
        blob = serialize_label_lists([[b"y" * 16]])
        with pytest.raises(ValueError):
            deserialize_label_lists(blob + b"\x00")


class TestLabels:
    def test_roundtrip(self):
        rng = SecureRandom(4)
        labels = [rng.bytes(16) for _ in range(10)]
        assert deserialize_labels(serialize_labels(labels)) == labels

    def test_empty(self):
        assert deserialize_labels(serialize_labels([])) == []

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            serialize_labels([b"short"])

    def test_truncated_rejected(self):
        data = serialize_labels([b"x" * 16])
        with pytest.raises(ValueError):
            deserialize_labels(data[:-1])


class TestGarbledCircuit:
    def _garbled(self):
        builder = CircuitBuilder()
        a = builder.garbler_input_word(4)
        b = builder.evaluator_input_word(4)
        total, carry = builder.add(a, b)
        builder.mark_output(total + [carry])
        circuit = builder.build()
        garbled, encoding = Garbler(SecureRandom(5)).garble(circuit)
        return circuit, garbled, encoding

    def test_roundtrip_evaluates(self):
        from repro.gc.circuit import int_to_bits, words_to_int

        circuit, garbled, encoding = self._garbled()
        wire = serialize_garbled_circuit(garbled)
        restored = deserialize_garbled_circuit(wire, circuit)
        labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(9, 4))
        for w, bit in zip(circuit.evaluator_inputs, int_to_bits(5, 4)):
            labels[w] = encoding.label_for(w, bit)
        evaluator = Evaluator()
        bits = evaluator.decode(restored, evaluator.evaluate(restored, labels))
        assert words_to_int(bits) == 14

    def test_wire_size_matches_prediction(self):
        circuit, garbled, _ = self._garbled()
        wire = serialize_garbled_circuit(garbled)
        assert len(wire) == garbled_circuit_wire_bytes(
            circuit.and_count, len(circuit.outputs)
        )

    def test_trailing_bytes_rejected(self):
        circuit, garbled, _ = self._garbled()
        wire = serialize_garbled_circuit(garbled)
        with pytest.raises(ValueError):
            deserialize_garbled_circuit(wire + b"\x00", circuit)

    def test_decode_bits_preserved(self):
        circuit, garbled, _ = self._garbled()
        restored = deserialize_garbled_circuit(
            serialize_garbled_circuit(garbled), circuit
        )
        assert restored.output_decode_bits == garbled.output_decode_bits
