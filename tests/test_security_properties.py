"""Security-property and failure-injection tests.

The threat model is semi-honest, so these are not attack proofs — they
check the *mechanisms* the security argument rests on: labels reveal
nothing without the encoding, decode information is withheld from the
Server-Garbler evaluator, tampering is detected where the protocol can
detect it, and secret shares are marginally uniform.
"""

import random

import numpy as np
import pytest

from repro.core.protocol import HybridProtocol
from repro.crypto.prg import xor_bytes
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import CircuitBuilder, int_to_bits
from repro.gc.evaluate import Evaluator
from repro.gc.garble import GarbledCircuit, Garbler, GarbledGate
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import BfvParams, toy_params
from repro.nn.datasets import tiny_dataset
from repro.nn.models import tiny_mlp
from repro.ss.additive import share

PARAMS = toy_params(n=256)
P = PARAMS.t


class TestLabelHiding:
    def _simple(self, seed):
        builder = CircuitBuilder()
        x, y = builder.garbler_input(), builder.evaluator_input()
        builder.mark_output([builder.and_(x, y)])
        circuit = builder.build()
        garbled, encoding = Garbler(SecureRandom(seed)).garble(circuit)
        return circuit, garbled, encoding

    def test_labels_are_unpredictable_across_garblings(self):
        _, _, enc1 = self._simple(1)
        _, _, enc2 = self._simple(2)
        wire = 2  # the garbler input wire
        assert enc1.label_for(wire, 0) != enc2.label_for(wire, 0)

    def test_label_pair_looks_unrelated_without_delta(self):
        """label1 = label0 XOR delta: without delta the pair is just random."""
        _, _, encoding = self._simple(3)
        wire = 2
        l0, l1 = encoding.label_for(wire, 0), encoding.label_for(wire, 1)
        assert l0 != l1
        assert xor_bytes(l0, l1) == encoding.delta

    def test_evaluator_output_labels_need_decode_bits(self):
        """Stripping decode bits leaves the evaluator with opaque labels."""
        circuit, garbled, encoding = self._simple(4)
        stripped = GarbledCircuit(circuit, garbled.tables, [])
        labels = Garbler.encode_inputs(encoding, circuit, [1])
        labels[circuit.evaluator_inputs[0]] = encoding.label_for(
            circuit.evaluator_inputs[0], 1
        )
        evaluator = Evaluator()
        out_labels = evaluator.evaluate(stripped, labels)
        assert evaluator.decode(stripped, out_labels) == []  # nothing decodable
        # The garbler, holding the encoding, can decode the same labels.
        assert Garbler.decode_output_labels(encoding, circuit, out_labels) == [1]


class TestTamperDetection:
    def test_corrupted_table_changes_or_breaks_output(self):
        builder = CircuitBuilder()
        a = builder.garbler_input_word(8)
        b = builder.evaluator_input_word(8)
        total, carry = builder.add(a, b)
        builder.mark_output(total + [carry])
        circuit = builder.build()
        garbled, encoding = Garbler(SecureRandom(5)).garble(circuit)

        # Corrupt every AND-gate ciphertext (both halves): any evaluation
        # path that consumes a table row now produces garbage labels.
        flip = b"\x01" + bytes(15)
        for index, gate in list(garbled.tables.items()):
            garbled.tables[index] = GarbledGate(
                xor_bytes(gate.generator_half, flip),
                xor_bytes(gate.evaluator_half, flip),
            )
        labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(77, 8))
        for w, bit in zip(circuit.evaluator_inputs, int_to_bits(88, 8)):
            labels[w] = encoding.label_for(w, bit)
        evaluator = Evaluator()
        out_labels = evaluator.evaluate(garbled, labels)
        # The garbler detects a forged label (no valid decoding).
        with pytest.raises(ValueError):
            Garbler.decode_output_labels(encoding, circuit, out_labels)

    def test_forged_input_label_detected_at_decode(self):
        builder = CircuitBuilder()
        x = builder.garbler_input()
        builder.mark_output([x])
        circuit = builder.build()
        _, encoding = Garbler(SecureRandom(6)).garble(circuit)
        with pytest.raises(ValueError):
            Garbler.decode_output_labels(encoding, circuit, [bytes(16)])


class TestShareUniformity:
    def test_first_share_is_marginally_uniform(self):
        """Chi-square sanity: share values spread across the field."""
        rng = SecureRandom(7)
        samples = []
        for _ in range(200):
            s1, _ = share([42], P, rng)
            samples.append(s1.values[0])
        buckets = [0] * 8
        for v in samples:
            buckets[v * 8 // P] += 1
        # Each octant should hold roughly 25 of 200 samples.
        assert all(8 <= b <= 55 for b in buckets), buckets

    def test_masked_input_is_not_the_input(self):
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        net.randomize_weights(P, np.random.default_rng(8))
        protocol = HybridProtocol(net, PARAMS, garbler="server", seed=9)
        protocol.run_offline()
        x = [5] * 16
        protocol.run_online(x)
        # The first client message was x - r; with random r it differs from x.
        assert protocol.client_r[0] != [0] * 16


class TestNoiseExhaustion:
    def test_decryption_fails_gracefully_when_noise_overflows(self):
        """Too-small q: homomorphic ops drown the message in noise."""
        from repro.crypto.modmath import find_ntt_prime

        n = 64
        tight = BfvParams(n=n, q=find_ntt_prime(30, n), t=find_ntt_prime(12, n))
        ctx = BfvContext(tight, SecureRandom(10))
        encoder = BatchEncoder(tight)
        sk, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode([1] * n))
        # Repeated squaring of the noise via plain mults with large values.
        big = encoder.encode([tight.t - 1] * n)
        for _ in range(4):
            ct = ctx.mul_plain(ct, big)
        assert ctx.noise_budget_bits(sk, ct) == 0

    def test_budget_decreases_monotonically(self):
        ctx = BfvContext(PARAMS, SecureRandom(11))
        encoder = BatchEncoder(PARAMS)
        sk, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode([3]))
        budgets = [ctx.noise_budget_bits(sk, ct)]
        pt = encoder.encode([1000] * PARAMS.n)
        for _ in range(3):
            ct = ctx.mul_plain(ct, pt)
            budgets.append(ctx.noise_budget_bits(sk, ct))
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[-1] < budgets[0]


class TestChannelIsolation:
    def test_protocol_messages_are_consumed_in_order(self):
        """No residual messages after a full protocol run (balanced sends)."""
        net = tiny_mlp(tiny_dataset(size=4, classes=3), hidden=8)
        net.randomize_weights(P, np.random.default_rng(12))
        protocol = HybridProtocol(net, PARAMS, garbler="client", seed=13)
        protocol.run_offline()
        protocol.run_online([1] * 16)
        with pytest.raises(RuntimeError):
            protocol.channel.recv("client")
        with pytest.raises(RuntimeError):
            protocol.channel.recv("server")
