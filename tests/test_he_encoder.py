"""Tests for the BFV batch encoder (slot layout and rotation semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.encoder import BatchEncoder
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def encoder():
    return BatchEncoder(toy_params(n=128))


class TestRoundtrip:
    def test_full_vector(self, encoder):
        values = [i * 3 % encoder.params.t for i in range(encoder.slot_count)]
        assert encoder.decode(encoder.encode(values)) == values

    def test_partial_vector_pads_zero(self, encoder):
        values = [7, 8, 9]
        decoded = encoder.decode(encoder.encode(values))
        assert decoded[:3] == values
        assert all(v == 0 for v in decoded[3:])

    def test_too_many_values_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([0] * (encoder.slot_count + 1))

    def test_values_reduced_mod_t(self, encoder):
        t = encoder.params.t
        decoded = encoder.decode(encoder.encode([t + 5]))
        assert decoded[0] == 5

    @given(st.lists(st.integers(min_value=0, max_value=2**17), min_size=1, max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, encoder, values):
        t = encoder.params.t
        values = [v % t for v in values]
        assert encoder.decode(encoder.encode(values))[: len(values)] == values


class TestSlotStructure:
    def test_constant_encodes_to_constant_poly(self, encoder):
        """All-equal slots must encode to the constant polynomial."""
        pt = encoder.encode([9] * encoder.slot_count)
        assert pt.coeffs[0] == 9
        assert all(c == 0 for c in pt.coeffs[1:])

    def test_slotwise_addition(self, encoder):
        t = encoder.params.t
        a = [3] * 5
        b = [4] * 5
        summed = encoder.encode(a) + encoder.encode(b)
        assert encoder.decode(summed)[:5] == [7] * 5

    def test_slotwise_product(self, encoder):
        """Polynomial product equals slot-wise product (CRT isomorphism)."""
        a = encoder.encode([2, 3, 4])
        b = encoder.encode([5, 6, 7] + [0] * (encoder.slot_count - 3))
        assert encoder.decode(a * b)[:3] == [10, 18, 28]

    def test_galois_elements_are_odd(self, encoder):
        for r in range(1, 8):
            assert encoder.galois_element_for_rotation(r) % 2 == 1
        assert encoder.galois_element_for_row_swap() % 2 == 1

    def test_rotation_element_identity(self, encoder):
        assert encoder.galois_element_for_rotation(0) == 1
        row = encoder.row_size
        assert encoder.galois_element_for_rotation(row) == 1

    def test_plaintext_automorphism_rotates_slots(self, encoder):
        """Applying the Galois map to a plaintext rotates its slots."""
        row = encoder.row_size
        values = list(range(row)) * 2
        pt = encoder.encode(values)
        g = encoder.galois_element_for_rotation(1)
        rotated = encoder.decode(pt.automorphism(g))
        assert rotated[:row] == [(i + 1) % row for i in range(row)]
        assert rotated[row:] == [(i + 1) % row + row if False else values[row + (i + 1) % row] for i in range(row)]
