"""Unit and property tests for modular arithmetic helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modmath import (
    centered,
    find_ntt_prime,
    is_probable_prime,
    mod_inverse,
    primitive_root_of_unity,
    random_prime,
)


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 65537):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 65536):
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must not fool Miller-Rabin.
        for c in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(c)

    def test_large_known_prime(self):
        assert is_probable_prime(2**61 - 1)  # Mersenne prime
        assert not is_probable_prime(2**67 - 1)  # famously composite

    def test_delphi_share_prime(self):
        # The prime DELPHI uses for its share field.
        assert is_probable_prime(2061584302081)


class TestModInverse:
    def test_basic(self):
        assert mod_inverse(3, 7) == 5
        assert 3 * 5 % 7 == 1

    def test_not_invertible_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, a):
        p = 1000003  # prime
        inv = mod_inverse(a, p)
        assert a * inv % p == 1


class TestFindNttPrime:
    @pytest.mark.parametrize("bits,n", [(17, 256), (30, 1024), (60, 2048), (100, 128)])
    def test_prime_is_ntt_friendly(self, bits, n):
        q = find_ntt_prime(bits, n)
        assert is_probable_prime(q)
        assert (q - 1) % (2 * n) == 0
        assert q.bit_length() == bits

    def test_impossible_request_raises(self):
        with pytest.raises(ValueError):
            find_ntt_prime(4, 256)  # no 4-bit prime ≡ 1 mod 512


class TestPrimitiveRootOfUnity:
    @pytest.mark.parametrize("order", [2, 4, 8, 64, 512])
    def test_exact_order(self, order):
        p = find_ntt_prime(40, max(order // 2, 2))
        root = primitive_root_of_unity(order, p)
        assert pow(root, order, p) == 1
        assert pow(root, order // 2, p) != 1

    def test_order_one(self):
        assert primitive_root_of_unity(1, 97) == 1

    def test_non_dividing_order_raises(self):
        with pytest.raises(ValueError):
            primitive_root_of_unity(5, 97)  # 5 does not divide 96

    def test_wide_modulus_is_fast(self):
        # Regression: must not attempt to factor q-1 (a 100-bit number).
        q = find_ntt_prime(100, 128)
        root = primitive_root_of_unity(256, q)
        assert pow(root, 256, q) == 1
        assert pow(root, 128, q) == q - 1  # psi^n == -1 for negacyclic psi


class TestCentered:
    @given(st.integers(), st.integers(min_value=2, max_value=10**9))
    def test_range_and_congruence(self, v, m):
        c = centered(v, m)
        assert -m // 2 <= c <= m // 2
        assert (c - v) % m == 0

    def test_boundaries(self):
        assert centered(3, 6) == 3
        assert centered(4, 6) == -2
        assert centered(5, 7) == -2


class TestRandomPrime:
    def test_bit_length_and_primality(self):
        rng = random.Random(7)
        p = random_prime(48, rng)
        assert p.bit_length() == 48
        assert is_probable_prime(p)

    def test_deterministic_with_seed(self):
        assert random_prime(32, random.Random(1)) == random_prime(32, random.Random(1))
