"""Tests for additive secret sharing and Beaver multiplication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import SecureRandom
from repro.he.params import toy_params
from repro.ss.additive import (
    ShareVector,
    from_signed,
    reconstruct,
    share,
    to_signed,
)
from repro.ss.beaver import beaver_multiply, dealer_triples, he_triples

P = 65521


class TestShareReconstruct:
    @given(st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_roundtrip(self, values):
        s1, s2 = share(values, P, SecureRandom(1))
        assert reconstruct(s1, s2) == values

    def test_shares_are_not_the_secret(self):
        values = [42] * 64
        s1, s2 = share(values, P, SecureRandom(2))
        assert list(s1.values) != values  # astronomically unlikely to be equal
        assert len(set(s1.values)) > 1  # randomness actually varies

    def test_unreduced_share_rejected(self):
        with pytest.raises(ValueError):
            ShareVector((P,), P)
        with pytest.raises(ValueError):
            ShareVector((-1,), P)


class TestShareAlgebra:
    def _shared(self, values, seed):
        return share(values, P, SecureRandom(seed))

    def test_addition_homomorphism(self):
        a1, a2 = self._shared([10, 20], 3)
        b1, b2 = self._shared([1, 2], 4)
        assert reconstruct(a1 + b1, a2 + b2) == [11, 22]

    def test_subtraction_homomorphism(self):
        a1, a2 = self._shared([10, 20], 5)
        b1, b2 = self._shared([1, 2], 6)
        assert reconstruct(a1 - b1, a2 - b2) == [9, 18]

    def test_scalar_multiplication(self):
        a1, a2 = self._shared([7, 9], 7)
        assert reconstruct(a1.scale(3), a2.scale(3)) == [21, 27]

    def test_public_addition_single_party(self):
        a1, a2 = self._shared([5], 8)
        assert reconstruct(a1.add_public([100]), a2) == [105]

    def test_modulus_mismatch_rejected(self):
        a = ShareVector((1,), P)
        b = ShareVector((1,), 97)
        with pytest.raises(ValueError):
            a + b

    def test_length_mismatch_rejected(self):
        a = ShareVector((1, 2), P)
        b = ShareVector((1,), P)
        with pytest.raises(ValueError):
            a + b
        with pytest.raises(ValueError):
            a.add_public([1, 2, 3])


class TestSignedMapping:
    @given(st.lists(st.integers(min_value=-(P // 2), max_value=P // 2), max_size=16))
    @settings(max_examples=30)
    def test_roundtrip(self, values):
        assert to_signed(from_signed(values, P), P) == values

    def test_negative_representation(self):
        assert from_signed([-1], P) == [P - 1]
        assert to_signed([P - 1], P) == [-1]


class TestBeaver:
    @given(
        st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1, max_size=8),
        st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1, max_size=8),
    )
    @settings(max_examples=20)
    def test_dealer_multiply(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        rng = SecureRandom(9)
        t1, t2 = dealer_triples(n, P, rng)
        x1, x2 = share(xs, P, rng)
        y1, y2 = share(ys, P, rng)
        z1, z2 = beaver_multiply(x1, y1, x2, y2, t1, t2)
        assert reconstruct(z1, z2) == [x * y % P for x, y in zip(xs, ys)]

    def test_dealer_triples_are_valid(self):
        t1, t2 = dealer_triples(16, P, SecureRandom(10))
        a = reconstruct(t1.a, t2.a)
        b = reconstruct(t1.b, t2.b)
        c = reconstruct(t1.c, t2.c)
        assert c == [x * y % P for x, y in zip(a, b)]

    def test_he_triples_are_valid(self):
        params = toy_params(n=128)
        t1, t2 = he_triples(16, params, SecureRandom(11))
        a = reconstruct(t1.a, t2.a)
        b = reconstruct(t1.b, t2.b)
        c = reconstruct(t1.c, t2.c)
        assert c == [x * y % params.t for x, y in zip(a, b)]

    def test_he_triples_size_limit(self):
        params = toy_params(n=128)
        with pytest.raises(ValueError):
            he_triples(params.n + 1, params, SecureRandom(12))

    def test_he_multiply_end_to_end(self):
        params = toy_params(n=128)
        p = params.t
        rng = SecureRandom(13)
        t1, t2 = he_triples(4, params, rng)
        xs, ys = [3, 5, 7, 11], [13, 17, 19, 23]
        x1, x2 = share(xs, p, rng)
        y1, y2 = share(ys, p, rng)
        z1, z2 = beaver_multiply(x1, y1, x2, y2, t1, t2)
        assert reconstruct(z1, z2) == [x * y % p for x, y in zip(xs, ys)]
