"""Randomized bit-exactness parity between bigint and RNS representations.

The RNS chain's whole claim is "same ring, vectorized": every ciphertext-
ring operation on CRT residues must agree bit for bit with the
arbitrary-precision bigint oracle at the same composite q. These tests
draw random inputs (seeded, plus Hypothesis properties for the CRT maps)
and assert list-level equality on CRT round-trips, ring-element
arithmetic, full BFV encrypt→ops→decrypt transcripts, and one end-to-end
protocol inference at ``toy_params``. Also covers representation
resolution (auto heuristic, env override, fail-soft) and delphi-scale
acceptance: the paper-faithful parameters must actually run on the
vectorized backend via RNS.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import RnsContext, available_backends, backend_for
from repro.crypto.modmath import (
    crt_combine,
    generate_ntt_primes,
    is_probable_prime,
    primitive_root_of_unity,
    registered_modulus_factors,
)
from repro.crypto.rng import SecureRandom
from repro.he.bfv import BfvContext, make_ring_element
from repro.he.encoder import BatchEncoder
from repro.he.params import BfvParams, delphi_params, fast_params, toy_params
from repro.he.polynomial import RingPoly, RnsPoly, clear_ntt_cache

TOY = toy_params(n=128)


def with_representation(params: BfvParams, rep: str) -> BfvParams:
    return dataclasses.replace(params, representation=rep)


def rand_vec(rng, n, q):
    return [rng.randrange(q) for _ in range(n)]


class TestChainGeneration:
    def test_primes_are_distinct_ntt_friendly_and_small(self):
        for n in (128, 256, 2048):
            primes = generate_ntt_primes(n, count=5, bits=28)
            assert len(set(primes)) == 5
            for p in primes:
                assert is_probable_prime(p)
                assert p.bit_length() == 28
                assert (p - 1) % (2 * n) == 0

    def test_deterministic(self):
        assert generate_ntt_primes(64, 3, 24) == generate_ntt_primes(64, 3, 24)

    def test_exhaustion_raises(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(256, count=1000, bits=12)


class TestCrtMaps:
    @given(st.integers(min_value=0, max_value=TOY.q - 1))
    @settings(max_examples=50, deadline=None)
    def test_scalar_roundtrip(self, value):
        primes = TOY.rns_primes
        assert crt_combine([value % p for p in primes], primes) == value

    @given(
        st.lists(
            st.integers(min_value=0, max_value=TOY.q - 1),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_vector_roundtrip(self, values):
        ctx = RnsContext.for_primes(TOY.rns_primes)
        assert ctx.from_rns(ctx.to_rns(values)) == values

    def test_composite_root_of_unity(self):
        # The registered factorization lets the bigint oracle find a
        # principal 2n-th root in the composite ring: primitive mod every
        # chain prime, hence invertible NTTs on both paths.
        q, n = TOY.q, TOY.n
        assert registered_modulus_factors(q) is not None
        psi = primitive_root_of_unity(2 * n, q)
        assert pow(psi, 2 * n, q) == 1
        for p in TOY.rns_primes:
            r = psi % p
            assert pow(r, 2 * n, p) == 1
            assert pow(r, n, p) == p - 1  # primitive: psi^n = -1 per prime

    def test_shared_context_cache(self):
        a = RnsContext.for_primes(TOY.rns_primes)
        b = RnsContext.for_primes(TOY.rns_primes)
        assert a is b


class TestRingElementParity:
    def _pair(self, coeffs):
        big = RingPoly(coeffs, TOY.q, backend=backend_for(TOY.q))
        rns = RnsPoly.from_coeffs(RnsContext.for_primes(TOY.rns_primes), coeffs)
        return big, rns

    def test_arithmetic(self):
        rng = random.Random(1)
        n, q = TOY.n, TOY.q
        a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
        big_a, rns_a = self._pair(a)
        big_b, rns_b = self._pair(b)
        assert (big_a + big_b).coeffs == (rns_a + rns_b).coeffs
        assert (big_a - big_b).coeffs == (rns_a - rns_b).coeffs
        assert (-big_a).coeffs == (-rns_a).coeffs
        s = rng.randrange(q)
        assert (big_a * s).coeffs == (rns_a * s).coeffs

    def test_negacyclic_multiply(self):
        rng = random.Random(2)
        n, q = TOY.n, TOY.q
        for _ in range(3):
            a, b = rand_vec(rng, n, q), rand_vec(rng, n, q)
            big_a, rns_a = self._pair(a)
            big_b, rns_b = self._pair(b)
            assert (big_a * big_b).coeffs == (rns_a * rns_b).coeffs

    def test_automorphism(self):
        rng = random.Random(3)
        a = rand_vec(rng, TOY.n, TOY.q)
        big, rns = self._pair(a)
        for g in (3, 5, 2 * TOY.n - 1):
            assert big.automorphism(g).coeffs == rns.automorphism(g).coeffs

    def test_decompose(self):
        rng = random.Random(4)
        a = rand_vec(rng, TOY.n, TOY.q)
        big, rns = self._pair(a)
        digits_big = big.decompose(TOY.decomp_bits, TOY.num_decomp_digits)
        digits_rns = rns.decompose(TOY.decomp_bits, TOY.num_decomp_digits)
        assert [d.coeffs for d in digits_big] == [d.coeffs for d in digits_rns]

    def test_equality_crosses_representations(self):
        rng = random.Random(5)
        a = rand_vec(rng, TOY.n, TOY.q)
        big, rns = self._pair(a)
        assert rns == big
        assert big == rns  # symmetric, either operand order
        assert rns == RnsPoly.from_coeffs(rns.ctx, a)
        other = rand_vec(rng, TOY.n, TOY.q)
        assert rns != RingPoly(other, TOY.q)
        assert RingPoly(other, TOY.q) != rns

    def test_mixed_representation_arithmetic_both_orders(self):
        rng = random.Random(15)
        a, b = rand_vec(rng, TOY.n, TOY.q), rand_vec(rng, TOY.n, TOY.q)
        big_a, rns_a = self._pair(a)
        big_b, rns_b = self._pair(b)
        want_sum = (big_a + big_b).coeffs
        want_prod = (big_a * big_b).coeffs
        # RingPoly on the left of an RnsPoly and vice versa both work.
        assert (big_a + rns_b).coeffs == want_sum
        assert (rns_a + big_b).coeffs == want_sum
        assert (big_a * rns_b).coeffs == want_prod
        assert (rns_a * big_b).coeffs == want_prod
        assert (big_a - rns_b).coeffs == (big_a - big_b).coeffs

    def test_ring_mismatch_rejected(self):
        rng = random.Random(16)
        small = toy_params(n=64)
        rns_small = RnsPoly.from_coeffs(
            RnsContext.for_primes(small.rns_primes),
            rand_vec(rng, 64, small.q),
        )
        _, rns_big = self._pair(rand_vec(rng, TOY.n, TOY.q))
        with pytest.raises((ValueError, TypeError)):
            rns_big + rns_small

    def test_negative_and_unreduced_construction(self):
        rng = random.Random(6)
        raw = [rng.randrange(-TOY.q, 2 * TOY.q) for _ in range(TOY.n)]
        big, _ = self._pair([v % TOY.q for v in raw])
        rns = RnsPoly.from_coeffs(RnsContext.for_primes(TOY.rns_primes), raw)
        assert rns.coeffs == big.coeffs


class TestBfvTranscriptParity:
    def _run(self, params, seed=7):
        """Full keygen→encrypt→mul→rotate→decrypt transcript, as ints."""
        clear_ntt_cache()
        ctx = BfvContext(params, SecureRandom(seed))
        encoder = BatchEncoder(params)
        sk, pk = ctx.keygen()
        values = list(range(60))
        ct = ctx.encrypt(pk, encoder.encode(values))
        g = encoder.galois_element_for_rotation(1)
        gk = ctx.galois_keygen(sk, [g])
        ct = ctx.add_plain(ct, encoder.encode([5] * params.n))
        ct = ctx.mul_plain(ct, encoder.encode([3] * params.n))
        ct = ctx.rotate(ct, g, gk)
        ct = ct + ct
        ct = ctx.sub_plain(ct, encoder.encode([1] * params.n))
        return {
            "sk": sk.s.coeffs,
            "pk0": pk.p0.coeffs,
            "c0": ct.c0.coeffs,
            "c1": ct.c1.coeffs,
            "budget": ctx.noise_budget_bits(sk, ct),
            "decoded": encoder.decode(ctx.decrypt(sk, ct))[:60],
        }

    def test_toy_transcripts_identical(self):
        big = self._run(with_representation(TOY, "bigint"))
        rns = self._run(with_representation(TOY, "rns"))
        assert big == rns
        want = [(2 * (3 * (v + 5)) - 1) % TOY.t for v in range(1, 61)]
        assert rns["decoded"][:59] == want[:59]

    def test_representations_mix_via_serialization(self):
        from repro.network.serialize import (
            deserialize_ciphertext,
            serialize_ciphertext,
        )

        big_params = with_representation(TOY, "bigint")
        rns_params = with_representation(TOY, "rns")
        ctx_big = BfvContext(big_params, SecureRandom(9))
        encoder = BatchEncoder(big_params)
        sk, pk = ctx_big.keygen()
        ct = ctx_big.encrypt(pk, encoder.encode([11, 22, 33]))
        # Wire bytes produced by a bigint party land as residues at an RNS
        # party, and the RNS secret key (same seed) still decrypts them.
        ctx_rns = BfvContext(rns_params, SecureRandom(9))
        sk_rns, _ = ctx_rns.keygen()
        restored = deserialize_ciphertext(serialize_ciphertext(ct), rns_params)
        assert isinstance(restored.c0, RnsPoly)
        decoded = encoder.decode(ctx_rns.decrypt(sk_rns, restored))
        assert decoded[:3] == [11, 22, 33]

    def test_make_ring_element_follows_resolution(self):
        coeffs = [1, 2, 3, 4] + [0] * (TOY.n - 4)
        assert isinstance(
            make_ring_element(coeffs, with_representation(TOY, "bigint")),
            RingPoly,
        )
        assert isinstance(
            make_ring_element(coeffs, with_representation(TOY, "rns")),
            RnsPoly,
        )


class TestProtocolParity:
    def test_end_to_end_inference_transcript(self):
        import numpy as np

        from repro.core.protocol import HybridProtocol
        from repro.nn.datasets import tiny_dataset
        from repro.nn.models import tiny_mlp

        net = tiny_mlp(tiny_dataset(size=2, classes=2), hidden=4)
        net.randomize_weights(TOY.t, np.random.default_rng(0))
        x = list(range(4))
        runs = {}
        for rep in ("bigint", "rns"):
            clear_ntt_cache()
            proto = HybridProtocol(
                net, toy_params(n=128), seed=21, representation=rep
            )
            proto.run_offline()
            logits = proto.run_online(x)
            assert logits == proto.plaintext_reference(x)
            runs[rep] = (logits, proto.channel.total_bytes)
        # Identical logits and identical transcript byte accounting.
        assert runs["bigint"] == runs["rns"]


class TestRepresentationResolution:
    def test_explicit_rns_requires_chain(self):
        with pytest.raises(ValueError):
            dataclasses.replace(fast_params(n=128), representation="rns")

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TOY, representation="float")

    def test_chain_must_multiply_to_q(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TOY, rns_primes=TOY.rns_primes[:-1])

    def test_auto_picks_rns_only_for_wide_vectorizable_moduli(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPRESENTATION", raising=False)
        # fast_params: q < 2^62, no chain -> bigint (directly vectorized).
        assert fast_params(n=128).resolve_representation() == "bigint"
        # RNS exactly when the chain's primes resolve to a vectorized
        # backend under the current selection.
        expected = (
            "rns" if backend_for(TOY.rns_primes[0]).name == "numpy" else "bigint"
        )
        assert TOY.resolve_representation() == expected
        assert delphi_params().resolve_representation() == expected
        # A python-only preference keeps the oracle representation.
        forced = dataclasses.replace(TOY, backend="python")
        assert forced.resolve_representation() == "bigint"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPRESENTATION", "bigint")
        assert TOY.resolve_representation() == "bigint"
        monkeypatch.setenv("REPRO_REPRESENTATION", "rns")
        assert TOY.resolve_representation() == "rns"
        # Fail-soft: forcing rns on chainless params stays functional.
        assert fast_params(n=128).resolve_representation() == "bigint"
        monkeypatch.setenv("REPRO_REPRESENTATION", "nonsense")
        assert TOY.resolve_representation() in ("bigint", "rns")

    def test_explicit_field_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPRESENTATION", "bigint")
        assert with_representation(TOY, "rns").resolve_representation() == "rns"


@pytest.mark.skipif(
    "numpy" not in available_backends(), reason="numpy backend unavailable"
)
class TestDelphiScaleAcceptance:
    def test_delphi_ops_run_vectorized_via_rns(self, monkeypatch):
        import numpy as np

        monkeypatch.delenv("REPRO_REPRESENTATION", raising=False)
        params = dataclasses.replace(delphi_params(), backend="numpy")
        assert params.resolve_representation() == "rns"
        ctx = BfvContext(params, SecureRandom(3))
        encoder = BatchEncoder(params)
        sk, pk = ctx.keygen()
        ct = ctx.encrypt(pk, encoder.encode([123456789012, 42]))
        # Every residue of every component is a uint64 ndarray: the whole
        # wide-modulus ciphertext ring computes on the numpy backend.
        assert isinstance(ct.c0, RnsPoly)
        for residue in ct.c0.residues + ct.c1.residues:
            assert isinstance(residue, np.ndarray)
        ct = ctx.mul_plain(ct, encoder.encode([9] * params.n))
        assert encoder.decode(ctx.decrypt(sk, ct))[:2] == [
            123456789012 * 9 % params.t,
            378,
        ]
        assert ctx.noise_budget_bits(sk, ct) > 40

    def test_delphi_parity_spot_check(self):
        params = delphi_params()
        results = {}
        for rep in ("bigint", "rns"):
            p = with_representation(params, rep)
            ctx = BfvContext(p, SecureRandom(5))
            encoder = BatchEncoder(p)
            sk, pk = ctx.keygen()
            ct = ctx.encrypt(pk, encoder.encode([7, 8, 9]))
            ct = ctx.mul_plain(ct, encoder.encode([1000] * params.n))
            results[rep] = (
                ct.c0.coeffs[:8],
                ct.c1.coeffs[:8],
                encoder.decode(ctx.decrypt(sk, ct))[:3],
            )
        assert results["bigint"] == results["rns"]


class TestFastBaseConversionParity:
    """The vectorized exact base conversion vs bigint reconstruction.

    ``RnsContext.decompose_digits`` must be bit-identical to
    ``from_rns`` + mask/shift for ANY input — including the small
    representatives that exercise the correction term, where the fast
    path's alpha estimate lands one low and the exact multi-limb
    conditional subtract has to fix it up — on every backend, at both
    key-switch digit widths, on both the toy and delphi chains.
    """

    CHAINS = {"toy": toy_params(n=128), "delphi": delphi_params()}

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("base_bits", (16, 4))
    @pytest.mark.parametrize("chain", ("toy", "delphi"))
    def test_digits_match_reconstruction(self, backend_name, base_bits, chain):
        params = self.CHAINS[chain]
        ctx = RnsContext.for_primes(params.rns_primes, prefer=backend_name)
        q = ctx.q
        num_digits = -(-q.bit_length() // base_bits)
        rng = random.Random(base_bits * 1000 + len(chain))
        mask = (1 << base_bits) - 1
        # First batch leads with correction-term edge values; the rest
        # are uniform draws.
        edge = [0, 1, 2, 3, q - 1, q - 2, q // 2, q // 2 + 1]
        batches = [edge + [rng.randrange(q) for _ in range(56)]]
        batches += [[rng.randrange(q) for _ in range(64)] for _ in range(3)]
        for values in batches:
            got = ctx.decompose_digits(
                ctx.to_rns(values), base_bits, num_digits
            )
            assert got is not None  # uniform backend + in-gate shape
            be = ctx.backends[0]
            want = [
                [(v >> (j * base_bits)) & mask for v in values]
                for j in range(num_digits)
            ]
            assert [be.tolist(d) for d in got] == want

    @pytest.mark.parametrize("base_bits", (16, 4))
    def test_poly_decompose_paths_agree(self, base_bits):
        """Fast path vs the cached-coeffs fallback vs the bigint oracle:
        all three digit decompositions are identical."""
        rng = random.Random(42)
        values = rand_vec(rng, TOY.n, TOY.q)
        num_digits = -(-TOY.q.bit_length() // base_bits)
        ctx = RnsContext.for_primes(TOY.rns_primes)
        fast = RnsPoly.from_coeffs(ctx, values)
        fallback = RnsPoly.from_coeffs(ctx, values)
        _ = fallback.coeffs  # materialize: decompose now reuses the cache
        oracle = RingPoly(values, TOY.q, backend=backend_for(TOY.q))
        want = [d.coeffs for d in oracle.decompose(base_bits, num_digits)]
        assert [d.coeffs for d in fast.decompose(base_bits, num_digits)] == want
        assert [
            d.coeffs for d in fallback.decompose(base_bits, num_digits)
        ] == want


class TestBsgsLinearLayerParity:
    def test_rotation_heavy_bsgs_matches_bigint_oracle(self):
        """A full BSGS linear layer — the rotation-heavy consumer of the
        eval-domain key switch — produces byte-identical ciphertexts and
        logits on both representations."""
        from repro.he.linear import HomomorphicLinearEvaluator

        rng = random.Random(77)
        n_in = 16
        matrix = [
            [rng.randrange(TOY.t) for _ in range(n_in)] for _ in range(n_in)
        ]
        x = [rng.randrange(TOY.t) for _ in range(n_in)]
        results = {}
        for rep in ("bigint", "rns"):
            clear_ntt_cache()
            p = with_representation(TOY, rep)
            ctx = BfvContext(p, SecureRandom(31))
            encoder = BatchEncoder(p)
            sk, pk = ctx.keygen()
            elements = {
                encoder.galois_element_for_rotation(1),
                encoder.galois_element_for_rotation(4),
            }
            gk = ctx.galois_keygen(sk, sorted(elements))
            evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
            ct = ctx.encrypt(pk, encoder.encode(evaluator.pack_vector(x)))
            out = evaluator.matvec_bsgs(ct, matrix, 4)
            results[rep] = (
                out.c0.coeffs,
                out.c1.coeffs,
                encoder.decode(ctx.decrypt(sk, out))[:n_in],
                evaluator.rotations_performed,
            )
        assert results["bigint"] == results["rns"]
        expected = [
            sum(matrix[i][j] * x[j] for j in range(n_in)) % TOY.t
            for i in range(n_in)
        ]
        assert results["rns"][2] == expected
