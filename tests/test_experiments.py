"""Tests for the per-figure experiment runners and their paper claims."""

import pytest

from repro.experiments import (
    fig03_storage,
    fig04_compute,
    fig05_comm,
    fig08_client_garbler,
    fig09_lphe,
    fig11_wsa,
    fig14_future,
    table1,
)
from repro.experiments.common import EVAL_PAIRS, STORAGE_PAIRS, build, profile


class TestCommon:
    def test_pairs_cover_paper_evaluation(self):
        assert len(EVAL_PAIRS) == 6
        assert len(STORAGE_PAIRS) == 9

    def test_build_cached(self):
        assert build("ResNet-18", "CIFAR-100") is build("ResNet-18", "CIFAR-100")

    def test_profile_cached(self):
        assert profile("VGG-16", "CIFAR-100") is profile("VGG-16", "CIFAR-100")


class TestFig3:
    def test_all_nine_points_within_5_percent(self):
        for row in fig03_storage.run():
            assert row["client_storage_gb"] == pytest.approx(
                row["paper_gb"], rel=0.10
            ), (row["model"], row["dataset"])

    def test_imagenet_impractical(self):
        """Paper: ImageNet needs hundreds of GB -> not studied in PI."""
        rows = [r for r in fig03_storage.run() if r["dataset"] == "ImageNet"]
        assert all(r["client_storage_gb"] > 200 for r in rows)


class TestFig4:
    def test_he_dominates_compute(self):
        for row in fig04_compute.run():
            assert row["he_eval_min"] > row["gc_eval_min"] > row["gc_garble_min"]

    def test_r18_tiny_anchor(self):
        row = [
            r for r in fig04_compute.run()
            if r["model"] == "ResNet-18" and r["dataset"] == "TinyImageNet"
        ][0]
        assert row["he_eval_min"] == pytest.approx(18.0, rel=0.02)
        assert row["gc_eval_min"] == pytest.approx(3.3, rel=0.1)


class TestFig5:
    def test_monotone_in_bandwidth(self):
        rows = fig05_comm.run()
        totals = [r["total_min"] for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_download_dominates(self):
        for row in fig05_comm.run():
            assert row["download_min"] > 5 * row["upload_min"]

    def test_gigabit_latency_near_paper(self):
        """Paper: ~11 minutes total at 1 Gbps."""
        row = fig05_comm.run()[-1]
        assert 10 <= row["total_min"] <= 15

    def test_download_share(self):
        assert 0.80 <= fig05_comm.download_share() <= 0.95


class TestTable1:
    def test_every_cell_close_to_paper(self):
        for row in table1.run():
            for key in ("GC", "HE", "SS", "Comms"):
                ours, paper = row[key], row[f"paper_{key}"]
                if paper < 1.0:
                    assert abs(ours - paper) < 1.0
                else:
                    assert ours == pytest.approx(paper, rel=0.16), (row["phase"], key)


class TestFig8:
    def test_reduction_about_5x(self):
        assert 4.5 <= fig08_client_garbler.mean_reduction() <= 5.5

    def test_41_to_8_gb(self):
        row = [
            r for r in fig08_client_garbler.run()
            if r["model"] == "ResNet-18" and r["dataset"] == "TinyImageNet"
        ][0]
        assert row["server_garbler_gb"] == pytest.approx(41, rel=0.05)
        assert row["client_garbler_gb"] == pytest.approx(8, rel=0.05)


class TestFig9:
    def test_speedups_all_significant(self):
        for row in fig09_lphe.run():
            assert row["speedup"] > 5

    def test_mean_speedup_near_paper(self):
        assert 7 <= fig09_lphe.mean_speedup() <= 16


class TestFig11:
    def test_optima_directions(self):
        stats = fig11_wsa.optima()
        assert stats["server-garbler"]["optimal_download_mbps"] > 700
        assert stats["client-garbler"]["optimal_upload_mbps"] > 750

    def test_improvement_up_to_35_percent(self):
        stats = fig11_wsa.optima()
        for protocol in stats.values():
            assert 0 < protocol["improvement_vs_even"] <= 0.40

    def test_sweep_convex_around_optimum(self):
        rows = [
            r for r in fig11_wsa.run() if r["protocol"] == "client-garbler"
        ]
        latencies = [r["latency_min"] for r in rows]
        best = min(range(len(latencies)), key=latencies.__getitem__)
        assert latencies[: best + 1] == sorted(latencies[: best + 1], reverse=True)
        assert latencies[best:] == sorted(latencies[best:])


class TestFig14:
    def test_within_35_percent_of_paper(self):
        for row in fig14_future.run():
            assert row["total_s"] == pytest.approx(row["paper_s"], rel=0.35), row["step"]

    def test_first_bars_within_10_percent(self):
        rows = {r["step"]: r for r in fig14_future.run()}
        for step in ("Client Garbler", "GC FASE 19x", "GC 100x", "BW 10x"):
            assert rows[step]["total_s"] == pytest.approx(
                rows[step]["paper_s"], rel=0.10
            ), step

    def test_components_sum_to_100(self):
        for row in fig14_future.components():
            total = sum(v for k, v in row.items() if k != "step")
            assert total == pytest.approx(100, abs=0.5)
