"""Functional checks at DELPHI-scale parameters (41-bit plaintext field).

Slower than the toy-parameter tests (degree-2048 ring, 120-bit modulus in
pure Python) but proves the substrates handle the paper's actual field
width — the same width whose ReLU circuits give the 18.2 KB storage
figure.
"""

import pytest

from repro.crypto.rng import SecureRandom
from repro.gc.circuit import int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.relu import ReluCircuitSpec, build_relu_circuit, relu_reference
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.params import delphi_params


@pytest.fixture(scope="module")
def rig():
    params = delphi_params()
    ctx = BfvContext(params, SecureRandom(77))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    return params, ctx, encoder, sk, pk


class TestDelphiScaleBfv:
    def test_field_is_41_bits(self, rig):
        params = rig[0]
        assert params.t.bit_length() == 41
        assert params.n == 2048

    def test_encrypt_decrypt(self, rig):
        params, ctx, encoder, sk, pk = rig
        values = [123456789012, 987654321098, 1]
        ct = ctx.encrypt(pk, encoder.encode(values))
        assert encoder.decode(ctx.decrypt(sk, ct))[:3] == values

    def test_linear_layer_homomorphism(self, rig):
        """w*r - s on packed 41-bit values: the offline correlation."""
        params, ctx, encoder, sk, pk = rig
        t = params.t
        r = [3141592653589, 2718281828459]
        w = [1618033988749, 1414213562373]
        s = [1732050807568, 2236067977499]
        ct = ctx.encrypt(pk, encoder.encode(r))
        ct = ctx.mul_plain(ct, encoder.encode([w[0], w[1]] + [0] * (params.n - 2)))
        ct = ctx.sub_plain(ct, encoder.encode(s))
        got = encoder.decode(ctx.decrypt(sk, ct))[:2]
        assert got == [(wi * ri - si) % t for wi, ri, si in zip(w, r, s)]

    def test_noise_budget_healthy_after_layer(self, rig):
        params, ctx, encoder, sk, pk = rig
        ct = ctx.encrypt(pk, encoder.encode([1]))
        ct = ctx.mul_plain(ct, encoder.encode([params.t - 1] * params.n))
        assert ctx.noise_budget_bits(sk, ct) > 10


class TestDelphiScaleRelu:
    def test_41_bit_garbled_relu(self):
        """Garble and evaluate one ReLU over the paper's actual field width."""
        p = 2061584302081  # DELPHI's share prime
        spec = ReluCircuitSpec(bits=41, modulus=p, mask_owner="evaluator")
        circuit = build_relu_circuit(spec)
        garbled, encoding = Garbler(SecureRandom(5)).garble(circuit)

        sa, sb, r = 1234567890123, 987654321987, 555555555555
        labels = Garbler.encode_inputs(encoding, circuit, int_to_bits(sa, 41))
        for wire, bit in zip(
            circuit.evaluator_inputs, int_to_bits(sb, 41) + int_to_bits(r, 41)
        ):
            labels[wire] = encoding.label_for(wire, bit)
        evaluator = Evaluator()
        bits = evaluator.decode(garbled, evaluator.evaluate(garbled, labels))
        assert words_to_int(bits) == relu_reference(sa, sb, r, p)

    def test_size_is_the_paper_storage_constant(self):
        p = 2061584302081
        spec = ReluCircuitSpec(bits=41, modulus=p, mask_owner="evaluator")
        garbled, _ = Garbler(SecureRandom(6)).garble(build_relu_circuit(spec))
        # 2.23M of these per ResNet-18/TinyImageNet inference -> ~41 GB.
        assert 15_000 <= garbled.size_bytes <= 20_000
