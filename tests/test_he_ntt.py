"""Tests for cyclic and negacyclic NTTs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modmath import find_ntt_prime
from repro.he.ntt import NegacyclicNtt, Ntt

Q = find_ntt_prime(40, 64)


def schoolbook_negacyclic(a, b, q):
    """Reference negacyclic convolution: X^n = -1."""
    n = len(a)
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            if k < n:
                out[k] = (out[k] + ai * bj) % q
            else:
                out[k - n] = (out[k - n] - ai * bj) % q
    return out


class TestNtt:
    def test_roundtrip(self):
        ntt = Ntt(64, Q)
        values = list(range(64))
        assert ntt.inverse(ntt.forward(values)) == values

    def test_size_validation(self):
        ntt = Ntt(64, Q)
        with pytest.raises(ValueError):
            ntt.forward([1] * 32)
        with pytest.raises(ValueError):
            ntt.inverse([1] * 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Ntt(48, Q)

    def test_linearity(self):
        ntt = Ntt(64, Q)
        a = [i * 7 % Q for i in range(64)]
        b = [i * i % Q for i in range(64)]
        fa, fb = ntt.forward(a), ntt.forward(b)
        fsum = ntt.forward([(x + y) % Q for x, y in zip(a, b)])
        assert fsum == [(x + y) % Q for x, y in zip(fa, fb)]


class TestNegacyclicNtt:
    @given(
        st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=64, max_size=64)
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, coeffs):
        ntt = NegacyclicNtt(64, Q)
        assert ntt.inverse(ntt.forward(coeffs)) == coeffs

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=16, max_size=16),
        st.lists(st.integers(min_value=0, max_value=200), min_size=16, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_multiply_matches_schoolbook(self, a, b):
        q = find_ntt_prime(40, 16)
        ntt = NegacyclicNtt(16, q)
        assert ntt.multiply(a, b) == schoolbook_negacyclic(a, b, q)

    def test_x_times_xn_minus_1_wraps_negative(self):
        """X * X^(n-1) must equal -1 in the negacyclic ring."""
        n = 16
        q = find_ntt_prime(40, n)
        ntt = NegacyclicNtt(n, q)
        x = [0, 1] + [0] * (n - 2)
        xn1 = [0] * (n - 1) + [1]
        product = ntt.multiply(x, xn1)
        assert product == [q - 1] + [0] * (n - 1)

    def test_unfriendly_modulus_rejected(self):
        with pytest.raises(ValueError):
            NegacyclicNtt(64, 97)  # 97-1 not divisible by 128

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            NegacyclicNtt(20, Q)
