"""Tests for half-gates garbling and evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prg import LABEL_BYTES, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import CircuitBuilder, int_to_bits, words_to_int
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.relu import (
    ReluCircuitSpec,
    build_relu_circuit,
    garbled_relu_bytes,
    relu_and_gates,
    relu_reference,
)


def garble_and_run(circuit, garbler_bits, evaluator_bits, seed=0):
    garbler = Garbler(SecureRandom(seed))
    garbled, encoding = garbler.garble(circuit)
    labels = Garbler.encode_inputs(encoding, circuit, garbler_bits)
    for wire, bit in zip(circuit.evaluator_inputs, evaluator_bits):
        labels[wire] = encoding.label_for(wire, bit)
    evaluator = Evaluator()
    out_labels = evaluator.evaluate(garbled, labels)
    return evaluator.decode(garbled, out_labels), out_labels, encoding, garbled


class TestGateCorrectness:
    @pytest.mark.parametrize("ga", [0, 1])
    @pytest.mark.parametrize("ea", [0, 1])
    def test_and_gate(self, ga, ea):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output([b.and_(x, y)])
        bits, *_ = garble_and_run(b.build(), [ga], [ea])
        assert bits == [ga & ea]

    @pytest.mark.parametrize("ga", [0, 1])
    @pytest.mark.parametrize("ea", [0, 1])
    def test_xor_gate(self, ga, ea):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output([b.xor(x, y)])
        bits, *_ = garble_and_run(b.build(), [ga], [ea])
        assert bits == [ga ^ ea]

    @pytest.mark.parametrize("ga", [0, 1])
    def test_not_gate(self, ga):
        b = CircuitBuilder()
        x = b.garbler_input()
        b.mark_output([b.not_(x)])
        bits, *_ = garble_and_run(b.build(), [ga], [])
        assert bits == [1 - ga]


class TestGarbledVsPlain:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_adder_matches_plain(self, seed, a, c):
        b = CircuitBuilder()
        x = b.garbler_input_word(8)
        y = b.evaluator_input_word(8)
        s, carry = b.add(x, y)
        b.mark_output(s + [carry])
        circuit = b.build()
        bits, *_ = garble_and_run(circuit, int_to_bits(a, 8), int_to_bits(c, 8), seed)
        assert bits == circuit.evaluate_plain(int_to_bits(a, 8), int_to_bits(c, 8))

    def test_random_circuit_fuzz(self):
        """Random DAGs of XOR/AND/NOT evaluate identically garbled vs plain."""
        rnd = random.Random(99)
        for trial in range(10):
            b = CircuitBuilder()
            wires = [b.garbler_input() for _ in range(4)]
            wires += [b.evaluator_input() for _ in range(4)]
            for _ in range(30):
                op = rnd.choice(["xor", "and", "not", "or", "mux"])
                x, y, z = rnd.choice(wires), rnd.choice(wires), rnd.choice(wires)
                if op == "xor":
                    wires.append(b.xor(x, y))
                elif op == "and":
                    wires.append(b.and_(x, y))
                elif op == "or":
                    wires.append(b.or_(x, y))
                elif op == "mux":
                    wires.append(b.mux_bit(x, y, z))
                else:
                    wires.append(b.not_(x))
            b.mark_output(wires[-8:])
            circuit = b.build()
            g_bits = [rnd.getrandbits(1) for _ in range(4)]
            e_bits = [rnd.getrandbits(1) for _ in range(4)]
            got, *_ = garble_and_run(circuit, g_bits, e_bits, seed=trial)
            assert got == circuit.evaluate_plain(g_bits, e_bits)


class TestEncodingProperties:
    def test_free_xor_invariant(self):
        """label1 == label0 XOR delta on every input wire."""
        b = CircuitBuilder()
        x = b.garbler_input()
        b.mark_output([x])
        circuit = b.build()
        _, encoding = Garbler(SecureRandom(3)).garble(circuit)
        l0 = encoding.label_for(x, 0)
        l1 = encoding.label_for(x, 1)
        assert xor_bytes(l0, l1) == encoding.delta

    def test_delta_lsb_is_one(self):
        b = CircuitBuilder()
        b.mark_output([b.garbler_input()])
        _, encoding = Garbler(SecureRandom(4)).garble(b.build())
        assert encoding.delta[0] & 1 == 1

    def test_garbler_side_decode(self):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output([b.and_(x, y), b.xor(x, y)])
        circuit = b.build()
        bits, out_labels, encoding, _ = garble_and_run(circuit, [1], [1])
        assert Garbler.decode_output_labels(encoding, circuit, out_labels) == bits

    def test_garbler_decode_rejects_forged_label(self):
        b = CircuitBuilder()
        x = b.garbler_input()
        b.mark_output([x])
        circuit = b.build()
        _, _, encoding, _ = garble_and_run(circuit, [1], [])
        with pytest.raises(ValueError):
            Garbler.decode_output_labels(encoding, circuit, [b"\x00" * LABEL_BYTES])

    def test_size_accounting(self):
        b = CircuitBuilder()
        x, y = b.garbler_input(), b.evaluator_input()
        b.mark_output([b.and_(x, y)])
        garbled, _ = Garbler(SecureRandom(5)).garble(b.build())
        assert garbled.size_bytes == 2 * LABEL_BYTES + 1

    def test_wrong_garbler_input_length(self):
        b = CircuitBuilder()
        b.garbler_input()
        circuit = b.build()
        _, encoding = Garbler(SecureRandom(6)).garble(circuit)
        with pytest.raises(ValueError):
            Garbler.encode_inputs(encoding, circuit, [0, 1])


class TestReluCircuit:
    P = 65521  # 16-bit prime

    def _run(self, sa, sb, r, mask_owner="evaluator"):
        spec = ReluCircuitSpec(bits=16, modulus=self.P, mask_owner=mask_owner)
        circuit = build_relu_circuit(spec)
        if mask_owner == "evaluator":
            g_bits = int_to_bits(sa, 16)
            e_bits = int_to_bits(sb, 16) + int_to_bits(r, 16)
        else:
            g_bits = int_to_bits(sa, 16) + int_to_bits(r, 16)
            e_bits = int_to_bits(sb, 16)
        bits, *_ = garble_and_run(circuit, g_bits, e_bits, seed=11)
        return words_to_int(bits)

    @given(
        st.integers(min_value=0, max_value=P - 1),
        st.integers(min_value=0, max_value=P - 1),
        st.integers(min_value=0, max_value=P - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_reference(self, sa, sb, r):
        assert self._run(sa, sb, r) == relu_reference(sa, sb, r, self.P)

    def test_positive_value_passes(self):
        y = 1234  # positive (< p/2)
        sa = 777
        sb = (y - sa) % self.P
        assert self._run(sa, sb, 0) == y

    def test_negative_value_clamps(self):
        y = self.P - 50  # represents -50
        sa = 999
        sb = (y - sa) % self.P
        assert self._run(sa, sb, 0) == 0

    def test_mask_subtraction(self):
        y, r = 100, 30
        sa = 5
        sb = (y - sa) % self.P
        assert self._run(sa, sb, r) == 70

    def test_garbler_owned_mask(self):
        y, r = 200, 45
        sa = 17
        sb = (y - sa) % self.P
        assert self._run(sa, sb, r, mask_owner="garbler") == 155

    def test_boundary_half(self):
        half_up = (self.P + 1) // 2  # smallest negative representative
        assert self._run(half_up, 0, 0) == 0
        assert self._run(half_up - 1, 0, 0) == half_up - 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReluCircuitSpec(bits=8, modulus=300, mask_owner="evaluator")
        with pytest.raises(ValueError):
            ReluCircuitSpec(bits=16, modulus=65521, mask_owner="nobody")

    def test_gate_count_scales_linearly(self):
        small = relu_and_gates(8)
        large = relu_and_gates(16)
        assert 1.7 < large / small < 2.3

    def test_41_bit_relu_matches_paper_footprint(self):
        """First-principles garbled ReLU size ≈ the paper's 18.2 KB/ReLU."""
        size = garbled_relu_bytes(41)
        assert 0.85 * 18200 <= size <= 1.1 * 18200
