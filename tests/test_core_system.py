"""Tests for the streaming-inference system simulator."""

import pytest

from repro.core.system import (
    OfflineParallelism,
    PiSystemSimulator,
    SystemConfig,
    pipeline_times,
    simulate_mean_latency,
)
from repro.nn.datasets import CIFAR100, TINY_IMAGENET
from repro.nn.models import resnet18, resnet32
from repro.profiling.devices import ATOM, EPYC
from repro.profiling.model_costs import Protocol, profile_network
from repro.simulation.workload import PoissonWorkload


@pytest.fixture(scope="module")
def r18_tiny():
    return profile_network(resnet18(TINY_IMAGENET))


@pytest.fixture(scope="module")
def r32_cifar():
    return profile_network(resnet32(CIFAR100))


def make_config(profile, **kwargs):
    defaults = dict(
        profile=profile,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)


class TestConfig:
    def test_buffer_capacity(self, r18_tiny):
        cfg = make_config(r18_tiny, client_storage_bytes=16e9)
        assert cfg.buffer_capacity == 2  # 16 GB / ~7.8 GB

    def test_sg_16gb_cannot_buffer(self, r18_tiny):
        cfg = make_config(
            r18_tiny, protocol=Protocol.SERVER_GARBLER, client_storage_bytes=16e9
        )
        assert cfg.buffer_capacity == 0  # 41 GB footprint

    def test_140gb_holds_17_precomputes(self, r18_tiny):
        """Paper §5.2: at 140 GB the client stores 17 pre-computes."""
        cfg = make_config(r18_tiny, client_storage_bytes=140e9)
        assert 16 <= cfg.buffer_capacity <= 18

    def test_link_uses_wsa(self, r18_tiny):
        assert make_config(r18_tiny, wsa=True).link().upload_fraction != 0.5
        assert make_config(r18_tiny, wsa=False).link().upload_fraction == 0.5


class TestPipelineTimes:
    def test_lphe_faster_than_sequential(self, r18_tiny):
        lphe = pipeline_times(make_config(r18_tiny))
        seq = pipeline_times(
            make_config(r18_tiny, parallelism=OfflineParallelism.SEQUENTIAL)
        )
        assert lphe.server_he < seq.server_he / 5

    def test_rlp_single_core_garble(self, r18_tiny):
        rlp = pipeline_times(make_config(r18_tiny, parallelism=OfflineParallelism.RLP))
        lphe = pipeline_times(make_config(r18_tiny))
        assert rlp.garble == pytest.approx(lphe.garble * ATOM.cores)

    def test_garbler_device_by_protocol(self, r18_tiny):
        cg = pipeline_times(make_config(r18_tiny))
        sg = pipeline_times(make_config(r18_tiny, protocol=Protocol.SERVER_GARBLER))
        assert cg.garble > sg.garble  # Atom garbles slower than EPYC


class TestSimulation:
    def test_low_rate_latency_is_online_only(self, r18_tiny):
        stats = simulate_mean_latency(
            make_config(r18_tiny), mean_interarrival=100 * 60, replications=2
        )
        assert stats["offline"] < 60
        assert stats["queue"] < 60
        assert stats["latency"] < 5 * 60  # paper: 1.88 min at low rate

    def test_high_rate_queues(self, r18_tiny):
        stats = simulate_mean_latency(
            make_config(r18_tiny), mean_interarrival=5 * 60, replications=1
        )
        assert stats["queue"] > 10 * 60  # far past saturation

    def test_no_buffer_pays_offline_inline(self, r18_tiny):
        cfg = make_config(
            r18_tiny, protocol=Protocol.SERVER_GARBLER, client_storage_bytes=16e9,
            parallelism=OfflineParallelism.SEQUENTIAL, wsa=False,
        )
        stats = simulate_mean_latency(cfg, mean_interarrival=200 * 60, replications=2)
        # Full offline (~1900 s) incurred per request: ~30+ minutes each.
        assert stats["offline"] > 20 * 60
        assert stats["hit"] == 0.0

    def test_proposed_beats_baseline_at_low_rate(self, r18_tiny):
        """Headline: proposed stack has lower mean latency (1.8x overall)."""
        baseline = simulate_mean_latency(
            make_config(
                r18_tiny, protocol=Protocol.SERVER_GARBLER,
                client_storage_bytes=16e9, wsa=False,
                parallelism=OfflineParallelism.SEQUENTIAL,
            ),
            mean_interarrival=100 * 60, replications=2,
        )
        proposed = simulate_mean_latency(
            make_config(r18_tiny), mean_interarrival=100 * 60, replications=2
        )
        assert proposed["latency"] < baseline["latency"] / 3

    def test_sustainable_rate_improvement(self, r32_cifar):
        """Proposed sustains a higher arrival rate than baseline (2.24x)."""
        rate = 4 * 60  # 1 request / 4 minutes on ResNet-32/CIFAR-100
        baseline = simulate_mean_latency(
            make_config(
                r32_cifar, protocol=Protocol.SERVER_GARBLER,
                client_storage_bytes=16e9, wsa=False,
                parallelism=OfflineParallelism.SEQUENTIAL,
            ),
            rate, replications=2,
        )
        proposed = simulate_mean_latency(make_config(r32_cifar), rate, replications=2)
        assert proposed["queue"] < baseline["queue"]

    def test_precompute_hit_rate_degrades_with_rate(self, r18_tiny):
        cfg = make_config(r18_tiny, client_storage_bytes=64e9)
        slow = simulate_mean_latency(cfg, 120 * 60, replications=2)
        fast = simulate_mean_latency(cfg, 12 * 60, replications=2)
        assert fast["hit"] <= slow["hit"]

    def test_all_requests_complete(self, r18_tiny):
        sim = PiSystemSimulator(make_config(r18_tiny))
        result = sim.run(PoissonWorkload(30 * 60, 24 * 3600, seed=1))
        assert result.requests
        assert all(r.completion_time is not None for r in result.requests)

    def test_deterministic_given_seed(self, r18_tiny):
        cfg = make_config(r18_tiny)
        a = simulate_mean_latency(cfg, 30 * 60, replications=2, seed=5)
        b = simulate_mean_latency(cfg, 30 * 60, replications=2, seed=5)
        assert a == b

    def test_fifo_order(self, r18_tiny):
        sim = PiSystemSimulator(make_config(r18_tiny))
        result = sim.run(PoissonWorkload(10 * 60, 12 * 3600, seed=2))
        starts = [r.service_start for r in result.completed]
        assert starts == sorted(starts)


class TestLpheVsRlp:
    def test_rlp_wins_with_big_storage(self, r18_tiny):
        """Figure 10c: at 140 GB RLP sustains a higher rate than LPHE."""
        rate = 13 * 60
        lphe = simulate_mean_latency(
            make_config(r18_tiny, client_storage_bytes=140e9), rate, replications=2
        )
        rlp = simulate_mean_latency(
            make_config(
                r18_tiny, client_storage_bytes=140e9,
                parallelism=OfflineParallelism.RLP,
            ),
            rate, replications=2,
        )
        assert rlp["latency"] < lphe["latency"]

    def test_lphe_wins_with_small_storage(self, r18_tiny):
        """Figure 10a: at 16 GB LPHE beats RLP (single-core pre-computes)."""
        rate = 40 * 60
        lphe = simulate_mean_latency(
            make_config(r18_tiny, client_storage_bytes=16e9), rate, replications=2
        )
        rlp = simulate_mean_latency(
            make_config(
                r18_tiny, client_storage_bytes=16e9,
                parallelism=OfflineParallelism.RLP,
            ),
            rate, replications=2,
        )
        assert lphe["latency"] <= rlp["latency"] * 1.05


class TestWorkload:
    def test_poisson_rate(self):
        workload = PoissonWorkload(60.0, 3600 * 100, seed=3)
        times = workload.arrival_times()
        assert 0.9 * 6000 < len(times) < 1.1 * 6000

    def test_times_sorted_within_horizon(self):
        workload = PoissonWorkload(10.0, 1000.0, seed=4)
        times = workload.arrival_times()
        assert times == sorted(times)
        assert all(0 < t < 1000 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(0, 100)
        with pytest.raises(ValueError):
            PoissonWorkload(10, 0)

    def test_rate_per_minute(self):
        assert PoissonWorkload(120.0, 100).rate_per_minute == pytest.approx(0.5)
