"""Tests for the baby-step/giant-step homomorphic matvec."""

import numpy as np
import pytest

from repro.crypto.rng import SecureRandom
from repro.he.bfv import BfvContext
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def rig():
    params = toy_params(n=128)
    ctx = BfvContext(params, SecureRandom(21))
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()
    return params, ctx, encoder, sk, pk


def run_bsgs(rig, matrix, vector, baby_steps):
    params, ctx, encoder, sk, pk = rig
    elements = {
        encoder.galois_element_for_rotation(1),
        encoder.galois_element_for_rotation(baby_steps),
    }
    gk = ctx.galois_keygen(sk, sorted(elements))
    evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
    packed = evaluator.pack_vector(vector)
    ct = ctx.encrypt(pk, encoder.encode(packed))
    ct_out = evaluator.matvec_bsgs(ct, matrix, baby_steps)
    return encoder.decode(ctx.decrypt(sk, ct_out))[: len(matrix)], evaluator


class TestBsgsMatvec:
    @pytest.mark.parametrize("baby", [2, 4, 8, 16])
    def test_matches_reference(self, rig, baby):
        params = rig[0]
        rng = np.random.default_rng(baby)
        n = 16
        matrix = rng.integers(0, params.t, size=(n, n)).tolist()
        x = rng.integers(0, params.t, size=n).tolist()
        got, _ = run_bsgs(rig, matrix, x, baby)
        expected = [
            sum(matrix[i][j] * x[j] for j in range(n)) % params.t for i in range(n)
        ]
        assert got == expected

    def test_rectangular(self, rig):
        params = rig[0]
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 500, size=(8, 16)).tolist()
        x = rng.integers(0, 500, size=16).tolist()
        got, _ = run_bsgs(rig, matrix, x, 4)
        expected = [
            sum(matrix[i][j] * x[j] for j in range(16)) % params.t for i in range(8)
        ]
        assert got == expected

    def test_fewer_rotations_than_naive(self, rig):
        params = rig[0]
        matrix = [[1] * 16 for _ in range(16)]
        x = list(range(16))
        _, evaluator = run_bsgs(rig, matrix, x, 4)
        # BSGS: (B-1) baby + (G-1) giant = 3 + 3 = 6 < 15 naive rotations.
        assert evaluator.rotations_performed == 6
        assert evaluator.plain_mults_performed == 16

    def test_baby_steps_must_divide_width(self, rig):
        params, ctx, encoder, sk, pk = rig
        gk = ctx.galois_keygen(sk, [encoder.galois_element_for_rotation(1)])
        evaluator = HomomorphicLinearEvaluator(ctx, encoder, gk)
        packed = evaluator.pack_vector([1] * 16)
        ct = ctx.encrypt(pk, encoder.encode(packed))
        with pytest.raises(ValueError):
            evaluator.matvec_bsgs(ct, [[0] * 16], 3)

    def test_degenerate_full_width_baby(self, rig):
        """baby_steps == n_in degenerates to the naive diagonal method."""
        params = rig[0]
        rng = np.random.default_rng(10)
        matrix = rng.integers(0, 100, size=(4, 8)).tolist()
        x = rng.integers(0, 100, size=8).tolist()
        got, evaluator = run_bsgs(rig, matrix, x, 8)
        expected = [
            sum(matrix[i][j] * x[j] for j in range(8)) % params.t for i in range(4)
        ]
        assert got == expected
        assert evaluator.rotations_performed == 7  # all baby, no giant
