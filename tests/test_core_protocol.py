"""Integration tests: the functional 2PC protocol against plaintext truth."""

import numpy as np
import pytest

from repro.core.protocol import HybridProtocol, lower_network
from repro.he.params import toy_params
from repro.nn.datasets import tiny_dataset
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.models import tiny_cnn, tiny_mlp
from repro.nn.network import Network
from repro.nn.shapes import TensorShape

PARAMS = toy_params(n=256)
P = PARAMS.t


def make_mlp(seed=0, hidden=8, size=4, classes=3):
    net = tiny_mlp(tiny_dataset(size=size, classes=classes), hidden=hidden)
    net.randomize_weights(P, np.random.default_rng(seed))
    return net


def run_protocol(net, x, garbler, seed=11):
    proto = HybridProtocol(net, PARAMS, garbler=garbler, seed=seed)
    proto.run_offline()
    return proto, proto.run_online(x)


class TestLowering:
    def test_mlp_steps(self):
        lowered = lower_network(make_mlp(), P)
        assert [k for k, _ in lowered.steps] == ["linear", "relu", "linear"]
        assert lowered.input_size == 16
        assert lowered.output_size == 3

    def test_cnn_steps(self):
        net = tiny_cnn(tiny_dataset(size=4), width=2)
        net.randomize_weights(P, np.random.default_rng(0))
        lowered = lower_network(net, P)
        assert [k for k, _ in lowered.steps] == [
            "linear", "relu", "linear", "relu", "linear",
        ]

    def test_relu_without_linear_rejected(self):
        net = Network("bad", TensorShape(4), [ReLU()])
        with pytest.raises(ValueError):
            lower_network(net, P)

    def test_trailing_relu_rejected(self):
        net = Network(
            "bad", TensorShape(4), [Linear(4, 2), ReLU()]
        )
        with pytest.raises(ValueError):
            lower_network(net, P)

    def test_strided_conv_rejected(self):
        net = Network(
            "bad", TensorShape(1, 4, 4), [Conv2d(1, 1, 3, stride=2), ReLU(), Conv2d(1, 1, 3)]
        )
        with pytest.raises(ValueError):
            lower_network(net, P)

    def test_lowered_matrix_matches_forward_mod(self):
        net = make_mlp(seed=3)
        lowered = lower_network(net, P)
        x = list(range(16))
        expected = net.forward_mod(
            np.array(x, dtype=object).reshape(1, 4, 4), P
        ).tolist()
        # plaintext_reference path through the lowered program
        proto = HybridProtocol(net, PARAMS, seed=1)
        assert proto.plaintext_reference(x) == expected


class TestServerGarbler:
    def test_mlp_exact(self):
        net = make_mlp(seed=5)
        rng = np.random.default_rng(5)
        x = rng.integers(0, P, size=16).tolist()
        proto, got = run_protocol(net, x, "server")
        assert got == proto.plaintext_reference(x)

    def test_cnn_exact(self):
        net = tiny_cnn(tiny_dataset(size=4), width=2)
        net.randomize_weights(P, np.random.default_rng(6))
        x = np.random.default_rng(7).integers(0, P, size=16).tolist()
        proto, got = run_protocol(net, x, "server")
        ref = net.forward_mod(np.array(x, dtype=object).reshape(1, 4, 4), P).tolist()
        assert got == ref

    def test_multiple_inputs_reuse_offline(self):
        """One offline phase serves exactly one inference (fresh each time)."""
        net = make_mlp(seed=8)
        rng = np.random.default_rng(8)
        for trial in range(2):
            x = rng.integers(0, P, size=16).tolist()
            proto, got = run_protocol(net, x, "server", seed=20 + trial)
            assert got == proto.plaintext_reference(x)

    def test_online_before_offline_rejected(self):
        proto = HybridProtocol(make_mlp(), PARAMS, seed=1)
        with pytest.raises(RuntimeError):
            proto.run_online([0] * 16)

    def test_wrong_input_size_rejected(self):
        proto = HybridProtocol(make_mlp(), PARAMS, seed=1)
        proto.run_offline()
        with pytest.raises(ValueError):
            proto.run_online([0] * 5)

    def test_offline_download_dominates(self):
        """GC transfer makes Server-Garbler offline download-heavy."""
        net = make_mlp(seed=9)
        proto, _ = run_protocol(net, [1] * 16, "server")
        summary = proto.channel.summary()
        assert summary["offline_down"] > summary["offline_up"] * 0.5
        assert summary["offline_down"] > summary["online_down"]

    def test_counters(self):
        net = make_mlp(seed=10)
        proto, _ = run_protocol(net, [2] * 16, "server")
        assert proto.counters.gc_circuits_garbled == 8  # hidden width
        assert proto.counters.gc_circuits_evaluated == 8
        assert proto.counters.he_encryptions == 2  # two linear layers
        assert proto.counters.ots_performed == 8 * 2 * proto.bits


class TestClientGarbler:
    def test_mlp_exact(self):
        net = make_mlp(seed=12)
        rng = np.random.default_rng(12)
        x = rng.integers(0, P, size=16).tolist()
        proto, got = run_protocol(net, x, "client")
        assert got == proto.plaintext_reference(x)

    def test_cnn_exact(self):
        net = tiny_cnn(tiny_dataset(size=4), width=2)
        net.randomize_weights(P, np.random.default_rng(13))
        x = np.random.default_rng(14).integers(0, P, size=16).tolist()
        proto, got = run_protocol(net, x, "client")
        ref = net.forward_mod(np.array(x, dtype=object).reshape(1, 4, 4), P).tolist()
        assert got == ref

    def test_offline_upload_dominates(self):
        """Client garbles and uploads circuits: CG offline is upload-heavy."""
        net = make_mlp(seed=15)
        proto, _ = run_protocol(net, [3] * 16, "client")
        summary = proto.channel.summary()
        assert summary["offline_up"] > summary["offline_down"]

    def test_online_ot_increases_online_upload(self):
        """CG moves OT online: online upload exceeds Server-Garbler's."""
        net = make_mlp(seed=16)
        proto_sg, _ = run_protocol(net, [4] * 16, "server", seed=30)
        proto_cg, _ = run_protocol(net, [4] * 16, "client", seed=30)
        assert (
            proto_cg.channel.summary()["online_up"]
            > proto_sg.channel.summary()["online_up"]
        )

    def test_both_roles_agree(self):
        net = make_mlp(seed=17)
        rng = np.random.default_rng(17)
        x = rng.integers(0, P, size=16).tolist()
        _, sg = run_protocol(net, x, "server", seed=40)
        _, cg = run_protocol(net, x, "client", seed=41)
        assert sg == cg

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            HybridProtocol(make_mlp(), PARAMS, garbler="nobody")


class TestPackingValidation:
    def test_width_not_dividing_row_rejected(self):
        net = Network(
            "bad", TensorShape(5), [Linear(5, 2, weights=np.zeros((2, 5)))]
        )
        with pytest.raises(ValueError):
            HybridProtocol(net, PARAMS, seed=1)

    def test_too_wide_layer_rejected(self):
        n = PARAMS.row_size * 2
        net = Network(
            "bad", TensorShape(4), [Linear(4, n, weights=np.zeros((n, 4)))]
        )
        with pytest.raises(ValueError):
            HybridProtocol(net, PARAMS, seed=1)


class TestRelUCorrectnessInsideProtocol:
    def test_negative_activations_clamp(self):
        """Weights chosen so pre-activations are negative field values."""
        net = tiny_mlp(tiny_dataset(size=4, classes=2), hidden=4)
        rng = np.random.default_rng(18)
        net.randomize_weights(P, rng)
        # Force first layer output strongly negative: W = -1 everywhere.
        first = net.layers[1]
        first.weights = np.full((4, 16), P - 1, dtype=object)  # -1 mod p
        x = [1] * 16  # y = -16 mod p -> negative -> ReLU -> 0
        proto, got = run_protocol(net, x, "server", seed=50)
        assert got == proto.plaintext_reference(x)
        # With all-zero ReLU output, logits are exactly 0.
        assert got == [0, 0]
