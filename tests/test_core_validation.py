"""Validation: functional-protocol bytes vs the analytic communication model.

This is the repo's analogue of the paper's simulator-validation step
(0.9% relative error against DELPHI, §3): the formulas the simulator uses
must agree with what the real protocol actually transmits.
"""

import numpy as np
import pytest

from repro.core.protocol import HybridProtocol
from repro.core.validation import predict_comm, validate_protocol_comm
from repro.he.params import toy_params
from repro.nn.datasets import tiny_dataset
from repro.nn.models import tiny_cnn, tiny_mlp

PARAMS = toy_params(n=256)
P = PARAMS.t


def make_net(kind="mlp", seed=0):
    ds = tiny_dataset(size=4, classes=3)
    net = tiny_mlp(ds, hidden=8) if kind == "mlp" else tiny_cnn(ds, width=2)
    net.randomize_weights(P, np.random.default_rng(seed))
    return net


class TestCommValidation:
    @pytest.mark.parametrize("garbler", ["server", "client"])
    def test_mlp_within_five_percent(self, garbler):
        protocol = HybridProtocol(make_net("mlp", 1), PARAMS, garbler=garbler, seed=9)
        x = np.random.default_rng(2).integers(0, P, size=16).tolist()
        validation = validate_protocol_comm(protocol, x)
        errors = validation.relative_errors()
        assert validation.worst_error < 0.05, errors

    @pytest.mark.parametrize("garbler", ["server", "client"])
    def test_cnn_within_five_percent(self, garbler):
        protocol = HybridProtocol(make_net("cnn", 3), PARAMS, garbler=garbler, seed=10)
        x = np.random.default_rng(4).integers(0, P, size=16).tolist()
        validation = validate_protocol_comm(protocol, x)
        assert validation.worst_error < 0.05, validation.relative_errors()

    def test_prediction_directions(self):
        """Predicted asymmetries match the paper's qualitative claims."""
        sg = predict_comm(HybridProtocol(make_net("mlp", 5), PARAMS, garbler="server", seed=1))
        cg = predict_comm(HybridProtocol(make_net("mlp", 5), PARAMS, garbler="client", seed=1))
        assert sg["offline_down"] > sg["offline_up"] - 2 * PARAMS.ciphertext_bytes * 3
        assert cg["offline_up"] > cg["offline_down"]
        assert cg["online_up"] > sg["online_up"]

    def test_errors_keyed_by_phase(self):
        protocol = HybridProtocol(make_net("mlp", 6), PARAMS, garbler="server", seed=2)
        x = [1] * 16
        validation = validate_protocol_comm(protocol, x)
        assert set(validation.relative_errors()) == {
            "offline_up", "offline_down", "online_up", "online_down",
        }
