"""Garbling with free-XOR and half-gates (Zahur-Rosulek-Evans 2015).

XOR gates cost nothing; each AND gate produces exactly two 16-byte
ciphertexts (the generator and evaluator halves). Wire labels are 128 bits
with the point-and-permute bit in the least significant position of the
global offset ``delta``, the free-XOR invariant being
``label1 = label0 XOR delta`` on every wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.prg import LABEL_BYTES, hash_label, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, GateType


def _lsb(label: bytes) -> int:
    return label[0] & 1


@dataclass
class GarbledGate:
    """The two half-gate ciphertexts for one AND gate."""

    generator_half: bytes
    evaluator_half: bytes


@dataclass
class GarbledCircuit:
    """Everything the evaluator needs except input labels.

    ``size_bytes`` is the transmitted/stored size: two ciphertexts per AND
    gate plus one decode bit per output wire — this is what dominates the
    protocol's storage and communication footprint (18.2 KB per ReLU in the
    paper's profiling of fancy-garbling).
    """

    circuit: Circuit
    tables: dict[int, GarbledGate]
    output_decode_bits: list[int]

    @property
    def size_bytes(self) -> int:
        return 2 * LABEL_BYTES * len(self.tables) + (len(self.output_decode_bits) + 7) // 8


@dataclass
class InputEncoding:
    """Garbler-private mapping from input wires to their label pairs.

    The garbler keeps this (3.5 KB per ReLU in the paper — the asymmetry
    with the 18.2 KB garbled circuit is what Client-Garbler exploits).
    """

    zero_labels: dict[int, bytes]
    delta: bytes
    output_zero_labels: dict[int, bytes] = field(default_factory=dict)

    def label_for(self, wire: int, bit: int) -> bytes:
        zero = self.zero_labels[wire]
        return xor_bytes(zero, self.delta) if bit else zero

    @property
    def size_bytes(self) -> int:
        return LABEL_BYTES * (2 * len(self.zero_labels) + 1)


class Garbler:
    """Produces a garbled circuit plus the private input encoding."""

    def __init__(self, rng: SecureRandom | None = None):
        self._rng = rng or SecureRandom()

    def garble(self, circuit: Circuit) -> tuple[GarbledCircuit, InputEncoding]:
        rng = self._rng
        delta = bytearray(rng.bytes(LABEL_BYTES))
        delta[0] |= 1  # point-and-permute bit rides on the LSB
        delta = bytes(delta)

        zero_labels: dict[int, bytes] = {}

        def fresh_label() -> bytes:
            return rng.bytes(LABEL_BYTES)

        # Constant wires: the garbler knows their truth values, so it hands
        # the evaluator the label of the actual value; zero-label bookkeeping
        # stays uniform.
        zero_labels[Circuit.CONST_ZERO] = fresh_label()
        zero_labels[Circuit.CONST_ONE] = fresh_label()
        for wire in circuit.garbler_inputs:
            zero_labels[wire] = fresh_label()
        for wire in circuit.evaluator_inputs:
            zero_labels[wire] = fresh_label()

        tables: dict[int, GarbledGate] = {}
        for index, gate in enumerate(circuit.gates):
            a0 = zero_labels[gate.a]
            b0 = zero_labels[gate.b]
            if gate.kind is GateType.XOR:
                zero_labels[gate.out] = xor_bytes(a0, b0)
                continue
            a1 = xor_bytes(a0, delta)
            b1 = xor_bytes(b0, delta)
            p_a = _lsb(a0)
            p_b = _lsb(b0)
            tweak_g = 2 * index
            tweak_e = 2 * index + 1
            # Generator half-gate: computes a AND p_b (garbler knows p_b).
            t_g = xor_bytes(hash_label(a0, tweak_g), hash_label(a1, tweak_g))
            if p_b:
                t_g = xor_bytes(t_g, delta)
            w_g = hash_label(a0, tweak_g)
            if p_a:
                w_g = xor_bytes(w_g, t_g)
            # Evaluator half-gate: computes a AND (b XOR p_b).
            t_e = xor_bytes(
                xor_bytes(hash_label(b0, tweak_e), hash_label(b1, tweak_e)), a0
            )
            w_e = hash_label(b0, tweak_e)
            if p_b:
                w_e = xor_bytes(w_e, xor_bytes(t_e, a0))
            out0 = xor_bytes(w_g, w_e)
            zero_labels[gate.out] = out0
            tables[index] = GarbledGate(t_g, t_e)

        decode_bits = [_lsb(zero_labels[w]) for w in circuit.outputs]
        encoding = InputEncoding(
            zero_labels={
                w: zero_labels[w]
                for w in (
                    [Circuit.CONST_ZERO, Circuit.CONST_ONE]
                    + circuit.garbler_inputs
                    + circuit.evaluator_inputs
                )
            },
            delta=delta,
            output_zero_labels={w: zero_labels[w] for w in circuit.outputs},
        )
        garbled = GarbledCircuit(circuit, tables, decode_bits)
        return garbled, encoding

    @staticmethod
    def encode_inputs(
        encoding: InputEncoding,
        circuit: Circuit,
        garbler_bits: list[int],
    ) -> dict[int, bytes]:
        """Labels for the garbler's own inputs plus the constant wires."""
        labels = {
            Circuit.CONST_ZERO: encoding.label_for(Circuit.CONST_ZERO, 0),
            Circuit.CONST_ONE: encoding.label_for(Circuit.CONST_ONE, 1),
        }
        if len(garbler_bits) != len(circuit.garbler_inputs):
            raise ValueError("garbler input length mismatch")
        for wire, bit in zip(circuit.garbler_inputs, garbler_bits):
            labels[wire] = encoding.label_for(wire, bit & 1)
        return labels

    @staticmethod
    def decode_output_labels(
        encoding: InputEncoding, circuit: Circuit, labels: list[bytes]
    ) -> list[int]:
        """Garbler-side decoding of output labels returned by the evaluator."""
        bits = []
        for wire, label in zip(circuit.outputs, labels):
            zero = encoding.output_zero_labels[wire]
            if label == zero:
                bits.append(0)
            elif label == xor_bytes(zero, encoding.delta):
                bits.append(1)
            else:
                raise ValueError(f"label for wire {wire} is not in the encoding")
        return bits
