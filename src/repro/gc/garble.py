"""Garbling with free-XOR and half-gates (Zahur-Rosulek-Evans 2015).

XOR gates cost nothing; each AND gate produces exactly two 16-byte
ciphertexts (the generator and evaluator halves). Wire labels are 128 bits
with the point-and-permute bit in the least significant position of the
global offset ``delta``, the free-XOR invariant being
``label1 = label0 XOR delta`` on every wire.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.crypto.prg import LABEL_BYTES, hash_label, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, GateType

try:
    import numpy as _np
except ImportError:  # pragma: no cover - minimal images only
    _np = None


def _lsb(label: bytes) -> int:
    return label[0] & 1


def hash_label_rows(labels, tweak_bytes: bytes):
    """H(label, tweak) for every row of a (count, 16) uint8 label matrix.

    SHA-256 itself cannot be vectorized from Python, but hashing straight
    out of the matrix rows avoids the per-gate dict walks and bytes
    plumbing of the scalar path; everything around the hashes (label XOR,
    point-and-permute masking) is done on whole matrices.
    """
    digest = hashlib.sha256
    count = labels.shape[0]
    flat = labels.tobytes()
    joined = b"".join(
        digest(flat[i * LABEL_BYTES : (i + 1) * LABEL_BYTES] + tweak_bytes).digest()[
            :LABEL_BYTES
        ]
        for i in range(count)
    )
    return _np.frombuffer(joined, dtype=_np.uint8).reshape(count, LABEL_BYTES)


@dataclass
class GarbledGate:
    """The two half-gate ciphertexts for one AND gate."""

    generator_half: bytes
    evaluator_half: bytes


@dataclass
class GarbledCircuit:
    """Everything the evaluator needs except input labels.

    ``size_bytes`` is the transmitted/stored size: two ciphertexts per AND
    gate plus one decode bit per output wire — this is what dominates the
    protocol's storage and communication footprint (18.2 KB per ReLU in the
    paper's profiling of fancy-garbling).
    """

    circuit: Circuit
    tables: dict[int, GarbledGate]
    output_decode_bits: list[int]

    @property
    def size_bytes(self) -> int:
        return 2 * LABEL_BYTES * len(self.tables) + (len(self.output_decode_bits) + 7) // 8


@dataclass
class InputEncoding:
    """Garbler-private mapping from input wires to their label pairs.

    The garbler keeps this (3.5 KB per ReLU in the paper — the asymmetry
    with the 18.2 KB garbled circuit is what Client-Garbler exploits).
    """

    zero_labels: dict[int, bytes]
    delta: bytes
    output_zero_labels: dict[int, bytes] = field(default_factory=dict)

    def label_for(self, wire: int, bit: int) -> bytes:
        zero = self.zero_labels[wire]
        return xor_bytes(zero, self.delta) if bit else zero

    @property
    def size_bytes(self) -> int:
        return LABEL_BYTES * (2 * len(self.zero_labels) + 1)


def derive_instance_labels(
    rng: SecureRandom, circuit: Circuit
) -> tuple[bytes, dict[int, bytes]]:
    """Draw one instance's delta and input zero-labels.

    This is the *only* randomness one garbling consumes; the half-gates
    walk after it is deterministic, which is what lets a process pool
    shard the walk across workers while the parent keeps the RNG stream —
    pooled output stays byte-identical to :meth:`Garbler.garble` under
    the same seed (see :mod:`repro.runtime.pool`). Draw order: delta,
    then CONST_ZERO, CONST_ONE, garbler inputs, evaluator inputs.
    """
    delta = bytearray(rng.bytes(LABEL_BYTES))
    delta[0] |= 1  # point-and-permute bit rides on the LSB
    delta = bytes(delta)

    zero_labels: dict[int, bytes] = {}

    def fresh_label() -> bytes:
        return rng.bytes(LABEL_BYTES)

    # Constant wires: the garbler knows their truth values, so it hands
    # the evaluator the label of the actual value; zero-label bookkeeping
    # stays uniform.
    zero_labels[Circuit.CONST_ZERO] = fresh_label()
    zero_labels[Circuit.CONST_ONE] = fresh_label()
    for wire in circuit.garbler_inputs:
        zero_labels[wire] = fresh_label()
    for wire in circuit.evaluator_inputs:
        zero_labels[wire] = fresh_label()
    return delta, zero_labels


def derive_batch_labels(rng: SecureRandom, circuit: Circuit, count: int):
    """Draw a batch's deltas and input zero-labels as (count, 16) matrices.

    The vectorized analogue of :func:`derive_instance_labels`, consuming
    the RNG in exactly the order :meth:`Garbler.garble_batch` does: all
    deltas first, then each input wire's labels for the whole batch. Row
    ``i`` of every matrix belongs to instance ``i``.
    """

    def fresh_labels():
        return _np.frombuffer(
            rng.bytes(count * LABEL_BYTES), dtype=_np.uint8
        ).reshape(count, LABEL_BYTES).copy()

    deltas = fresh_labels()
    deltas[:, 0] |= 1  # point-and-permute bit rides on the LSB

    zero_labels: dict[int, "_np.ndarray"] = {
        Circuit.CONST_ZERO: fresh_labels(),
        Circuit.CONST_ONE: fresh_labels(),
    }
    for wire in circuit.garbler_inputs:
        zero_labels[wire] = fresh_labels()
    for wire in circuit.evaluator_inputs:
        zero_labels[wire] = fresh_labels()
    return deltas, zero_labels


def garble_from_labels(
    circuit: Circuit, delta: bytes, input_zero_labels: dict[int, bytes]
) -> tuple[GarbledCircuit, InputEncoding]:
    """Deterministic half-gates walk over pre-drawn input labels."""
    zero_labels = dict(input_zero_labels)
    tables: dict[int, GarbledGate] = {}
    for index, gate in enumerate(circuit.gates):
        a0 = zero_labels[gate.a]
        b0 = zero_labels[gate.b]
        if gate.kind is GateType.XOR:
            zero_labels[gate.out] = xor_bytes(a0, b0)
            continue
        a1 = xor_bytes(a0, delta)
        b1 = xor_bytes(b0, delta)
        p_a = _lsb(a0)
        p_b = _lsb(b0)
        tweak_g = 2 * index
        tweak_e = 2 * index + 1
        # Generator half-gate: computes a AND p_b (garbler knows p_b).
        t_g = xor_bytes(hash_label(a0, tweak_g), hash_label(a1, tweak_g))
        if p_b:
            t_g = xor_bytes(t_g, delta)
        w_g = hash_label(a0, tweak_g)
        if p_a:
            w_g = xor_bytes(w_g, t_g)
        # Evaluator half-gate: computes a AND (b XOR p_b).
        t_e = xor_bytes(
            xor_bytes(hash_label(b0, tweak_e), hash_label(b1, tweak_e)), a0
        )
        w_e = hash_label(b0, tweak_e)
        if p_b:
            w_e = xor_bytes(w_e, xor_bytes(t_e, a0))
        out0 = xor_bytes(w_g, w_e)
        zero_labels[gate.out] = out0
        tables[index] = GarbledGate(t_g, t_e)

    decode_bits = [_lsb(zero_labels[w]) for w in circuit.outputs]
    encoding = InputEncoding(
        zero_labels={
            w: zero_labels[w]
            for w in (
                [Circuit.CONST_ZERO, Circuit.CONST_ONE]
                + circuit.garbler_inputs
                + circuit.evaluator_inputs
            )
        },
        delta=delta,
        output_zero_labels={w: zero_labels[w] for w in circuit.outputs},
    )
    garbled = GarbledCircuit(circuit, tables, decode_bits)
    return garbled, encoding


def garble_batch_from_labels(
    circuit: Circuit, deltas, input_zero_labels
) -> list[tuple[GarbledCircuit, InputEncoding]]:
    """Deterministic vectorized walk over pre-drawn (count, 16) matrices.

    Every operation is row-wise, so the walk over any contiguous row slice
    of the full batch's matrices produces exactly those instances' results
    — the property :class:`repro.runtime.pool.PrecomputePool` relies on to
    shard one layer's batch across processes without splitting the RNG.
    """
    count = deltas.shape[0]
    zero_labels: dict[int, "_np.ndarray"] = dict(input_zero_labels)
    and_tables: list[tuple[int, "_np.ndarray", "_np.ndarray"]] = []
    for index, gate in enumerate(circuit.gates):
        a0 = zero_labels[gate.a]
        b0 = zero_labels[gate.b]
        if gate.kind is GateType.XOR:
            zero_labels[gate.out] = a0 ^ b0
            continue
        a1 = a0 ^ deltas
        b1 = b0 ^ deltas
        p_a = (a0[:, :1] & 1).astype(bool)  # column vectors broadcast
        p_b = (b0[:, :1] & 1).astype(bool)
        tweak_g = struct.pack("<Q", 2 * index)
        tweak_e = struct.pack("<Q", 2 * index + 1)
        h_a0 = hash_label_rows(a0, tweak_g)
        h_a1 = hash_label_rows(a1, tweak_g)
        h_b0 = hash_label_rows(b0, tweak_e)
        h_b1 = hash_label_rows(b1, tweak_e)
        # Generator half-gate: computes a AND p_b (garbler knows p_b).
        t_g = h_a0 ^ h_a1
        t_g = _np.where(p_b, t_g ^ deltas, t_g)
        w_g = _np.where(p_a, h_a0 ^ t_g, h_a0)
        # Evaluator half-gate: computes a AND (b XOR p_b).
        t_e = h_b0 ^ h_b1 ^ a0
        w_e = _np.where(p_b, h_b0 ^ t_e ^ a0, h_b0)
        zero_labels[gate.out] = w_g ^ w_e
        and_tables.append((index, t_g, t_e))

    encoding_wires = (
        [Circuit.CONST_ZERO, Circuit.CONST_ONE]
        + circuit.garbler_inputs
        + circuit.evaluator_inputs
    )
    output_rows = {w: zero_labels[w] for w in circuit.outputs}
    results = []
    for i in range(count):
        tables = {
            index: GarbledGate(t_g[i].tobytes(), t_e[i].tobytes())
            for index, t_g, t_e in and_tables
        }
        decode_bits = [int(output_rows[w][i, 0]) & 1 for w in circuit.outputs]
        encoding = InputEncoding(
            zero_labels={w: zero_labels[w][i].tobytes() for w in encoding_wires},
            delta=deltas[i].tobytes(),
            output_zero_labels={
                w: output_rows[w][i].tobytes() for w in circuit.outputs
            },
        )
        results.append((GarbledCircuit(circuit, tables, decode_bits), encoding))
    return results


class Garbler:
    """Produces a garbled circuit plus the private input encoding."""

    def __init__(self, rng: SecureRandom | None = None):
        self._rng = rng or SecureRandom()

    def garble(self, circuit: Circuit) -> tuple[GarbledCircuit, InputEncoding]:
        delta, zero_labels = derive_instance_labels(self._rng, circuit)
        return garble_from_labels(circuit, delta, zero_labels)

    def garble_batch(
        self, circuit: Circuit, count: int, vectorize: bool | None = None
    ) -> list[tuple[GarbledCircuit, InputEncoding]]:
        """Garble ``count`` independent instances of the same circuit.

        A ReLU layer garbles one identical circuit per activation wire, so
        instead of walking the gate list once per instance we walk it once
        and carry every instance's labels as a (count, 16) byte matrix:
        free-XOR gates become single vectorized XORs across the whole
        batch and half-gate masking becomes boolean row selection. Each
        instance still draws its own delta and input labels, and the
        produced tables are exactly what per-instance :meth:`garble` would
        accept — only the RNG draw order differs.

        ``vectorize`` overrides the default gate (label matrices when the
        active backend is numpy); pass False to force sequential garbling
        (keeping `REPRO_BACKEND=python` runs pure) or True to vectorize
        regardless of the global selection, e.g. from a per-protocol
        backend preference.
        """
        if count <= 0:
            return []
        if vectorize is None:
            from repro.backend import get_backend

            vectorize = get_backend().name == "numpy"
        if _np is None or count == 1 or not vectorize:
            return [self.garble(circuit) for _ in range(count)]
        deltas, zero_labels = derive_batch_labels(self._rng, circuit, count)
        return garble_batch_from_labels(circuit, deltas, zero_labels)

    @staticmethod
    def encode_inputs(
        encoding: InputEncoding,
        circuit: Circuit,
        garbler_bits: list[int],
    ) -> dict[int, bytes]:
        """Labels for the garbler's own inputs plus the constant wires."""
        labels = {
            Circuit.CONST_ZERO: encoding.label_for(Circuit.CONST_ZERO, 0),
            Circuit.CONST_ONE: encoding.label_for(Circuit.CONST_ONE, 1),
        }
        if len(garbler_bits) != len(circuit.garbler_inputs):
            raise ValueError("garbler input length mismatch")
        for wire, bit in zip(circuit.garbler_inputs, garbler_bits):
            labels[wire] = encoding.label_for(wire, bit & 1)
        return labels

    @staticmethod
    def decode_output_labels(
        encoding: InputEncoding, circuit: Circuit, labels: list[bytes]
    ) -> list[int]:
        """Garbler-side decoding of output labels returned by the evaluator."""
        bits = []
        for wire, label in zip(circuit.outputs, labels):
            zero = encoding.output_zero_labels[wire]
            if label == zero:
                bits.append(0)
            elif label == xor_bytes(zero, encoding.delta):
                bits.append(1)
            else:
                raise ValueError(f"label for wire {wire} is not in the encoding")
        return bits
