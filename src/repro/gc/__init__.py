"""Garbled circuits: free-XOR + half-gates, circuit builder, ReLU circuits."""

from repro.gc.circuit import (
    Circuit,
    CircuitBuilder,
    Gate,
    GateType,
    int_to_bits,
    words_to_int,
)
from repro.gc.classic import ClassicEvaluator, ClassicGarbler
from repro.gc.evaluate import Evaluator
from repro.gc.garble import GarbledCircuit, Garbler, InputEncoding
from repro.gc.relu import (
    ReluCircuitSpec,
    build_relu_circuit,
    garbled_relu_bytes,
    relu_and_gates,
    relu_reference,
)

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "ClassicEvaluator",
    "ClassicGarbler",
    "Evaluator",
    "GarbledCircuit",
    "Garbler",
    "Gate",
    "GateType",
    "InputEncoding",
    "ReluCircuitSpec",
    "build_relu_circuit",
    "garbled_relu_bytes",
    "int_to_bits",
    "relu_and_gates",
    "relu_reference",
    "words_to_int",
]
