"""The DELPHI ReLU garbled circuit.

The circuit combines the two parties' additive shares of a linear-layer
output y (mod the share prime p), applies ReLU with the centered-sign
convention (values in [ceil(p/2), p) are negative), and re-masks the result
with the client's next-layer randomness r, producing ReLU(y) - r mod p:

    out = ReLU(share_a + share_b mod p) - r  (mod p)

Ownership of the inputs depends on the protocol: in Server-Garbler the
server garbles and holds share_a while the client (evaluator) feeds share_b
and r; in Client-Garbler the client garbles and holds share_b and r while
the server's share_a arrives via online OT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import LABEL_BYTES
from repro.gc.circuit import Circuit, CircuitBuilder


@dataclass(frozen=True)
class ReluCircuitSpec:
    """Shape of a ReLU circuit over k-bit shares mod p.

    ``truncate_bits`` folds DELPHI's fixed-point rescaling into the garbled
    circuit: after the ReLU clamp the (non-negative) value is shifted right
    by that many bits before re-masking — exact, and free inside the
    circuit since a shift is pure rewiring.
    """

    bits: int
    modulus: int
    mask_owner: str  # "garbler" or "evaluator"
    truncate_bits: int = 0

    def __post_init__(self) -> None:
        if self.modulus >= (1 << self.bits):
            raise ValueError("modulus must fit in the configured bit width")
        if self.mask_owner not in ("garbler", "evaluator"):
            raise ValueError("mask_owner must be 'garbler' or 'evaluator'")
        if not 0 <= self.truncate_bits < self.bits:
            raise ValueError("truncate_bits must be in [0, bits)")


def build_relu_circuit(spec: ReluCircuitSpec) -> Circuit:
    """Build the share-combining ReLU circuit for one activation.

    Input order: garbler word(s) first, then evaluator word(s); within each
    party the share word precedes the mask word when that party owns the
    mask. All words are little-endian ``spec.bits`` wide.
    """
    builder = CircuitBuilder()
    p = spec.modulus
    k = spec.bits

    garbler_share = builder.garbler_input_word(k)
    if spec.mask_owner == "garbler":
        mask = builder.garbler_input_word(k)
        evaluator_share = builder.evaluator_input_word(k)
    else:
        evaluator_share = builder.evaluator_input_word(k)
        mask = builder.evaluator_input_word(k)

    y = builder.add_mod(garbler_share, evaluator_share, p)
    negative = builder.geq_const(y, (p + 1) // 2)
    zeros = builder.constant_word(0, k)
    relu = builder.mux_word(negative, zeros, y)
    if spec.truncate_bits:
        # Right shift is free rewiring: drop the low bits, zero-fill the top.
        relu = relu[spec.truncate_bits :] + [builder.zero] * spec.truncate_bits
    out = builder.sub_mod(relu, mask, p)
    builder.mark_output(out)
    return builder.build()


def relu_reference(
    share_a: int, share_b: int, mask: int, modulus: int, truncate_bits: int = 0
) -> int:
    """Plaintext reference of the circuit's function."""
    y = (share_a + share_b) % modulus
    value = y if y < (modulus + 1) // 2 else 0
    return ((value >> truncate_bits) - mask) % modulus


def relu_and_gates(bits: int) -> int:
    """AND-gate count of one ReLU circuit (determines its garbled size)."""
    spec = ReluCircuitSpec(bits=bits, modulus=(1 << bits) - 1, mask_owner="evaluator")
    return build_relu_circuit(spec).and_count


def garbled_relu_bytes(bits: int) -> int:
    """First-principles size of one garbled ReLU (two ciphertexts per AND).

    For the paper's 41-bit share field this lands within ~10% of the
    18.2 KB/ReLU measured from fancy-garbling, which also serializes wire
    metadata.
    """
    return 2 * LABEL_BYTES * relu_and_gates(bits) + bits // 8 + 1
