"""Evaluator side of the half-gates garbled circuit protocol."""

from __future__ import annotations

import struct

from repro.crypto.prg import LABEL_BYTES, hash_label, xor_bytes
from repro.gc.circuit import GateType
from repro.gc.garble import GarbledCircuit, hash_label_rows

try:
    import numpy as _np
except ImportError:  # pragma: no cover - minimal images only
    _np = None


def _lsb(label: bytes) -> int:
    return label[0] & 1


class Evaluator:
    """Evaluates a garbled circuit given one label per input wire."""

    def evaluate(
        self, garbled: GarbledCircuit, input_labels: dict[int, bytes]
    ) -> list[bytes]:
        """Run the circuit; returns the active label of each output wire."""
        circuit = garbled.circuit
        labels: dict[int, bytes] = dict(input_labels)
        for index, gate in enumerate(circuit.gates):
            a = labels[gate.a]
            b = labels[gate.b]
            if gate.kind is GateType.XOR:
                labels[gate.out] = xor_bytes(a, b)
                continue
            table = garbled.tables[index]
            tweak_g = 2 * index
            tweak_e = 2 * index + 1
            w_g = hash_label(a, tweak_g)
            if _lsb(a):
                w_g = xor_bytes(w_g, table.generator_half)
            w_e = hash_label(b, tweak_e)
            if _lsb(b):
                w_e = xor_bytes(w_e, xor_bytes(table.evaluator_half, a))
            labels[gate.out] = xor_bytes(w_g, w_e)
        return [labels[w] for w in circuit.outputs]

    def evaluate_batch(
        self,
        garbled_batch: list[GarbledCircuit],
        input_labels_batch: list[dict[int, bytes]],
        vectorize: bool | None = None,
    ) -> list[list[bytes]]:
        """Evaluate many garbled instances of one circuit topology at once.

        The per-layer ReLU batch shares a single :class:`Circuit`, so the
        gate walk happens once with every instance's active labels carried
        as a (count, 16) byte matrix — free-XOR gates collapse to one
        vectorized XOR and half-gate corrections to masked row XORs. Falls
        back to per-instance :meth:`evaluate` when numpy is missing, the
        resolved gate is python, or topologies differ; ``vectorize``
        overrides the default gate (active backend == numpy) either way.
        """
        count = len(garbled_batch)
        if count != len(input_labels_batch):
            raise ValueError("one input-label map per garbled circuit required")
        if count == 0:
            return []
        if vectorize is None:
            from repro.backend import get_backend

            vectorize = get_backend().name == "numpy"
        circuit = garbled_batch[0].circuit
        if (
            _np is None
            or count == 1
            or not vectorize
            or any(g.circuit is not circuit for g in garbled_batch[1:])
        ):
            return [
                self.evaluate(g, labels)
                for g, labels in zip(garbled_batch, input_labels_batch)
            ]

        def stack(rows: list[bytes]):
            return _np.frombuffer(b"".join(rows), dtype=_np.uint8).reshape(
                count, LABEL_BYTES
            )

        labels: dict[int, "_np.ndarray"] = {
            wire: stack([inst[wire] for inst in input_labels_batch])
            for wire in input_labels_batch[0]
        }
        for index, gate in enumerate(circuit.gates):
            a = labels[gate.a]
            b = labels[gate.b]
            if gate.kind is GateType.XOR:
                labels[gate.out] = a ^ b
                continue
            table_g = stack([g.tables[index].generator_half for g in garbled_batch])
            table_e = stack([g.tables[index].evaluator_half for g in garbled_batch])
            lsb_a = (a[:, :1] & 1).astype(bool)
            lsb_b = (b[:, :1] & 1).astype(bool)
            h_a = hash_label_rows(a, struct.pack("<Q", 2 * index))
            h_b = hash_label_rows(b, struct.pack("<Q", 2 * index + 1))
            w_g = _np.where(lsb_a, h_a ^ table_g, h_a)
            w_e = _np.where(lsb_b, h_b ^ table_e ^ a, h_b)
            labels[gate.out] = w_g ^ w_e
        return [
            [labels[w][i].tobytes() for w in circuit.outputs] for i in range(count)
        ]

    def decode(self, garbled: GarbledCircuit, output_labels: list[bytes]) -> list[int]:
        """Decode output labels to cleartext bits using the decode bits."""
        return [
            _lsb(label) ^ bit
            for label, bit in zip(output_labels, garbled.output_decode_bits)
        ]
