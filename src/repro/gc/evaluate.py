"""Evaluator side of the half-gates garbled circuit protocol."""

from __future__ import annotations

from repro.crypto.prg import hash_label, xor_bytes
from repro.gc.circuit import GateType
from repro.gc.garble import GarbledCircuit


def _lsb(label: bytes) -> int:
    return label[0] & 1


class Evaluator:
    """Evaluates a garbled circuit given one label per input wire."""

    def evaluate(
        self, garbled: GarbledCircuit, input_labels: dict[int, bytes]
    ) -> list[bytes]:
        """Run the circuit; returns the active label of each output wire."""
        circuit = garbled.circuit
        labels: dict[int, bytes] = dict(input_labels)
        for index, gate in enumerate(circuit.gates):
            a = labels[gate.a]
            b = labels[gate.b]
            if gate.kind is GateType.XOR:
                labels[gate.out] = xor_bytes(a, b)
                continue
            table = garbled.tables[index]
            tweak_g = 2 * index
            tweak_e = 2 * index + 1
            w_g = hash_label(a, tweak_g)
            if _lsb(a):
                w_g = xor_bytes(w_g, table.generator_half)
            w_e = hash_label(b, tweak_e)
            if _lsb(b):
                w_e = xor_bytes(w_e, xor_bytes(table.evaluator_half, a))
            labels[gate.out] = xor_bytes(w_g, w_e)
        return [labels[w] for w in circuit.outputs]

    def decode(self, garbled: GarbledCircuit, output_labels: list[bytes]) -> list[int]:
        """Decode output labels to cleartext bits using the decode bits."""
        return [
            _lsb(label) ^ bit
            for label, bit in zip(output_labels, garbled.output_decode_bits)
        ]
