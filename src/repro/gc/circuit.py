"""Boolean circuit representation and a builder for arithmetic sub-circuits.

Circuits are flat gate lists over integer wire ids. Only two gate kinds
exist at the garbling level — XOR (free under free-XOR) and AND (two
ciphertexts under half-gates). NOT is expressed as XOR with a constant-one
wire supplied by the garbler, which is the standard free-XOR trick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class GateType(Enum):
    XOR = "xor"
    AND = "and"


@dataclass(frozen=True)
class Gate:
    kind: GateType
    a: int
    b: int
    out: int


@dataclass
class Circuit:
    """A garbling-ready boolean circuit.

    Wire 0 is the constant-zero wire and wire 1 the constant-one wire; both
    are provided by the garbler. ``garbler_inputs`` and ``evaluator_inputs``
    list the remaining input wires by owner, in protocol order.
    """

    n_wires: int = 2
    gates: list[Gate] = field(default_factory=list)
    garbler_inputs: list[int] = field(default_factory=list)
    evaluator_inputs: list[int] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)

    CONST_ZERO = 0
    CONST_ONE = 1

    @property
    def and_count(self) -> int:
        return sum(1 for g in self.gates if g.kind is GateType.AND)

    @property
    def xor_count(self) -> int:
        return sum(1 for g in self.gates if g.kind is GateType.XOR)

    def evaluate_plain(
        self, garbler_bits: list[int], evaluator_bits: list[int]
    ) -> list[int]:
        """Reference plaintext evaluation (for testing garbled execution)."""
        if len(garbler_bits) != len(self.garbler_inputs):
            raise ValueError("garbler input length mismatch")
        if len(evaluator_bits) != len(self.evaluator_inputs):
            raise ValueError("evaluator input length mismatch")
        values = [0] * self.n_wires
        values[self.CONST_ONE] = 1
        for wire, bit in zip(self.garbler_inputs, garbler_bits):
            values[wire] = bit & 1
        for wire, bit in zip(self.evaluator_inputs, evaluator_bits):
            values[wire] = bit & 1
        for gate in self.gates:
            if gate.kind is GateType.XOR:
                values[gate.out] = values[gate.a] ^ values[gate.b]
            else:
                values[gate.out] = values[gate.a] & values[gate.b]
        return [values[w] for w in self.outputs]


class CircuitBuilder:
    """Constructs circuits gate by gate with arithmetic conveniences.

    Multi-bit values are little-endian lists of wire ids. All arithmetic
    helpers are pure combinational logic built from XOR/AND.
    """

    def __init__(self):
        self.circuit = Circuit()

    # -- wires ---------------------------------------------------------------

    def _new_wire(self) -> int:
        wire = self.circuit.n_wires
        self.circuit.n_wires += 1
        return wire

    def garbler_input(self) -> int:
        wire = self._new_wire()
        self.circuit.garbler_inputs.append(wire)
        return wire

    def evaluator_input(self) -> int:
        wire = self._new_wire()
        self.circuit.evaluator_inputs.append(wire)
        return wire

    def garbler_input_word(self, bits: int) -> list[int]:
        return [self.garbler_input() for _ in range(bits)]

    def evaluator_input_word(self, bits: int) -> list[int]:
        return [self.evaluator_input() for _ in range(bits)]

    def mark_output(self, wires: list[int]) -> None:
        self.circuit.outputs.extend(wires)

    @property
    def zero(self) -> int:
        return Circuit.CONST_ZERO

    @property
    def one(self) -> int:
        return Circuit.CONST_ONE

    # -- single-bit logic -----------------------------------------------------

    def xor(self, a: int, b: int) -> int:
        out = self._new_wire()
        self.circuit.gates.append(Gate(GateType.XOR, a, b, out))
        return out

    def and_(self, a: int, b: int) -> int:
        out = self._new_wire()
        self.circuit.gates.append(Gate(GateType.AND, a, b, out))
        return out

    def not_(self, a: int) -> int:
        return self.xor(a, self.one)

    def or_(self, a: int, b: int) -> int:
        return self.xor(self.xor(a, b), self.and_(a, b))

    def mux_bit(self, sel: int, when_true: int, when_false: int) -> int:
        """sel ? when_true : when_false  (one AND gate)."""
        return self.xor(when_false, self.and_(sel, self.xor(when_true, when_false)))

    # -- words ----------------------------------------------------------------

    def constant_word(self, value: int, bits: int) -> list[int]:
        return [self.one if (value >> i) & 1 else self.zero for i in range(bits)]

    def add(self, a: list[int], b: list[int]) -> tuple[list[int], int]:
        """Ripple-carry addition; returns (sum bits, carry-out)."""
        if len(a) != len(b):
            raise ValueError("word width mismatch")
        carry = self.zero
        out = []
        for x, y in zip(a, b):
            axy = self.xor(x, y)
            out.append(self.xor(axy, carry))
            # carry' = (x & y) | (carry & (x ^ y)) = x&y ^ carry&(x^y)
            carry = self.xor(self.and_(x, y), self.and_(carry, axy))
        return out, carry

    def sub(self, a: list[int], b: list[int]) -> tuple[list[int], int]:
        """Ripple-borrow subtraction; returns (difference bits, borrow-out).

        borrow-out is 1 iff a < b as unsigned integers.
        """
        if len(a) != len(b):
            raise ValueError("word width mismatch")
        borrow = self.zero
        out = []
        for x, y in zip(a, b):
            xy = self.xor(x, y)
            out.append(self.xor(xy, borrow))
            # borrow' = (~x & y) | (borrow & ~(x ^ y))
            not_x = self.not_(x)
            borrow = self.xor(
                self.and_(not_x, y),
                self.and_(borrow, self.not_(xy)),
            )
        return out, borrow

    def mux_word(
        self, sel: int, when_true: list[int], when_false: list[int]
    ) -> list[int]:
        if len(when_true) != len(when_false):
            raise ValueError("word width mismatch")
        return [
            self.mux_bit(sel, t, f) for t, f in zip(when_true, when_false)
        ]

    def geq_const(self, a: list[int], value: int) -> int:
        """1 iff unsigned(a) >= value, via a - value not borrowing."""
        const = self.constant_word(value, len(a))
        _, borrow = self.sub(a, const)
        return self.not_(borrow)

    def add_mod(self, a: list[int], b: list[int], modulus: int) -> list[int]:
        """(a + b) mod modulus for a, b already reduced below modulus."""
        total, carry = self.add(a, b)
        # total may exceed modulus (but is < 2*modulus). Subtract modulus and
        # select: if carry-out OR no-borrow on (total - modulus), use reduced.
        reduced, borrow = self.sub(total, self.constant_word(modulus, len(a)))
        use_reduced = self.or_(carry, self.not_(borrow))
        return self.mux_word(use_reduced, reduced, total)

    def sub_mod(self, a: list[int], b: list[int], modulus: int) -> list[int]:
        """(a - b) mod modulus for a, b already reduced below modulus."""
        diff, borrow = self.sub(a, b)
        wrapped, _ = self.add(diff, self.constant_word(modulus, len(a)))
        return self.mux_word(borrow, wrapped, diff)

    def build(self) -> Circuit:
        return self.circuit


def words_to_int(bits: list[int]) -> int:
    """Interpret a little-endian bit list (plain ints) as an integer."""
    return sum(bit << i for i, bit in enumerate(bits))


def int_to_bits(value: int, bits: int) -> list[int]:
    """Little-endian bit decomposition of ``value``."""
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"{value} does not fit in {bits} bits")
    return [(value >> i) & 1 for i in range(bits)]
