"""Classic four-row garbling (point-and-permute, no half-gates).

The baseline Yao construction the paper's half-gates optimization is
measured against: every AND gate ships four ciphertexts instead of two
(XOR stays free — we keep free-XOR so the comparison isolates the
half-gates saving, which is exactly how the FreeXOR→HalfGate lineage the
paper cites [49, 90] evolved).

Exists as an ablation: `benchmarks/test_bench_ablation.py` shows garbled
ReLU size dropping 2x when half-gates replace the classic rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import LABEL_BYTES, hash_pair, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit, GateType
from repro.gc.garble import InputEncoding


def _lsb(label: bytes) -> int:
    return label[0] & 1


@dataclass
class ClassicGarbledCircuit:
    """Four ciphertexts per AND gate, ordered by permute bits."""

    circuit: Circuit
    tables: dict[int, list[bytes]]
    output_decode_bits: list[int]

    @property
    def size_bytes(self) -> int:
        return 4 * LABEL_BYTES * len(self.tables) + (
            len(self.output_decode_bits) + 7
        ) // 8


class ClassicGarbler:
    """Garbles with the classic 4-row tables (free-XOR retained)."""

    def __init__(self, rng: SecureRandom | None = None):
        self._rng = rng or SecureRandom()

    def garble(self, circuit: Circuit) -> tuple[ClassicGarbledCircuit, InputEncoding]:
        rng = self._rng
        delta = bytearray(rng.bytes(LABEL_BYTES))
        delta[0] |= 1
        delta = bytes(delta)
        zero: dict[int, bytes] = {
            Circuit.CONST_ZERO: rng.bytes(LABEL_BYTES),
            Circuit.CONST_ONE: rng.bytes(LABEL_BYTES),
        }
        for wire in circuit.garbler_inputs + circuit.evaluator_inputs:
            zero[wire] = rng.bytes(LABEL_BYTES)

        tables: dict[int, list[bytes]] = {}
        for index, gate in enumerate(circuit.gates):
            a0, b0 = zero[gate.a], zero[gate.b]
            if gate.kind is GateType.XOR:
                zero[gate.out] = xor_bytes(a0, b0)
                continue
            out0 = rng.bytes(LABEL_BYTES)
            rows: list[bytes | None] = [None] * 4
            for va in (0, 1):
                for vb in (0, 1):
                    la = a0 if va == 0 else xor_bytes(a0, delta)
                    lb = b0 if vb == 0 else xor_bytes(b0, delta)
                    out = out0 if (va & vb) == 0 else xor_bytes(out0, delta)
                    position = (_lsb(la) << 1) | _lsb(lb)
                    rows[position] = xor_bytes(hash_pair(la, lb, index), out)
            assert all(row is not None for row in rows)
            tables[index] = rows  # type: ignore[assignment]
            zero[gate.out] = out0

        encoding = InputEncoding(
            zero_labels={
                w: zero[w]
                for w in (
                    [Circuit.CONST_ZERO, Circuit.CONST_ONE]
                    + circuit.garbler_inputs
                    + circuit.evaluator_inputs
                )
            },
            delta=delta,
            output_zero_labels={w: zero[w] for w in circuit.outputs},
        )
        decode = [_lsb(zero[w]) for w in circuit.outputs]
        return ClassicGarbledCircuit(circuit, tables, decode), encoding


class ClassicEvaluator:
    """Evaluates classic tables via the point-and-permute row index."""

    def evaluate(
        self, garbled: ClassicGarbledCircuit, input_labels: dict[int, bytes]
    ) -> list[bytes]:
        labels = dict(input_labels)
        for index, gate in enumerate(garbled.circuit.gates):
            a, b = labels[gate.a], labels[gate.b]
            if gate.kind is GateType.XOR:
                labels[gate.out] = xor_bytes(a, b)
                continue
            row = garbled.tables[index][(_lsb(a) << 1) | _lsb(b)]
            labels[gate.out] = xor_bytes(hash_pair(a, b, index), row)
        return [labels[w] for w in garbled.circuit.outputs]

    def decode(self, garbled: ClassicGarbledCircuit, outputs: list[bytes]) -> list[int]:
        return [
            _lsb(label) ^ bit
            for label, bit in zip(outputs, garbled.output_decode_bits)
        ]
