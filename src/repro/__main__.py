"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro --list
    python -m repro fig3 fig9 table1
    python -m repro all          # everything (simulation figures are slow)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.backend import available_backends, set_backend
from repro.experiments import ALL_EXPERIMENTS

FAST = ("fig3", "fig4", "fig5", "table1", "fig8", "fig9", "fig11", "fig14")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Characterizing and "
        "Optimizing End-to-End Systems for Private Inference' (ASPLOS'23).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig3..fig14, table1), 'fast', or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--backend",
        choices=("auto",) + available_backends(),
        default=None,
        help="compute backend for the functional crypto substrate "
        "(overrides the REPRO_BACKEND environment variable; 'auto' picks "
        "numpy when available, falling back to exact python per modulus)",
    )
    parser.add_argument(
        "--representation",
        choices=("auto", "bigint", "rns"),
        default=None,
        help="ciphertext-ring representation for wide-modulus BFV "
        "parameter sets (overrides the REPRO_REPRESENTATION environment "
        "variable; 'auto' picks RNS residues whenever a parameter set "
        "carries a prime chain and the vectorized backend is active)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="offline precompute pool size for functional protocol runs "
        "(overrides the REPRO_WORKERS environment variable; 1 disables "
        "pooling)",
    )
    parser.add_argument(
        "--transport",
        choices=("memory", "socket"),
        default=None,
        help="session transport for functional protocol runs (overrides "
        "the REPRO_TRANSPORT environment variable; 'memory' pairs the "
        "client/server sessions in-process, 'socket' runs every session "
        "pair over loopback TCP)",
    )
    parser.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="N",
        help="instead of experiments, run the functional multi-client "
        "serving loop with N clients (one shared precompute pool, "
        "per-client store namespaces under --serve-budget-mb)",
    )
    parser.add_argument(
        "--serve-pipelined",
        action="store_true",
        help="with --serve: interleave background refill mints with "
        "online serving instead of serializing them (steady-state "
        "throughput lands in the report)",
    )
    parser.add_argument(
        "--serve-concurrent",
        action="store_true",
        help="with --serve: serve through the concurrent socket gateway "
        "(one selector thread multiplexing all client sockets, refill "
        "mints in background pool workers) — the wall-clock-overlap "
        "counterpart of --serve-pipelined's schedule-shape overlap",
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=1,
        metavar="R",
        help="online requests per served client (with --serve)",
    )
    parser.add_argument(
        "--serve-budget-mb",
        type=float,
        default=8.0,
        metavar="MB",
        help="global precompute store byte budget (with --serve; "
        "0 = unbounded)",
    )
    parser.add_argument(
        "--gateway-wait-s",
        type=float,
        default=None,
        metavar="S",
        help="with --serve-concurrent: seconds a missed request may wait "
        "in WAIT_STORE for an in-flight refill before demand-minting "
        "(overrides the REPRO_GATEWAY_WAIT_S environment variable)",
    )
    parser.add_argument(
        "--gateway-max-queue",
        type=int,
        default=None,
        metavar="N",
        help="with --serve-concurrent: admission backlog threshold — "
        "requests arriving while waiters + credits + in-flight mints "
        "exceed N are answered with BUSY (overrides the "
        "REPRO_GATEWAY_MAX_QUEUE environment variable)",
    )
    parser.add_argument(
        "--serve-summary",
        default=None,
        metavar="PATH",
        help="with --serve: write the ServingReport summary JSON here",
    )
    parser.add_argument(
        "--workload",
        choices=("poisson", "closed", "burst", "skewed"),
        default=None,
        help="instead of experiments, replay a generated arrival schedule "
        "against the concurrent gateway (poisson: uniform open-loop; "
        "skewed: Zipf hot-client rates; burst: skewed + on/off envelope; "
        "closed: think-time loop) and verify every logit against the "
        "plaintext oracle",
    )
    parser.add_argument(
        "--workload-clients",
        type=int,
        default=3,
        metavar="N",
        help="with --workload: number of clients (default 3)",
    )
    parser.add_argument(
        "--workload-rate",
        type=float,
        default=4.0,
        metavar="RPS",
        help="with --workload (open-loop kinds): aggregate offered rate "
        "in requests/second (default 4.0)",
    )
    parser.add_argument(
        "--workload-horizon",
        type=float,
        default=2.0,
        metavar="S",
        help="with --workload (open-loop kinds): schedule horizon in "
        "seconds (default 2.0)",
    )
    parser.add_argument(
        "--workload-requests",
        type=int,
        default=3,
        metavar="R",
        help="with --workload: per-client request cap (open-loop) or "
        "request count (closed-loop) (default 3)",
    )
    parser.add_argument(
        "--workload-skew",
        type=float,
        default=1.2,
        metavar="S",
        help="with --workload skewed/burst: Zipf skew exponent — client "
        "0 is the hot client (default 1.2)",
    )
    parser.add_argument(
        "--workload-think",
        type=float,
        default=0.2,
        metavar="S",
        help="with --workload closed: mean exponential think time in "
        "seconds (default 0.2)",
    )
    parser.add_argument(
        "--workload-seed",
        type=int,
        default=0,
        metavar="N",
        help="with --workload: schedule generator seed (default 0)",
    )
    parser.add_argument(
        "--workload-budget-mb",
        type=float,
        default=8.0,
        metavar="MB",
        help="with --workload: global precompute store byte budget "
        "(0 = unbounded; default 8.0)",
    )
    parser.add_argument(
        "--workload-time-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="with --workload: stretch (>1) or compress (<1) the "
        "schedule's clock at replay time without changing its bytes",
    )
    parser.add_argument(
        "--workload-out",
        default=None,
        metavar="PATH",
        help="with --workload: write the JSON artifact (canonical "
        "schedule + measured summary) here",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="instead of experiments, run the capacity planner: calibrate "
        "the analytic service model against measured gateway runs, "
        "validate on a held-out schedule, and sweep (workers, store) "
        "grids for the cheapest configuration meeting the SLO",
    )
    parser.add_argument(
        "--plan-clients",
        type=int,
        default=8,
        metavar="N",
        help="with --plan: clients to plan for (default 8)",
    )
    parser.add_argument(
        "--plan-rate",
        type=float,
        default=3.0,
        metavar="RPS",
        help="with --plan: aggregate offered rate to plan for "
        "(default 3.0)",
    )
    parser.add_argument(
        "--plan-slo-p95",
        type=float,
        default=2.0,
        metavar="S",
        help="with --plan: SLO ceiling on predicted p95 latency "
        "(default 2.0 seconds)",
    )
    parser.add_argument(
        "--plan-out",
        default=None,
        metavar="PATH",
        help="with --plan: write the planner artifact JSON (calibration "
        "runs, validation errors, sweep table, chosen config) here",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the telemetry spine (structured tracing + metrics "
        "registry) for this run; equivalent to REPRO_TELEMETRY=1. "
        "Transcripts and logits are byte-identical either way",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="with --telemetry: export the collected trace as Chrome "
        "trace-event JSONL (load at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="with --telemetry: write the metrics registry as Prometheus "
        "text exposition",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="with --serve-concurrent: print the gateway's live stats "
        "snapshot (per-client latency quantiles, queue depth, store "
        "occupancy, expected time-to-miss) fetched over the GWS1 wire op",
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_backend(args.backend)
    if args.telemetry:
        from repro import telemetry

        telemetry.configure(enabled=True)

    if args.serve is not None:
        from repro.runtime.serving import demo

        report = demo(
            num_clients=max(1, args.serve),
            requests_per_client=max(1, args.serve_requests),
            workers=args.workers,
            budget_mb=args.serve_budget_mb,
            summary_path=args.serve_summary,
            pipelined=args.serve_pipelined,
            concurrent=args.serve_concurrent,
            transport=args.transport,
            gateway_wait_seconds=args.gateway_wait_s,
            gateway_max_queue=args.gateway_max_queue,
        )
        if args.stats and report.gateway_stats:
            import json

            print("gateway stats:")
            print(json.dumps(report.gateway_stats, indent=2, sort_keys=True))
        if args.telemetry:
            from repro.telemetry import METRICS, TRACER

            if args.trace_out:
                count = TRACER.export_jsonl(args.trace_out)
                print(f"wrote {count} trace events to {args.trace_out}")
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as fh:
                    fh.write(METRICS.to_prometheus())
                print(f"wrote metrics to {args.metrics_out}")
        return 0

    if args.workload is not None:
        from repro.workload.cli import demo_workload

        demo_workload(
            args.workload,
            clients=max(1, args.workload_clients),
            rate=args.workload_rate,
            horizon=args.workload_horizon,
            requests=max(1, args.workload_requests),
            skew=args.workload_skew,
            think=args.workload_think,
            seed=args.workload_seed,
            workers=args.workers,
            budget_mb=args.workload_budget_mb,
            gateway_max_queue=args.gateway_max_queue,
            time_scale=args.workload_time_scale,
            out_path=args.workload_out,
        )
        return 0

    if args.plan:
        from repro.workload.cli import demo_plan

        demo_plan(
            clients=max(1, args.plan_clients),
            rate=args.plan_rate,
            workers=args.workers,
            budget_mb=args.workload_budget_mb,
            slo_p95=args.plan_slo_p95,
            out_path=args.plan_out,
        )
        return 0

    if args.list or not args.experiments:
        for key, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {doc}")
        return 0

    selected: list[str] = []
    for item in args.experiments:
        if item == "all":
            selected.extend(ALL_EXPERIMENTS)
        elif item == "fast":
            selected.extend(FAST)
        elif item in ALL_EXPERIMENTS:
            selected.append(item)
        else:
            print(f"unknown experiment {item!r}; try --list", file=sys.stderr)
            return 2
    # Parameter sets and protocol objects are built inside each
    # experiment; the environment variables are how 'auto' representation
    # resolution and worker-count resolution hear about the overrides.
    # Scoped to the experiment runs (and restored after) so an in-process
    # caller of main() does not leak the selections.
    scoped = {}
    if args.representation is not None:
        scoped["REPRO_REPRESENTATION"] = args.representation
    if args.workers is not None:
        scoped["REPRO_WORKERS"] = str(max(1, args.workers))
    if args.transport is not None:
        scoped["REPRO_TRANSPORT"] = args.transport
    saved = {name: os.environ.get(name) for name in scoped}
    os.environ.update(scoped)
    try:
        for key in selected:
            ALL_EXPERIMENTS[key].main()
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
