"""Communication substrate: byte-counted channel and TDD bandwidth model."""

from repro.network.bandwidth import GBPS, MBPS, TddLink, even_split
from repro.network.channel import CLIENT, SERVER, Channel, wire_size
from repro.network.serialize import (
    deserialize_ciphertext,
    deserialize_field_vector,
    deserialize_garbled_circuit,
    deserialize_labels,
    serialize_ciphertext,
    serialize_field_vector,
    serialize_garbled_circuit,
    serialize_labels,
)

__all__ = [
    "CLIENT",
    "Channel",
    "GBPS",
    "MBPS",
    "SERVER",
    "TddLink",
    "deserialize_ciphertext",
    "deserialize_field_vector",
    "deserialize_garbled_circuit",
    "deserialize_labels",
    "even_split",
    "serialize_ciphertext",
    "serialize_field_vector",
    "serialize_garbled_circuit",
    "serialize_labels",
    "wire_size",
]
