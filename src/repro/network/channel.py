"""In-process two-party channel with per-direction byte accounting.

The functional protocols exchange Python objects through a :class:`Channel`;
every send is charged a serialized size so that, after a protocol run, the
per-phase upload/download volumes can be compared against the paper's
communication numbers and fed to the TDD bandwidth model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.telemetry import METRICS

CLIENT = "client"
SERVER = "server"


def wire_size(payload, field_bytes: int = 6) -> int:
    """Approximate serialized size of a protocol message in bytes.

    Integers are charged as field elements (default 6 bytes ≈ 41-bit
    DELPHI prime rounded up), bytes at face value, containers recursively.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return field_bytes
    if isinstance(payload, (list, tuple)):
        return sum(wire_size(item, field_bytes) for item in payload)
    if isinstance(payload, dict):
        return sum(
            wire_size(k, field_bytes) + wire_size(v, field_bytes)
            for k, v in payload.items()
        )
    size = getattr(payload, "byte_size", None)
    if size is None:
        size = getattr(payload, "size_bytes", None)
    if size is None:
        raise TypeError(f"cannot size payload of type {type(payload).__name__}")
    return size


@dataclass
class DirectionStats:
    messages: int = 0
    bytes: int = 0


class Channel:
    """FIFO duplex channel between a client and a server."""

    def __init__(self, field_bytes: int = 6):
        self._queues = {CLIENT: deque(), SERVER: deque()}  # keyed by receiver
        self._field_bytes = field_bytes
        self.uplink = DirectionStats()  # client -> server
        self.downlink = DirectionStats()  # server -> client
        self._phase = "offline"
        self.phase_stats: dict[str, dict[str, DirectionStats]] = {
            "offline": {"up": DirectionStats(), "down": DirectionStats()},
            "online": {"up": DirectionStats(), "down": DirectionStats()},
        }

    def set_phase(self, phase: str) -> None:
        if phase not in self.phase_stats:
            raise ValueError(f"unknown phase {phase!r}")
        self._phase = phase

    @property
    def phase(self) -> str:
        return self._phase

    def send(self, sender: str, payload, nbytes: int | None = None) -> int:
        """Enqueue ``payload`` for the peer; returns the charged byte size."""
        if sender not in (CLIENT, SERVER):
            raise ValueError(f"unknown sender {sender!r}")
        size = wire_size(payload, self._field_bytes) if nbytes is None else nbytes
        receiver = SERVER if sender == CLIENT else CLIENT
        self._queues[receiver].append(payload)
        stats = self.uplink if sender == CLIENT else self.downlink
        stats.messages += 1
        stats.bytes += size
        direction = "up" if sender == CLIENT else "down"
        phase_stats = self.phase_stats[self._phase][direction]
        phase_stats.messages += 1
        phase_stats.bytes += size
        if METRICS.enabled:
            METRICS.counter(
                "channel_messages_total", phase=self._phase, dir=direction
            ).inc()
            METRICS.counter(
                "channel_bytes_total", phase=self._phase, dir=direction
            ).inc(size)
        return size

    def recv(self, receiver: str):
        """Dequeue the next payload addressed to ``receiver``."""
        queue = self._queues[receiver]
        if not queue:
            raise RuntimeError(f"{receiver} tried to receive but queue is empty")
        return queue.popleft()

    @property
    def total_bytes(self) -> int:
        return self.uplink.bytes + self.downlink.bytes

    def summary(self) -> dict[str, int]:
        return {
            "offline_up": self.phase_stats["offline"]["up"].bytes,
            "offline_down": self.phase_stats["offline"]["down"].bytes,
            "online_up": self.phase_stats["online"]["up"].bytes,
            "online_down": self.phase_stats["online"]["down"].bytes,
        }
