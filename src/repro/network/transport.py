"""Pluggable message transports for the role-separated protocol sessions.

A :class:`Transport` moves opaque byte frames between exactly two peers.
The sessions in :mod:`repro.core.session` are written against this
interface only, so the same state machines run

* in one process over an :class:`InMemoryTransport` pair (tests, the
  :class:`~repro.core.protocol.HybridProtocol` façade, benches),
* in one process over a loopback TCP pair (``SocketTransport.loopback_pair``,
  exercising real kernel sockets while a single driver steps both ends), or
* across two processes/hosts over a :class:`SocketTransport` connection —
  the deployment shape the paper's client/server characterization assumes.

Frames on a socket are length-prefixed (4-byte little-endian length); the
frame payloads themselves carry :mod:`repro.network.serialize`'s magic +
version header, so a mismatched peer fails with a clear version error on
the first message rather than desynchronizing mid-protocol.
"""

from __future__ import annotations

import select
import socket
import struct
import time
from collections import deque

from repro.telemetry import record_frame

_LENGTH_BYTES = 4
_MAX_FRAME = 1 << 31  # sanity bound: a torn length prefix fails loudly
_SOCKET_BUF = 1 << 20
# How long close() keeps trying to drain the userspace outbox. Long
# enough for a live peer to drain a final control frame (the gateway's
# BUSY/GOAWAY replies ride on this), bounded so a peer that stopped
# reading can never wedge the closing side.
_CLOSE_FLUSH_SECONDS = 5.0


class TransportError(RuntimeError):
    """A transport-level failure (peer gone, malformed frame, misuse)."""


class TransportClosed(TransportError):
    """The peer closed the connection (or this endpoint was closed)."""


class Transport:
    """Ordered, reliable delivery of byte frames between two peers."""

    def send(self, frame: bytes) -> None:
        raise NotImplementedError

    def recv(self, wait: bool = True) -> bytes | None:
        """Next inbound frame.

        ``wait=False`` polls: returns ``None`` when no complete frame is
        available yet. ``wait=True`` blocks until a frame arrives (and
        raises :class:`TransportError` on transports that cannot block,
        like the in-memory pair driven by a single thread).
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # Sessions poll this to detect deadlock vs. genuine waiting.
    @property
    def pending(self) -> bool:
        """Whether a complete frame is already available locally."""
        return False


class InMemoryTransport(Transport):
    """One endpoint of an in-process transport pair (deque-backed).

    Create connected endpoints with :meth:`pair`; what one endpoint sends,
    the other receives in FIFO order. ``recv(wait=True)`` raises instead
    of blocking — a single-threaded driver that would block on its own
    queue is a deadlock, not a wait.
    """

    def __init__(self, inbox: deque, outbox: deque):
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False

    @classmethod
    def pair(cls) -> tuple["InMemoryTransport", "InMemoryTransport"]:
        a, b = deque(), deque()
        return cls(a, b), cls(b, a)

    def send(self, frame: bytes) -> None:
        if self._closed:
            raise TransportClosed("transport is closed")
        record_frame("send", frame)
        self._outbox.append(bytes(frame))

    def recv(self, wait: bool = True) -> bytes | None:
        if self._inbox:
            frame = self._inbox.popleft()
            record_frame("recv", frame)
            return frame
        if self._closed:
            raise TransportClosed("transport is closed")
        if wait:
            raise TransportError(
                "in-memory transport cannot block: the peer runs on this "
                "thread — step the peer session instead"
            )
        return None

    @property
    def pending(self) -> bool:
        return bool(self._inbox)

    def close(self) -> None:
        self._closed = True


class SocketTransport(Transport):
    """Length-prefixed frames over a connected TCP socket.

    Sends are buffered in a userspace outbox and flushed opportunistically
    (on every send/recv/pending call, and best-effort with a bounded wait
    on close). This is what
    makes the single-threaded loopback driver safe: a burst of frames
    larger than the kernel socket buffers parks in the outbox instead of
    blocking inside ``sendall`` against a peer that runs on this very
    thread and could never drain it.
    """

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
            try:
                sock.setsockopt(socket.SOL_SOCKET, opt, _SOCKET_BUF)
            except OSError:  # pragma: no cover - platform-limited buffers
                pass
        sock.setblocking(True)
        self._sock = sock
        self._buf = bytearray()
        self._outbox = bytearray()
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, retries: int = 40, delay: float = 0.25
    ) -> "SocketTransport":
        """Connect to a listening peer, retrying while it comes up.

        Sleeps ``delay`` only *between* attempts — a dead peer costs
        ``retries`` connection refusals, not an extra trailing sleep after
        the final one.
        """
        attempts = max(1, retries)
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                return cls(socket.create_connection((host, port)))
            except OSError as exc:
                last = exc
                if attempt + 1 < attempts:
                    time.sleep(delay)
        raise TransportError(
            f"could not connect to {host}:{port} after {attempts} "
            f"attempt(s): {last}"
        )

    def send(self, frame: bytes) -> None:
        if self._closed:
            raise TransportClosed("transport is closed")
        record_frame("send", frame)
        self._outbox += struct.pack("<I", len(frame)) + frame
        self._flush(block=False)

    def _send_chunk(self) -> int:
        """Send one outbox chunk without ever blocking; returns bytes sent.

        select's writability only promises *some* free buffer space — it
        can be smaller than the chunk, and a blocking ``send`` would then
        wedge against a peer that never drains. The socket is flipped to
        non-blocking for exactly this call so a partial or refused write
        returns instead of sleeping.
        """
        self._sock.setblocking(False)
        try:
            sent = self._sock.send(self._outbox[:65536])
        except (BlockingIOError, InterruptedError):
            return 0
        except OSError as exc:
            raise TransportClosed(f"peer connection lost: {exc}") from exc
        finally:
            try:
                self._sock.setblocking(True)
            except OSError:  # pragma: no cover - racing close
                pass
        del self._outbox[:sent]
        return sent

    def _flush(self, block: bool = False) -> None:
        """Push outbox bytes into the socket without ever blocking.

        Writes go out in bounded non-blocking chunks only while select
        reports writability, so no call here can wedge. (``block`` is
        ignored; it survives for call-site compatibility. Blocking drains
        go through :meth:`_flush_bounded`, which always carries a
        deadline.)
        """
        while self._outbox:
            try:
                _, writable, _ = select.select([], [self._sock], [], 0)
            except OSError as exc:  # pragma: no cover - racing close
                raise TransportClosed(f"peer connection lost: {exc}") from exc
            if not writable or self._send_chunk() == 0:
                return

    def _flush_bounded(self, timeout: float) -> None:
        """Best-effort outbox drain with a wall-clock bound (close path).

        close() must not lose a frame the peer is about to read (a
        server-sent BUSY/GOAWAY immediately before the selector drops the
        connection), but it must also never hang on a peer that stopped
        draining — so waits for writability are bounded by ``timeout``
        overall, and whatever has not drained by then is abandoned.
        """
        deadline = time.perf_counter() + max(0.0, timeout)
        while self._outbox:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            try:
                _, writable, _ = select.select(
                    [], [self._sock], [], remaining
                )
            except OSError as exc:  # pragma: no cover - racing close
                raise TransportClosed(f"peer connection lost: {exc}") from exc
            if not writable:
                return
            self._send_chunk()

    def _frame_ready(self) -> bool:
        if len(self._buf) < _LENGTH_BYTES:
            return False
        (length,) = struct.unpack_from("<I", self._buf, 0)
        if length > _MAX_FRAME:
            raise TransportError(f"oversized frame ({length} bytes)")
        return len(self._buf) >= _LENGTH_BYTES + length

    def _pop_frame(self) -> bytes:
        (length,) = struct.unpack_from("<I", self._buf, 0)
        frame = bytes(self._buf[_LENGTH_BYTES : _LENGTH_BYTES + length])
        del self._buf[: _LENGTH_BYTES + length]
        return frame

    def recv(self, wait: bool = True) -> bytes | None:
        if self._closed:
            # Frames fully buffered before the close are still deliverable
            # (``pending`` advertises them); only an empty buffer is an
            # error. A half-received frame is not: its tail is gone.
            if self._frame_ready():
                frame = self._pop_frame()
                record_frame("recv", frame)
                return frame
            raise TransportClosed("transport is closed")
        while not self._frame_ready():
            self._flush(block=False)
            if wait:
                # Wait until readable — or writable while our own outbox
                # still holds bytes, so a blocked conversation where the
                # peer needs our data before replying keeps progressing.
                writers = [self._sock] if self._outbox else []
                select.select([self._sock], writers, [])
            ready, _, _ = select.select([self._sock], [], [], 0)
            if not ready:
                if not wait:
                    return None
                continue
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise TransportClosed(f"peer connection lost: {exc}") from exc
            if not chunk:
                raise TransportClosed("peer closed the connection")
            self._buf += chunk
        frame = self._pop_frame()
        record_frame("recv", frame)
        return frame

    @property
    def pending(self) -> bool:
        if self._closed:
            return self._frame_ready()
        self._flush(block=False)  # keep the conversation moving
        if self._frame_ready():
            return True
        # Bytes sitting in the kernel receive queue count as progress too
        # (the deadlock detector must not fire while data is in flight).
        ready, _, _ = select.select([self._sock], [], [], 0)
        return bool(ready) or bool(self._outbox)

    # -- selector-loop readiness hooks --------------------------------------

    def fileno(self) -> int:
        """The socket fd, so a selector loop can register this transport."""
        return self._sock.fileno()

    @property
    def needs_flush(self) -> bool:
        """Whether userspace outbox bytes are waiting for socket writability.

        A selector loop registers the transport for write events exactly
        while this is true, flushing via :meth:`flush` when they fire.
        """
        return bool(self._outbox)

    def flush(self) -> None:
        """Push buffered outbox bytes without blocking (selector write hook)."""
        if not self._closed:
            self._flush(block=False)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._flush_bounded(_CLOSE_FLUSH_SECONDS)
            except TransportError:  # pragma: no cover - peer already gone
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    @classmethod
    def loopback_pair(
        cls, host: str = "127.0.0.1"
    ) -> tuple["SocketTransport", "SocketTransport"]:
        """A connected (client, server) pair over loopback TCP.

        Both endpoints live in this process — real kernel sockets under a
        single-threaded driver. The large socket buffers keep one party's
        longest send burst (a garbled-circuit batch) from blocking against
        an un-stepped peer.
        """
        with SocketListener(host=host) as listener:
            client = cls.connect(host, listener.port, retries=1)
            server = listener.accept()
        return client, server


class SocketListener:
    """Accept loop helper for the server side of a socket deployment."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 8):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.host = host
        self.port = self._sock.getsockname()[1]

    def accept(self, timeout: float | None = None) -> SocketTransport:
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except TimeoutError as exc:
            raise TransportError("accept timed out") from exc
        finally:
            self._sock.settimeout(None)
        return SocketTransport(conn)

    # -- selector-loop hooks ------------------------------------------------

    def fileno(self) -> int:
        """The listening fd, so a selector loop can register for accepts."""
        return self._sock.fileno()

    def poll_accept(self) -> SocketTransport | None:
        """Accept one pending connection without blocking, or None.

        The gateway's selector loop registers :meth:`fileno` for read
        events and calls this when one fires; a racing peer that
        disconnected between the event and the accept yields None, never
        a block.
        """
        ready, _, _ = select.select([self._sock], [], [], 0)
        if not ready:
            return None
        self._sock.setblocking(False)
        try:
            conn, _ = self._sock.accept()
        except (BlockingIOError, InterruptedError):
            return None
        finally:
            self._sock.setblocking(True)
        conn.setblocking(True)  # accepted sockets inherit non-blocking mode
        return SocketTransport(conn)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
