"""5G TDD wireless link model with configurable upload/download slots.

5G NR partitions each 10 ms frame into 10 sub-frames, each assignable to
upload or download (§5.3). A :class:`TddLink` therefore carries a total
bandwidth and an upload fraction — continuously, or quantized to the
sub-frame granularity — and converts protocol byte volumes into transfer
seconds. Hybrid-PI phases are round-trip sequences, so upload and download
times add rather than overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

SUBFRAMES_PER_FRAME = 10


@dataclass(frozen=True)
class TddLink:
    """A duplex wireless link carved from ``total_bps`` by TDD slots."""

    total_bps: float
    upload_fraction: float
    quantized: bool = False

    def __post_init__(self) -> None:
        if self.total_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < self.upload_fraction < 1.0:
            raise ValueError("upload fraction must be strictly between 0 and 1")

    @property
    def effective_upload_fraction(self) -> float:
        if not self.quantized:
            return self.upload_fraction
        slots = round(self.upload_fraction * SUBFRAMES_PER_FRAME)
        slots = min(max(slots, 1), SUBFRAMES_PER_FRAME - 1)
        return slots / SUBFRAMES_PER_FRAME

    @property
    def upload_bps(self) -> float:
        return self.total_bps * self.effective_upload_fraction

    @property
    def download_bps(self) -> float:
        return self.total_bps * (1.0 - self.effective_upload_fraction)

    def upload_seconds(self, nbytes: float) -> float:
        return 8.0 * nbytes / self.upload_bps

    def download_seconds(self, nbytes: float) -> float:
        return 8.0 * nbytes / self.download_bps

    def transfer_seconds(self, up_bytes: float, down_bytes: float) -> float:
        """Serialized round-trip transfer time for one protocol phase."""
        return self.upload_seconds(up_bytes) + self.download_seconds(down_bytes)


def even_split(total_bps: float) -> TddLink:
    """The default provisioning the paper shows is sub-optimal for PI."""
    return TddLink(total_bps, 0.5)


MBPS = 1e6
GBPS = 1e9
