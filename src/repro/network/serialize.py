"""Wire serialization for protocol messages.

Turns the protocol's Python objects — ciphertexts, garbled circuits, label
batches, share vectors — into actual byte strings and back. The channel's
byte accounting uses analytic sizes; this module provides the ground truth
those sizes are validated against, and would be the codec a networked
deployment of the two parties uses.

Formats are little-endian, length-prefixed, and self-describing enough to
round-trip given the shared protocol parameters.
"""

from __future__ import annotations

import struct

from repro.crypto.prg import LABEL_BYTES
from repro.gc.circuit import Circuit
from repro.gc.garble import GarbledCircuit, GarbledGate, InputEncoding
from repro.he.bfv import Ciphertext, make_ring_element
from repro.he.params import BfvParams


def _pack_uint(value: int, width: int) -> bytes:
    return int(value).to_bytes(width, "little")


def _coeff_width(q: int) -> int:
    return (q.bit_length() + 7) // 8


# -- field vectors -------------------------------------------------------------

def serialize_field_vector(values: list[int], modulus: int) -> bytes:
    """Length-prefixed vector of field elements."""
    width = _coeff_width(modulus)
    out = [struct.pack("<IB", len(values), width)]
    for v in values:
        if not 0 <= v < modulus:
            raise ValueError("field element out of range")
        out.append(_pack_uint(v, width))
    return b"".join(out)


def deserialize_field_vector(data: bytes) -> list[int]:
    count, width = struct.unpack_from("<IB", data, 0)
    offset = 5
    values = []
    for _ in range(count):
        values.append(int.from_bytes(data[offset : offset + width], "little"))
        offset += width
    if offset != len(data):
        raise ValueError("trailing bytes in field vector")
    return values


# -- BFV ciphertexts -----------------------------------------------------------

def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Two polynomials, coefficients packed at ceil(log2 q)/8 bytes each."""
    params = ct.params
    width = _coeff_width(params.q)
    header = struct.pack("<IB", params.n, width)
    body = bytearray()
    for poly in (ct.c0, ct.c1):
        for coeff in poly.coeffs:
            body += _pack_uint(coeff, width)
    return header + bytes(body)


def deserialize_ciphertext(data: bytes, params: BfvParams) -> Ciphertext:
    n, width = struct.unpack_from("<IB", data, 0)
    if n != params.n:
        raise ValueError(f"degree mismatch: wire {n} vs params {params.n}")
    if width != _coeff_width(params.q):
        raise ValueError("coefficient width mismatch")
    offset = 5
    polys = []
    for _ in range(2):
        coeffs = []
        for _ in range(n):
            coeffs.append(int.from_bytes(data[offset : offset + width], "little"))
            offset += width
        # Lands in the params' resolved representation (bigint or RNS), so
        # a deserialized ciphertext computes natively at the receiver.
        polys.append(make_ring_element(coeffs, params))
    if offset != len(data):
        raise ValueError("trailing bytes in ciphertext")
    return Ciphertext(params, polys[0], polys[1])


def ciphertext_wire_bytes(params: BfvParams) -> int:
    """Exact serialized size (matches params.ciphertext_bytes + header)."""
    return 5 + 2 * params.n * _coeff_width(params.q)


# -- label batches -------------------------------------------------------------

def serialize_labels(labels: list[bytes]) -> bytes:
    for label in labels:
        if len(label) != LABEL_BYTES:
            raise ValueError("labels must be 16 bytes")
    return struct.pack("<I", len(labels)) + b"".join(labels)


def deserialize_labels(data: bytes) -> list[bytes]:
    (count,) = struct.unpack_from("<I", data, 0)
    expected = 4 + count * LABEL_BYTES
    if len(data) != expected:
        raise ValueError("label batch length mismatch")
    return [
        data[4 + i * LABEL_BYTES : 4 + (i + 1) * LABEL_BYTES] for i in range(count)
    ]


# -- label maps and input encodings --------------------------------------------

def serialize_label_map(labels: dict[int, bytes]) -> bytes:
    """Ordered (wire id, label) pairs.

    Iteration order is preserved on the wire and restored on
    deserialization — the protocol's online phase relies on garbler label
    dicts keeping their insertion order ([consts, garbler inputs]).
    """
    out = [struct.pack("<I", len(labels))]
    for wire, label in labels.items():
        if len(label) != LABEL_BYTES:
            raise ValueError("labels must be 16 bytes")
        out.append(struct.pack("<I", wire))
        out.append(label)
    return b"".join(out)


def deserialize_label_map(data: bytes) -> dict[int, bytes]:
    (count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    labels: dict[int, bytes] = {}
    for _ in range(count):
        (wire,) = struct.unpack_from("<I", data, offset)
        offset += 4
        labels[wire] = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
    if offset != len(data):
        raise ValueError("trailing bytes in label map")
    return labels


def serialize_input_encoding(encoding: InputEncoding) -> bytes:
    """Delta plus the (ordered) zero-label and output-zero-label maps."""
    zero = serialize_label_map(encoding.zero_labels)
    outputs = serialize_label_map(encoding.output_zero_labels)
    return (
        struct.pack("<II", len(zero), len(outputs))
        + encoding.delta
        + zero
        + outputs
    )


def deserialize_input_encoding(data: bytes) -> InputEncoding:
    n_zero, n_out = struct.unpack_from("<II", data, 0)
    offset = 8
    delta = data[offset : offset + LABEL_BYTES]
    offset += LABEL_BYTES
    zero = deserialize_label_map(data[offset : offset + n_zero])
    offset += n_zero
    outputs = deserialize_label_map(data[offset : offset + n_out])
    offset += n_out
    if offset != len(data):
        raise ValueError("trailing bytes in input encoding")
    return InputEncoding(
        zero_labels=zero, delta=delta, output_zero_labels=outputs
    )


# -- garbled circuits ----------------------------------------------------------

def serialize_garbled_circuit(garbled: GarbledCircuit) -> bytes:
    """Tables and decode bits only — the circuit topology is public and
    shared out of band (both parties derive it from the network shape)."""
    indices = sorted(garbled.tables)
    out = [struct.pack("<II", len(indices), len(garbled.output_decode_bits))]
    for index in indices:
        gate = garbled.tables[index]
        out.append(struct.pack("<I", index))
        out.append(gate.generator_half)
        out.append(gate.evaluator_half)
    bits = 0
    for i, bit in enumerate(garbled.output_decode_bits):
        bits |= (bit & 1) << i
    n_decode_bytes = (len(garbled.output_decode_bits) + 7) // 8
    out.append(bits.to_bytes(n_decode_bytes, "little"))
    return b"".join(out)


def deserialize_garbled_circuit(data: bytes, circuit: Circuit) -> GarbledCircuit:
    n_tables, n_decode = struct.unpack_from("<II", data, 0)
    offset = 8
    tables = {}
    for _ in range(n_tables):
        (index,) = struct.unpack_from("<I", data, offset)
        offset += 4
        generator = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
        evaluator = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
        tables[index] = GarbledGate(generator, evaluator)
    n_decode_bytes = (n_decode + 7) // 8
    packed = int.from_bytes(data[offset : offset + n_decode_bytes], "little")
    offset += n_decode_bytes
    if offset != len(data):
        raise ValueError("trailing bytes in garbled circuit")
    decode_bits = [(packed >> i) & 1 for i in range(n_decode)]
    return GarbledCircuit(circuit, tables, decode_bits)


def garbled_circuit_wire_bytes(and_gates: int, outputs: int) -> int:
    """Exact serialized size for a circuit with the given gate counts."""
    return 8 + and_gates * (4 + 2 * LABEL_BYTES) + (outputs + 7) // 8
