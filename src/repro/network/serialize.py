"""Wire serialization for protocol messages.

Turns the protocol's Python objects — ciphertexts, garbled circuits, label
batches, share vectors, keys — into actual byte strings and back. The
channel's byte accounting uses analytic sizes; this module provides the
ground truth those sizes are validated against, and is the codec the
role-separated sessions (:mod:`repro.core.session`) exchange through a
:class:`~repro.network.transport.Transport`.

Formats are little-endian, length-prefixed, and self-describing enough to
round-trip given the shared protocol parameters. Every format opens with a
four-byte wire header — a 2-byte magic, a version byte, and a format code —
so a transport frame identifies itself before any payload is trusted:
version skew between two deployed parties fails loudly at the first
message instead of corrupting state mid-protocol.
"""

from __future__ import annotations

import struct

from repro.crypto.prg import LABEL_BYTES
from repro.gc.circuit import Circuit
from repro.gc.garble import GarbledCircuit, GarbledGate, InputEncoding
from repro.he.bfv import Ciphertext, GaloisKeys, PublicKey, make_ring_element
from repro.he.params import BfvParams

# -- wire header ---------------------------------------------------------------

WIRE_MAGIC = b"PI"  # private inference
WIRE_VERSION = 1
WIRE_HEADER_BYTES = 4  # magic(2) + version(1) + format code(1)

FMT_FIELD_VECTOR = 0x01
FMT_CIPHERTEXT = 0x02
FMT_LABELS = 0x03
FMT_LABEL_MAP = 0x04
FMT_INPUT_ENCODING = 0x05
FMT_GARBLED_CIRCUIT = 0x06
FMT_PUBLIC_KEY = 0x07
FMT_GALOIS_KEYS = 0x08
FMT_BIT_VECTOR = 0x09
FMT_LABEL_LISTS = 0x0A
FMT_CIRCUIT_BATCH = 0x0B


_FMT_NAMES = {
    FMT_FIELD_VECTOR: "field_vector",
    FMT_CIPHERTEXT: "ciphertext",
    FMT_LABELS: "labels",
    FMT_LABEL_MAP: "label_map",
    FMT_INPUT_ENCODING: "input_encoding",
    FMT_GARBLED_CIRCUIT: "garbled_circuit",
    FMT_PUBLIC_KEY: "public_key",
    FMT_GALOIS_KEYS: "galois_keys",
    FMT_BIT_VECTOR: "bit_vector",
    FMT_LABEL_LISTS: "label_lists",
    FMT_CIRCUIT_BATCH: "circuit_batch",
}

# Gateway control frames carry their own 4-byte magics (see
# runtime/gateway.py); the frame classifier names them too so the
# per-message-type transport counters cover the whole wire vocabulary.
_GATEWAY_MAGIC_NAMES = {
    b"GWH1": "gateway_hello",  # legacy single-request hello (rejected, named)
    b"GWH2": "gateway_hello",
    b"GWR1": "gateway_request",
    b"GWO1": "gateway_offer",
    b"GWD1": "gateway_done",
    b"GWB1": "gateway_busy",
    b"GWG1": "gateway_goaway",
    b"GWS1": "gateway_stats",
}


def frame_format_name(frame: bytes) -> str:
    """Classify a wire frame by message type, for telemetry counters.

    Never raises: frames that are neither protocol messages nor gateway
    control frames are counted as ``"unknown"``.
    """
    head = bytes(frame[:4])
    name = _GATEWAY_MAGIC_NAMES.get(head)
    if name is not None:
        return name
    if len(head) >= 4 and head[:2] == WIRE_MAGIC:
        return _FMT_NAMES.get(head[3], f"fmt_0x{head[3]:02x}")
    return "unknown"


def wire_header(fmt: int) -> bytes:
    return WIRE_MAGIC + bytes((WIRE_VERSION, fmt))


def read_wire_header(data: bytes, expect: int | None = None) -> int:
    """Validate a message's wire header; returns its format code.

    Magic and version are checked before anything else — a peer speaking
    a different wire version gets a clear error naming both versions, not
    a parse failure deep inside some codec.
    """
    if len(data) < WIRE_HEADER_BYTES or data[:2] != WIRE_MAGIC:
        raise ValueError("not a repro wire message (bad magic)")
    version = data[2]
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported wire format version {version} "
            f"(this build speaks version {WIRE_VERSION})"
        )
    fmt = data[3]
    if expect is not None and fmt != expect:
        raise ValueError(
            f"unexpected wire format 0x{fmt:02x} (expected 0x{expect:02x})"
        )
    return fmt


def _pack_uint(value: int, width: int) -> bytes:
    return int(value).to_bytes(width, "little")


def _coeff_width(q: int) -> int:
    return (q.bit_length() + 7) // 8


# -- field vectors -------------------------------------------------------------

def serialize_field_vector(values: list[int], modulus: int) -> bytes:
    """Length-prefixed vector of field elements."""
    width = _coeff_width(modulus)
    out = [wire_header(FMT_FIELD_VECTOR), struct.pack("<IB", len(values), width)]
    for v in values:
        if not 0 <= v < modulus:
            raise ValueError("field element out of range")
        out.append(_pack_uint(v, width))
    return b"".join(out)


def deserialize_field_vector(data: bytes) -> list[int]:
    read_wire_header(data, FMT_FIELD_VECTOR)
    count, width = struct.unpack_from("<IB", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 5
    values = []
    for _ in range(count):
        values.append(int.from_bytes(data[offset : offset + width], "little"))
        offset += width
    if offset != len(data):
        raise ValueError("trailing bytes in field vector")
    return values


# -- BFV ciphertexts and keys ----------------------------------------------------

def _serialize_poly_pair(params: BfvParams, a, b) -> bytes:
    """Two ring polynomials, coefficients packed at ceil(log2 q)/8 bytes."""
    width = _coeff_width(params.q)
    body = bytearray(struct.pack("<IB", params.n, width))
    for poly in (a, b):
        for coeff in poly.coeffs:
            body += _pack_uint(coeff, width)
    return bytes(body)


def _deserialize_poly_pair(data: bytes, offset: int, params: BfvParams):
    n, width = struct.unpack_from("<IB", data, offset)
    if n != params.n:
        raise ValueError(f"degree mismatch: wire {n} vs params {params.n}")
    if width != _coeff_width(params.q):
        raise ValueError("coefficient width mismatch")
    offset += 5
    polys = []
    for _ in range(2):
        coeffs = []
        for _ in range(n):
            coeffs.append(int.from_bytes(data[offset : offset + width], "little"))
            offset += width
        # Lands in the params' resolved representation (bigint or RNS), so
        # a deserialized element computes natively at the receiver.
        polys.append(make_ring_element(coeffs, params))
    return polys[0], polys[1], offset


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Two polynomials, coefficients packed at ceil(log2 q)/8 bytes each."""
    return wire_header(FMT_CIPHERTEXT) + _serialize_poly_pair(
        ct.params, ct.c0, ct.c1
    )


def deserialize_ciphertext(data: bytes, params: BfvParams) -> Ciphertext:
    read_wire_header(data, FMT_CIPHERTEXT)
    c0, c1, offset = _deserialize_poly_pair(data, WIRE_HEADER_BYTES, params)
    if offset != len(data):
        raise ValueError("trailing bytes in ciphertext")
    return Ciphertext(params, c0, c1)


def ciphertext_wire_bytes(params: BfvParams) -> int:
    """Exact serialized size (matches params.ciphertext_bytes + header)."""
    return WIRE_HEADER_BYTES + 5 + 2 * params.n * _coeff_width(params.q)


def serialize_public_key(pk: PublicKey) -> bytes:
    """A BFV public key: the (p0, p1) polynomial pair."""
    return wire_header(FMT_PUBLIC_KEY) + _serialize_poly_pair(
        pk.params, pk.p0, pk.p1
    )


def deserialize_public_key(data: bytes, params: BfvParams) -> PublicKey:
    read_wire_header(data, FMT_PUBLIC_KEY)
    p0, p1, offset = _deserialize_poly_pair(data, WIRE_HEADER_BYTES, params)
    if offset != len(data):
        raise ValueError("trailing bytes in public key")
    return PublicKey(params, p0, p1)


def serialize_galois_keys(gk: GaloisKeys) -> bytes:
    """Key-switching keys: per Galois element, the per-digit (k0, k1) pairs."""
    out = [wire_header(FMT_GALOIS_KEYS), struct.pack("<I", len(gk.keys))]
    for g in sorted(gk.keys):
        digits = gk.keys[g]
        out.append(struct.pack("<II", g, len(digits)))
        for k0, k1 in digits:
            out.append(_serialize_poly_pair(gk.params, k0, k1))
    return b"".join(out)


def deserialize_galois_keys(data: bytes, params: BfvParams) -> GaloisKeys:
    read_wire_header(data, FMT_GALOIS_KEYS)
    (n_elements,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 4
    keys: dict[int, list[tuple]] = {}
    for _ in range(n_elements):
        g, n_digits = struct.unpack_from("<II", data, offset)
        offset += 8
        digits = []
        for _ in range(n_digits):
            k0, k1, offset = _deserialize_poly_pair(data, offset, params)
            digits.append((k0, k1))
        keys[g] = digits
    if offset != len(data):
        raise ValueError("trailing bytes in Galois keys")
    return GaloisKeys(params, keys)


# -- bit vectors ----------------------------------------------------------------

def serialize_bit_vector(bits: list[int]) -> bytes:
    """A packed vector of bits (OT choice bits on the wire)."""
    packed = 0
    for i, bit in enumerate(bits):
        packed |= (bit & 1) << i
    nbytes = (len(bits) + 7) // 8
    return (
        wire_header(FMT_BIT_VECTOR)
        + struct.pack("<I", len(bits))
        + packed.to_bytes(nbytes, "little")
    )


def deserialize_bit_vector(data: bytes) -> list[int]:
    read_wire_header(data, FMT_BIT_VECTOR)
    (count,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    nbytes = (count + 7) // 8
    if len(data) != WIRE_HEADER_BYTES + 4 + nbytes:
        raise ValueError("bit vector length mismatch")
    packed = int.from_bytes(data[WIRE_HEADER_BYTES + 4 :], "little")
    if count % 8 and packed >> count:
        raise ValueError("bit vector has set padding bits")
    return [(packed >> i) & 1 for i in range(count)]


# -- label batches -------------------------------------------------------------

def serialize_labels(labels: list[bytes]) -> bytes:
    for label in labels:
        if len(label) != LABEL_BYTES:
            raise ValueError("labels must be 16 bytes")
    return (
        wire_header(FMT_LABELS)
        + struct.pack("<I", len(labels))
        + b"".join(labels)
    )


def deserialize_labels(data: bytes) -> list[bytes]:
    read_wire_header(data, FMT_LABELS)
    (count,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    base = WIRE_HEADER_BYTES + 4
    expected = base + count * LABEL_BYTES
    if len(data) != expected:
        raise ValueError("label batch length mismatch")
    return [
        data[base + i * LABEL_BYTES : base + (i + 1) * LABEL_BYTES]
        for i in range(count)
    ]


def serialize_label_lists(lists: list[list[bytes]]) -> bytes:
    """A batch of label lists (one per circuit instance), order-preserving."""
    out = [wire_header(FMT_LABEL_LISTS), struct.pack("<I", len(lists))]
    for labels in lists:
        out.append(struct.pack("<I", len(labels)))
        for label in labels:
            if len(label) != LABEL_BYTES:
                raise ValueError("labels must be 16 bytes")
            out.append(label)
    return b"".join(out)


def deserialize_label_lists(data: bytes) -> list[list[bytes]]:
    read_wire_header(data, FMT_LABEL_LISTS)
    (count,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 4
    lists: list[list[bytes]] = []
    for _ in range(count):
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        labels = [
            data[offset + i * LABEL_BYTES : offset + (i + 1) * LABEL_BYTES]
            for i in range(n)
        ]
        offset += n * LABEL_BYTES
        lists.append(labels)
    if offset != len(data):
        raise ValueError("trailing bytes in label lists")
    return lists


# -- label maps and input encodings --------------------------------------------

def serialize_label_map(labels: dict[int, bytes]) -> bytes:
    """Ordered (wire id, label) pairs.

    Iteration order is preserved on the wire and restored on
    deserialization — the protocol's online phase relies on garbler label
    dicts keeping their insertion order ([consts, garbler inputs]).
    """
    out = [wire_header(FMT_LABEL_MAP), struct.pack("<I", len(labels))]
    for wire, label in labels.items():
        if len(label) != LABEL_BYTES:
            raise ValueError("labels must be 16 bytes")
        out.append(struct.pack("<I", wire))
        out.append(label)
    return b"".join(out)


def deserialize_label_map(data: bytes) -> dict[int, bytes]:
    read_wire_header(data, FMT_LABEL_MAP)
    (count,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 4
    labels: dict[int, bytes] = {}
    for _ in range(count):
        (wire,) = struct.unpack_from("<I", data, offset)
        offset += 4
        labels[wire] = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
    if offset != len(data):
        raise ValueError("trailing bytes in label map")
    return labels


def serialize_input_encoding(encoding: InputEncoding) -> bytes:
    """Delta plus the (ordered) zero-label and output-zero-label maps."""
    zero = serialize_label_map(encoding.zero_labels)
    outputs = serialize_label_map(encoding.output_zero_labels)
    return (
        wire_header(FMT_INPUT_ENCODING)
        + struct.pack("<II", len(zero), len(outputs))
        + encoding.delta
        + zero
        + outputs
    )


def deserialize_input_encoding(data: bytes) -> InputEncoding:
    read_wire_header(data, FMT_INPUT_ENCODING)
    n_zero, n_out = struct.unpack_from("<II", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 8
    delta = data[offset : offset + LABEL_BYTES]
    offset += LABEL_BYTES
    zero = deserialize_label_map(data[offset : offset + n_zero])
    offset += n_zero
    outputs = deserialize_label_map(data[offset : offset + n_out])
    offset += n_out
    if offset != len(data):
        raise ValueError("trailing bytes in input encoding")
    return InputEncoding(
        zero_labels=zero, delta=delta, output_zero_labels=outputs
    )


# -- garbled circuits ----------------------------------------------------------

def serialize_garbled_circuit(garbled: GarbledCircuit) -> bytes:
    """Tables and decode bits only — the circuit topology is public and
    shared out of band (both parties derive it from the network shape)."""
    indices = sorted(garbled.tables)
    out = [
        wire_header(FMT_GARBLED_CIRCUIT),
        struct.pack("<II", len(indices), len(garbled.output_decode_bits)),
    ]
    for index in indices:
        gate = garbled.tables[index]
        out.append(struct.pack("<I", index))
        out.append(gate.generator_half)
        out.append(gate.evaluator_half)
    bits = 0
    for i, bit in enumerate(garbled.output_decode_bits):
        bits |= (bit & 1) << i
    n_decode_bytes = (len(garbled.output_decode_bits) + 7) // 8
    out.append(bits.to_bytes(n_decode_bytes, "little"))
    return b"".join(out)


def deserialize_garbled_circuit(data: bytes, circuit: Circuit) -> GarbledCircuit:
    read_wire_header(data, FMT_GARBLED_CIRCUIT)
    n_tables, n_decode = struct.unpack_from("<II", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 8
    tables = {}
    for _ in range(n_tables):
        (index,) = struct.unpack_from("<I", data, offset)
        offset += 4
        generator = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
        evaluator = data[offset : offset + LABEL_BYTES]
        offset += LABEL_BYTES
        tables[index] = GarbledGate(generator, evaluator)
    n_decode_bytes = (n_decode + 7) // 8
    packed = int.from_bytes(data[offset : offset + n_decode_bytes], "little")
    offset += n_decode_bytes
    if offset != len(data):
        raise ValueError("trailing bytes in garbled circuit")
    decode_bits = [(packed >> i) & 1 for i in range(n_decode)]
    return GarbledCircuit(circuit, tables, decode_bits)


def garbled_circuit_wire_bytes(and_gates: int, outputs: int) -> int:
    """Exact serialized size for a circuit with the given gate counts."""
    return (
        WIRE_HEADER_BYTES
        + 8
        + and_gates * (4 + 2 * LABEL_BYTES)
        + (outputs + 7) // 8
    )


def serialize_circuit_batch(circuits: list[GarbledCircuit]) -> bytes:
    """One ReLU layer's garbled circuits as a single wire message."""
    out = [wire_header(FMT_CIRCUIT_BATCH), struct.pack("<I", len(circuits))]
    for garbled in circuits:
        blob = serialize_garbled_circuit(garbled)
        out.append(struct.pack("<I", len(blob)))
        out.append(blob)
    return b"".join(out)


def deserialize_circuit_batch(data: bytes, circuit: Circuit) -> list[GarbledCircuit]:
    """Rebind every instance in a batch to the shared public topology."""
    read_wire_header(data, FMT_CIRCUIT_BATCH)
    (count,) = struct.unpack_from("<I", data, WIRE_HEADER_BYTES)
    offset = WIRE_HEADER_BYTES + 4
    circuits = []
    for _ in range(count):
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        circuits.append(deserialize_garbled_circuit(data[offset : offset + n], circuit))
        offset += n
    if offset != len(data):
        raise ValueError("trailing bytes in circuit batch")
    return circuits
