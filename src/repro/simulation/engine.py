"""A compact discrete-event simulation engine (SimPy work-alike).

The paper's artifact builds its PI system model on SimPy; SimPy is not
available in this offline environment, so this module provides the subset
the system model needs: an event loop, generator-based processes,
timeouts, one-shot events, and the resource primitives used to model
cores, storage, and links (Resource, Container, Store).

Usage mirrors SimPy::

    env = Environment()

    def worker(env):
        yield env.timeout(5.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 5.0
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator, Iterable


class Event:
    """A one-shot event that processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value = None

    def succeed(self, value=None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError("timeout delay must be non-negative")
        super().__init__(env)
        self.triggered = True
        self.value = value
        env._schedule(self, delay)


class Process(Event):
    """Drives a generator; the process itself is an event that fires on return."""

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        # Bootstrap on the next tick of the event loop.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.triggered = True
        env._schedule(bootstrap)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.triggered = True
                self.value = stop.value
                self.env._schedule(self)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}; only events are allowed"
            )
        if target.triggered and not target.callbacks and target not in self.env._pending:
            # Already fired and drained: resume immediately on next tick.
            relay = Event(self.env)
            relay.triggered = True
            relay.value = target.value
            relay.callbacks.append(self._resume)
            self.env._schedule(relay)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._pending: set[Event] = set()

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))
        self._pending.add(event)

    def timeout(self, delay: float, value=None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        while self._queue:
            time, _, event = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self._pending.discard(event)
            self.now = time
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self.now = until

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every given event has fired."""
        events = list(events)
        gate = Event(self)
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results = [None] * remaining

        def arm(index: int, event: Event) -> None:
            def on_fire(fired: Event) -> None:
                nonlocal remaining
                results[index] = fired.value
                remaining -= 1
                if remaining == 0:
                    gate.succeed(results)

            if event.triggered and not event.callbacks and event not in self._pending:
                on_fire(event)
            else:
                event.callbacks.append(on_fire)

        for index, event in enumerate(events):
            arm(index, event)
        return gate


class Resource:
    """A counted resource (e.g. CPU cores) with FIFO request queueing."""

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: deque[Event] = deque()

    def request(self) -> Event:
        """Returns an event that fires when a unit is granted."""
        event = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release without a matching request")
        if self._waiting:
            self._waiting.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)


class Container:
    """A continuous stock (e.g. bytes of client storage) with blocking gets."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if init > capacity:
            raise ValueError("initial level exceeds capacity")
        self.env = env
        self.capacity = capacity
        self.level = init
        self._get_waiting: deque[tuple[float, Event]] = deque()
        self._put_waiting: deque[tuple[float, Event]] = deque()

    def put(self, amount: float) -> Event:
        event = Event(self.env)
        self._put_waiting.append((amount, event))
        self._drain()
        return event

    def get(self, amount: float) -> Event:
        event = Event(self.env)
        self._get_waiting.append((amount, event))
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiting:
                amount, event = self._put_waiting[0]
                if self.level + amount <= self.capacity:
                    self.level += amount
                    self._put_waiting.popleft()
                    event.succeed()
                    progressed = True
            if self._get_waiting:
                amount, event = self._get_waiting[0]
                if self.level >= amount:
                    self.level -= amount
                    self._get_waiting.popleft()
                    event.succeed()
                    progressed = True


class Store:
    """A FIFO store of Python objects with blocking get."""

    def __init__(self, env: Environment):
        self.env = env
        self.items: deque = deque()
        self._waiting: deque[Event] = deque()

    def put(self, item) -> None:
        if self._waiting:
            self._waiting.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._waiting.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
