"""Inference request workload generation (Poisson arrivals).

The paper generates inference requests from a Poisson process — i.e.
exponential inter-arrival times — and serves them from a FIFO queue
(§3, Figure 7). ``PoissonWorkload`` reproduces that, seeded for
reproducible replications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import SecureRandom


@dataclass
class InferenceRequest:
    """One inference request and its measured latency decomposition."""

    index: int
    arrival_time: float
    service_start: float | None = None
    completion_time: float | None = None
    offline_seconds: float = 0.0
    online_seconds: float = 0.0
    used_precompute: bool = False

    @property
    def queue_seconds(self) -> float:
        if self.service_start is None:
            return 0.0
        return self.service_start - self.arrival_time

    @property
    def latency(self) -> float:
        if self.completion_time is None:
            raise ValueError("request has not completed")
        return self.completion_time - self.arrival_time


@dataclass
class PoissonWorkload:
    """Exponential inter-arrival request generator.

    ``mean_interarrival`` is in seconds (the paper quotes workloads as
    "1 request per N minutes", i.e. mean_interarrival = 60 N).
    """

    mean_interarrival: float
    horizon: float
    seed: int = 0
    _rng: SecureRandom = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        self._rng = SecureRandom(self.seed)

    def arrival_times(self) -> list[float]:
        """All arrival instants within the horizon."""
        times = []
        t = self._rng.exponential(self.mean_interarrival)
        while t < self.horizon:
            times.append(t)
            t += self._rng.exponential(self.mean_interarrival)
        return times

    @property
    def rate_per_minute(self) -> float:
        return 60.0 / self.mean_interarrival


def deterministic_arrivals(period: float, horizon: float) -> list[float]:
    """Evenly spaced arrivals (for validation against analytic queueing)."""
    times = []
    t = period
    while t < horizon:
        times.append(t)
        t += period
    return times
