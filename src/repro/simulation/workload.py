"""Compatibility shim — the workload layer moved to ``repro.workload``.

The arrival-process generators outgrew this module (Poisson was the only
process; the workload engine adds closed-loop, Zipf skew, and burst
overlays on a typed :class:`~repro.workload.generators.Schedule`). The
legacy names live in :mod:`repro.workload.generators` now; import from
``repro.workload`` going forward.
"""

from __future__ import annotations

from repro.workload.generators import (
    InferenceRequest,
    PoissonWorkload,
    deterministic_arrivals,
)

__all__ = ["InferenceRequest", "PoissonWorkload", "deterministic_arrivals"]
