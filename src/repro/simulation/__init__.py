"""Discrete-event simulation substrate (SimPy work-alike) and workloads."""

from repro.simulation.engine import (
    Container,
    Environment,
    Event,
    Process,
    Resource,
    Store,
    Timeout,
)
from repro.simulation.workload import (
    InferenceRequest,
    PoissonWorkload,
    deterministic_arrivals,
)

__all__ = [
    "Container",
    "Environment",
    "Event",
    "InferenceRequest",
    "PoissonWorkload",
    "Process",
    "Resource",
    "Store",
    "Timeout",
    "deterministic_arrivals",
]
