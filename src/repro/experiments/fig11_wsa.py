"""Figure 11: wireless slot allocation sweep for both protocols.

Total communication latency (offline + online) at 1 Gbps as the fraction
of slots allocated to upload sweeps 0.1-0.9. Paper optima: Server-Garbler
at ~802 Mbps download, Client-Garbler at ~835 Mbps upload; picking the
optimum saves up to 35% vs the even split.
"""

from __future__ import annotations

from repro.core.wsa import (
    improvement_over_even_split,
    optimal_upload_fraction,
    sweep_allocations,
)
from repro.experiments.common import print_rows, profile
from repro.profiling.model_costs import Protocol

GBPS = 1e9


def run(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> list[dict]:
    p = profile(model, dataset)
    rows = []
    for protocol in (Protocol.SERVER_GARBLER, Protocol.CLIENT_GARBLER):
        volumes = p.comm(protocol)
        for point in sweep_allocations(volumes, GBPS):
            rows.append(
                {
                    "protocol": protocol.value,
                    "upload_fraction": point.upload_fraction,
                    "latency_min": point.latency_seconds / 60,
                }
            )
    return rows


def optima(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> dict[str, dict]:
    p = profile(model, dataset)
    out = {}
    for protocol in (Protocol.SERVER_GARBLER, Protocol.CLIENT_GARBLER):
        volumes = p.comm(protocol)
        f_star = optimal_upload_fraction(volumes)
        out[protocol.value] = {
            "optimal_upload_mbps": f_star * 1000,
            "optimal_download_mbps": (1 - f_star) * 1000,
            "improvement_vs_even": improvement_over_even_split(volumes, GBPS),
        }
    return out


def main() -> None:
    print_rows("Figure 11: WSA sweep (1 Gbps)", run())
    for name, stats in optima().items():
        print(
            f"{name}: optimal up {stats['optimal_upload_mbps']:.0f} Mbps / "
            f"down {stats['optimal_download_mbps']:.0f} Mbps, "
            f"saves {stats['improvement_vs_even']:.0%} vs even split"
        )


if __name__ == "__main__":
    main()
