"""Figure 9: sequential vs layer-parallel HE (LPHE) latency.

Each linear layer's offline HE evaluation is independent, so they can run
embarrassingly parallel; the makespan collapses to (roughly) the longest
layer. Paper: 9.7x mean speedup; ResNet-18/TinyImageNet 17.76 min -> 2.35.
"""

from __future__ import annotations

from repro.experiments.common import EVAL_PAIRS, print_rows, profile
from repro.profiling.devices import EPYC


def run() -> list[dict]:
    rows = []
    for model, dataset in EVAL_PAIRS:
        p = profile(model, dataset)
        seq = p.he_sequential_seconds(EPYC)
        lphe = p.he_lphe_seconds(EPYC)
        rows.append(
            {
                "model": model,
                "dataset": dataset,
                "linear_layers": p.linear_layer_count,
                "sequential_s": seq,
                "lphe_s": lphe,
                "speedup": seq / lphe,
            }
        )
    return rows


def mean_speedup() -> float:
    rows = run()
    product = 1.0
    for r in rows:
        product *= r["speedup"]
    return product ** (1.0 / len(rows))


def main() -> None:
    print_rows("Figure 9: sequential vs layer-parallel HE", run())
    print(f"geometric-mean speedup: {mean_speedup():.1f}x (paper: 9.7x)")


if __name__ == "__main__":
    main()
