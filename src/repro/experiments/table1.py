"""Table 1: Server-Garbler time breakdown for ResNet-18 on TinyImageNet.

Paper (seconds): offline GC 25.1, HE 1080, comm 704 (total 1809);
online GC 200, SS 0.61, comm 42.5 (total 243); grand total 2052.
"""

from __future__ import annotations

from repro.core.estimator import estimate
from repro.experiments.common import print_rows, profile
from repro.profiling.model_costs import Protocol

PAPER = {
    "offline": {"GC": 25.1, "HE": 1080.0, "SS": 0.0, "Comms": 704.0, "Total": 1809.0},
    "online": {"GC": 200.0, "HE": 0.0, "SS": 0.61, "Comms": 42.5, "Total": 243.0},
    "total": {"GC": 225.0, "HE": 1080.0, "SS": 0.61, "Comms": 747.0, "Total": 2052.0},
}


def run(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> list[dict]:
    est = estimate(
        profile(model, dataset), Protocol.SERVER_GARBLER, lphe=False, wsa=False
    )
    rows = []
    for phase, values in est.table_rows().items():
        row = {"phase": phase}
        for key, value in values.items():
            row[key] = value
            row[f"paper_{key}"] = PAPER[phase][key]
        rows.append(row)
    return rows


def main() -> None:
    print_rows("Table 1: Server-Garbler breakdown, ResNet-18/TinyImageNet (s)", run())


if __name__ == "__main__":
    main()
