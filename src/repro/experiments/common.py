"""Shared helpers for the per-figure experiment runners."""

from __future__ import annotations

from functools import lru_cache

from repro.nn.datasets import CIFAR100, IMAGENET, TINY_IMAGENET, DatasetSpec
from repro.nn.models import resnet18, resnet32, vgg16
from repro.nn.network import Network
from repro.profiling.model_costs import NetworkCostProfile, profile_network

# Evaluation order used throughout the paper's figures.
EVAL_PAIRS: tuple[tuple[str, str], ...] = (
    ("ResNet-32", "CIFAR-100"),
    ("VGG-16", "CIFAR-100"),
    ("ResNet-18", "CIFAR-100"),
    ("ResNet-32", "TinyImageNet"),
    ("VGG-16", "TinyImageNet"),
    ("ResNet-18", "TinyImageNet"),
)

STORAGE_PAIRS = EVAL_PAIRS + (
    ("ResNet-32", "ImageNet"),
    ("VGG-16", "ImageNet"),
    ("ResNet-18", "ImageNet"),
)

_DATASETS = {d.name: d for d in (CIFAR100, TINY_IMAGENET, IMAGENET)}
_BUILDERS = {"ResNet-18": resnet18, "ResNet-32": resnet32, "VGG-16": vgg16}


@lru_cache(maxsize=None)
def build(model: str, dataset: str) -> Network:
    return _BUILDERS[model](_DATASETS[dataset])


@lru_cache(maxsize=None)
def profile(model: str, dataset: str) -> NetworkCostProfile:
    return profile_network(build(model, dataset))


def print_rows(title: str, rows: list[dict]) -> None:
    """Render experiment rows as an aligned text table."""
    print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    widths = {
        k: max(len(k), *(len(_fmt(r[k])) for r in rows)) for k in keys
    }
    print("  ".join(k.ljust(widths[k]) for k in keys))
    for row in rows:
        print("  ".join(_fmt(row[k]).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
