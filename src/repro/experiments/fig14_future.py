"""Figure 14: total PI latency under accumulating future optimizations.

Paper series (seconds): Server-Garbler* 930, Client-Garbler 1052,
GC FASE 19x 662, GC 100x 645, HE 1000x 492, BW 10x 54, Fewer ReLUs 6 —
with offline fractions 76/89/85/84/79/80/73%.
"""

from __future__ import annotations

from repro.core.future import breakdown_components, waterfall
from repro.experiments.common import print_rows, profile

PAPER_SECONDS = {
    "Server Garbler*": 930,
    "Client Garbler": 1052,
    "GC FASE 19x": 662,
    "GC 100x": 645,
    "HE 1000x": 492,
    "BW 10x": 54,
    "Fewer ReLUs": 6,
}


def run(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> list[dict]:
    rows = []
    for step in waterfall(profile(model, dataset)):
        rows.append(
            {
                "step": step.label,
                "total_s": step.total_seconds,
                "paper_s": PAPER_SECONDS[step.label],
                "offline_pct": step.offline_percent,
            }
        )
    return rows


def components(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> list[dict]:
    rows = []
    for step in waterfall(profile(model, dataset)):
        row = {"step": step.label}
        row.update(
            {k: 100 * v for k, v in breakdown_components(step).items()}
        )
        rows.append(row)
    return rows


def main() -> None:
    print_rows("Figure 14: future-optimization waterfall", run())
    print_rows("Figure 14 (bottom): normalized latency components (%)", components())


if __name__ == "__main__":
    main()
