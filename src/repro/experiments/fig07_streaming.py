"""Figure 7: mean PI latency under streaming inference requests.

Baseline Server-Garbler (sequential HE, even bandwidth split), ResNet-18 on
TinyImageNet, 128 GB of client storage, 24 h Poisson workloads. As the
arrival rate rises, latency decomposes into online, then offline (buffer
depleted), then queueing (server saturated) components.
"""

from __future__ import annotations

from repro.core.system import OfflineParallelism, SystemConfig, simulate_mean_latency
from repro.experiments.common import print_rows, profile
from repro.profiling.model_costs import Protocol

ARRIVAL_MINUTES = (180, 120, 95, 80, 65, 50, 40, 35, 30)


def run(
    model: str = "ResNet-18",
    dataset: str = "TinyImageNet",
    storage_gb: float = 128.0,
    replications: int = 5,
    horizon_hours: float = 24.0,
) -> list[dict]:
    config = SystemConfig(
        profile=profile(model, dataset),
        protocol=Protocol.SERVER_GARBLER,
        client_storage_bytes=storage_gb * 1e9,
        wsa=False,
        parallelism=OfflineParallelism.SEQUENTIAL,
    )
    rows = []
    for minutes in ARRIVAL_MINUTES:
        stats = simulate_mean_latency(
            config, minutes * 60, horizon=horizon_hours * 3600,
            replications=replications,
        )
        rows.append(
            {
                "req_per_min": f"1/{minutes}",
                "mean_latency_min": stats["latency"] / 60,
                "queue_min": stats["queue"] / 60,
                "offline_min": stats["offline"] / 60,
                "online_min": stats["online"] / 60,
                "precompute_hit": stats["hit"],
            }
        )
    return rows


def main() -> None:
    print_rows("Figure 7: streaming latency decomposition (Server-Garbler)", run())


if __name__ == "__main__":
    main()
