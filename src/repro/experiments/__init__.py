"""Per-figure/table experiment runners reproducing the paper's evaluation.

Each module exposes ``run()`` returning structured rows and ``main()``
printing them; the benchmark harness under ``benchmarks/`` wraps these.

| Module              | Reproduces |
|---------------------|------------|
| fig03_storage       | Figure 3: client storage per inference |
| fig04_compute       | Figure 4: HE.Eval / GC.Eval / GC.Garble latency |
| fig05_comm          | Figure 5: communication latency vs bandwidth |
| table1              | Table 1: Server-Garbler time breakdown |
| fig07_streaming     | Figure 7: latency under arrival rates |
| fig08_client_garbler| Figure 8: client storage SG vs CG |
| fig09_lphe          | Figure 9: sequential vs layer-parallel HE |
| fig10_lphe_vs_rlp   | Figure 10: LPHE vs RLP across storage budgets |
| fig11_wsa           | Figure 11: wireless slot allocation sweep |
| fig12_end_to_end    | Figure 12: baseline vs proposed, all pairs |
| fig13_sensitivity   | Figure 13: device capability sensitivity |
| fig14_future        | Figure 14: future-optimization waterfall |
"""

from repro.experiments import (
    fig03_storage,
    fig04_compute,
    fig05_comm,
    fig07_streaming,
    fig08_client_garbler,
    fig09_lphe,
    fig10_lphe_vs_rlp,
    fig11_wsa,
    fig12_end_to_end,
    fig13_sensitivity,
    fig14_future,
    headline,
    table1,
)

ALL_EXPERIMENTS = {
    "fig3": fig03_storage,
    "fig4": fig04_compute,
    "fig5": fig05_comm,
    "table1": table1,
    "fig7": fig07_streaming,
    "fig8": fig08_client_garbler,
    "fig9": fig09_lphe,
    "fig10": fig10_lphe_vs_rlp,
    "fig11": fig11_wsa,
    "fig12": fig12_end_to_end,
    "fig13": fig13_sensitivity,
    "fig14": fig14_future,
    "headline": headline,
}

__all__ = ["ALL_EXPERIMENTS"]
