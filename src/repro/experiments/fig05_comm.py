"""Figure 5: communication latency vs total wireless bandwidth.

ResNet-18 on TinyImageNet, Server-Garbler, even upload/download split.
Download (GC transmission) dominates — 11 minutes even at 1 Gbps; upload
carries only a few percent of the bytes.
"""

from __future__ import annotations

from repro.experiments.common import print_rows, profile
from repro.network.bandwidth import MBPS, TddLink
from repro.profiling.model_costs import Protocol

BANDWIDTH_SWEEP_MBPS = (150, 250, 350, 450, 550, 650, 750, 850, 950, 1000)


def run(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> list[dict]:
    volumes = profile(model, dataset).comm(Protocol.SERVER_GARBLER)
    rows = []
    for mbps in BANDWIDTH_SWEEP_MBPS:
        link = TddLink(mbps * MBPS, 0.5)
        rows.append(
            {
                "bandwidth_mbps": mbps,
                "upload_min": link.upload_seconds(volumes.upload) / 60,
                "download_min": link.download_seconds(volumes.download) / 60,
                "total_min": link.transfer_seconds(volumes.upload, volumes.download)
                / 60,
            }
        )
    return rows


def download_share(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> float:
    """Fraction of total transferred bytes that is download (paper: 81.5%)."""
    volumes = profile(model, dataset).comm(Protocol.SERVER_GARBLER)
    return volumes.download / volumes.total


def main() -> None:
    print_rows("Figure 5: communication latency vs bandwidth (even split)", run())
    print(f"download share of bytes: {download_share():.1%} (paper 81.5%)")


if __name__ == "__main__":
    main()
