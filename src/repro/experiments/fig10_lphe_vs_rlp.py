"""Figure 10: LPHE vs request-level parallelism (RLP) across storage budgets.

Both strategies run under the proposed protocol (Client-Garbler + WSA) for
ResNet-18 on TinyImageNet. With little storage, LPHE wins — RLP cannot
buffer enough pre-computes to use its cores. With abundant storage
(~140 GB, 17 pre-computes) RLP's higher pre-compute throughput sustains a
higher arrival rate.
"""

from __future__ import annotations

from repro.core.system import OfflineParallelism, SystemConfig, simulate_mean_latency
from repro.experiments.common import print_rows, profile
from repro.profiling.model_costs import Protocol

STORAGE_SWEEPS = {
    8: (104, 54, 37, 28, 22, 19),
    16: (104, 54, 37, 28, 22, 19),
    32: (85, 43, 28, 21, 17, 14),
    64: (85, 43, 28, 21, 17, 14),
    140: (68, 33, 22, 17, 13, 11),
}


def run(
    storage_gb: float = 16.0,
    model: str = "ResNet-18",
    dataset: str = "TinyImageNet",
    replications: int = 3,
    horizon_hours: float = 24.0,
) -> list[dict]:
    rows = []
    arrival_minutes = STORAGE_SWEEPS.get(int(storage_gb), STORAGE_SWEEPS[16])
    for parallelism in (OfflineParallelism.LPHE, OfflineParallelism.RLP):
        config = SystemConfig(
            profile=profile(model, dataset),
            protocol=Protocol.CLIENT_GARBLER,
            client_storage_bytes=storage_gb * 1e9,
            wsa=True,
            parallelism=parallelism,
        )
        for minutes in arrival_minutes:
            stats = simulate_mean_latency(
                config, minutes * 60, horizon=horizon_hours * 3600,
                replications=replications,
            )
            rows.append(
                {
                    "strategy": parallelism.value,
                    "storage_gb": storage_gb,
                    "req_per_min": f"1/{minutes}",
                    "mean_latency_min": stats["latency"] / 60,
                    "offline_min": stats["offline"] / 60,
                    "queue_min": stats["queue"] / 60,
                }
            )
    return rows


def run_all(replications: int = 3) -> list[dict]:
    rows = []
    for storage in STORAGE_SWEEPS:
        rows.extend(run(storage_gb=storage, replications=replications))
    return rows


def main() -> None:
    for storage in (8, 16, 64, 140):
        print_rows(
            f"Figure 10: LPHE vs RLP at {storage} GB client storage",
            run(storage_gb=storage),
        )


if __name__ == "__main__":
    main()
