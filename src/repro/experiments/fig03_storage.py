"""Figure 3: per-inference pre-processing storage on the client.

Paper values (GB): CIFAR-100 — VGG-16 5, ResNet-32 6, ResNet-18 10;
TinyImageNet — 20, 22, 41; ImageNet — 247, 271, 498. Garbled circuits
dominate; the counts fall straight out of our architecture builders times
the measured 18.2 KB/ReLU.
"""

from __future__ import annotations

from repro.experiments.common import STORAGE_PAIRS, print_rows, profile
from repro.profiling.model_costs import Protocol

PAPER_GB = {
    ("VGG-16", "CIFAR-100"): 5,
    ("ResNet-32", "CIFAR-100"): 6,
    ("ResNet-18", "CIFAR-100"): 10,
    ("VGG-16", "TinyImageNet"): 20,
    ("ResNet-32", "TinyImageNet"): 22,
    ("ResNet-18", "TinyImageNet"): 41,
    ("VGG-16", "ImageNet"): 247,
    ("ResNet-32", "ImageNet"): 271,
    ("ResNet-18", "ImageNet"): 498,
}


def run() -> list[dict]:
    rows = []
    for model, dataset in STORAGE_PAIRS:
        p = profile(model, dataset)
        gb = p.storage(Protocol.SERVER_GARBLER).client_bytes / 1e9
        rows.append(
            {
                "model": model,
                "dataset": dataset,
                "relus": p.relu_count,
                "client_storage_gb": gb,
                "paper_gb": PAPER_GB[(model, dataset)],
            }
        )
    return rows


def main() -> None:
    print_rows("Figure 3: client storage per inference", run())


if __name__ == "__main__":
    main()
