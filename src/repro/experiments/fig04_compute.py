"""Figure 4: per-inference compute latency of the cryptographic primitives.

HE.Eval (server, offline) dominates; GC.Eval (Atom client, online) is the
next largest; GC.Garble (server, offline) is almost negligible. Paper
anchor: ResNet-18/TinyImageNet at roughly 18 / 3.3 / 0.4 minutes.
"""

from __future__ import annotations

from repro.experiments.common import EVAL_PAIRS, print_rows, profile
from repro.profiling.devices import ATOM, EPYC


def run() -> list[dict]:
    rows = []
    for model, dataset in EVAL_PAIRS:
        p = profile(model, dataset)
        rows.append(
            {
                "model": model,
                "dataset": dataset,
                "he_eval_min": p.he_sequential_seconds(EPYC) / 60,
                "gc_eval_min": p.gc_eval_seconds(ATOM) / 60,
                "gc_garble_min": p.garble_seconds(EPYC) / 60,
            }
        )
    return rows


def main() -> None:
    print_rows("Figure 4: compute latency per primitive (minutes)", run())


if __name__ == "__main__":
    main()
