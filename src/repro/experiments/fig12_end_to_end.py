"""Figure 12: baseline vs proposed protocol across all network/dataset pairs.

The baseline Server-Garbler (sequential HE, even split) runs with 16, 32,
and 64 GB of client storage; the proposed protocol (Client-Garbler + LPHE
+ WSA) runs with only 16 GB. The proposed stack shows lower mean latency
everywhere and sustains markedly higher arrival rates — 2.24x in the
paper's headline.
"""

from __future__ import annotations

from repro.core.system import OfflineParallelism, SystemConfig, simulate_mean_latency
from repro.experiments.common import EVAL_PAIRS, print_rows, profile
from repro.profiling.model_costs import Protocol

# Arrival sweeps (minutes between requests) per dataset/network, following
# the paper's per-panel x-axes.
ARRIVAL_SWEEPS = {
    ("ResNet-32", "CIFAR-100"): (9, 5.5, 4, 3, 2.5, 2),
    ("VGG-16", "CIFAR-100"): (9.6, 6, 4.3, 3.4, 2.8, 2.4),
    ("ResNet-18", "CIFAR-100"): (12, 9, 7, 6, 5, 4.5),
    ("ResNet-32", "TinyImageNet"): (53, 27, 17, 13, 10.6, 8.9),
    ("VGG-16", "TinyImageNet"): (55, 28, 18, 14, 11, 9),
    ("ResNet-18", "TinyImageNet"): (100, 54, 36, 28, 22, 18),
}

BASELINE_STORAGE_GB = (16, 32, 64)


def configs_for(model: str, dataset: str) -> list[tuple[str, SystemConfig]]:
    p = profile(model, dataset)
    configs = [
        (
            f"SG-{gb}GB",
            SystemConfig(
                profile=p,
                protocol=Protocol.SERVER_GARBLER,
                client_storage_bytes=gb * 1e9,
                wsa=False,
                parallelism=OfflineParallelism.SEQUENTIAL,
            ),
        )
        for gb in BASELINE_STORAGE_GB
    ]
    configs.append(
        (
            "Proposed-16GB",
            SystemConfig(
                profile=p,
                protocol=Protocol.CLIENT_GARBLER,
                client_storage_bytes=16e9,
                wsa=True,
                parallelism=OfflineParallelism.LPHE,
            ),
        )
    )
    return configs


def run(
    model: str,
    dataset: str,
    replications: int = 3,
    horizon_hours: float = 24.0,
) -> list[dict]:
    rows = []
    for label, config in configs_for(model, dataset):
        for minutes in ARRIVAL_SWEEPS[(model, dataset)]:
            stats = simulate_mean_latency(
                config, minutes * 60, horizon=horizon_hours * 3600,
                replications=replications,
            )
            rows.append(
                {
                    "model": model,
                    "dataset": dataset,
                    "system": label,
                    "req_per_min": f"1/{minutes:g}",
                    "mean_latency_min": stats["latency"] / 60,
                }
            )
    return rows


def run_all(replications: int = 2, horizon_hours: float = 24.0) -> list[dict]:
    rows = []
    for model, dataset in EVAL_PAIRS:
        rows.extend(
            run(model, dataset, replications=replications,
                horizon_hours=horizon_hours)
        )
    return rows


def low_rate_speedup(model: str = "ResNet-18", dataset: str = "TinyImageNet") -> float:
    """Proposed-vs-baseline mean latency ratio at the lowest arrival rate."""
    minutes = ARRIVAL_SWEEPS[(model, dataset)][0]
    latencies = {}
    for label, config in configs_for(model, dataset):
        stats = simulate_mean_latency(config, minutes * 60, replications=3)
        latencies[label] = stats["latency"]
    return latencies["SG-16GB"] / latencies["Proposed-16GB"]


def main() -> None:
    for model, dataset in EVAL_PAIRS:
        print_rows(f"Figure 12: {model} on {dataset}", run(model, dataset))


if __name__ == "__main__":
    main()
