"""Figure 13: sensitivity to client and server compute capabilities.

ResNet-18 on TinyImageNet at 16 GB client storage. Clients: Atom, i5,
2x i5; servers: EPYC at 1x/2x/4x. Server-Garbler cannot buffer (41 GB >
16 GB) so its latency stays high regardless of devices; Client-Garbler
buffers (8 GB) and its sustainable rate scales with client garbling speed.
"""

from __future__ import annotations

from repro.core.system import OfflineParallelism, SystemConfig, simulate_mean_latency
from repro.experiments.common import print_rows, profile
from repro.profiling.devices import ATOM, EPYC, I5, I5_2X
from repro.profiling.model_costs import Protocol

ARRIVAL_MINUTES = (65, 31, 20, 15, 12, 10)
CLIENTS = (("Atom", ATOM), ("i5", I5), ("i5 (2x)", I5_2X))
SERVER_SCALES = (1, 2, 4)


def run(
    server_scale: int = 1,
    replications: int = 2,
    horizon_hours: float = 24.0,
    model: str = "ResNet-18",
    dataset: str = "TinyImageNet",
) -> list[dict]:
    p = profile(model, dataset)
    server = EPYC if server_scale == 1 else EPYC.scaled(server_scale)
    rows = []
    for protocol, tag in (
        (Protocol.SERVER_GARBLER, "SG"),
        (Protocol.CLIENT_GARBLER, "CG"),
    ):
        for client_name, client in CLIENTS:
            config = SystemConfig(
                profile=p,
                protocol=protocol,
                client=client,
                server=server,
                client_storage_bytes=16e9,
                wsa=True,
                parallelism=OfflineParallelism.LPHE,
            )
            for minutes in ARRIVAL_MINUTES:
                stats = simulate_mean_latency(
                    config, minutes * 60, horizon=horizon_hours * 3600,
                    replications=replications,
                )
                rows.append(
                    {
                        "system": f"{tag} - {client_name}",
                        "server_scale": f"{server_scale}x",
                        "req_per_min": f"1/{minutes}",
                        "mean_latency_min": stats["latency"] / 60,
                    }
                )
    return rows


def garble_latencies() -> dict[str, float]:
    """Client-side offline garbling seconds (paper: 382.6 / 107.2 / 53.8)."""
    p = profile("ResNet-18", "TinyImageNet")
    return {name: p.garble_seconds(device) for name, device in CLIENTS}


def main() -> None:
    for scale in SERVER_SCALES:
        print_rows(f"Figure 13: AMD server ({scale}x)", run(server_scale=scale))
    print("client garble seconds:", garble_latencies())


if __name__ == "__main__":
    main()
