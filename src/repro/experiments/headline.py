"""The paper's headline claims: 1.8x total PI speedup, 2.24x arrival rate.

Aggregates the per-pair improvements of the proposed stack (Client-Garbler
+ LPHE + WSA) over the baseline Server-Garbler protocol:

* single-inference total latency ratio (estimator, all six pairs);
* maximum sustainable arrival-rate ratio (analytic service floors,
  cross-checked by simulation in the test suite).
"""

from __future__ import annotations

from repro.core.analytic import max_sustainable_rate_per_minute
from repro.core.estimator import estimate
from repro.core.system import OfflineParallelism, SystemConfig
from repro.experiments.common import EVAL_PAIRS, print_rows, profile
from repro.profiling.model_costs import Protocol


def _configs(p):
    baseline = SystemConfig(
        profile=p,
        protocol=Protocol.SERVER_GARBLER,
        client_storage_bytes=16e9,
        wsa=False,
        parallelism=OfflineParallelism.SEQUENTIAL,
    )
    proposed = SystemConfig(
        profile=p,
        protocol=Protocol.CLIENT_GARBLER,
        client_storage_bytes=16e9,
        wsa=True,
        parallelism=OfflineParallelism.LPHE,
    )
    return baseline, proposed


def run() -> list[dict]:
    rows = []
    for model, dataset in EVAL_PAIRS:
        p = profile(model, dataset)
        base_est = estimate(p, Protocol.SERVER_GARBLER, lphe=False, wsa=False)
        prop_est = estimate(p, Protocol.CLIENT_GARBLER, lphe=True, wsa=True)
        baseline, proposed = _configs(p)
        rows.append(
            {
                "model": model,
                "dataset": dataset,
                "total_speedup": base_est.total_seconds / prop_est.total_seconds,
                "baseline_rate_per_min": max_sustainable_rate_per_minute(baseline),
                "proposed_rate_per_min": max_sustainable_rate_per_minute(proposed),
                "rate_improvement": max_sustainable_rate_per_minute(proposed)
                / max_sustainable_rate_per_minute(baseline),
            }
        )
    return rows


def mean_total_speedup() -> float:
    rows = run()
    return sum(r["total_speedup"] for r in rows) / len(rows)


def mean_rate_improvement() -> float:
    rows = run()
    return sum(r["rate_improvement"] for r in rows) / len(rows)


def main() -> None:
    print_rows("Headline: proposed vs baseline", run())
    print(f"mean total PI speedup:       {mean_total_speedup():.2f}x (paper: 1.8x)")
    print(f"mean sustainable-rate gain:  {mean_rate_improvement():.2f}x (paper: 2.24x)")


if __name__ == "__main__":
    main()
