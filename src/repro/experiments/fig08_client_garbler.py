"""Figure 8: client-side storage, Server-Garbler vs Client-Garbler.

Reversing the GC roles moves the garbled circuits (18.2 KB/ReLU) to the
server and leaves the client only the input encodings (3.5 KB/ReLU), a
~5x client storage reduction — e.g. 41 GB -> 8 GB for ResNet-18 on
TinyImageNet.
"""

from __future__ import annotations

from repro.experiments.common import EVAL_PAIRS, print_rows, profile
from repro.profiling.model_costs import Protocol


def run() -> list[dict]:
    rows = []
    for model, dataset in EVAL_PAIRS:
        p = profile(model, dataset)
        sg = p.storage(Protocol.SERVER_GARBLER).client_bytes / 1e9
        cg = p.storage(Protocol.CLIENT_GARBLER).client_bytes / 1e9
        rows.append(
            {
                "model": model,
                "dataset": dataset,
                "server_garbler_gb": sg,
                "client_garbler_gb": cg,
                "reduction": sg / cg,
            }
        )
    return rows


def mean_reduction() -> float:
    rows = run()
    return sum(r["reduction"] for r in rows) / len(rows)


def main() -> None:
    print_rows("Figure 8: client storage by protocol", run())
    print(f"mean reduction: {mean_reduction():.1f}x (paper: ~5x)")


if __name__ == "__main__":
    main()
