"""Beaver multiplication triples and the two-party multiply protocol.

Triples (a, b, c = a*b) are generated in the pre-processing phase — the
paper notes they are produced with offline HE — and consumed online with
one opening round per multiplication. Two generators are provided: a
trusted-dealer one for tests and an HE-backed one that mirrors how the
offline phase actually produces correlated randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import SecureRandom
from repro.ss.additive import ShareVector, share


@dataclass(frozen=True)
class BeaverTripleShare:
    """One party's share of a Beaver triple (element-wise vectors)."""

    a: ShareVector
    b: ShareVector
    c: ShareVector

    def __len__(self) -> int:
        return len(self.a)


def dealer_triples(
    n: int, modulus: int, rng: SecureRandom | None = None
) -> tuple[BeaverTripleShare, BeaverTripleShare]:
    """Trusted-dealer triple generation (testing / baseline)."""
    rng = rng or SecureRandom()
    a = rng.field_vector(n, modulus)
    b = rng.field_vector(n, modulus)
    c = [x * y % modulus for x, y in zip(a, b)]
    a1, a2 = share(a, modulus, rng)
    b1, b2 = share(b, modulus, rng)
    c1, c2 = share(c, modulus, rng)
    return (
        BeaverTripleShare(a1, b1, c1),
        BeaverTripleShare(a2, b2, c2),
    )


def he_triples(
    n: int,
    params,
    rng: SecureRandom | None = None,
) -> tuple[BeaverTripleShare, BeaverTripleShare]:
    """Generate triples with actual BFV encryption, dealer-free.

    Party 1 samples (a1, b1), encrypts them; party 2 samples (a2, b2, s),
    homomorphically computes Enc(a1*b2 + a2*b1 - s) and returns it. Then
    c1 = a1*b1 + dec(...) and c2 = a2*b2 + s satisfy c1 + c2 = a*b.
    """
    from repro.he.bfv import BfvContext
    from repro.he.encoder import BatchEncoder

    rng = rng or SecureRandom()
    if n > params.n:
        raise ValueError("vector longer than slot count")
    p = params.t
    ctx = BfvContext(params, rng.spawn())
    encoder = BatchEncoder(params)
    sk, pk = ctx.keygen()

    a1 = rng.field_vector(n, p)
    b1 = rng.field_vector(n, p)
    a2 = rng.field_vector(n, p)
    b2 = rng.field_vector(n, p)
    s = rng.field_vector(n, p)

    ct_a1 = ctx.encrypt(pk, encoder.encode(a1))
    ct_b1 = ctx.encrypt(pk, encoder.encode(b1))
    pad = lambda v: v + [0] * (params.n - n)  # noqa: E731 - slot padding
    cross = ctx.mul_plain(ct_a1, encoder.encode(pad(b2)))
    cross = cross + ctx.mul_plain(ct_b1, encoder.encode(pad(a2)))
    cross = ctx.sub_plain(cross, encoder.encode(pad(s)))

    opened = encoder.decode(ctx.decrypt(sk, cross))[:n]
    c1 = [(x * y + z) % p for x, y, z in zip(a1, b1, opened)]
    c2 = [(x * y + z) % p for x, y, z in zip(a2, b2, s)]
    return (
        BeaverTripleShare(
            ShareVector(tuple(a1), p), ShareVector(tuple(b1), p), ShareVector(tuple(c1), p)
        ),
        BeaverTripleShare(
            ShareVector(tuple(a2), p), ShareVector(tuple(b2), p), ShareVector(tuple(c2), p)
        ),
    )


def beaver_multiply(
    x1: ShareVector,
    y1: ShareVector,
    x2: ShareVector,
    y2: ShareVector,
    t1: BeaverTripleShare,
    t2: BeaverTripleShare,
) -> tuple[ShareVector, ShareVector]:
    """Element-wise multiply secret-shared vectors using one triple batch.

    Simulates both parties locally: each computes its share of e = x - a
    and f = y - b, the openings are exchanged, and the product shares are
    z_i = c_i + e*b_i + f*a_i (+ e*f at exactly one party).
    """
    p = x1.modulus
    e = [(v1 + v2) % p for v1, v2 in zip((x1 - t1.a).values, (x2 - t2.a).values)]
    f = [(v1 + v2) % p for v1, v2 in zip((y1 - t1.b).values, (y2 - t2.b).values)]

    def z_share(triple: BeaverTripleShare, include_ef: bool) -> ShareVector:
        values = []
        for i in range(len(e)):
            v = (
                triple.c.values[i]
                + e[i] * triple.b.values[i]
                + f[i] * triple.a.values[i]
            ) % p
            if include_ef:
                v = (v + e[i] * f[i]) % p
            values.append(v)
        return ShareVector(tuple(values), p)

    return z_share(t1, True), z_share(t2, False)
