"""Additive secret sharing over Z_p.

A value x is split as <x>_1 = r (uniform) and <x>_2 = x - r; addition and
scalar multiplication are local, reconstruction is one exchange. These are
the shares the hybrid protocol threads through every linear layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import SecureRandom


@dataclass(frozen=True)
class ShareVector:
    """One party's share of a secret vector, tagged with the field modulus."""

    values: tuple[int, ...]
    modulus: int

    def __post_init__(self) -> None:
        if any(not 0 <= v < self.modulus for v in self.values):
            raise ValueError("share values must be reduced modulo the field")

    def __len__(self) -> int:
        return len(self.values)

    def _check(self, other: "ShareVector") -> None:
        if self.modulus != other.modulus:
            raise ValueError("modulus mismatch")
        if len(self) != len(other):
            raise ValueError("length mismatch")

    def __add__(self, other: "ShareVector") -> "ShareVector":
        self._check(other)
        p = self.modulus
        return ShareVector(
            tuple((a + b) % p for a, b in zip(self.values, other.values)), p
        )

    def __sub__(self, other: "ShareVector") -> "ShareVector":
        self._check(other)
        p = self.modulus
        return ShareVector(
            tuple((a - b) % p for a, b in zip(self.values, other.values)), p
        )

    def scale(self, scalar: int) -> "ShareVector":
        p = self.modulus
        return ShareVector(tuple(v * scalar % p for v in self.values), p)

    def add_public(self, public: list[int]) -> "ShareVector":
        """Add a public vector (only one party should do this)."""
        if len(public) != len(self):
            raise ValueError("length mismatch")
        p = self.modulus
        return ShareVector(
            tuple((a + b) % p for a, b in zip(self.values, public)), p
        )


def share(
    values: list[int], modulus: int, rng: SecureRandom | None = None
) -> tuple[ShareVector, ShareVector]:
    """Split ``values`` into two uniformly random additive shares."""
    rng = rng or SecureRandom()
    first = [rng.field_element(modulus) for _ in values]
    second = [(v - r) % modulus for v, r in zip(values, first)]
    return ShareVector(tuple(first), modulus), ShareVector(tuple(second), modulus)


def reconstruct(a: ShareVector, b: ShareVector) -> list[int]:
    """Combine two shares back into the secret vector."""
    combined = a + b
    return list(combined.values)


def to_signed(values: list[int], modulus: int) -> list[int]:
    """Map field elements to centered signed integers (-p/2, p/2]."""
    half = modulus // 2
    return [v - modulus if v > half else v for v in values]


def from_signed(values: list[int], modulus: int) -> list[int]:
    """Map signed integers into the field [0, p)."""
    return [v % modulus for v in values]
