"""Additive secret sharing over Z_p with Beaver-triple multiplication."""

from repro.ss.additive import (
    ShareVector,
    from_signed,
    reconstruct,
    share,
    to_signed,
)
from repro.ss.beaver import (
    BeaverTripleShare,
    beaver_multiply,
    dealer_triples,
    he_triples,
)

__all__ = [
    "BeaverTripleShare",
    "ShareVector",
    "beaver_multiply",
    "dealer_triples",
    "from_signed",
    "he_triples",
    "reconstruct",
    "share",
    "to_signed",
]
