"""IKNP oblivious-transfer extension.

Turns kappa = 128 base OTs (public-key operations) into arbitrarily many
fast symmetric-key OTs — the construction DELPHI relies on to fetch one
wire label per share bit during the GC sub-protocol. Roles invert between
the layers: the extension *receiver* plays base-OT *sender* and vice versa.

Column-major bit matrices are stored as Python integers (one m-bit integer
per column), which makes the T / T xor r column pairs and the row
extraction straightforward and exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import LABEL_BYTES, Prg, hash_label, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.ot.base import BaseOtReceiver, BaseOtSender

KAPPA = 128  # computational security parameter / number of base OTs


@dataclass
class ExtensionTranscript:
    """Byte sizes of each message flow, for communication accounting."""

    base_ot_bytes: int
    column_bytes: int
    ciphertext_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.base_ot_bytes + self.column_bytes + self.ciphertext_bytes


def _row(columns: list[int], row_index: int) -> int:
    """Extract row ``row_index`` from column-major integer matrix."""
    value = 0
    for i, col in enumerate(columns):
        value |= ((col >> row_index) & 1) << i
    return value


def _int_to_label(value: int) -> bytes:
    return value.to_bytes(LABEL_BYTES, "little")


def iknp_transfer(
    message_pairs: list[tuple[bytes, bytes]],
    choices: list[int],
    rng: SecureRandom | None = None,
) -> tuple[list[bytes], ExtensionTranscript]:
    """Run IKNP extension end to end for ``len(message_pairs)`` OTs.

    Returns the receiver's chosen messages and a transcript of byte volumes
    (base OTs + the m x kappa column matrix + the masked message pairs).
    """
    rng = rng or SecureRandom()
    m = len(message_pairs)
    if len(choices) != m:
        raise ValueError("one choice bit per message pair required")
    if m == 0:
        return [], ExtensionTranscript(0, 0, 0)
    msg_len = len(message_pairs[0][0])
    for m0, m1 in message_pairs:
        if len(m0) != msg_len or len(m1) != msg_len:
            raise ValueError("all messages must share one length")

    r_packed = 0
    for j, c in enumerate(choices):
        r_packed |= (c & 1) << j

    # Receiver expands kappa column seeds; the sender obtains, via base OT
    # with its secret bits s_i, either t_i or t_i xor r per column.
    receiver_rng = rng.spawn()
    t_columns = []
    column_pairs = []
    for i in range(KAPPA):
        seed0 = receiver_rng.bytes(LABEL_BYTES)
        t_i = int.from_bytes(Prg(seed0).read((m + 7) // 8), "little") & ((1 << m) - 1)
        t_columns.append(t_i)
        u_i = t_i ^ r_packed
        column_pairs.append(
            (t_i.to_bytes((m + 7) // 8, "little"), u_i.to_bytes((m + 7) // 8, "little"))
        )

    sender_rng = rng.spawn()
    s_bits = sender_rng.bits(KAPPA)
    base_sender = BaseOtSender(rng.spawn())  # played by extension receiver
    base_receiver = BaseOtReceiver(s_bits, rng.spawn())  # played by ext. sender
    points = base_receiver.points(base_sender.public)
    ciphertexts = base_sender.encrypt(points, column_pairs)
    q_column_bytes = base_receiver.decrypt(base_sender.public, ciphertexts)
    q_columns = [int.from_bytes(qb, "little") for qb in q_column_bytes]

    s_packed = 0
    for i, s in enumerate(s_bits):
        s_packed |= s << i

    # Sender masks each message pair with row hashes of Q.
    masked: list[tuple[bytes, bytes]] = []
    for j, (m0, m1) in enumerate(message_pairs):
        q_j = _row(q_columns, j)
        pad0 = hash_label(_int_to_label(q_j & ((1 << KAPPA) - 1)), j)
        pad1 = hash_label(_int_to_label((q_j ^ s_packed) & ((1 << KAPPA) - 1)), j)
        masked.append(
            (
                xor_bytes(m0, Prg(pad0).read(msg_len)),
                xor_bytes(m1, Prg(pad1).read(msg_len)),
            )
        )

    # Receiver unmasks its chosen message with row hashes of T.
    chosen: list[bytes] = []
    for j, c in enumerate(choices):
        t_j = _row(t_columns, j)
        pad = hash_label(_int_to_label(t_j & ((1 << KAPPA) - 1)), j)
        cipher = masked[j][c & 1]
        chosen.append(xor_bytes(cipher, Prg(pad).read(msg_len)))

    transcript = ExtensionTranscript(
        base_ot_bytes=KAPPA * (2 * ((m + 7) // 8)) + KAPPA * 32 + 32,
        column_bytes=KAPPA * ((m + 7) // 8),
        ciphertext_bytes=2 * m * msg_len,
    )
    return chosen, transcript


def ot_extension_online_bytes(n_ots: int, msg_len: int = LABEL_BYTES) -> int:
    """Online communication of an IKNP batch (columns + masked pairs)."""
    return KAPPA * ((n_ots + 7) // 8) + 2 * n_ots * msg_len


def base_ot_offline_bytes() -> int:
    """Offline communication of the kappa base OTs (group elements + pads)."""
    return 32 + KAPPA * 32 + 2 * KAPPA * LABEL_BYTES
