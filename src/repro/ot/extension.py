"""IKNP oblivious-transfer extension.

Turns kappa = 128 base OTs (public-key operations) into arbitrarily many
fast symmetric-key OTs — the construction DELPHI relies on to fetch one
wire label per share bit during the GC sub-protocol. Roles invert between
the layers: the extension *receiver* plays base-OT *sender* and vice versa.

Column-major bit matrices are stored as Python integers (one m-bit integer
per column), which makes the T / T xor r column pairs and the row
extraction straightforward and exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import LABEL_BYTES, Prg, hash_label, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.ot.base import BaseOtReceiver, BaseOtSender

KAPPA = 128  # computational security parameter / number of base OTs

# Below this many rows, shipping shard jobs to pool workers costs more
# than the work they parallelize — relevant since run_online threads a
# pool through the per-layer label OTs, whose batches can be tiny. The
# extension simply runs inline below the threshold; output bytes are
# identical either way (pooling never changes a transcript bit).
MIN_POOLED_ROWS = 64


@dataclass
class ExtensionTranscript:
    """Byte sizes of each message flow, for communication accounting."""

    base_ot_bytes: int
    column_bytes: int
    ciphertext_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.base_ot_bytes + self.column_bytes + self.ciphertext_bytes


def _row(columns: list[int], row_index: int) -> int:
    """Extract row ``row_index`` from column-major integer matrix."""
    value = 0
    for i, col in enumerate(columns):
        value |= ((col >> row_index) & 1) << i
    return value


def _int_to_label(value: int) -> bytes:
    return value.to_bytes(LABEL_BYTES, "little")


# -- shardable stages ----------------------------------------------------------
#
# The extension's m-proportional work — PRG column expansion and the
# per-row mask/unmask hashing — is split into module-level stage functions
# over contiguous blocks. All randomness (column seeds, base-OT secrets)
# stays with the caller, so executing the stages through a process pool
# (repro.runtime.pool.PrecomputePool) produces byte-identical transcripts
# to the sequential path: the blocks are pure functions of their inputs.


def expand_column_block(args) -> list[int]:
    """PRG-expand a block of column seeds into m-bit column integers."""
    seeds, m = args
    mask = (1 << m) - 1
    nbytes = (m + 7) // 8
    return [
        int.from_bytes(Prg(seed).read(nbytes), "little") & mask for seed in seeds
    ]


def _slice_columns(columns: list[int], lo: int, hi: int) -> list[int]:
    """Rows [lo, hi) of each m-bit column — jobs ship only their shard's
    bits instead of the full m-row matrix (KAPPA * m/8 bytes per job)."""
    mask = (1 << (hi - lo)) - 1
    return [(col >> lo) & mask for col in columns]


def mask_row_block(args) -> list[tuple[bytes, bytes]]:
    """Sender side: mask a block of message pairs with row hashes of Q.

    ``q_columns`` holds only this block's rows (shard-relative bit 0 is
    global row ``row_offset``); the hash tweaks stay global.
    """
    pairs, q_columns, s_packed, row_offset, msg_len = args
    kappa_mask = (1 << KAPPA) - 1
    masked = []
    for offset, (m0, m1) in enumerate(pairs):
        j = row_offset + offset
        q_j = _row(q_columns, offset)
        pad0 = hash_label(_int_to_label(q_j & kappa_mask), j)
        pad1 = hash_label(_int_to_label((q_j ^ s_packed) & kappa_mask), j)
        masked.append(
            (
                xor_bytes(m0, Prg(pad0).read(msg_len)),
                xor_bytes(m1, Prg(pad1).read(msg_len)),
            )
        )
    return masked


def unmask_row_block(args) -> list[bytes]:
    """Receiver side: unmask the chosen message of each row in a block.

    ``t_columns`` holds only this block's rows, like :func:`mask_row_block`.
    """
    masked, choices, t_columns, row_offset, msg_len = args
    kappa_mask = (1 << KAPPA) - 1
    chosen = []
    for offset, (pair, c) in enumerate(zip(masked, choices)):
        j = row_offset + offset
        t_j = _row(t_columns, offset)
        pad = hash_label(_int_to_label(t_j & kappa_mask), j)
        chosen.append(xor_bytes(pair[c & 1], Prg(pad).read(msg_len)))
    return chosen


def _block_ranges(total: int, pool) -> list[tuple[int, int]]:
    """Contiguous block bounds: one block inline, skew-aware under a pool."""
    if pool is None or total == 0:
        return [(0, total)]
    return pool.shard_ranges(total)


def _run_stage(pool, func, jobs):
    """Run stage jobs through the pool (or inline) and flatten the blocks."""
    if pool is None:
        block_results = [func(job) for job in jobs]
    else:
        block_results = pool.map_jobs(func, jobs)
    return [item for block in block_results for item in block]


def iknp_transfer(
    message_pairs: list[tuple[bytes, bytes]],
    choices: list[int],
    rng: SecureRandom | None = None,
    pool=None,
) -> tuple[list[bytes], ExtensionTranscript]:
    """Run IKNP extension end to end for ``len(message_pairs)`` OTs.

    Returns the receiver's chosen messages and a transcript of byte volumes
    (base OTs + the m x kappa column matrix + the masked message pairs).

    ``pool`` (a :class:`repro.runtime.pool.PrecomputePool`) shards the
    column expansion and the row mask/unmask hashing across worker
    processes; output is byte-identical to the sequential path because all
    randomness is drawn here, in the same order, regardless of pooling.
    Batches smaller than :data:`MIN_POOLED_ROWS` run every stage inline
    even under a pool — the online phase's per-layer OTs can be a handful
    of rows, where dispatch overhead would swamp the win.
    """
    rng = rng or SecureRandom()
    m = len(message_pairs)
    if len(choices) != m:
        raise ValueError("one choice bit per message pair required")
    if m == 0:
        return [], ExtensionTranscript(0, 0, 0)
    msg_len = len(message_pairs[0][0])
    for m0, m1 in message_pairs:
        if len(m0) != msg_len or len(m1) != msg_len:
            raise ValueError("all messages must share one length")
    if m < MIN_POOLED_ROWS:
        # Every stage's work is m-proportional (the column stage expands
        # KAPPA m-bit columns); below the threshold, run it all inline.
        pool = None

    r_packed = 0
    for j, c in enumerate(choices):
        r_packed |= (c & 1) << j

    # Receiver expands kappa column seeds; the sender obtains, via base OT
    # with its secret bits s_i, either t_i or t_i xor r per column.
    receiver_rng = rng.spawn()
    seeds = [receiver_rng.bytes(LABEL_BYTES) for _ in range(KAPPA)]
    column_jobs = [
        (seeds[lo:hi], m) for lo, hi in _block_ranges(KAPPA, pool)
    ]
    t_columns = _run_stage(pool, expand_column_block, column_jobs)
    nbytes = (m + 7) // 8
    column_pairs = [
        (t_i.to_bytes(nbytes, "little"), (t_i ^ r_packed).to_bytes(nbytes, "little"))
        for t_i in t_columns
    ]

    sender_rng = rng.spawn()
    s_bits = sender_rng.bits(KAPPA)
    base_sender = BaseOtSender(rng.spawn())  # played by extension receiver
    base_receiver = BaseOtReceiver(s_bits, rng.spawn())  # played by ext. sender
    points = base_receiver.points(base_sender.public)
    ciphertexts = base_sender.encrypt(points, column_pairs)
    q_column_bytes = base_receiver.decrypt(base_sender.public, ciphertexts)
    q_columns = [int.from_bytes(qb, "little") for qb in q_column_bytes]

    s_packed = 0
    for i, s in enumerate(s_bits):
        s_packed |= s << i

    # Sender masks each message pair with row hashes of Q.
    row_ranges = _block_ranges(m, pool)
    masked = _run_stage(
        pool,
        mask_row_block,
        [
            (
                message_pairs[lo:hi],
                _slice_columns(q_columns, lo, hi),
                s_packed,
                lo,
                msg_len,
            )
            for lo, hi in row_ranges
        ],
    )

    # Receiver unmasks its chosen message with row hashes of T.
    chosen = _run_stage(
        pool,
        unmask_row_block,
        [
            (
                masked[lo:hi],
                choices[lo:hi],
                _slice_columns(t_columns, lo, hi),
                lo,
                msg_len,
            )
            for lo, hi in row_ranges
        ],
    )

    return chosen, iknp_transcript(m, msg_len)


def iknp_transcript(n_ots: int, msg_len: int = LABEL_BYTES) -> ExtensionTranscript:
    """Byte volumes of one IKNP batch — the ONE definition of the formula.

    :func:`iknp_transfer` returns exactly this (the volumes are a pure
    function of the batch size), and every other accounting surface —
    the sessions' channel charges via :func:`iknp_wire_bytes`, the
    analytic predictor in :mod:`repro.core.validation` — derives from it,
    so the copies cannot drift apart.
    """
    nbytes = (n_ots + 7) // 8
    return ExtensionTranscript(
        base_ot_bytes=KAPPA * 2 * nbytes + KAPPA * 32 + 32,
        column_bytes=KAPPA * nbytes,
        ciphertext_bytes=2 * n_ots * msg_len,
    )


def iknp_wire_bytes(n_ots: int, msg_len: int = LABEL_BYTES) -> tuple[int, int]:
    """(chooser -> sender, sender -> chooser) bytes of one IKNP batch."""
    t = iknp_transcript(n_ots, msg_len)
    return t.column_bytes, t.base_ot_bytes + t.ciphertext_bytes


def ot_extension_online_bytes(n_ots: int, msg_len: int = LABEL_BYTES) -> int:
    """Online communication of an IKNP batch (columns + masked pairs)."""
    return KAPPA * ((n_ots + 7) // 8) + 2 * n_ots * msg_len


def base_ot_offline_bytes() -> int:
    """Offline communication of the kappa base OTs (group elements + pads)."""
    return 32 + KAPPA * 32 + 2 * KAPPA * LABEL_BYTES
