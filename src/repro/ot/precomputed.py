"""Beaver OT precomputation: random OTs offline, cheap corrections online.

The Client-Garbler protocol "engages in base OT offline so that in the
online phase the server can obtain its inputs using extended OT" (§5.1).
The standard mechanism is Beaver's OT precomputation: run OTs on *random*
messages and a *random* choice bit ahead of time; when the real inputs
arrive, the receiver sends one correction bit and the sender two masked
messages — no public-key work and a single round online.

Offline (per OT):  receiver holds (c, m_c) from a random OT.
Online:            receiver sends d = c XOR r (r = real choice);
                   sender sends (x0 XOR m_d, x1 XOR m_{1-d});
                   receiver unmasks entry r with m_c.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prg import LABEL_BYTES, xor_bytes
from repro.crypto.rng import SecureRandom
from repro.ot.extension import iknp_transfer


@dataclass
class PrecomputedSenderBatch:
    """Sender's state after the offline phase: both random pads per OT."""

    pads: list[tuple[bytes, bytes]]

    def __len__(self) -> int:
        return len(self.pads)

    def respond(
        self, corrections: list[int], message_pairs: list[tuple[bytes, bytes]]
    ) -> list[tuple[bytes, bytes]]:
        """Online: mask each real pair according to the correction bits."""
        if not len(corrections) == len(message_pairs) == len(self.pads):
            raise ValueError("batch size mismatch")
        out = []
        for d, (x0, x1), (m0, m1) in zip(corrections, message_pairs, self.pads):
            if d:
                out.append((xor_bytes(x0, m1), xor_bytes(x1, m0)))
            else:
                out.append((xor_bytes(x0, m0), xor_bytes(x1, m1)))
        return out


@dataclass
class PrecomputedReceiverBatch:
    """Receiver's state: random choice bits and the pads they selected."""

    random_choices: list[int]
    pads: list[bytes]

    def __len__(self) -> int:
        return len(self.pads)

    def corrections(self, real_choices: list[int]) -> list[int]:
        """Online round 1: one bit per OT."""
        if len(real_choices) != len(self.random_choices):
            raise ValueError("batch size mismatch")
        return [r ^ c for r, c in zip(real_choices, self.random_choices)]

    def recover(
        self,
        real_choices: list[int],
        masked_pairs: list[tuple[bytes, bytes]],
    ) -> list[bytes]:
        """Online round 2: unmask the chosen messages."""
        if len(masked_pairs) != len(self.pads):
            raise ValueError("batch size mismatch")
        out = []
        for r, pad, (y0, y1) in zip(real_choices, self.pads, masked_pairs):
            out.append(xor_bytes(y1 if r else y0, pad))
        return out


def precompute_ots(
    count: int, rng: SecureRandom | None = None
) -> tuple[PrecomputedSenderBatch, PrecomputedReceiverBatch]:
    """Offline phase: run ``count`` random OTs via the IKNP extension."""
    rng = rng or SecureRandom()
    pads = [
        (rng.bytes(LABEL_BYTES), rng.bytes(LABEL_BYTES)) for _ in range(count)
    ]
    choices = rng.bits(count)
    received, _ = iknp_transfer(pads, choices, rng.spawn())
    return (
        PrecomputedSenderBatch(pads=pads),
        PrecomputedReceiverBatch(random_choices=choices, pads=received),
    )


def online_ot_bytes(count: int, msg_len: int = LABEL_BYTES) -> int:
    """Online traffic: one correction bit up, two masked messages down."""
    return (count + 7) // 8 + 2 * count * msg_len
