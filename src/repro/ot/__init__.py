"""Oblivious transfer: Chou-Orlandi-style base OT and IKNP extension."""

from repro.ot.base import BaseOtReceiver, BaseOtSender, run_base_ot
from repro.ot.extension import (
    KAPPA,
    ExtensionTranscript,
    base_ot_offline_bytes,
    iknp_transfer,
    ot_extension_online_bytes,
)
from repro.ot.precomputed import (
    PrecomputedReceiverBatch,
    PrecomputedSenderBatch,
    online_ot_bytes,
    precompute_ots,
)

__all__ = [
    "KAPPA",
    "BaseOtReceiver",
    "BaseOtSender",
    "ExtensionTranscript",
    "PrecomputedReceiverBatch",
    "PrecomputedSenderBatch",
    "base_ot_offline_bytes",
    "iknp_transfer",
    "online_ot_bytes",
    "ot_extension_online_bytes",
    "precompute_ots",
    "run_base_ot",
]
