"""Base 1-out-of-2 oblivious transfer (simplified Chou-Orlandi).

Runs Diffie-Hellman style over the multiplicative group modulo the prime
2^255 - 19. The sender publishes A = g^a; the receiver with choice bit c
replies B = g^b (c = 0) or B = A * g^b (c = 1). The sender derives the two
pad keys H(B^a) and H((B/A)^a); the receiver can compute only H(A^b), the
key for its chosen message. Messages of arbitrary length are padded with a
PRG stretch of the derived key.
"""

from __future__ import annotations

from repro.crypto.modmath import mod_inverse
from repro.crypto.prg import Prg, key_derivation, xor_bytes
from repro.crypto.rng import SecureRandom

# 2^255 - 19 (prime); using its multiplicative group keeps exponentiations
# to a few hundred microseconds in pure Python.
GROUP_PRIME = (1 << 255) - 19
GENERATOR = 2


def _encode(element: int) -> bytes:
    return element.to_bytes(32, "little")


def _stretch(key: bytes, n: int) -> bytes:
    return Prg(key).read(n)


class BaseOtSender:
    """Sender of a batch of base OTs (holds message pairs)."""

    def __init__(self, rng: SecureRandom | None = None):
        self._rng = rng or SecureRandom()
        self._a = 2 + self._rng.field_element(GROUP_PRIME - 4)
        self.public = pow(GENERATOR, self._a, GROUP_PRIME)

    def encrypt(
        self, receiver_points: list[int], message_pairs: list[tuple[bytes, bytes]]
    ) -> list[tuple[bytes, bytes]]:
        """Produce the two pad-encrypted messages for each OT instance."""
        if len(receiver_points) != len(message_pairs):
            raise ValueError("one receiver point per message pair required")
        a_inv_public = mod_inverse(self.public, GROUP_PRIME)
        ciphertexts = []
        for index, (point, (m0, m1)) in enumerate(
            zip(receiver_points, message_pairs)
        ):
            k0 = key_derivation(
                _encode(pow(point, self._a, GROUP_PRIME)), index.to_bytes(4, "little")
            )
            shifted = point * a_inv_public % GROUP_PRIME
            k1 = key_derivation(
                _encode(pow(shifted, self._a, GROUP_PRIME)),
                index.to_bytes(4, "little"),
            )
            c0 = xor_bytes(m0, _stretch(k0, len(m0)))
            c1 = xor_bytes(m1, _stretch(k1, len(m1)))
            ciphertexts.append((c0, c1))
        return ciphertexts


class BaseOtReceiver:
    """Receiver of a batch of base OTs (holds choice bits)."""

    def __init__(self, choices: list[int], rng: SecureRandom | None = None):
        self._rng = rng or SecureRandom()
        self.choices = [c & 1 for c in choices]
        self._secrets = [
            2 + self._rng.field_element(GROUP_PRIME - 4) for _ in self.choices
        ]

    def points(self, sender_public: int) -> list[int]:
        """Blinded group elements to send to the sender."""
        pts = []
        for choice, b in zip(self.choices, self._secrets):
            point = pow(GENERATOR, b, GROUP_PRIME)
            if choice:
                point = point * sender_public % GROUP_PRIME
            pts.append(point)
        return pts

    def decrypt(
        self, sender_public: int, ciphertexts: list[tuple[bytes, bytes]]
    ) -> list[bytes]:
        """Recover the chosen message of each pair."""
        out = []
        for index, (choice, b, (c0, c1)) in enumerate(
            zip(self.choices, self._secrets, ciphertexts)
        ):
            key = key_derivation(
                _encode(pow(sender_public, b, GROUP_PRIME)),
                index.to_bytes(4, "little"),
            )
            chosen = c1 if choice else c0
            out.append(xor_bytes(chosen, _stretch(key, len(chosen))))
        return out


def run_base_ot(
    message_pairs: list[tuple[bytes, bytes]],
    choices: list[int],
    rng: SecureRandom | None = None,
    channel=None,
) -> list[bytes]:
    """Execute a full base-OT batch, optionally accounting bytes on a channel."""
    rng = rng or SecureRandom()
    sender = BaseOtSender(rng.spawn())
    receiver = BaseOtReceiver(choices, rng.spawn())
    points = receiver.points(sender.public)
    ciphertexts = sender.encrypt(points, message_pairs)
    if channel is not None:
        from repro.network.channel import CLIENT, SERVER

        channel.send(SERVER, _encode(sender.public))
        channel.recv(CLIENT)
        channel.send(CLIENT, [_encode(p) for p in points])
        channel.recv(SERVER)
        channel.send(SERVER, [c for pair in ciphertexts for c in pair])
        channel.recv(CLIENT)
    return receiver.decrypt(sender.public, ciphertexts)
