"""Pseudo-random generation and hashing primitives.

Garbled-circuit constructions are specified in terms of a fixed-key block
cipher used as a correlation-robust hash. We substitute SHA-256 in counter
mode: the security argument is the standard random-oracle one and the byte
layout (16-byte blocks, tweakable) matches what an AES-based implementation
would produce, so all size and count accounting is faithful.
"""

from __future__ import annotations

import hashlib
import struct

LABEL_BYTES = 16  # 128-bit wire labels, as in DELPHI / fancy-garbling.


def hash_label(label: bytes, tweak: int) -> bytes:
    """Correlation-robust hash H(label, tweak) -> 16 bytes.

    ``tweak`` is the gate index (point-and-permute position folded in by the
    caller); including it makes each gate's ciphertexts domain-separated.
    """
    digest = hashlib.sha256(label + struct.pack("<Q", tweak)).digest()
    return digest[:LABEL_BYTES]


def hash_pair(a: bytes, b: bytes, tweak: int) -> bytes:
    """Hash of two labels (classic two-input garbling hash)."""
    digest = hashlib.sha256(a + b + struct.pack("<Q", tweak)).digest()
    return digest[:LABEL_BYTES]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )


class Prg:
    """Deterministic expandable PRG (SHA-256 in counter mode).

    Used for OT-extension column expansion and anywhere the protocol calls
    for expanding a short seed into a long pseudo-random string.
    """

    def __init__(self, seed: bytes):
        if not seed:
            raise ValueError("PRG seed must be non-empty")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        """Return the next ``n`` pseudo-random bytes."""
        if n < 0:
            raise ValueError("cannot read a negative number of bytes")
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._seed + struct.pack("<Q", self._counter)
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def read_int(self, bits: int) -> int:
        """Return a pseudo-random integer with at most ``bits`` bits."""
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.read(nbytes), "little")
        return value & ((1 << bits) - 1)

    def read_bits(self, n: int) -> list[int]:
        """Return ``n`` pseudo-random bits as a list of 0/1 ints."""
        value = self.read_int(n)
        return [(value >> i) & 1 for i in range(n)]


def key_derivation(*parts: bytes) -> bytes:
    """Derive a 16-byte key from a transcript of byte strings (for OT)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(struct.pack("<I", len(part)))
        h.update(part)
    return h.digest()[:LABEL_BYTES]
