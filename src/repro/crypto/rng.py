"""Seedable randomness sources for protocol parties.

Every party in the two-party protocols owns a :class:`SecureRandom` so tests
can make entire protocol executions deterministic by fixing seeds while the
default construction remains unpredictable.
"""

from __future__ import annotations

import os
import random


class SecureRandom:
    """Random source with the handful of draws the protocols need."""

    def __init__(self, seed: int | bytes | None = None):
        if seed is None:
            seed = int.from_bytes(os.urandom(16), "little")
        self._rng = random.Random(seed)

    def field_element(self, modulus: int) -> int:
        """Uniform element of Z_modulus."""
        return self._rng.randrange(modulus)

    def field_vector(self, n: int, modulus: int) -> list[int]:
        """Vector of ``n`` uniform elements of Z_modulus."""
        return [self._rng.randrange(modulus) for _ in range(n)]

    def bit(self) -> int:
        return self._rng.getrandbits(1)

    def bits(self, n: int) -> list[int]:
        return [self._rng.getrandbits(1) for _ in range(n)]

    def bytes(self, n: int) -> bytes:
        return self._rng.getrandbits(n * 8).to_bytes(n, "little") if n else b""

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def ternary(self) -> int:
        """Uniform draw from {-1, 0, 1} (RLWE secret coefficient)."""
        return self._rng.randrange(3) - 1

    def centered_binomial(self, eta: int = 4) -> int:
        """Centered-binomial noise draw, the standard discrete-Gaussian stand-in."""
        return sum(self._rng.getrandbits(1) for _ in range(eta)) - sum(
            self._rng.getrandbits(1) for _ in range(eta)
        )

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival draw (Poisson process) with given mean."""
        return self._rng.expovariate(1.0 / mean)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high) (workload thinning / jitter draws)."""
        return self._rng.uniform(low, high)

    def spawn(self) -> "SecureRandom":
        """Independent child stream (for per-request generators)."""
        return SecureRandom(self._rng.getrandbits(128))
