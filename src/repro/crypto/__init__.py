"""Shared cryptographic utilities: modular math, PRG/hashing, randomness."""

from repro.crypto.modmath import (
    centered,
    find_ntt_prime,
    is_probable_prime,
    mod_inverse,
    primitive_root_of_unity,
)
from repro.crypto.prg import LABEL_BYTES, Prg, hash_label, hash_pair, xor_bytes
from repro.crypto.rng import SecureRandom

__all__ = [
    "LABEL_BYTES",
    "Prg",
    "SecureRandom",
    "centered",
    "find_ntt_prime",
    "hash_label",
    "hash_pair",
    "is_probable_prime",
    "mod_inverse",
    "primitive_root_of_unity",
    "xor_bytes",
]
