"""Modular arithmetic helpers used across the HE, SS, and OT substrates.

Scalar helpers operate on plain Python integers so that moduli larger than
64 bits (e.g. the ~41-bit DELPHI share prime or a 60-bit RLWE ciphertext
modulus) are handled exactly. The ``*_vec`` helpers and :func:`matvec_mod`
are list-in/list-out conveniences that dispatch to the active compute
backend (:mod:`repro.backend`), so callers get vectorized execution when
numpy is available without holding backend state themselves.
"""

from __future__ import annotations

import random
from typing import Sequence

_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24, probabilistic above."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def mod_inverse(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m`` (raises if not coprime)."""
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m}")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def find_prime_one_mod(bits: int, modulus: int) -> int:
    """Smallest prime with ``bits`` bits congruent to 1 mod ``modulus``."""
    candidate = (1 << (bits - 1)) + 1
    rem = (candidate - 1) % modulus
    if rem:
        candidate += modulus - rem
    while candidate < (1 << bits):
        if is_probable_prime(candidate):
            return candidate
        candidate += modulus
    raise ValueError(f"no {bits}-bit prime congruent to 1 mod {modulus}")


def find_ntt_prime(bits: int, n: int) -> int:
    """Smallest prime of ``bits`` bits congruent to 1 mod 2n (NTT friendly).

    Such primes admit a primitive 2n-th root of unity, which is what both the
    negacyclic NTT (ciphertext ring) and BFV batching (plaintext slots)
    require.
    """
    return find_prime_one_mod(bits, 2 * n)


def generate_ntt_primes(n: int, count: int, bits: int) -> tuple[int, ...]:
    """``count`` distinct primes ≡ 1 mod 2n just below 2^``bits``.

    Searching downward keeps every prime close to 2^bits, so the product of
    ``count`` primes has bit length count*bits — the shape an RNS (CRT)
    ciphertext-modulus chain wants: each residue fits the vectorized
    backend's exact reduction while the chain spans an arbitrary total
    width. Returned largest-first; deterministic for a given (n, count,
    bits), so parameter sets built from the chain are reproducible.
    """
    step = 2 * n
    candidate = (1 << bits) - 1
    candidate -= (candidate - 1) % step
    primes: list[int] = []
    while len(primes) < count and candidate > (1 << (bits - 1)):
        if is_probable_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ValueError(
            f"fewer than {count} NTT primes of {bits} bits for degree {n}"
        )
    return tuple(primes)


def crt_combine(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """The unique x mod prod(moduli) with x ≡ residues[i] mod moduli[i].

    Moduli must be pairwise coprime (distinct primes in the RNS use case).
    """
    total = 1
    for m in moduli:
        total *= m
    x = 0
    for r, m in zip(residues, moduli):
        big = total // m
        x += r * big * mod_inverse(big % m, m)
    return x % total


# Known factorizations of composite CRT moduli, registered when an RNS
# parameter set is built. Root finding consults this so the arbitrary-
# precision bigint path works on the same composite q the RNS chain
# represents (Z_q^* is not cyclic for composite q, so the prime-modulus
# exponent trick below cannot find roots there directly).
#
# Deliberately unbounded, unlike the NTT/RNS context caches: an entry is
# a handful of ints (~100 bytes), and evicting one would be a correctness
# hazard — a still-live parameter set whose factorization disappeared
# would send primitive_root_of_unity down the prime-modulus search, which
# does not terminate usefully for a wide composite.
_MODULUS_FACTORS: dict[int, tuple[int, ...]] = {}


def register_modulus_factors(modulus: int, factors: Sequence[int]) -> None:
    """Record that ``modulus`` is the product of the given distinct primes."""
    factors = tuple(sorted(int(f) for f in factors))
    product = 1
    for f in factors:
        product *= f
    if product != modulus:
        raise ValueError("factors do not multiply to the modulus")
    if len(set(factors)) != len(factors):
        raise ValueError("modulus factors must be distinct")
    _MODULUS_FACTORS[modulus] = factors


def registered_modulus_factors(modulus: int) -> tuple[int, ...] | None:
    return _MODULUS_FACTORS.get(modulus)


def primitive_root_of_unity(order: int, p: int) -> int:
    """A primitive ``order``-th root of unity modulo ``p``.

    For prime ``p``: raises candidates to the power (p-1)/order — the
    result always has order dividing ``order`` — and accepts the first
    whose order is exactly ``order``. Only ``order`` itself (small) is ever
    factored, so this stays fast for wide moduli where factoring p-1 would
    be intractable.

    For a composite ``p`` registered via :func:`register_modulus_factors`
    (an RNS chain product): CRT-combines per-prime primitive roots, giving
    an element that is a primitive ``order``-th root modulo every factor —
    exactly the principal root the NTT over Z_p needs.
    """
    if order == 1:
        return 1
    factors = _MODULUS_FACTORS.get(p)
    if factors is not None:
        return crt_combine(
            [primitive_root_of_unity(order, f) for f in factors], factors
        )
    if (p - 1) % order != 0:
        raise ValueError(f"{order} does not divide {p}-1")
    order_factors = _prime_factors(order)
    exponent = (p - 1) // order
    for candidate in range(2, p):
        root = pow(candidate, exponent, p)
        if root != 1 and all(
            pow(root, order // f, p) != 1 for f in order_factors
        ):
            return root
    raise ValueError(f"no primitive {order}-th root of unity modulo {p}")


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def random_prime(bits: int, rng: random.Random | None = None) -> int:
    """A random prime with exactly ``bits`` bits."""
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def centered(value: int, modulus: int) -> int:
    """Map ``value`` mod ``modulus`` into the centered range (-m/2, m/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


# -- vectorized helpers (backend-dispatched) -----------------------------------
#
# The backend import is deferred into each function: repro.backend imports
# this module for mod_inverse, so a top-level import would be circular.
# ``prefer`` overrides the active backend selection per call (how
# ``BfvParams.backend`` / ``HybridProtocol(backend=...)`` reach these).


def _backend(modulus: int, prefer: str | None = None):
    from repro.backend import backend_for

    return backend_for(modulus, prefer=prefer)


def mod_add_vec(
    a: Sequence[int], b: Sequence[int], modulus: int, prefer: str | None = None
) -> list[int]:
    """Elementwise (a + b) mod modulus."""
    be = _backend(modulus, prefer)
    return be.tolist(be.add(be.asvec(a, modulus), be.asvec(b, modulus), modulus))


def mod_sub_vec(
    a: Sequence[int], b: Sequence[int], modulus: int, prefer: str | None = None
) -> list[int]:
    """Elementwise (a - b) mod modulus."""
    be = _backend(modulus, prefer)
    return be.tolist(be.sub(be.asvec(a, modulus), be.asvec(b, modulus), modulus))


def mod_mul_vec(
    a: Sequence[int], b: Sequence[int], modulus: int, prefer: str | None = None
) -> list[int]:
    """Elementwise (a * b) mod modulus."""
    be = _backend(modulus, prefer)
    return be.tolist(be.mul(be.asvec(a, modulus), be.asvec(b, modulus), modulus))


def mod_pow_vec(
    bases: Sequence[int], exponent: int, modulus: int, prefer: str | None = None
) -> list[int]:
    """Elementwise pow(base, exponent, modulus) by square-and-multiply."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    be = _backend(modulus, prefer)
    base = be.asvec(bases, modulus)
    result = be.asvec([1] * be.veclen(base), modulus)
    while exponent:
        if exponent & 1:
            result = be.mul(result, base, modulus)
        exponent >>= 1
        if exponent:
            base = be.mul(base, base, modulus)
    return be.tolist(result)


def matvec_mod(
    matrix, vec: Sequence[int], modulus: int, prefer: str | None = None
) -> list[int]:
    """``matrix @ vec mod modulus`` on the resolved backend.

    ``matrix`` may be a list of rows or an ndarray; either representation
    is accepted by both backends so lowered networks survive a backend
    switch mid-session.
    """
    return _backend(modulus, prefer).matvec_mod(matrix, vec, modulus)
