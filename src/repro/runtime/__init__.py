"""Multi-core offline precompute runtime.

Executes the offline phase — ReLU garbling, IKNP OT extension stages,
Galois key products — across worker processes
(:class:`~repro.runtime.pool.PrecomputePool`) and persists the minted
precomputes in a disk-backed, LRU-evicted buffer
(:class:`~repro.runtime.store.PrecomputeStore`), mirroring the paper's
client-storage buffer that the streaming simulator models analytically.
:class:`~repro.runtime.serving.ServingLoop` closes the loop: N clients'
precomputes minted on one shared pool, admitted into per-client store
namespaces under a global byte budget, drained by interleaved online
requests (§5.2's multi-client serving, measured instead of modeled).
:class:`~repro.runtime.gateway.ServingGateway` is the concurrent
deployment shape: one selector thread multiplexing many live client
sockets while refill mints run in pool worker processes.

Transcript parity is the design invariant: a pooled offline phase is
byte-identical to the sequential one under the same seeds, because all
randomness is drawn by the parent in sequential order and jobs are pure
functions of pre-drawn material (see :mod:`repro.runtime.pool`).
"""

from repro.runtime.gateway import (
    GatewayClient,
    ServingGateway,
    request_inference,
    request_stats,
)
from repro.runtime.pool import (
    AsyncJob,
    PrecomputePool,
    plan_shards,
    resolve_workers,
)
from repro.runtime.serving import ServedRequest, ServingLoop, ServingReport
from repro.runtime.state import (
    derive_worker_seed,
    reset_process_state,
    worker_index,
    worker_rng,
)
from repro.runtime.store import PrecomputeStore, StoreKey, params_fingerprint

__all__ = [
    "AsyncJob",
    "GatewayClient",
    "PrecomputePool",
    "PrecomputeStore",
    "ServedRequest",
    "ServingGateway",
    "ServingLoop",
    "ServingReport",
    "StoreKey",
    "derive_worker_seed",
    "params_fingerprint",
    "plan_shards",
    "request_inference",
    "request_stats",
    "reset_process_state",
    "resolve_workers",
    "worker_index",
    "worker_rng",
]
