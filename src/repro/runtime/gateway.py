"""Concurrent serving gateway: many live sockets, background refill workers.

:class:`~repro.runtime.serving.ServingLoop`'s ``pipelined`` mode overlaps
refill mints with online serving only in *schedule shape* — one thread
steps everything, so wall-clock throughput never actually improves. This
module makes the overlap real, in the deployment shape the paper's
client/server characterization assumes:

* **Accept loop** — a :class:`ServingGateway` owns one selectors-based
  loop (single thread, many non-blocking
  :class:`~repro.network.transport.SocketTransport`\\ s) hosting one
  :class:`~repro.core.session.ServerSession` per connected client socket
  and multiplexing them at message granularity. The session/transport
  split (resumable ``step()`` state machines over length-prefixed frames)
  was built exactly for this; the gateway is the first thing to exploit
  it concurrently.
* **Background refill** — mints leave the serving thread entirely: a
  refill driver thread submits whole offline-mint jobs through
  :meth:`~repro.runtime.pool.PrecomputePool.apply_async`, so the
  SHA-256-bound garbling runs in pool worker *processes* while the
  selector thread serves online requests. On a multi-core host the
  online CPU work and the offline garbling genuinely overlap, and
  ``throughput_rps`` rises accordingly (the report's
  ``refill_overlap_seconds`` measures the overlap window).
* **Demand-driven prioritization** — refill order follows expected time
  to miss: per-client consumption counters estimate each client's drain
  rate, and the client whose buffer will run dry first is refilled first
  (GrASP's demand-driven prefetching, applied to the offline phase;
  skewed clients get proportionally more mint slots, JSPIM-style).

Wire protocol: a *connection* and a *request* are distinct objects. The
client sends one HELLO frame naming its ``client_id``, then issues any
number of REQ frames over the same socket; each admitted REQ is answered
with an OFFER — either a buffered precompute (the stored offline
transcript, split per role via
:func:`~repro.core.protocol.split_offline_state` on both ends) followed
directly by the online phase, or a miss, in which case both parties run
the full offline phase over the wire (the demand-mint penalty, paid on
the request's critical path and multiplexed with the other live
sessions) — and acknowledged with a DONE frame once the logits' final
share has shipped. Admission is queue-depth aware: when the refill
backlog (held WAIT_STORE offers + owed/in-flight refill mints) crosses
``max_queue``, a REQ is *deferred* with a BUSY{retry_after} frame the
client honors by backing off and re-issuing, or — past
``max_request_deferrals`` consecutive deferrals — *rejected* with a
GOAWAY frame that ends the connection. Either side may send GOAWAY to
close a connection gracefully. The server-side
:class:`~repro.core.session.ServerSession` is connection-scoped and
recycled between requests via ``reset_for_request()``; a ``GWS1`` stats
probe works both as a standalone connection and mid-stream between two
requests on a live one.

Fidelity note: on a hit the gateway ships the *whole* stored transcript
(both role halves) to the client, mirroring what
``HybridProtocol.import_offline`` does in-process. A hardened deployment
would mint and store the halves separately; this functional shortcut
demonstrates the system shape — storage drain, refill pipelines, socket
multiplexing — not a security property (see ARCHITECTURE.md).
"""

from __future__ import annotations

import json
import os
import random
import selectors
import struct
import threading
import time
import warnings
from collections import deque

from repro.network.transport import (
    SocketListener,
    SocketTransport,
    TransportClosed,
    TransportError,
)
from repro.runtime.state import derive_worker_seed
from repro.runtime.store import KIND_OFFLINE, StoreKey
from repro.telemetry import (
    METRICS,
    PHASES,
    TRACER,
    MetricsRegistry,
    now_us,
    section,
)

# -- wire frames -----------------------------------------------------------------
#
# Gateway control frames ride the same length-prefixed transport as the
# protocol messages; a 4-byte magic keeps them unmistakable for (and
# versioned independently of) the serialize.py payload formats.

_HELLO_MAGIC = b"GWH2"  # v2: connection-scoped — client_id only, no index
_LEGACY_HELLO_MAGIC = b"GWH1"  # v1 carried (client_id, request_index) per socket
_REQ_MAGIC = b"GWR1"
_OFFER_MAGIC = b"GWO1"
_DONE_MAGIC = b"GWD1"
_BUSY_MAGIC = b"GWB1"
_GOAWAY_MAGIC = b"GWG1"
_STATS_MAGIC = b"GWS1"


def encode_hello(client_id: str) -> bytes:
    """Client -> gateway, once per connection: who I am."""
    return _HELLO_MAGIC + client_id.encode()


def decode_hello(frame: bytes) -> str:
    if frame[:4] == _LEGACY_HELLO_MAGIC:
        raise TransportError(
            "peer sent a GWH1 single-request hello; this gateway speaks "
            "GWH2 keep-alive connections (one HELLO, then a REQ per request)"
        )
    if frame[:4] != _HELLO_MAGIC:
        raise TransportError("not a gateway hello frame")
    return bytes(frame[4:]).decode()


def encode_request(request_index: int) -> bytes:
    """Client -> gateway, once per request: which of my requests this is."""
    return _REQ_MAGIC + struct.pack("<I", request_index)


def decode_request(frame: bytes) -> int:
    if frame[:4] != _REQ_MAGIC:
        raise TransportError("not a gateway request frame")
    (request_index,) = struct.unpack_from("<I", frame, 4)
    return request_index


def encode_offer(hit: bool, blob: bytes = b"") -> bytes:
    """Gateway -> client: buffered precompute (hit) or run offline (miss)."""
    return _OFFER_MAGIC + struct.pack("<B", 1 if hit else 0) + blob


def decode_offer(frame: bytes) -> tuple[bool, bytes]:
    if frame[:4] != _OFFER_MAGIC:
        raise TransportError("not a gateway offer frame")
    return frame[4] == 1, bytes(frame[5:])


def encode_done(request_index: int, hit: bool) -> bytes:
    """Gateway -> client: the request's final share shipped; cycle over."""
    return _DONE_MAGIC + struct.pack("<IB", request_index, 1 if hit else 0)


def decode_done(frame: bytes) -> tuple[int, bool]:
    if frame[:4] != _DONE_MAGIC:
        raise TransportError("not a gateway done frame")
    request_index, hit = struct.unpack_from("<IB", frame, 4)
    return request_index, hit == 1


def encode_busy(retry_after: float) -> bytes:
    """Gateway -> client: request deferred; retry after this many seconds."""
    return _BUSY_MAGIC + struct.pack("<d", max(0.0, retry_after))


def decode_busy(frame: bytes) -> float:
    if frame[:4] != _BUSY_MAGIC:
        raise TransportError("not a gateway busy frame")
    (retry_after,) = struct.unpack_from("<d", frame, 4)
    return retry_after


def encode_goaway(reason: str = "") -> bytes:
    """Either direction: this connection is over (reject or graceful bye)."""
    return _GOAWAY_MAGIC + reason.encode()


def decode_goaway(frame: bytes) -> str:
    if frame[:4] != _GOAWAY_MAGIC:
        raise TransportError("not a gateway goaway frame")
    return bytes(frame[4:]).decode()


def encode_stats_request() -> bytes:
    """Client -> gateway: asks for a live stats snapshot (no session)."""
    return _STATS_MAGIC


def encode_stats_reply(stats: dict) -> bytes:
    return _STATS_MAGIC + json.dumps(stats, sort_keys=True).encode()


def decode_stats_reply(frame: bytes) -> dict:
    if frame[:4] != _STATS_MAGIC:
        raise TransportError("not a gateway stats frame")
    return json.loads(bytes(frame[4:]).decode())


# -- admission configuration -----------------------------------------------------

DEFAULT_WAIT_SECONDS = 60.0
DEFAULT_MAX_QUEUE = 8


def _resolve_env_number(name: str, explicit, default, cast):
    """Explicit > environment > default, mirroring ``resolve_workers``.

    An unparseable environment value warns (RuntimeWarning) and falls
    back to the default rather than crashing a serving run at startup.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return cast(raw)
        except ValueError:
            kind = "an integer" if cast is int else "a number"
            warnings.warn(
                f"ignoring unparseable {name}={raw!r} (expected {kind}); "
                "falling back to the default",
                RuntimeWarning,
                stacklevel=3,
            )
    return default


def resolve_wait_seconds(explicit: float | None = None) -> float:
    """How long a missed offer may hold for an in-flight refill mint.

    Explicit argument > ``REPRO_GATEWAY_WAIT_S`` > 60 seconds.
    """
    return _resolve_env_number(
        "REPRO_GATEWAY_WAIT_S", explicit, DEFAULT_WAIT_SECONDS, float
    )


def resolve_max_queue(explicit: int | None = None) -> int:
    """Refill-backlog threshold above which new requests get BUSY.

    Explicit argument > ``REPRO_GATEWAY_MAX_QUEUE`` > 8.
    """
    return _resolve_env_number(
        "REPRO_GATEWAY_MAX_QUEUE", explicit, DEFAULT_MAX_QUEUE, int
    )


MAX_RETRY_AFTER = 5.0


def adaptive_retry_after(
    backlog: int,
    max_queue: int,
    mean_mint_seconds: float,
    mint_parallelism: int,
    floor: float,
    cap: float = MAX_RETRY_AFTER,
) -> float:
    """How long a deferred client should wait before re-issuing its REQ.

    The backlog the admission check just measured drains at roughly
    ``mint_parallelism / mean_mint_seconds`` mints per second, so the
    *excess* over ``max_queue`` clears in about
    ``excess * mean_mint_seconds / mint_parallelism`` — that is when a
    retry has a real chance of being admitted. Telling the client
    anything shorter buys nothing but wasted BUSY round-trips; anything
    longer leaves admission slots idle. ``floor`` (the old fixed
    ``busy_retry_after``) is both the fallback before any mint has been
    timed and the lower clamp; ``cap`` bounds the hint when a burst
    piles the backlog sky-high.
    """
    if mean_mint_seconds <= 0.0:
        return floor  # no measured mints yet: the fixed constant stands
    excess = max(1, backlog - max_queue)
    drain = excess * mean_mint_seconds / max(1, mint_parallelism)
    return min(cap, max(floor, drain))


# -- refill jobs -----------------------------------------------------------------


def _mint_offline_job(args):
    """Pool job: run one whole offline phase, return its store blob.

    Unlike the latency-oriented path (one mint sharded across all
    workers), refill is throughput-oriented: each worker process runs a
    complete mint end to end, so W workers sustain W concurrent mints
    while the gateway's selector thread keeps serving. ``workers=1`` and
    ``transport="memory"`` are forced — pool workers are daemonic (no
    nested pools) and the mint is process-local; only its *product*
    crosses the wire later. The blob is byte-identical to a parent-side
    mint under the same seed (all protocol randomness is seed-derived).
    """
    network, params, garbler, seed, truncate_bits = args
    from repro.core.protocol import HybridProtocol

    protocol = HybridProtocol(
        network,
        params,
        garbler=garbler,
        seed=seed,
        truncate_bits=truncate_bits,
        workers=1,
        transport="memory",
    )
    try:
        protocol.run_offline()
        return protocol.offline_blob()
    finally:
        protocol.shutdown()


def pick_refill_client(
    credits: list[int], buffered: list[float], rates: list[float]
) -> int | None:
    """The refill policy: smallest expected time to miss wins.

    ``credits[c]`` counts refills owed to client c, ``buffered[c]`` its
    buffer depth (stored + in-flight mints), ``rates[c]`` its measured
    consumption rate. Expected time to miss is ``buffered / rate``; a
    client that has never consumed (rate 0) can't miss soon, so it ranks
    last among credited clients, tie-broken by shallowest buffer. Returns
    None when no client holds a credit.
    """
    best = None
    best_rank = None
    for c, credit in enumerate(credits):
        if credit <= 0:
            continue
        rate = rates[c]
        ettm = buffered[c] / rate if rate > 0 else float("inf")
        rank = (ettm, buffered[c], c)
        if best_rank is None or rank < best_rank:
            best, best_rank = c, rank
    return best


class _RefillWorker(threading.Thread):
    """Background driver keeping per-client store namespaces warm.

    Submits up to ``inflight_limit`` offline-mint jobs through the shared
    pool's async surface and admits completed blobs into the store. All
    mint-index reservation and credit accounting lives in the gateway
    (under its state lock); this thread only schedules and admits.
    """

    def __init__(self, gateway: "ServingGateway", inflight_limit: int):
        super().__init__(name="gateway-refill", daemon=True)
        self.gateway = gateway
        self.inflight_limit = max(1, inflight_limit)
        self.refill_seconds = 0.0  # sum of per-mint wall-clock
        self.overlap_seconds = 0.0  # union of windows with >= 1 mint in flight
        self.errors: list[tuple[int, Exception]] = []
        self._stop_evt = threading.Event()
        self._wake = threading.Event()

    def kick(self) -> None:
        self._wake.set()

    def stop(self) -> None:
        self._stop_evt.set()
        self._wake.set()

    def run(self) -> None:
        gateway = self.gateway
        inflight: dict = {}  # AsyncJob -> (client, mint index, submit time)
        overlap_start: float | None = None
        while True:
            while len(inflight) < self.inflight_limit and not self._stop_evt.is_set():
                reserved = gateway._next_refill_mint()
                if reserved is None:
                    break
                c, index, seed = reserved
                t0 = time.perf_counter()
                if overlap_start is None:
                    overlap_start = t0
                job = gateway.pool.apply_async(
                    _mint_offline_job,
                    (
                        gateway.network,
                        gateway.params,
                        gateway.garbler,
                        seed,
                        gateway.truncate_bits,
                    ),
                )
                inflight[job] = (c, index, t0)
            for job in [j for j in inflight if j.ready()]:
                c, index, t0 = inflight.pop(job)
                elapsed = time.perf_counter() - t0
                self.refill_seconds += elapsed
                gateway._note_mint_seconds(elapsed)
                try:
                    blob = job.get()
                    gateway._admit(c, index, blob)
                except Exception as exc:  # surfaced via gateway.check_refills()
                    gateway._mint_failed(c)
                    self.errors.append((c, exc))
            if not inflight and overlap_start is not None:
                self.overlap_seconds += time.perf_counter() - overlap_start
                overlap_start = None
            if self._stop_evt.is_set() and not inflight:
                return
            if inflight:
                time.sleep(0.005)
            else:
                self._wake.wait(timeout=0.05)
                self._wake.clear()


class _Connection:
    """One live client socket: a request queue plus the protocol machine.

    State walk: ``HELLO`` (awaiting the connection's identity) → ``IDLE``
    (between requests; REQ frames queue here) → one of ``WAIT_STORE`` /
    ``OFFLINE`` / ``ONLINE`` while a request is active → back to ``IDLE``
    after the DONE frame, until a GOAWAY (either direction) or a
    transport error ends the connection.
    """

    HELLO, IDLE, WAIT_STORE, OFFLINE, ONLINE = (
        "hello", "idle", "wait-store", "offline", "online",
    )

    def __init__(self, gateway: "ServingGateway", transport: SocketTransport):
        self.gateway = gateway
        self.transport = transport
        self.session = None
        self.state = self.HELLO
        self.client_id = "?"
        self.request_index = -1
        self.pending: deque[int] = deque()  # REQs queued behind the active one
        self.requests_completed = 0
        self.deferrals = 0  # consecutive BUSY replies on this connection
        self.queue_depth = 0
        self.hit = False
        self.mint_seconds = 0.0
        self.wait_deadline = 0.0
        self.request_started = 0.0
        self._mint_start = 0.0
        self._online_start = 0.0
        self.registered_events = selectors.EVENT_READ
        # Request-latency clock (always on: feeds the live stats
        # histograms) plus, under tracing, a per-connection virtual
        # track carrying the accept -> request* -> close spans.
        self.accepted = time.perf_counter()
        self._track: int | None = None
        self._t_accept_us: int | None = None
        self._t_request_us: int | None = None
        self._t_offline_us: int | None = None
        self._t_online_us: int | None = None
        if TRACER.enabled:
            self._track = TRACER.new_track("gateway-conn")
            self._t_accept_us = now_us()

    def on_event(self, mask: int) -> None:
        try:
            if mask & selectors.EVENT_WRITE:
                self.transport.flush()
            if mask & selectors.EVENT_READ:
                self.advance()
        except (TransportError, ValueError) as exc:
            # TransportClosed (client died mid-protocol), malformed
            # frames, stale transcripts: this session is unrecoverable,
            # the rest of the gateway must not notice.
            self.gateway._drop(self, error=exc)

    def advance(self) -> None:
        """Feed buffered frames through the state machine, never blocking."""
        from repro.core.session import DONE

        while True:
            if self.state == self.HELLO:
                frame = self.transport.recv(wait=False)
                if frame is None:
                    return
                if frame[:4] == _STATS_MAGIC:
                    # A monitoring peer, not a protocol client: answer
                    # with a live snapshot and close. No session is
                    # created and the session seed counter never
                    # advances, so stats probes cannot perturb a serving
                    # run's transcripts.
                    self.transport.send(
                        encode_stats_reply(self.gateway.stats())
                    )
                    self.gateway._drop(self, error=None)
                    return
                self.client_id = decode_hello(frame)
                self.gateway._register_hello(self)
                self.state = self.IDLE
                continue
            if self.state == self.IDLE:
                frame = self.transport.recv(wait=False)
                if frame is None:
                    if not self.gateway._maybe_start(self):
                        return
                    continue  # a queued request started: run its phase
                head = bytes(frame[:4])
                if head == _STATS_MAGIC:
                    # Mid-stream probe between two requests on a live
                    # keep-alive connection: answered inline, the
                    # connection (and its recycled session) lives on.
                    self.transport.send(
                        encode_stats_reply(self.gateway.stats())
                    )
                    continue
                if head == _GOAWAY_MAGIC:
                    # The client is done with this connection.
                    self.gateway._drop(self, error=None)
                    return
                self.pending.append(decode_request(frame))
                self.gateway.requests_issued += 1
                self.gateway._maybe_start(self)
                if self not in self.gateway._connections:
                    return  # rejected with GOAWAY mid-admission
                continue
            if self.state == self.WAIT_STORE:
                return
            if self.state == self.OFFLINE:
                with TRACER.span(
                    "gateway.step", client=self.client_id, state=self.state
                ):
                    done = self.session.step() == DONE
                if not done:
                    return
                self.mint_seconds = time.perf_counter() - self._mint_start
                if self._t_offline_us is not None:
                    TRACER.emit_since(
                        "gateway.offline", self._t_offline_us, tid=self._track,
                        client=self.client_id,
                    )
                    self._t_offline_us = None
                self.session.start_online(pool=self.gateway.pool)
                self._online_start = time.perf_counter()
                if TRACER.enabled and self._track is not None:
                    self._t_online_us = now_us()
                self.state = self.ONLINE
                continue
            if self.state == self.ONLINE:
                with TRACER.span(
                    "gateway.step", client=self.client_id, state=self.state
                ):
                    done = self.session.step() == DONE
                if not done:
                    return
                self.gateway._complete(
                    self, time.perf_counter() - self._online_start
                )
                if self not in self.gateway._connections:
                    return  # dropped during completion
                continue
            return  # pragma: no cover - unreachable state

    def begin_request(self, taken) -> None:
        """OFFER the admitted request: adopt a precompute or go offline.

        The connection's session is created on the first request and
        recycled (``reset_for_request``) for every later one — transport,
        channel accounting, and counters stay connection-scoped.
        """
        from repro.core.session import LIFE_NEW

        if self.session is None:
            self.session = self.gateway._make_session(self.transport)
        elif self.session.lifecycle != LIFE_NEW:
            self.session.reset_for_request()
        if taken is not None:
            blob, server_state = taken
            self.hit = True
            self.transport.send(encode_offer(True, blob))
            self.session.load_offline_state(*server_state)
            self.session.start_online(pool=self.gateway.pool)
            self._online_start = time.perf_counter()
            if TRACER.enabled and self._track is not None:
                self._t_online_us = now_us()
            self.state = self.ONLINE
        else:
            # Miss: the demand mint runs over the wire, on this request's
            # critical path, multiplexed with the other sessions — the
            # measured miss penalty.
            self.transport.send(encode_offer(False))
            self._mint_start = time.perf_counter()
            if TRACER.enabled and self._track is not None:
                self._t_offline_us = now_us()
            self.session.start_offline(pool=self.gateway.pool)
            self.state = self.OFFLINE


class ServingGateway:
    """A concurrent serving gateway over real sockets.

    One selector thread hosts every connected client's
    :class:`~repro.core.session.ServerSession`; one refill driver thread
    keeps per-client store namespaces warm through the pool's async
    surface. Lifecycle::

        gateway = ServingGateway(network, params, num_clients, store, pool=pool)
        gateway.start()              # prefill, bind listener, start refill
        ... clients connect to gateway.port (request_inference) ...
        gateway.serve(total)         # selector loop until `total` served
        gateway.stop()
        report = gateway.report()    # ServingReport with overlap accounting

    ``minted`` may alias a :class:`~repro.runtime.serving.ServingLoop`'s
    per-client mint counters so seeds continue its sequence (that is what
    makes gateway-served logits comparable against the loop's sequential
    reference). ``expected_per_client`` caps refills so a bounded run
    mints exactly as many precomputes as the serialized drain would.
    """

    def __init__(
        self,
        network,
        params,
        num_clients: int,
        store,
        pool=None,
        garbler: str = "client",
        prefill: int = 1,
        refill: bool = True,
        base_seed: int = 0,
        model_id: str = "serving",
        truncate_bits: int = 0,
        host: str = "127.0.0.1",
        expected_per_client: int | None = None,
        minted: list[int] | None = None,
        refill_inflight: int | None = None,
        miss_wait_seconds: float | None = None,
        max_queue: int | None = None,
        max_inflight_per_client: int = 1,
        max_request_deferrals: int | None = None,
        busy_retry_after: float = 0.05,
    ):
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.network = network
        self.params = params
        self.num_clients = num_clients
        self.store = store
        self.garbler = garbler
        self.prefill = prefill
        self.refill = refill
        self.base_seed = base_seed
        self.model_id = model_id
        self.truncate_bits = truncate_bits
        self.host = host
        # Refill cap: one scalar for uniform drains, or one cap per client
        # for skewed schedules whose clients carry unequal request counts.
        if isinstance(expected_per_client, (list, tuple)):
            if len(expected_per_client) != num_clients:
                raise ValueError(
                    "per-client refill caps must match num_clients"
                )
            expected_per_client = list(expected_per_client)
        self.expected_per_client = expected_per_client
        self.minted = minted if minted is not None else [0] * num_clients
        if len(self.minted) != num_clients:
            raise ValueError("minted counters must match num_clients")
        if pool is None:
            from repro.runtime.pool import PrecomputePool

            pool = self._own_pool = PrecomputePool()
        else:
            self._own_pool = None
        self.pool = pool
        self._refill_inflight = refill_inflight or pool.workers

        from repro.core.lowering import lower_network
        from repro.core.session import ServerSession

        # One weight-bearing lowering and one (public) circuit topology,
        # shared by every connection's session — per-request setup cost
        # stays at session construction, not network lowering.
        self.lowered = lower_network(
            network, params.t, backend=params.backend
        )
        self._session_cls = ServerSession
        template = ServerSession(
            network,
            params=params,
            garbler=garbler,
            seed=0,
            truncate_bits=truncate_bits,
            lowered=self.lowered,
        )
        self.params = template.params  # overrides resolved once
        self._circuit = template.relu_circuit()
        self._client_index = {self.client_id(c): c for c in range(num_clients)}

        self._state_lock = threading.Lock()
        self._credits = [0] * num_clients
        self._pending_mints = [0] * num_clients
        self._consumed = [0] * num_clients
        self._served: list = []
        self._occupancy: list[dict] = []
        self.dropped_sessions = 0
        self.peak_live_sessions = 0
        self.prefill_seconds = 0.0
        self.serve_seconds = 0.0
        self._serve_start: float | None = None
        self._session_counter = 0
        self._minted_before = sum(self.minted)
        self._evictions_before = store.evictions
        self._connections: set[_Connection] = set()
        self._waiting: set[_Connection] = set()
        # Admission knobs: explicit argument > environment > default.
        self.miss_wait_seconds = resolve_wait_seconds(miss_wait_seconds)
        self.max_queue = max(0, resolve_max_queue(max_queue))
        self.max_inflight_per_client = max(1, max_inflight_per_client)
        self.max_request_deferrals = max_request_deferrals
        self.busy_retry_after = busy_retry_after
        # Measured mint wall-clock (refill and demand mints alike) feeding
        # the adaptive BUSY retry hint; busy_retry_after stays the floor
        # and the fallback until the first mint completes.
        self._mint_time_total = 0.0
        self._mint_time_count = 0
        # Admission ledger: every REQ frame received is *issued* and gets
        # exactly one of OFFER (admitted), BUSY (deferred), or GOAWAY
        # (rejected) — clean runs balance admitted+deferred+rejected ==
        # issued. All four mutate only on the selector thread.
        self.connections_accepted = 0
        self.requests_issued = 0
        self.requests_admitted = 0
        self.requests_deferred = 0
        self.requests_rejected = 0
        self._inflight: dict[str, int] = {}  # active requests per client
        self.listener: SocketListener | None = None
        self._selector = None
        self._refill_worker: _RefillWorker | None = None
        # Request-granularity latency histograms for the live stats
        # surface. Always on — decoupled from the global telemetry flag,
        # so GWS1 stats work without --telemetry; observations happen
        # once per completed request, never on the per-message hot path.
        self._stats_registry = MetricsRegistry(enabled=True)
        # Exclusive-time decomposition accumulated across serve() windows.
        self._phase_totals: dict[str, float] = {}

    # -- identity (mirrors ServingLoop, so seeds and keys line up) ------------

    def client_id(self, index: int) -> str:
        return f"client{index}"

    def mint_seed(self, client_index: int, mint_index: int) -> int:
        client_stream = derive_worker_seed(self.base_seed, client_index)
        return derive_worker_seed(client_stream, mint_index)

    def store_key(self, client_id: str) -> StoreKey:
        return StoreKey.for_protocol(self.model_id, self.params, client_id)

    @property
    def port(self) -> int:
        if self.listener is None:
            raise RuntimeError("gateway not started")
        return self.listener.port

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Prefill buffers, bind the listener, start the refill worker."""
        with TRACER.timed_span("gateway.prefill", prefill=self.prefill) as tspan:
            self._prefill()
        self.prefill_seconds = tspan.seconds

        self.listener = SocketListener(
            host=self.host, backlog=max(8, 2 * self.num_clients)
        )
        self._selector = selectors.DefaultSelector()
        self._selector.register(self.listener, selectors.EVENT_READ, None)
        self._refill_worker = _RefillWorker(self, self._refill_inflight)
        self._refill_worker.start()

    def _prefill(self) -> None:
        jobs = []
        for _ in range(self.prefill):
            for c in range(self.num_clients):
                index = self._reserve_mint(c)
                jobs.append(
                    (
                        c,
                        index,
                        self.pool.apply_async(
                            _mint_offline_job,
                            (
                                self.network,
                                self.params,
                                self.garbler,
                                self.mint_seed(c, index),
                                self.truncate_bits,
                            ),
                        ),
                    )
                )
        # Admit in submission order: round-robin, so budget pressure hits
        # all clients evenly — same admission order as the serial loop.
        for c, index, job in jobs:
            self._admit(c, index, job.get())

    def poll(self, timeout: float = 0.05) -> None:
        """One selector round: accept, step ready sessions, flush outboxes."""
        if self._selector is None:
            raise RuntimeError("gateway not started")
        # Selector waits are the "queue" bucket of the decomposition
        # (no-op unless serve() opened a window on this thread).
        with PHASES.phase("queue"):
            events = self._selector.select(timeout=timeout)
        for key, mask in events:
            if key.data is None:
                self._accept_pending()
            else:
                key.data.on_event(mask)
        # Retry held offers: a refill may have landed since last round.
        for conn in list(self._waiting):
            taken = self._take_precompute(conn.client_id)
            if taken is None and self._mint_pending(conn.client_id) and (
                time.perf_counter() < conn.wait_deadline
            ):
                continue  # still worth holding for the in-flight mint
            self._waiting.discard(conn)
            try:
                conn.begin_request(taken)
                conn.advance()
            except (TransportError, ValueError) as exc:
                self._drop(conn, error=exc)
        # Idle keep-alive connections with queued requests: a completed
        # request or a drained backlog since last round may have made
        # them admissible.
        for conn in list(self._connections):
            if conn.state == _Connection.IDLE and conn.pending:
                try:
                    conn.advance()
                except (TransportError, ValueError) as exc:
                    self._drop(conn, error=exc)
        # Register write interest exactly while userspace outbox bytes
        # wait on kernel buffer space; drop it as soon as they drain.
        for conn in list(self._connections):
            events = selectors.EVENT_READ
            if conn.transport.needs_flush:
                events |= selectors.EVENT_WRITE
            if events != conn.registered_events:
                try:
                    self._selector.modify(conn.transport, events, conn)
                    conn.registered_events = events
                except (KeyError, ValueError):  # pragma: no cover - racing drop
                    pass

    def serve(self, total_requests: int, timeout: float | None = 300.0,
              abort=None) -> float:
        """Run the selector loop until ``total_requests`` complete.

        Returns (and records) the drain-window wall clock —
        ``throughput_rps``'s denominator, directly comparable with the
        serialized loop's. ``abort`` is polled each round; returning True
        ends the loop early (a driver thread hit an error).
        """
        if self._serve_start is None:
            self._serve_start = time.perf_counter()
        # The window brackets exactly this drain loop, so its exclusive
        # buckets decompose serve_seconds (they sum to the window's
        # wall-clock by construction).
        window = PHASES.open_window(root="wire") if TRACER.enabled else None
        try:
            deadline = None if timeout is None else time.monotonic() + timeout
            while len(self._served) < total_requests:
                if abort is not None and abort():
                    break
                self.poll(0.05)
                if deadline is not None and time.monotonic() > deadline:
                    raise TransportError(
                        f"gateway timed out with {len(self._served)}/"
                        f"{total_requests} requests served"
                    )
            self.serve_seconds = time.perf_counter() - self._serve_start
        finally:
            if window is not None:
                for name, seconds in window.close().items():
                    self._phase_totals[name] = (
                        self._phase_totals.get(name, 0.0) + seconds
                    )
        return self.serve_seconds

    def drain_refills(self, timeout: float = 60.0) -> None:
        """Wait for owed refill mints to finish (bounded)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._state_lock:
                idle = not any(self._credits) and not any(self._pending_mints)
            if idle:
                return
            time.sleep(0.01)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Tear down: refill worker, live connections, listener, own pool."""
        if self._refill_worker is not None:
            if drain:
                self.drain_refills(timeout)
            self._refill_worker.stop()
            self._refill_worker.join(timeout=timeout)
        for conn in list(self._connections):
            # Tell live keep-alive peers the gateway is going away; the
            # bounded close-flush makes a best effort to deliver it.
            try:
                conn.transport.send(encode_goaway("gateway shutting down"))
            except TransportError:  # pragma: no cover - peer already gone
                pass
            self._drop(conn, error=None)
        if self._selector is not None:
            try:
                self._selector.unregister(self.listener)
            except (KeyError, ValueError):  # pragma: no cover - already gone
                pass
            self._selector.close()
            self._selector = None
        if self.listener is not None:
            self.listener.close()
        if self._own_pool is not None:
            self._own_pool.close()

    def check_refills(self) -> None:
        """Raise if any background mint failed (call after serve())."""
        worker = self._refill_worker
        if worker is not None and worker.errors:
            c, exc = worker.errors[0]
            raise RuntimeError(
                f"{len(worker.errors)} background refill mint(s) failed; "
                f"first: client{c}: {exc!r}"
            ) from exc

    # -- report ---------------------------------------------------------------

    def report(self):
        """ServingReport over everything served since start()."""
        from repro.runtime.serving import ServingReport

        worker = self._refill_worker
        return ServingReport(
            num_clients=self.num_clients,
            requests=list(self._served),
            minted=sum(self.minted) - self._minted_before,
            demand_mints=sum(1 for r in self._served if not r.hit),
            evictions=self.store.evictions - self._evictions_before,
            prefill_seconds=self.prefill_seconds,
            refill_seconds=worker.refill_seconds if worker else 0.0,
            serve_seconds=self.serve_seconds,
            pipelined=False,
            concurrent=True,
            refill_overlap_seconds=worker.overlap_seconds if worker else 0.0,
            peak_live_sessions=self.peak_live_sessions,
            dropped_sessions=self.dropped_sessions,
            connections_accepted=self.connections_accepted,
            requests_issued=self.requests_issued,
            requests_admitted=self.requests_admitted,
            requests_deferred=self.requests_deferred,
            requests_rejected=self.requests_rejected,
            occupancy=list(self._occupancy),
            phase_seconds={
                k: round(v, 6) for k, v in self._phase_totals.items()
            },
            gateway_stats=self.stats(),
        )

    def stats(self) -> dict:
        """Live JSON-safe stats snapshot (any thread, including wire op).

        Built entirely from the always-on ``_stats_registry`` plus state
        guarded by ``_state_lock``, so a ``GWS1`` probe mid-serve sees a
        coherent picture without perturbing session transcripts.
        """
        served = list(self._served)
        connections = list(self._connections)
        with self._state_lock:
            rates, buffered = self._rates_and_buffered_locked()
            pending = list(self._pending_mints)
            credits = list(self._credits)
            backlog = self._backlog_locked()
            retry_after = self._retry_after_locked()
            mean_mint = (
                self._mint_time_total / self._mint_time_count
                if self._mint_time_count
                else 0.0
            )
            inflight = sum(self._inflight.values())
            # Sessions, not sockets: a stats probe (or a pre-hello
            # connection) holds no session and must not count itself.
            live = sum(1 for conn in connections if conn.session is not None)
        clients = {}
        for c in range(self.num_clients):
            cid = self.client_id(c)
            hist = self._stats_registry.histogram(
                "gateway_request_seconds", client=cid
            )
            rate = rates[c]
            clients[cid] = {
                "requests": hist.count,
                "latency_p50": round(hist.quantile(0.50), 6),
                "latency_p95": round(hist.quantile(0.95), 6),
                "latency_p99": round(hist.quantile(0.99), 6),
                "rate_rps": round(rate, 6),
                "buffered": buffered[c],
                "pending_mints": pending[c],
                "refill_credits": credits[c],
                # How long until this client's buffer runs dry at its
                # observed request rate — None while the rate is still 0.
                "expected_time_to_miss": (
                    round(buffered[c] / rate, 6) if rate > 0 else None
                ),
            }
        hits = sum(1 for r in served if r.hit)
        return {
            "served": len(served),
            "hit_rate": round(hits / len(served), 6) if served else 0.0,
            "live_sessions": live,
            "peak_live_sessions": self.peak_live_sessions,
            "dropped_sessions": self.dropped_sessions,
            # Requests in flight plus REQs queued behind per-client limits.
            "queue_depth": inflight + sum(
                len(conn.pending) for conn in connections
            ),
            "refill_inflight": sum(pending),
            "admission": {
                "max_queue": self.max_queue,
                "backlog": backlog,
                # What the *next* deferred request would be told to wait,
                # and the measured mean mint time behind it.
                "retry_after": round(retry_after, 6),
                "mean_mint_seconds": round(mean_mint, 6),
                "connections_accepted": self.connections_accepted,
                "issued": self.requests_issued,
                "admitted": self.requests_admitted,
                "deferred": self.requests_deferred,
                "rejected": self.requests_rejected,
            },
            "connections": [
                {
                    "client": conn.client_id,
                    "state": conn.state,
                    "requests_completed": conn.requests_completed,
                    "queued": len(conn.pending),
                }
                for conn in connections
                if conn.session is not None or conn.state != conn.HELLO
            ],
            "store": {
                "bytes": self.store.total_bytes,
                "entries": self.store.entry_count,
                "evictions": self.store.evictions - self._evictions_before,
            },
            "clients": clients,
        }

    # -- selector-side internals ----------------------------------------------

    def _accept_pending(self) -> None:
        while True:
            transport = self.listener.poll_accept()
            if transport is None:
                return
            conn = _Connection(self, transport)
            self._connections.add(conn)
            self.peak_live_sessions = max(
                self.peak_live_sessions, len(self._connections)
            )
            self._selector.register(transport, selectors.EVENT_READ, conn)

    def _live_count(self) -> int:
        return len(self._connections)

    def _register_hello(self, conn: _Connection) -> None:
        """A protocol client introduced itself (stats probes never land here)."""
        self.connections_accepted += 1

    def _backlog_locked(self) -> int:
        """The admission pressure signal (state lock held).

        Held WAIT_STORE offers plus refill work still owed or in flight:
        when this crosses ``max_queue`` the refill pipeline is behind and
        new requests are deferred rather than silently piling on.
        """
        return (
            len(self._waiting)
            + sum(self._credits)
            + sum(self._pending_mints)
        )

    def _note_outcome(self, client_id: str, outcome: str) -> None:
        """Admission outcome counters (always-on stats + opt-in telemetry)."""
        self._stats_registry.counter(
            "gateway_requests_total", client=client_id, outcome=outcome
        ).inc()
        if METRICS.enabled:
            METRICS.counter(
                "gateway_requests_total", client=client_id, outcome=outcome
            ).inc()

    def _maybe_start(self, conn: _Connection) -> bool:
        """Start the next queued request on an idle connection, if allowed.

        Returns True when the connection left IDLE (a request was
        admitted and is now running). Deferral (BUSY) and rejection
        (GOAWAY) pop the request but leave/close the connection in place
        — the peer decides what happens next — so both return False.
        """
        if conn.state != conn.IDLE or not conn.pending:
            return False
        with self._state_lock:
            if self._inflight.get(conn.client_id, 0) >= self.max_inflight_per_client:
                return False  # stays queued; a completion re-triggers us
            over = self._backlog_locked() > self.max_queue
            retry_after = self._retry_after_locked() if over else 0.0
            inflight_total = sum(self._inflight.values())
            if not over:
                self._inflight[conn.client_id] = (
                    self._inflight.get(conn.client_id, 0) + 1
                )
        index = conn.pending.popleft()
        if over:
            conn.deferrals += 1
            if (
                self.max_request_deferrals is not None
                and conn.deferrals > self.max_request_deferrals
            ):
                self.requests_rejected += 1
                self._note_outcome(conn.client_id, "rejected")
                try:
                    conn.transport.send(
                        encode_goaway("admission backlog over max_queue")
                    )
                except TransportError:  # pragma: no cover - peer gone
                    pass
                self._drop(conn, error=None)
                return False
            self.requests_deferred += 1
            self._note_outcome(conn.client_id, "deferred")
            conn.transport.send(encode_busy(retry_after))
            return False
        conn.deferrals = 0
        conn.request_index = index
        conn.hit = False
        conn.mint_seconds = 0.0
        conn.request_started = time.perf_counter()
        if TRACER.enabled and conn._track is not None:
            conn._t_request_us = now_us()
        # Requests already active when this one started (WAIT_STORE
        # holders included — they hold an in-flight slot).
        conn.queue_depth = inflight_total
        self.requests_admitted += 1
        self._note_outcome(conn.client_id, "admitted")
        taken = self._take_precompute(conn.client_id)
        if taken is None and self._mint_pending(conn.client_id):
            # A refill for this client is already underway: hold the
            # offer instead of duplicating the whole offline phase over
            # the wire. poll() retries us each round; other sessions
            # keep flowing meanwhile.
            conn.state = conn.WAIT_STORE
            conn.wait_deadline = time.perf_counter() + self.miss_wait_seconds
            self._waiting.add(conn)
            return True
        conn.begin_request(taken)
        return True

    def _make_session(self, transport):
        seed = derive_worker_seed(
            self.base_seed + 0x5EED, self._session_counter
        )
        self._session_counter += 1
        return self._session_cls(
            self.network,
            params=self.params,
            garbler=self.garbler,
            seed=seed,
            truncate_bits=self.truncate_bits,
            transport=transport,
            lowered=self.lowered,
            pool=self.pool,
        )

    def _take_precompute(self, client_id: str):
        """Consume the oldest buffered precompute: (blob, server half) or None.

        Validation precedes the delete (same contract as
        ``import_offline``): a transcript that does not match this
        network stays buffered and the connection is dropped instead.
        """
        from repro.core.protocol import split_offline_state

        # Charged wholesale to the "store" bucket: the split is part of
        # the price of serving from storage (nested store.get/delete
        # sections are fine — exclusive accounting handles re-entry).
        with section("store", "gateway.take_precompute", client=client_id):
            key = self.store_key(client_id)
            name = next(iter(self.store.names(key, KIND_OFFLINE)), None)
            blob = self.store.get(key, KIND_OFFLINE, name) if name else None
            if blob is None:
                return None
            _, server_state = split_offline_state(
                blob, self.lowered, self._circuit, self.garbler,
                self.truncate_bits,
            )
            self.store.delete(key, KIND_OFFLINE, name)
            return blob, server_state

    def _complete(self, conn: _Connection, online_seconds: float) -> None:
        from repro.runtime.serving import ServedRequest

        if not conn.hit and conn.mint_seconds > 0.0:
            # Demand mints count toward the retry estimator too: under
            # sustained misses they are the honest drain rate.
            self._note_mint_seconds(conn.mint_seconds)
        latency = time.perf_counter() - conn.request_started
        self._stats_registry.histogram(
            "gateway_request_seconds", client=conn.client_id
        ).observe(latency)
        self._stats_registry.counter(
            "gateway_served_total",
            client=conn.client_id,
            result="hit" if conn.hit else "miss",
        ).inc()
        if METRICS.enabled:
            METRICS.histogram(
                "gateway_request_seconds", client=conn.client_id
            ).observe(latency)
            METRICS.counter(
                "gateway_served_total",
                client=conn.client_id,
                result="hit" if conn.hit else "miss",
            ).inc()
        if conn._t_online_us is not None:
            TRACER.emit_since(
                "gateway.online", conn._t_online_us, tid=conn._track,
                client=conn.client_id,
            )
            conn._t_online_us = None
        if conn._t_request_us is not None:
            TRACER.emit_since(
                "gateway.request", conn._t_request_us, tid=conn._track,
                client=conn.client_id, index=conn.request_index, hit=conn.hit,
            )
            conn._t_request_us = None
        self._served.append(
            ServedRequest(
                client=conn.client_id,
                index=conn.request_index,
                hit=conn.hit,
                queue_depth=conn.queue_depth,
                mint_seconds=conn.mint_seconds,
                online_seconds=online_seconds,
                store_bytes=self.store.total_bytes,
                logits=[],  # logits materialize client-side; drivers merge them
            )
        )
        self._sample("serve", conn.client_id)
        conn.transport.send(encode_done(conn.request_index, conn.hit))
        c = self._client_index.get(conn.client_id)
        with self._state_lock:
            self._inflight[conn.client_id] = max(
                0, self._inflight.get(conn.client_id, 0) - 1
            )
            if c is not None:
                self._consumed[c] += 1
                if self.refill and self._may_mint_locked(c):
                    self._credits[c] += 1
        if c is not None and self._refill_worker is not None:
            self._refill_worker.kick()
        # Keep-alive: the connection survives the request. Recycle the
        # session (connection-scoped state stays) and go back to IDLE so
        # queued or future REQs on this socket can be admitted.
        conn.session.reset_for_request()
        conn.state = conn.IDLE
        conn.requests_completed += 1
        conn.hit = False
        conn.mint_seconds = 0.0

    def _mint_pending(self, client_id: str) -> bool:
        """Is a refill for this client credited or already in flight?"""
        c = self._client_index.get(client_id)
        if c is None or not self.refill:
            return False
        with self._state_lock:
            return self._credits[c] > 0 or self._pending_mints[c] > 0

    def _drop(self, conn: _Connection, error) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        self._waiting.discard(conn)
        had_active_request = conn.state in (
            conn.WAIT_STORE, conn.OFFLINE, conn.ONLINE
        )
        if had_active_request:
            # The admitted request dies with the connection: release its
            # in-flight slot so the client's later connections still fit
            # under the per-client concurrency limit.
            with self._state_lock:
                self._inflight[conn.client_id] = max(
                    0, self._inflight.get(conn.client_id, 0) - 1
                )
        try:
            self._selector.unregister(conn.transport)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            conn.transport.close()
        except TransportError:  # pragma: no cover - peer already gone
            pass
        # Only connections that completed HELLO get a span: a GWS1 stats
        # probe (or a peer that vanished pre-hello) holds no identity and
        # must not clutter the trace with anonymous connection windows.
        if conn._t_accept_us is not None and conn.state != conn.HELLO:
            TRACER.emit_since(
                "gateway.connection", conn._t_accept_us, tid=conn._track,
                client=conn.client_id,
                requests=conn.requests_completed,
                error=repr(error) if error is not None else None,
            )
            conn._t_accept_us = None
        if error is not None and had_active_request:
            self.dropped_sessions += 1

    def _sample(self, event: str, client_id: str) -> None:
        self._occupancy.append(
            {
                "event": event,
                "client": client_id,
                "bytes": self.store.total_bytes,
                "entries": self.store.entry_count,
            }
        )

    # -- refill-side internals ------------------------------------------------

    def _may_mint_locked(self, c: int) -> bool:
        if self.expected_per_client is None:
            return True
        cap = self.expected_per_client
        if isinstance(cap, list):
            cap = cap[c]
        return self.minted[c] < cap

    def _note_mint_seconds(self, seconds: float) -> None:
        """Fold one completed mint's wall-clock into the retry estimator."""
        with self._state_lock:
            self._mint_time_total += seconds
            self._mint_time_count += 1

    def _retry_after_locked(self) -> float:
        """The adaptive BUSY hint for the backlog just measured."""
        mean = (
            self._mint_time_total / self._mint_time_count
            if self._mint_time_count
            else 0.0
        )
        return adaptive_retry_after(
            self._backlog_locked(),
            self.max_queue,
            mean,
            self._refill_inflight,
            self.busy_retry_after,
        )

    def _reserve_mint(self, c: int) -> int:
        with self._state_lock:
            index = self.minted[c]
            self.minted[c] += 1
            self._pending_mints[c] += 1
            return index

    def _rates_and_buffered_locked(self) -> tuple[list[float], list[int]]:
        """Per-client consumption rates and buffer depths (state lock held).

        Rates are measured over the serve window so far; depth counts
        stored precomputes plus mints already in flight. Shared by the
        refill policy and the live stats snapshot, so ``stats()`` reports
        exactly the numbers ``pick_refill_client`` decides on.
        """
        now = time.perf_counter()
        elapsed = max(now - (self._serve_start or now), 1e-9)
        rates = [self._consumed[c] / elapsed for c in range(self.num_clients)]
        buffered = [
            len(self.store.names(self.store_key(self.client_id(c)), KIND_OFFLINE))
            + self._pending_mints[c]
            for c in range(self.num_clients)
        ]
        return rates, buffered

    def _next_refill_mint(self):
        """Claim the most urgent owed refill: (client, mint index, seed)."""
        with self._state_lock:
            if not any(self._credits):
                return None
            rates, buffered = self._rates_and_buffered_locked()
            c = pick_refill_client(self._credits, buffered, rates)
            if c is None:
                return None
            self._credits[c] -= 1
            index = self.minted[c]
            self.minted[c] += 1
            self._pending_mints[c] += 1
        return c, index, self.mint_seed(c, index)

    def _admit(self, c: int, index: int, blob: bytes) -> None:
        """Admit one minted blob into the client's namespace (any thread)."""
        try:
            self.store.put(
                self.store_key(self.client_id(c)),
                KIND_OFFLINE,
                blob,
                name=f"{index:08d}",
            )
        finally:
            with self._state_lock:
                self._pending_mints[c] = max(0, self._pending_mints[c] - 1)
        self._sample("mint", self.client_id(c))

    def _mint_failed(self, c: int) -> None:
        with self._state_lock:
            self._pending_mints[c] = max(0, self._pending_mints[c] - 1)


# -- client side -----------------------------------------------------------------


class GatewayClient:
    """Keep-alive client: one connection, any number of requests.

    Wire lifecycle: HELLO once at connect, then per request
    ``REQ → (BUSY backoff → REQ)* → OFFER → protocol → DONE``; GOAWAY
    (either direction) ends the connection. The underlying
    :class:`~repro.core.session.ClientSession` is connection-scoped and
    recycled between requests via ``reset_for_request()``, so transport,
    channel accounting, counters, and the shape-only lowering are all
    amortized across requests. The ``issued``/``admitted``/``deferred``/
    ``rejected`` attributes mirror the gateway's admission ledger from
    this side of the wire.
    """

    def __init__(
        self,
        host: str,
        port: int,
        network,
        params,
        *,
        garbler: str = "client",
        client_id: str = "client0",
        seed: int | None = None,
        truncate_bits: int = 0,
        lowered=None,
        retries: int = 40,
        max_busy_retries: int = 1000,
    ):
        from repro.core.session import ClientSession

        self.client_id = client_id
        self.garbler = garbler
        self.truncate_bits = truncate_bits
        self.max_busy_retries = max_busy_retries
        self.issued = 0
        self.admitted = 0
        self.deferred = 0
        self.rejected = 0
        self.retry_sleep_seconds = 0.0  # total time spent in BUSY backoff
        self._next_index = 0
        self._closed = False
        # Backoff jitter stream: seeded clients get deterministic sleeps
        # (protocol randomness is untouched — logits never depend on it).
        self._backoff_rng = random.Random(seed)
        self._backoff_cap = 2 * MAX_RETRY_AFTER
        self.transport = SocketTransport.connect(host, port, retries=retries)
        self.session = ClientSession(
            network,
            params=params,
            garbler=garbler,
            seed=seed,
            truncate_bits=truncate_bits,
            transport=self.transport,
            lowered=lowered,
        )
        self.transport.send(encode_hello(client_id))

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, x: list[int], request_index: int | None = None) -> list[int]:
        """One inference over the live connection; returns the logits.

        Issues a REQ (honoring BUSY backoff with the server-suggested
        retry-after), adopts the offered precompute half on a hit or runs
        the full offline phase over the wire on a miss, drives the online
        phase, and consumes the DONE acknowledgement.
        """
        from repro.core.protocol import split_offline_state
        from repro.core.session import LIFE_NEW

        if request_index is None:
            request_index = self._next_index
        self._next_index = request_index + 1
        deferrals = 0
        backoff = 0.0
        while True:
            self.transport.send(encode_request(request_index))
            self.issued += 1
            frame = self.transport.recv(wait=True)
            head = bytes(frame[:4])
            if head == _BUSY_MAGIC:
                self.deferred += 1
                deferrals += 1
                if deferrals > self.max_busy_retries:
                    raise TransportError(
                        f"request {request_index} deferred {deferrals} "
                        "times; giving up"
                    )
                # Decorrelated jitter seeded by the server's hint: the
                # first retry sleeps exactly retry_after (the server's
                # best estimate of when the backlog clears); repeat
                # deferrals spread out uniformly in [hint, 3 * previous]
                # so a crowd of deferred clients doesn't re-stampede the
                # gateway on one synchronized beat.
                hint = max(0.0, decode_busy(frame))
                backoff = min(
                    self._backoff_cap,
                    self._backoff_rng.uniform(hint, max(hint, 3.0 * backoff)),
                )
                self.retry_sleep_seconds += backoff
                time.sleep(backoff)
                continue
            if head == _GOAWAY_MAGIC:
                self.rejected += 1
                self._closed = True
                reason = decode_goaway(frame) or "no reason given"
                raise TransportError(
                    f"gateway rejected request {request_index}: {reason}"
                )
            hit, blob = decode_offer(frame)
            break
        self.admitted += 1
        session = self.session
        if session.lifecycle != LIFE_NEW:
            session.reset_for_request()
        if hit:
            client_state, _ = split_offline_state(
                blob,
                session.lowered,
                session.relu_circuit(),
                self.garbler,
                self.truncate_bits,
            )
            session.load_offline_state(*client_state)
        else:
            session.run_offline()
        logits = session.run_online(x)
        done_index, _ = decode_done(self.transport.recv(wait=True))
        if done_index != request_index:
            raise TransportError(
                f"gateway acknowledged request {done_index}, "
                f"expected {request_index}"
            )
        return logits

    def stats(self) -> dict:
        """Mid-stream ``GWS1`` stats snapshot (only between requests)."""
        self.transport.send(encode_stats_request())
        return decode_stats_reply(self.transport.recv(wait=True))

    def local_stats(self) -> dict:
        """This side of the admission ledger, plus backoff accounting."""
        return {
            "issued": self.issued,
            "admitted": self.admitted,
            "deferred": self.deferred,
            "rejected": self.rejected,
            "busy_retries": self.deferred,
            "retry_sleep_seconds": round(self.retry_sleep_seconds, 6),
        }

    def close(self) -> None:
        """Graceful bye: best-effort GOAWAY, then close the socket."""
        if not self._closed:
            self._closed = True
            try:
                self.transport.send(encode_goaway("client done"))
            except TransportError:  # pragma: no cover - peer already gone
                pass
        self.transport.close()


def request_inference(
    host: str,
    port: int,
    network,
    params,
    x: list[int],
    *,
    garbler: str = "client",
    client_id: str = "client0",
    request_index: int = 0,
    seed: int | None = None,
    truncate_bits: int = 0,
    lowered=None,
    retries: int = 40,
) -> list[int]:
    """One inference against a running gateway, from the client's side.

    A thin single-request wrapper over :class:`GatewayClient`: connect,
    HELLO, one REQ cycle, GOAWAY, close. ``lowered`` may carry a
    pre-built *shape-only* lowering to amortize across calls; weights
    never materialize client-side either way.
    """
    client = GatewayClient(
        host,
        port,
        network,
        params,
        garbler=garbler,
        client_id=client_id,
        seed=seed,
        truncate_bits=truncate_bits,
        lowered=lowered,
        retries=retries,
    )
    try:
        return client.request(x, request_index=request_index)
    finally:
        client.close()


def request_stats(host: str, port: int, *, retries: int = 40) -> dict:
    """Fetch a live stats snapshot from a running gateway.

    Speaks the ``GWS1`` wire op: connect, send the 4-byte stats magic
    where a hello would normally go, read back one JSON frame. The
    gateway answers from its selector thread without minting a session,
    so probing is free of transcript side effects.
    """
    transport = SocketTransport.connect(host, port, retries=retries)
    try:
        transport.send(encode_stats_request())
        return decode_stats_reply(transport.recv(wait=True))
    finally:
        transport.close()
