"""Multi-client serving loop over the precompute store (§5.2, functional).

The paper's closing multi-client argument is a statement about *buffers*:
one server mints offline precomputes for N clients concurrently, each
client buffers only its own, and end-to-end throughput is governed by how
fast the mint pipeline refills what the online phase drains.
:mod:`repro.core.multiclient` models that analytically; this module runs
it for real:

* **Mint** — per-client offline phases (garbling, IKNP OT, Galois keys)
  execute on ONE shared :class:`~repro.runtime.pool.PrecomputePool`, the
  functional analogue of the paper's request-level parallelism: each
  precompute is a self-contained job stream, and the pool's skew-aware
  shards keep every core busy across clients.
* **Admit** — minted transcripts land in per-client namespaces of one
  :class:`~repro.runtime.store.PrecomputeStore` under a single global
  byte budget, so clients contend for buffer space exactly like hash-join
  partitions contend for a memory budget: admitting one client's
  precompute can evict another's least-recently-used entry.
* **Drain** — interleaved online requests consume stored precomputes
  through :meth:`~repro.core.protocol.HybridProtocol.import_offline`. A
  request whose precompute was evicted (or never minted) demand-mints a
  fresh one on the spot — a *miss*, the measured counterpart of the
  simulator's un-buffered request path.

Since the session redesign the loop drives each request's
:class:`~repro.core.session.ClientSession`/:class:`~repro.core.session.
ServerSession` pair *message by message* through the
:class:`~repro.core.protocol.HybridProtocol` façade's ``start_*``/
``step()`` API. That turns "overlap the refill mints with online serving"
from a rewrite into a scheduling decision: with ``pipelined=True`` the
round-robin scheduler interleaves one client's background refill steps
with every other client's online steps (each client's own requests stay
ordered behind its refill, preserving per-buffer FIFO semantics), and
:class:`ServingReport` records the resulting steady-state throughput.

Every request's logits are byte-identical to a per-client sequential run
(mint seeds are derived per (client, mint-index), and the protocol's
output is seed-independent anyway), so the loop doubles as an end-to-end
correctness harness while it measures wall-clock, queue depth, and buffer
occupancy that the analytic :class:`MultiClientSimulator` can be
validated against.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.runtime.state import derive_worker_seed
from repro.runtime.store import PrecomputeStore, StoreKey
from repro.telemetry import PHASES, TRACER


@dataclass
class ServedRequest:
    """One drained online request and everything measured around it."""

    client: str
    index: int  # per-client request index
    hit: bool  # served from a buffered precompute (False = demand mint)
    queue_depth: int  # requests still pending when this one started
    mint_seconds: float  # demand-mint wall-clock (0.0 on a hit)
    online_seconds: float  # run_online wall-clock
    store_bytes: int  # buffer occupancy right after the drain
    logits: list[int] = field(repr=False, default_factory=list)


@dataclass
class ServingReport:
    """Measured outcome of one serving run.

    The analytic :class:`~repro.core.multiclient.MultiClientSimulator`
    reports the same quantities (hit rate, queue, latency decomposition)
    from its discrete-event model; this report is the measured ground
    truth it can be validated against.
    """

    num_clients: int
    requests: list[ServedRequest]
    minted: int  # total precomputes minted (prefill + refill + demand)
    demand_mints: int  # mints forced onto a request's critical path
    evictions: int  # store evictions during the run
    prefill_seconds: float
    refill_seconds: float = 0.0  # background-refill mints (off critical path)
    serve_seconds: float = 0.0  # wall-clock of the whole drain window
    pipelined: bool = False  # refills interleaved with online serving
    concurrent: bool = False  # served through the socket gateway
    refill_overlap_seconds: float = 0.0  # window with a mint in flight
    peak_live_sessions: int = 0  # most sockets live at once (gateway)
    dropped_sessions: int = 0  # client sockets that died mid-protocol
    # Keep-alive admission ledger (gateway runs only; zero elsewhere).
    # Invariant: requests_admitted + requests_deferred + requests_rejected
    # == requests_issued once the run drains.
    connections_accepted: int = 0  # HELLO handshakes completed
    requests_issued: int = 0  # REQ frames received
    requests_admitted: int = 0  # answered with an OFFER
    requests_deferred: int = 0  # answered with BUSY (backlog over max_queue)
    requests_rejected: int = 0  # answered with GOAWAY (deferral cap hit)
    occupancy: list[dict] = field(default_factory=list)
    # Exclusive-time latency decomposition of the drain window
    # (queue/store/he_linear/gc/ot/wire -> seconds; sums to
    # serve_seconds). Populated only when telemetry is enabled.
    phase_seconds: dict = field(default_factory=dict)
    # Live gateway stats snapshot (per-client latency quantiles, queue
    # depth, store occupancy, refill in-flight). Concurrent runs only.
    gateway_stats: dict = field(default_factory=dict)
    # Per-workload columns keyed by schedule name (latency p50/p95/p99,
    # deferral rate, goodput). Populated by the workload drivers.
    workloads: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.hit) / len(self.requests)

    @property
    def max_queue_depth(self) -> int:
        return max((r.queue_depth for r in self.requests), default=0)

    @property
    def mean_queue_depth(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.queue_depth for r in self.requests) / len(self.requests)

    @property
    def mean_online_seconds(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.online_seconds for r in self.requests) / len(self.requests)

    @property
    def total_mint_seconds(self) -> float:
        return (
            self.prefill_seconds
            + self.refill_seconds
            + sum(r.mint_seconds for r in self.requests)
        )

    @property
    def throughput_rps(self) -> float:
        """Steady-state requests/second over the drain window.

        The drain window covers online serving plus whatever minting the
        schedule put inside it — serialized in the default mode,
        overlapped under ``pipelined=True`` — so this is the number the
        two modes are compared on.
        """
        if not self.requests or self.serve_seconds <= 0:
            return 0.0
        return len(self.requests) / self.serve_seconds

    def client_requests(self, client: str) -> list[ServedRequest]:
        return [r for r in self.requests if r.client == client]

    def summary(self) -> dict:
        """JSON-serializable digest (what the CI smoke job uploads)."""
        return {
            "clients": self.num_clients,
            "requests": len(self.requests),
            "hit_rate": round(self.hit_rate, 4),
            "minted": self.minted,
            "demand_mints": self.demand_mints,
            "evictions": self.evictions,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": round(self.mean_queue_depth, 3),
            "mean_online_seconds": round(self.mean_online_seconds, 6),
            "prefill_seconds": round(self.prefill_seconds, 6),
            "refill_seconds": round(self.refill_seconds, 6),
            "serve_seconds": round(self.serve_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "pipelined": self.pipelined,
            "concurrent": self.concurrent,
            "refill_overlap_seconds": round(self.refill_overlap_seconds, 6),
            "peak_live_sessions": self.peak_live_sessions,
            "dropped_sessions": self.dropped_sessions,
            "connections_accepted": self.connections_accepted,
            "requests_issued": self.requests_issued,
            "requests_admitted": self.requests_admitted,
            "requests_deferred": self.requests_deferred,
            "requests_rejected": self.requests_rejected,
            "total_mint_seconds": round(self.total_mint_seconds, 6),
            "queue_depths": [r.queue_depth for r in self.requests],
            "occupancy": self.occupancy,
            "phase_seconds": {
                k: round(v, 6) for k, v in self.phase_seconds.items()
            },
            "gateway_stats": self.gateway_stats,
            "workloads": self.workloads,
        }


class ServingLoop:
    """Mint → admit → drain loop serving N clients from one shared pool.

    One :class:`~repro.runtime.store.PrecomputeStore` holds every
    client's precomputes in its own namespace under the store's *global*
    byte budget; one optional :class:`~repro.runtime.pool.PrecomputePool`
    executes all clients' offline phases AND the online label OT
    (Client-Garbler) — ``pool=None`` runs everything sequentially with
    byte-identical transcripts.

    ``prefill`` precomputes are minted per client before serving starts
    (round-robin, so budget pressure hits all clients evenly — the
    admission analogue of a fair partition split); with ``refill`` each
    consumed precompute is re-minted after the request completes while
    that client still has demand, modelling the simulator's background
    refill worker. ``pipelined=False`` keeps mint and serve strictly
    serialized (deterministic admission order); ``pipelined=True`` steps
    refill mints and online sessions in one round-robin scheduler, so a
    refill occupies only the gaps between other clients' messages — the
    ROADMAP's "overlap the refill mints with online serving", measured.

    ``transport`` selects the session transport for every minted/served
    protocol ("memory" default; "socket" runs each one over a loopback
    TCP pair).
    """

    def __init__(
        self,
        network,
        params,
        num_clients: int,
        store: PrecomputeStore,
        pool=None,
        garbler: str = "client",
        prefill: int = 1,
        refill: bool = True,
        pipelined: bool = False,
        concurrent: bool = False,
        base_seed: int = 0,
        model_id: str = "serving",
        transport: str | None = None,
        gateway_wait_seconds: float | None = None,
        gateway_max_queue: int | None = None,
    ):
        if num_clients < 1:
            raise ValueError("need at least one client")
        if prefill < 0:
            raise ValueError("prefill must be >= 0")
        if pipelined and concurrent:
            raise ValueError("pipelined and concurrent modes are exclusive")
        self.network = network
        self.params = params
        self.num_clients = num_clients
        self.store = store
        self.pool = pool
        self.garbler = garbler
        self.prefill = prefill
        self.refill = refill
        self.pipelined = pipelined
        self.concurrent = concurrent
        self.base_seed = base_seed
        self.model_id = model_id
        self.transport = transport
        # Gateway admission knobs (concurrent mode only): None defers to
        # the REPRO_GATEWAY_WAIT_S / REPRO_GATEWAY_MAX_QUEUE env vars and
        # their defaults, resolved inside ServingGateway.
        self.gateway_wait_seconds = gateway_wait_seconds
        self.gateway_max_queue = gateway_max_queue
        self.minted = [0] * num_clients  # per-client mint counter (monotonic)
        self._occupancy: list[dict] = []

    # -- identity -----------------------------------------------------------

    def client_id(self, index: int) -> str:
        return f"client{index}"

    def mint_seed(self, client_index: int, mint_index: int) -> int:
        """The seed of one client's j-th minted precompute.

        Hash-derived per (base seed, client, mint index), so a per-client
        *sequential* rerun — mint j with this seed, serve request j — is
        the reproducible reference the loop's outputs are tested against.
        """
        client_stream = derive_worker_seed(self.base_seed, client_index)
        return derive_worker_seed(client_stream, mint_index)

    def _protocol(self, seed: int):
        from repro.core.protocol import HybridProtocol

        return HybridProtocol(
            self.network,
            self.params,
            garbler=self.garbler,
            seed=seed,
            pool=self.pool,
            transport=self.transport,
        )

    def store_key(self, client_index: int) -> StoreKey:
        return StoreKey.for_protocol(
            self.model_id, self.params, self.client_id(client_index)
        )

    # -- mint + admit -------------------------------------------------------

    def mint_one(self, client_index: int) -> float:
        """Mint one precompute for a client; returns wall-clock seconds.

        The offline phase runs through the shared pool; the resulting
        transcript is admitted into the client's store namespace under
        the global budget (possibly evicting another client's LRU entry).
        Raises ``ValueError`` if a single precompute exceeds the budget —
        the paper's ``buffer_capacity == 0`` regime, where serving from
        storage is impossible.
        """
        with TRACER.timed_span(
            "serving.mint", client=self.client_id(client_index)
        ) as span:
            for _ in self._mint_steps(client_index):
                pass
        return span.seconds

    def _mint_steps(self, client_index: int):
        """One mint as a stepwise task: yields between scheduler rounds.

        Drives the minting protocol's client/server session pair message
        by message, so a pipelined scheduler can interleave this mint
        with other clients' online traffic at message granularity.
        """
        seed = self.mint_seed(client_index, self.minted[client_index])
        minter = self._protocol(seed)
        try:
            minter.start_offline()
            yield from minter.drive_steps()
            minter.export_offline(
                self.store,
                self.model_id,
                client_id=self.client_id(client_index),
                name=f"{self.minted[client_index]:08d}",
            )
        finally:
            minter.shutdown()
        self.minted[client_index] += 1
        self._sample("mint", client_index)

    def prefill_buffers(self) -> float:
        """Mint ``prefill`` precomputes per client, interleaved round-robin."""
        with TRACER.timed_span("serving.prefill", prefill=self.prefill) as span:
            for _ in range(self.prefill):
                for c in range(self.num_clients):
                    self.mint_one(c)
        return span.seconds

    def _sample(self, event: str, client_index: int) -> None:
        self._occupancy.append(
            {
                "event": event,
                "client": self.client_id(client_index),
                "bytes": self.store.total_bytes,
                "entries": self.store.entry_count,
            }
        )

    # -- drain --------------------------------------------------------------

    def _serve_steps(
        self, client_index: int, x: list[int], request_index: int,
        queue_depth: int,
    ):
        """Serve one online request stepwise, demand-minting on a miss.

        The import (and any demand mint) happens up front on the critical
        path; the online phase is then driven one scheduler round at a
        time — each resumption steps both sessions through every message
        currently in flight. Returns the :class:`ServedRequest` as the
        generator's return value (``yield from`` captures it).
        """
        server = self._protocol(
            derive_worker_seed(self.base_seed + 0x5EED, request_index)
        )
        client = self.client_id(client_index)
        try:
            hit = server.import_offline(self.store, self.model_id, client_id=client)
            mint_seconds = 0.0
            if not hit:
                # Evicted (another client's admission) or never minted: mint
                # on the request's critical path — the measured miss penalty.
                mint_seconds = self.mint_one(client_index)
                if not server.import_offline(
                    self.store, self.model_id, client_id=client
                ):
                    raise RuntimeError(
                        f"{client}: freshly minted precompute immediately "
                        "unavailable — store budget admits no entry"
                    )
            # Each request's online window goes on its own virtual trace
            # track: under the pipelined scheduler many requests' windows
            # interleave on this one thread.
            track = TRACER.new_track("request") if TRACER.enabled else None
            with TRACER.timed_span(
                "serving.online", track=track, client=client,
                index=request_index, hit=hit,
            ) as span:
                server.start_online(x)
                yield from server.drive_steps()
                logits = server.client.finish()
            # Measured before teardown (transport close flushes sockets);
            # in pipelined mode this is still wall-clock over the window,
            # including interleaved work — the report's stated basis.
            online_seconds = span.seconds
        finally:
            server.shutdown()
        self._sample("serve", client_index)
        return ServedRequest(
            client=client,
            index=request_index,
            hit=hit,
            queue_depth=queue_depth,
            mint_seconds=mint_seconds,
            online_seconds=online_seconds,
            store_bytes=self.store.total_bytes,
            logits=logits,
        )

    def serve_one(
        self, client_index: int, x: list[int], request_index: int,
        queue_depth: int = 0,
    ) -> ServedRequest:
        """Serve one online request to completion (non-interleaved)."""
        steps = self._serve_steps(client_index, x, request_index, queue_depth)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def run(
        self,
        requests_per_client: int,
        inputs: list[list[list[int]]] | None = None,
        input_seed: int = 1,
    ) -> ServingReport:
        """Serve ``requests_per_client`` interleaved requests per client.

        Requests are drained round-robin (client0's j-th, client1's j-th,
        ...), the schedule under which per-client buffers contend hardest
        for the global budget. ``inputs[c][j]`` supplies client c's j-th
        input vector; by default inputs are drawn deterministically from
        ``input_seed`` so runs are reproducible end to end.
        """
        if inputs is None:
            inputs = self.draw_inputs(requests_per_client, input_seed)
        if len(inputs) < self.num_clients or any(
            len(per_client) < requests_per_client
            for per_client in inputs[: self.num_clients]
        ):
            raise ValueError(
                f"inputs must provide >= {requests_per_client} vector(s) for "
                f"each of {self.num_clients} clients"
            )
        if self.concurrent:
            return self._run_concurrent(requests_per_client, inputs)
        # Deltas/slices against the pre-run state, so a reused loop's
        # second run() reports only its own activity.
        evictions_before = self.store.evictions
        minted_before = sum(self.minted)
        occupancy_before = len(self._occupancy)
        prefill_seconds = self.prefill_buffers()

        # The phase window brackets exactly the perf_counter reads that
        # define serve_seconds, so its exclusive-time buckets decompose
        # that very number (they sum to the window by construction).
        window = PHASES.open_window(root="wire") if TRACER.enabled else None
        phase_seconds: dict[str, float] = {}
        serve_start = time.perf_counter()
        try:
            if self.pipelined:
                served, demand_mints, refill_seconds = self._drain_pipelined(
                    requests_per_client, inputs
                )
            else:
                served, demand_mints, refill_seconds = self._drain_sequential(
                    requests_per_client, inputs
                )
        finally:
            serve_seconds = time.perf_counter() - serve_start
            if window is not None:
                phase_seconds = window.close()
        return ServingReport(
            num_clients=self.num_clients,
            requests=served,
            minted=sum(self.minted) - minted_before,
            demand_mints=demand_mints,
            evictions=self.store.evictions - evictions_before,
            prefill_seconds=prefill_seconds,
            refill_seconds=refill_seconds,
            serve_seconds=serve_seconds,
            pipelined=self.pipelined,
            occupancy=list(self._occupancy[occupancy_before:]),
            phase_seconds=phase_seconds,
        )

    def _drain_sequential(self, requests_per_client: int, inputs):
        """Serialized mint+serve drain (deterministic admission order)."""
        pending: list[tuple[int, int]] = [
            (c, j)
            for j in range(requests_per_client)
            for c in range(self.num_clients)
        ]
        # Gate refills on the request schedule, not len(inputs): an
        # oversized inputs array must not mint precomputes for requests
        # that will never arrive.
        remaining = [requests_per_client] * self.num_clients
        served: list[ServedRequest] = []
        demand_mints = 0
        refill_seconds = 0.0
        while pending:
            c, j = pending.pop(0)
            request = self.serve_one(
                c, inputs[c][j], request_index=j, queue_depth=len(pending)
            )
            served.append(request)
            remaining[c] -= 1
            if not request.hit:
                demand_mints += 1
            if self.refill and remaining[c] > 0:
                # Background-worker analogue: replace the drained entry
                # while this client still has demand.
                refill_seconds += self.mint_one(c)
        return served, demand_mints, refill_seconds

    def _drain_pipelined(self, requests_per_client: int, inputs):
        """Round-robin scheduler: refill mints overlap online serving.

        One task per client serves that client's requests in order; after
        each drained request the client's refill mint runs *inside* the
        same task, so it occupies only the scheduler rounds between other
        clients' online messages. Per-client FIFO semantics (request j+1
        waits for refill j) are preserved; cross-client, everything
        overlaps — which is exactly what the analytic simulator's
        background worker assumes and the sequential mode serializes.
        """
        served: list[ServedRequest] = []
        state = {"outstanding": self.num_clients * requests_per_client}
        # Each refill is driven through a telemetry StepTimer, which
        # accrues only the time spent inside resumptions (the old
        # mutable-cell perf_counter bookkeeping, same per-step
        # semantics) and — when tracing — spans the refill's wall
        # window on its own track.
        refill_timers = []

        def timed_refill(c):
            timer = TRACER.step_timer(
                "serving.refill", client=self.client_id(c)
            )
            refill_timers.append(timer)
            yield from timer.drive(self._mint_steps(c))

        def client_task(c):
            for j in range(requests_per_client):
                queue_depth = state["outstanding"] - 1
                request = yield from self._serve_steps(
                    c, inputs[c][j], j, queue_depth
                )
                served.append(request)
                state["outstanding"] -= 1
                if self.refill and j + 1 < requests_per_client:
                    yield from timed_refill(c)

        tasks = deque(client_task(c) for c in range(self.num_clients))
        while tasks:
            task = tasks.popleft()
            try:
                next(task)
            except StopIteration:
                continue
            tasks.append(task)
        demand_mints = sum(1 for r in served if not r.hit)
        refill_seconds = sum(t.seconds for t in refill_timers)
        return served, demand_mints, refill_seconds

    def _run_concurrent(self, requests_per_client: int, inputs) -> ServingReport:
        """Serve through the socket gateway: real concurrency, real wire.

        A :class:`~repro.runtime.gateway.ServingGateway` runs the selector
        loop in *this* thread while one driver thread per client opens a
        single keep-alive :class:`~repro.runtime.gateway.GatewayClient`
        connection and issues all of its requests over it in order (each
        driver blocks on its own socket, so the GIL is free whenever a
        driver waits on the gateway and vice versa; refill mints run in
        pool worker processes). The gateway shares this loop's store,
        pool, and mint counters, so seeds — and therefore logits — line
        up with the sequential reference. Logits materialize client-side
        and are merged into the report's :class:`ServedRequest` rows by
        ``(client, index)``.
        """
        import threading

        from repro.core.lowering import lower_network
        from repro.runtime.gateway import (
            GatewayClient,
            ServingGateway,
            request_stats,
        )

        gateway = ServingGateway(
            self.network,
            self.params,
            self.num_clients,
            self.store,
            pool=self.pool,
            garbler=self.garbler,
            prefill=self.prefill,
            refill=self.refill,
            base_seed=self.base_seed,
            model_id=self.model_id,
            expected_per_client=requests_per_client,
            minted=self.minted,
            miss_wait_seconds=self.gateway_wait_seconds,
            max_queue=self.gateway_max_queue,
        )
        results: dict[tuple[str, int], list[int]] = {}
        errors: list[BaseException] = []
        # One shape-only lowering shared by every driver: the client side
        # never holds weights, and re-lowering per request is pure waste.
        client_lowered = lower_network(
            self.network, self.params.t, backend=self.params.backend,
            shape_only=True,
        )

        def drive(c: int) -> None:
            try:
                # One connection per client for the whole run; the session
                # seed is connection-scoped (request-level randomness never
                # leaves either endpoint, so logits don't depend on it).
                client = GatewayClient(
                    gateway.host,
                    gateway.port,
                    self.network,
                    self.params,
                    garbler=self.garbler,
                    client_id=self.client_id(c),
                    seed=derive_worker_seed(self.base_seed + 0xC11E, c),
                    lowered=client_lowered,
                )
                try:
                    for j in range(requests_per_client):
                        results[(self.client_id(c), j)] = client.request(
                            inputs[c][j], request_index=j
                        )
                finally:
                    client.close()
            except BaseException as exc:  # surfaced after the serve loop
                errors.append(exc)

        gateway.start()
        try:
            threads = [
                threading.Thread(target=drive, args=(c,), daemon=True)
                for c in range(self.num_clients)
            ]
            for t in threads:
                t.start()
            gateway.serve(
                self.num_clients * requests_per_client,
                timeout=600.0,
                abort=lambda: bool(errors),
            )
            for t in threads:
                t.join(timeout=60.0)
            gateway.check_refills()
            # Exercise the GWS1 stats op over the real wire: a helper
            # thread connects while this thread keeps the selector loop
            # turning (the gateway serves stats like any other frame).
            stats_box: dict = {}

            def fetch_stats() -> None:
                try:
                    stats_box["stats"] = request_stats(
                        gateway.host, gateway.port, retries=5
                    )
                except BaseException as exc:  # fall back to the local view
                    stats_box["error"] = exc

            stats_thread = threading.Thread(target=fetch_stats, daemon=True)
            stats_thread.start()
            deadline = time.perf_counter() + 30.0
            while stats_thread.is_alive() and time.perf_counter() < deadline:
                gateway.poll(0.05)
            stats_thread.join(timeout=5.0)
        finally:
            gateway.stop()
        if errors:
            raise RuntimeError(
                f"{len(errors)} gateway client driver(s) failed"
            ) from errors[0]
        report = gateway.report()
        if "stats" in stats_box:
            # Prefer the wire-fetched snapshot (it proves GWS1 works
            # end-to-end); report() already fell back to the local view.
            report.gateway_stats = stats_box["stats"]
        for request in report.requests:
            request.logits = results.get((request.client, request.index), [])
        self._occupancy.extend(report.occupancy)
        return report

    def draw_inputs(
        self, requests_per_client: int, input_seed: int = 1
    ) -> list[list[list[int]]]:
        """Deterministic per-client input vectors (field elements)."""
        from repro.crypto.rng import SecureRandom

        size = self.network.input_shape.elements
        inputs = []
        for c in range(self.num_clients):
            rng = SecureRandom(derive_worker_seed(input_seed, c))
            inputs.append(
                [
                    rng.field_vector(size, self.params.t)
                    for _ in range(requests_per_client)
                ]
            )
        return inputs


def demo_network_and_params():
    """The tiny model every serving demo runs (shared with the examples).

    One definition, so the in-process serving demo, the two-process
    socket demo, and its server process all execute the same network.
    """
    import numpy as np

    from repro.he.params import fast_params
    from repro.nn.datasets import tiny_dataset
    from repro.nn.models import tiny_mlp

    params = fast_params(n=256)
    network = tiny_mlp(tiny_dataset(size=4, channels=1, classes=3), hidden=8)
    network.randomize_weights(params.t, np.random.default_rng(0))
    return network, params


def demo(
    num_clients: int = 4,
    requests_per_client: int = 1,
    workers: int | None = None,
    budget_mb: float = 8.0,
    store_dir: str | None = None,
    summary_path: str | None = None,
    pipelined: bool = False,
    concurrent: bool = False,
    transport: str | None = None,
    gateway_wait_seconds: float | None = None,
    gateway_max_queue: int | None = None,
) -> ServingReport:
    """Self-contained serving run on a tiny network.

    Drives the whole mint → admit → drain lifecycle, checks every served
    logit vector against the plaintext oracle (eviction pressure must
    never surface a stale result), and optionally writes the queue-depth
    summary JSON. Both ``python -m repro --serve N`` and
    ``examples/multi_client_serving.py`` are thin wrappers over this.
    ``budget_mb=0`` means unbounded; ``pipelined`` overlaps refill mints
    with online serving; ``concurrent`` serves through the socket gateway
    (driver threads over loopback TCP, refill mints in worker processes);
    ``transport="socket"`` runs every session pair over loopback TCP.
    When ``store_dir`` is None the temporary store directory is removed
    before returning (after the summary, if any, is written).
    """
    import json
    import tempfile

    from repro.core.lowering import lower_network, plaintext_reference
    from repro.runtime.pool import PrecomputePool

    network, params = demo_network_and_params()
    made_tempdir = store_dir is None
    root = store_dir or tempfile.mkdtemp(prefix="repro-serving-")
    store = PrecomputeStore(root, byte_budget=int(budget_mb * 1e6) or None)
    if pipelined and concurrent:
        raise ValueError("pipelined and concurrent modes are exclusive")
    mode = (
        "concurrent gateway"
        if concurrent
        else ("pipelined" if pipelined else "serialized")
    )
    with PrecomputePool(workers=workers) as pool:
        print(
            f"serving {num_clients} clients x {requests_per_client} requests "
            f"({pool.workers} worker(s), budget {budget_mb:g} MB, "
            f"{transport or 'memory'} transport, "
            f"{mode} refills, store {root})"
        )
        loop = ServingLoop(
            network, params, num_clients, store, pool=pool, garbler="client",
            pipelined=pipelined, concurrent=concurrent, transport=transport,
            gateway_wait_seconds=gateway_wait_seconds,
            gateway_max_queue=gateway_max_queue,
        )
        inputs = loop.draw_inputs(requests_per_client)
        report = loop.run(requests_per_client, inputs=inputs)

    lowered = lower_network(network, params.t)
    for request in report.requests:
        c = int(request.client[len("client"):])
        assert request.logits == plaintext_reference(
            lowered, inputs[c][request.index]
        )
    print(f"all {len(report.requests)} results match the plaintext reference")
    print(
        f"  hit rate {report.hit_rate:.2f}  demand mints "
        f"{report.demand_mints}  evictions {report.evictions}  "
        f"max queue depth {report.max_queue_depth}"
    )
    print(
        f"  mint {report.total_mint_seconds:.2f}s total, online "
        f"{report.mean_online_seconds * 1e3:.0f} ms mean, steady-state "
        f"{report.throughput_rps:.2f} req/s"
    )
    if report.concurrent:
        print(
            f"  refill overlap {report.refill_overlap_seconds:.2f}s, peak "
            f"{report.peak_live_sessions} live session(s), "
            f"{report.dropped_sessions} dropped"
        )
        print(
            f"  admission: {report.connections_accepted} connection(s), "
            f"{report.requests_issued} issued = "
            f"{report.requests_admitted} admitted + "
            f"{report.requests_deferred} deferred + "
            f"{report.requests_rejected} rejected"
        )
    if summary_path:
        summary = report.summary()
        summary["store_dir"] = root
        with open(summary_path, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"  queue-depth summary written to {summary_path}")
    if made_tempdir:
        # The demo created this directory; a long-lived host running the
        # smoke entry point repeatedly must not accrete orphaned stores.
        import shutil

        shutil.rmtree(root, ignore_errors=True)
    return report
