"""Multi-core offline precompute runtime: the process pool.

The offline phase is embarrassingly parallel but SHA-256-bound —
:meth:`repro.gc.garble.Garbler.garble_batch` spends ~70% of a ReLU
layer's batch time in hashlib, which no amount of numpy vectorization
removes. :class:`PrecomputePool` executes that work on many cores with
``multiprocessing`` while keeping the *transcripts byte-identical* to the
sequential paths, which is what makes pooling safe to enable anywhere:

* All randomness is drawn by the parent, in exactly the order the
  sequential code draws it. Jobs are pure functions of pre-drawn
  material (label matrices, column seeds, key-switch draws), so which
  worker runs which shard can never change an output bit.
* Workers are initialized through :func:`repro.runtime.state.
  reset_process_state`: inherited NTT/RNS caches are dropped, the
  compute backend is re-selected from the worker's environment, and each
  worker gets an independent :class:`~repro.crypto.rng.SecureRandom`
  derived from (base seed, worker index) — never the parent's stream.

Shard sizing is skew-aware (:func:`plan_shards`): the target shard size
is derived from the *total* work across all submitted batches, so one
wide ReLU layer splits into many shards that interleave with the small
layers' shards instead of straggling behind them — the LPT-style
work-sharding playbook of Dhulipala et al. and JSPIM's skew-aware
partitioning.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import warnings

from repro.crypto.rng import SecureRandom
from repro.gc.circuit import Circuit
from repro.gc.garble import (
    GarbledCircuit,
    InputEncoding,
    derive_batch_labels,
    derive_instance_labels,
    garble_batch_from_labels,
    garble_from_labels,
)
from repro.runtime.state import init_worker_rng, reset_process_state

try:
    import numpy as _np
except ImportError:  # pragma: no cover - minimal images only
    _np = None

DEFAULT_MIN_SHARD = 8
DEFAULT_OVERSUBSCRIBE = 4


def resolve_workers(workers: int | None = None, default: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > default.

    ``default=None`` means "all cores" (``os.cpu_count()``); callers that
    want opt-in parallelism (the protocol) pass ``default=1``.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            # Fail soft but never silently: a typo'd deployment variable
            # quietly running single-core is a capacity incident.
            warnings.warn(
                f"ignoring unparseable REPRO_WORKERS={env!r} "
                "(expected an integer); falling back to the default "
                "worker count",
                RuntimeWarning,
                stacklevel=2,
            )
    if default is None:
        return os.cpu_count() or 1
    return max(1, int(default))


def plan_shards(
    sizes,
    workers: int,
    min_shard: int = DEFAULT_MIN_SHARD,
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
) -> list[list[tuple[int, int]]]:
    """Skew-aware contiguous shard plan for a set of job batches.

    Returns one list of (lo, hi) ranges per input size. The target shard
    size is ``total / (workers * oversubscribe)`` (floored at
    ``min_shard``): sizing against the *total* rather than per batch is
    what makes the plan skew-aware — a batch much wider than its peers is
    split into proportionally many shards while small batches stay
    whole, so greedy pool scheduling approximates an LPT schedule and the
    wide batch cannot straggle the tail.
    """
    total = sum(sizes)
    shard_goal = max(1, workers) * max(1, oversubscribe)
    target = max(max(1, min_shard), -(-total // shard_goal)) if total > 0 else 1
    plans: list[list[tuple[int, int]]] = []
    for size in sizes:
        if size <= 0:
            plans.append([])
            continue
        pieces = max(1, -(-size // target))
        base, extra = divmod(size, pieces)
        ranges = []
        lo = 0
        for i in range(pieces):
            hi = lo + base + (1 if i < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        plans.append(ranges)
    return plans


def _init_worker(backend, representation, base_seed, counter) -> None:
    """Worker initializer: claim an index, reset state, derive the RNG."""
    with counter.get_lock():
        index = counter.value
        counter.value += 1
    if backend is not None:
        os.environ["REPRO_BACKEND"] = backend
    if representation is not None:
        os.environ["REPRO_REPRESENTATION"] = representation
    reset_process_state()  # drops inherited caches, re-reads REPRO_BACKEND
    init_worker_rng(base_seed, index)


class AsyncJob:
    """Handle for one asynchronously submitted pool job.

    A tiny future: :meth:`ready` polls, :meth:`get` joins (re-raising the
    job's exception, like ``multiprocessing.pool.AsyncResult``). Inline
    submissions (``workers <= 1``) resolve at submit time, so callers can
    treat the two modes uniformly.
    """

    def ready(self) -> bool:
        raise NotImplementedError

    def get(self, timeout: float | None = None):
        raise NotImplementedError


class _ImmediateJob(AsyncJob):
    """An already-resolved job (the inline / single-worker path)."""

    def __init__(self, value=None, error: BaseException | None = None):
        self._value = value
        self._error = error

    def ready(self) -> bool:
        return True

    def get(self, timeout: float | None = None):
        if self._error is not None:
            raise self._error
        return self._value


class _PoolJob(AsyncJob):
    """A job executing on a worker process (wraps AsyncResult)."""

    def __init__(self, result):
        self._result = result

    def ready(self) -> bool:
        return self._result.ready()

    def get(self, timeout: float | None = None):
        return self._result.get(timeout)


def _run_traced_job(packed):
    """Pool job wrapper: run ``func(job)`` with worker-local telemetry.

    The worker's tracer/metrics are reset and enabled only for this
    job's duration, and their contents ride home with the value —
    ``(value, (trace_events, metrics_snapshot))`` — so the parent can
    attribute pool-side mint costs (:class:`_TracedPoolJob` merges the
    payload exactly once). Telemetry enablement is deliberately *not*
    inherited from the parent's environment: this wrapper is the only
    path that turns it on in a worker.
    """
    func, job = packed
    from repro import telemetry

    telemetry.TRACER.reset()
    telemetry.METRICS.reset()
    telemetry.TRACER.enabled = True
    telemetry.METRICS.enabled = True
    try:
        with telemetry.TRACER.span(
            "pool.job", job=getattr(func, "__name__", str(func))
        ):
            value = func(job)
        return value, (telemetry.TRACER.drain(), telemetry.METRICS.snapshot())
    finally:
        telemetry.TRACER.enabled = False
        telemetry.METRICS.enabled = False


class _TracedPoolJob(AsyncJob):
    """A traced pool job: unwraps the telemetry payload on first get().

    The wrapped result is ``(value, payload)``; the payload is merged
    into the parent-process tracer/metrics exactly once (get() may be
    called repeatedly), and callers see only the bare value.
    """

    def __init__(self, result):
        self._result = result
        self._merged = False
        self._merge_lock = threading.Lock()

    def ready(self) -> bool:
        return self._result.ready()

    def get(self, timeout: float | None = None):
        value, payload = self._result.get(timeout)
        with self._merge_lock:
            if not self._merged:
                self._merged = True
                from repro import telemetry

                telemetry.merge_worker_payload(payload)
        return value


def _garble_rows_job(args):
    """Pool job: deterministic vectorized garble of one row shard."""
    circuit, deltas, zero_labels = args
    results = garble_batch_from_labels(circuit, deltas, zero_labels)
    for garbled, _ in results:
        # The parent rebinds its own (shared) topology object; shipping a
        # per-shard Circuit copy back would break the identity check the
        # batched evaluator uses and waste pickle bytes.
        garbled.circuit = None
    return results


def _garble_instances_job(args):
    """Pool job: deterministic scalar garble of pre-drawn instances."""
    circuit, drawn = args
    results = [
        garble_from_labels(circuit, delta, labels) for delta, labels in drawn
    ]
    for garbled, _ in results:
        garbled.circuit = None
    return results


class PrecomputePool:
    """Process pool for the offline phase (garbling, OT stages, key-gen).

    ``workers`` resolves through :func:`resolve_workers` (explicit >
    ``REPRO_WORKERS`` > all cores). With one worker every method runs
    inline through the identical job functions, so ``workers=1`` is the
    sequential path, not a different code path. The underlying
    ``multiprocessing.Pool`` is created lazily on first parallel use and
    torn down by :meth:`close` (or the context manager).
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str | None = None,
        representation: str | None = None,
        seed: int | None = None,
        min_shard: int = DEFAULT_MIN_SHARD,
        oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
        start_method: str | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.backend = backend
        self.representation = representation
        self.seed = seed
        self.min_shard = max(1, min_shard)
        self.oversubscribe = max(1, oversubscribe)
        self._start_method = start_method
        self._pool = None
        # Lazy creation may race when a background refill thread and the
        # serving thread both touch the pool first; worker forking must
        # happen exactly once. multiprocessing.Pool itself is safe for
        # concurrent map/apply_async calls from multiple threads.
        self._create_lock = threading.Lock()

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        with self._create_lock:
            if self._pool is None and self.workers > 1:
                ctx = multiprocessing.get_context(self._start_method)
                counter = ctx.Value("i", 0)
                self._pool = ctx.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(self.backend, self.representation, self.seed, counter),
                )
            return self._pool

    def close(self) -> None:
        """Tear down worker processes (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "PrecomputePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass

    # -- sharding -----------------------------------------------------------

    def shard_ranges(
        self, count: int, min_shard: int | None = None
    ) -> list[tuple[int, int]]:
        """Contiguous (lo, hi) shard bounds for one batch of ``count``."""
        return plan_shards(
            [count],
            self.workers,
            self.min_shard if min_shard is None else min_shard,
            self.oversubscribe,
        )[0]

    def map_jobs(self, func, jobs) -> list:
        """Run picklable jobs, in order; inline when pooling can't help."""
        jobs = list(jobs)
        if self.workers <= 1 or len(jobs) <= 1:
            return [func(job) for job in jobs]
        return self._ensure_pool().map(func, jobs, chunksize=1)

    def apply_async(self, func, job, callback=None) -> AsyncJob:
        """Submit one picklable job without waiting; returns an AsyncJob.

        This is the refill workers' submission surface: a background
        driver ships whole offline-mint jobs to worker processes and keeps
        serving while they run, which is what turns the serving loop's
        schedule-shape overlap into wall-clock overlap. ``callback``
        receives the result (in a pool-internal thread — keep it tiny and
        thread-safe). With ``workers <= 1`` the job runs inline at submit
        time and the callback fires synchronously, so single-core
        deployments keep identical semantics minus the overlap.
        """
        if self.workers <= 1:
            try:
                value = func(job)
            except BaseException as exc:
                return _ImmediateJob(error=exc)
            if callback is not None:
                callback(value)
            return _ImmediateJob(value)
        from repro import telemetry

        if telemetry.enabled():
            # Ship worker-side telemetry home with the result; the
            # callback still sees the bare value (payloads merge on the
            # submitting side, at get(), never in the pool's thread).
            wrapped = None
            if callback is not None:
                wrapped = lambda pair: callback(pair[0])  # noqa: E731
            return _TracedPoolJob(
                self._ensure_pool().apply_async(
                    _run_traced_job, ((func, job),), callback=wrapped
                )
            )
        return _PoolJob(
            self._ensure_pool().apply_async(func, (job,), callback=callback)
        )

    # -- precompute kinds ----------------------------------------------------

    def garble_batch(
        self,
        circuit: Circuit,
        count: int,
        rng: SecureRandom | None = None,
        vectorize: bool | None = None,
    ) -> list[tuple[GarbledCircuit, InputEncoding]]:
        """Garble ``count`` instances, byte-identical to the sequential
        :meth:`~repro.gc.garble.Garbler.garble_batch` under the same rng."""
        batches = self.garble_layers([(circuit, count, rng)], vectorize=vectorize)
        return batches[0]

    def garble_layers(
        self,
        layers,
        vectorize: bool | None = None,
    ) -> list[list[tuple[GarbledCircuit, InputEncoding]]]:
        """Garble several layers' batches with one skew-aware shard plan.

        ``layers`` is a list of ``(circuit, count, rng)`` tuples (``rng``
        may be None for OS entropy). All label material is drawn up front
        — per layer, in the sequential draw order — then every shard of
        every layer goes into one job list, so a wide layer's shards
        interleave with narrow layers' instead of serializing behind them.
        """
        layers = [
            (circuit, count, rng or SecureRandom())
            for circuit, count, rng in layers
        ]
        if vectorize is None:
            from repro.backend import get_backend

            vectorize = get_backend().name == "numpy"
        plans = plan_shards(
            [count for _, count, _ in layers],
            self.workers,
            self.min_shard,
            self.oversubscribe,
        )
        jobs = []
        modes: list[tuple[bool, int]] = []  # (vectorized, n_shards) per layer
        for (circuit, count, rng), ranges in zip(layers, plans):
            if count <= 0:
                modes.append((True, 0))
                continue
            vec = _np is not None and vectorize and count > 1
            if vec:
                deltas, zeros = derive_batch_labels(rng, circuit, count)
                for lo, hi in ranges:
                    jobs.append(
                        (
                            circuit,
                            deltas[lo:hi],
                            {w: mat[lo:hi] for w, mat in zeros.items()},
                        )
                    )
            else:
                drawn = [
                    derive_instance_labels(rng, circuit) for _ in range(count)
                ]
                for lo, hi in ranges:
                    jobs.append((circuit, drawn[lo:hi]))
            modes.append((vec, len(ranges)))

        blocks = self.map_jobs(_dispatch_garble_job, jobs)
        results: list[list[tuple[GarbledCircuit, InputEncoding]]] = []
        cursor = 0
        for (circuit, count, _), (vec, n_shards) in zip(layers, modes):
            batch: list[tuple[GarbledCircuit, InputEncoding]] = []
            for block in blocks[cursor : cursor + n_shards]:
                for garbled, encoding in block:
                    garbled.circuit = circuit  # one shared topology object
                    batch.append((garbled, encoding))
            cursor += n_shards
            results.append(batch)
        return results

    def iknp_transfer(self, message_pairs, choices, rng=None):
        """Pooled IKNP extension (column expansion + row masking sharded)."""
        from repro.ot.extension import iknp_transfer

        return iknp_transfer(
            message_pairs, choices, rng, pool=self if self.workers > 1 else None
        )

    def galois_keygen(self, ctx, sk, elements):
        """Pooled Galois key generation (per-digit products sharded)."""
        return ctx.galois_keygen(sk, elements, pool=self)


def _dispatch_garble_job(job):
    """Route a mixed garble job list to the right deterministic walker."""
    if _np is not None and isinstance(job[1], _np.ndarray):
        return _garble_rows_job(job)
    return _garble_instances_job(job)
