"""Disk-backed precompute store with LRU byte-budget eviction.

The paper's whole streaming story revolves around a *storage buffer* of
offline precomputes: the client (or, under Client-Garbler, the server)
holds as many garbled-ReLU + OT + HE-share bundles as its byte budget
allows, and the online phase consumes them. The system simulator models
that buffer analytically (``SystemConfig.buffer_capacity``); this module
is its functional counterpart — real bytes on disk, real eviction.

Layout: one file per entry under ``root/<model>/<params>/<client>/``,
named ``<kind>-<name>.bin``, plus a single ``index.json`` at the root
recording byte sizes and an access sequence number per entry. Eviction is
LRU at entry granularity — one entry is one precompute unit, matching how
the paper's buffer admits and consumes whole precomputes.

Entry payloads use the wire formats of :mod:`repro.network.serialize`
(garbled circuits, label maps, field vectors), so a stored precompute is
exactly what a networked deployment would have transmitted.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.network.serialize import (
    deserialize_field_vector,
    deserialize_garbled_circuit,
    deserialize_input_encoding,
    deserialize_label_map,
    serialize_field_vector,
    serialize_garbled_circuit,
    serialize_input_encoding,
    serialize_label_map,
)
from repro.telemetry import METRICS, TRACER, section

INDEX_NAME = "index.json"

KIND_OFFLINE = "offline"  # a full offline transcript (one inference's worth)
KIND_RELU = "relu"  # one garbled ReLU layer
KIND_OT = "ot"  # an OT label correlation batch


def params_fingerprint(params) -> str:
    """Short stable id for a parameter set (store directory component)."""
    material = repr(
        (
            params.n,
            params.q,
            params.t,
            params.noise_eta,
            params.decomp_bits,
            params.rns_primes,
        )
    ).encode()
    return hashlib.sha256(material).hexdigest()[:12]


def _sanitize(part: str) -> str:
    cleaned = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in str(part)
    )
    if not cleaned or set(cleaned) == {"."}:
        # "." / ".." are path navigation, not names — an id made of dots
        # must not let an entry escape the store root.
        return "_" * max(1, len(cleaned))
    return cleaned


@dataclass(frozen=True)
class StoreKey:
    """Addresses one (model, parameter set, client) precompute namespace."""

    model: str
    params: str
    client: str

    @classmethod
    def for_protocol(
        cls, model: str, params, client: str = "client0"
    ) -> "StoreKey":
        return cls(model=model, params=params_fingerprint(params), client=client)

    def parts(self) -> tuple[str, str, str]:
        return (_sanitize(self.model), _sanitize(self.params), _sanitize(self.client))


class PrecomputeStore:
    """Persistent precompute buffer with an LRU byte budget.

    ``byte_budget=None`` disables eviction (unbounded store). Access is
    single-process by design — the store models one party's local buffer,
    not a shared service — but thread-safe within that process: the
    serving gateway's background refill worker admits entries while the
    selector thread drains them, so every index mutation (and the
    eviction counter) runs under one internal lock.
    """

    def __init__(self, root, byte_budget: int | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.byte_budget = byte_budget
        self.evictions = 0
        self._lock = threading.RLock()
        self._index: dict = {"seq": 0, "entries": {}}
        index_path = self.root / INDEX_NAME
        # A leftover .tmp means a crash interrupted _save_index before its
        # atomic rename; the published index is still the previous
        # consistent one, so the partial file is plain garbage.
        try:
            (self.root / (INDEX_NAME + ".tmp")).unlink()
        except OSError:
            pass
        corruption: Exception | None = None
        if index_path.exists():
            try:
                loaded = json.loads(index_path.read_text())
                if (
                    not isinstance(loaded, dict)
                    or not isinstance(loaded.get("entries"), dict)
                    or not isinstance(loaded.get("seq"), int)
                ):
                    raise ValueError("index has unexpected structure")
                self._index = loaded
            except (OSError, ValueError) as exc:
                # Resetting the index orphans every payload file: invisible
                # to lookups but still occupying disk the byte budget no
                # longer accounts for.
                corruption = exc
        # Unindexed payloads occupy disk the byte budget doesn't account
        # for; sweep them on every open — they appear when the index is
        # reset, but also when a crash lands between a payload write and
        # its index update. Say so either way: silent data loss is how a
        # serving fleet ends up minting against a full disk.
        swept = self._sweep_orphans()
        if corruption is not None:
            warnings.warn(
                f"precompute store index {index_path} was unreadable "
                f"({corruption}); reset to empty and deleted {swept} "
                "orphaned payload file(s)",
                RuntimeWarning,
                stacklevel=2,
            )
            self._save_index()
        elif swept:
            warnings.warn(
                f"precompute store {self.root} held {swept} payload file(s) "
                "not present in the index (crash between payload write and "
                "index update?); deleted",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- bookkeeping --------------------------------------------------------

    def _save_index(self) -> None:
        # Write-fsync-rename so a crash mid-write can never tear index.json:
        # readers see either the old index or the new one, both valid. The
        # fsync matters — without it a power loss can commit the rename
        # before the temp file's data blocks, publishing garbage that the
        # corrupt-index recovery would then "fix" by sweeping every payload.
        path = self.root / INDEX_NAME
        tmp = self.root / (INDEX_NAME + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(self._index, indent=1, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _sweep_orphans(self) -> int:
        """Delete payload files the index does not know about; returns count."""
        indexed = {(self.root / rel).resolve() for rel in self._index["entries"]}
        swept = 0
        for path in self.root.rglob("*.bin"):
            if path.resolve() in indexed:
                continue
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        return swept

    def _next_seq(self) -> int:
        self._index["seq"] += 1
        return self._index["seq"]

    def _rel(self, key: StoreKey, kind: str, name: str) -> str:
        return "/".join(key.parts() + (f"{_sanitize(kind)}-{_sanitize(name)}.bin",))

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(e["bytes"] for e in self._index["entries"].values())

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._index["entries"])

    def _evict_to_budget(self, keep: str) -> None:
        if self.byte_budget is None:
            return
        entries = self._index["entries"]
        while self.total_bytes > self.byte_budget:
            victims = [rel for rel in entries if rel != keep]
            if not victims:
                break
            victim = min(victims, key=lambda rel: entries[rel]["seq"])
            self._remove(victim)
            self.evictions += 1
            METRICS.counter("store_evictions_total").inc()
            TRACER.instant("store.evict", victim=victim)

    def _remove(self, rel: str) -> None:
        self._index["entries"].pop(rel, None)
        path = self.root / rel
        try:
            path.unlink()
        except OSError:
            pass

    # -- core API -----------------------------------------------------------

    def put(self, key: StoreKey, kind: str, blob: bytes, name: str | None = None) -> str:
        """Store one precompute entry; returns its name.

        Raises ``ValueError`` if the blob alone exceeds the byte budget —
        the functional analogue of ``buffer_capacity == 0``, where the
        paper's streaming system cannot buffer at all.
        """
        if self.byte_budget is not None and len(blob) > self.byte_budget:
            raise ValueError(
                f"entry of {len(blob)} bytes exceeds the {self.byte_budget}-byte budget"
            )
        with section("store", "store.put", kind=kind), self._lock:
            seq = self._next_seq()
            if name is None:
                name = f"{seq:08d}"
            rel = self._rel(key, kind, name)
            path = self.root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(blob)
            # "created" orders the FIFO drain (names/take); "seq" is the LRU
            # recency that get() refreshes and eviction consults.
            self._index["entries"][rel] = {
                "bytes": len(blob), "seq": seq, "created": seq, "kind": kind,
            }
            self._evict_to_budget(keep=rel)
            self._save_index()
        if METRICS.enabled:
            METRICS.counter("store_puts_total", kind=kind).inc()
            METRICS.gauge("store_bytes").set(self.total_bytes)
            METRICS.gauge("store_entries").set(self.entry_count)
        return name

    def get(self, key: StoreKey, kind: str, name: str) -> bytes | None:
        """Fetch an entry (refreshing its LRU position), or None."""
        blob = None
        with section("store", "store.get", kind=kind), self._lock:
            rel = self._rel(key, kind, name)
            entry = self._index["entries"].get(rel)
            if entry is not None:
                try:
                    blob = (self.root / rel).read_bytes()
                except OSError:
                    self._remove(rel)
                    self._save_index()
                else:
                    entry["seq"] = self._next_seq()
                    self._save_index()
        METRICS.counter(
            "store_gets_total", result="hit" if blob is not None else "miss"
        ).inc()
        return blob

    def take(self, key: StoreKey, kind: str, name: str | None = None) -> bytes | None:
        """Consume an entry: fetch and delete (oldest-inserted if unnamed).

        This is the buffer-drain operation — the online phase takes one
        precompute out of storage, freeing budget for the offline
        pipeline to refill, exactly the cycle the simulator models. One
        index write per consume (no LRU refresh for an entry that is
        being removed anyway).
        """
        blob = None
        with section("store", "store.take", kind=kind), self._lock:
            if name is None:
                names = self.names(key, kind)
                name = names[0] if names else None
            if name is not None:
                rel = self._rel(key, kind, name)
                if rel in self._index["entries"]:
                    try:
                        blob = (self.root / rel).read_bytes()
                    except OSError:
                        blob = None
                    self._remove(rel)
                    self._save_index()
        if METRICS.enabled:
            METRICS.counter(
                "store_takes_total",
                result="hit" if blob is not None else "miss",
            ).inc()
            METRICS.gauge("store_bytes").set(self.total_bytes)
            METRICS.gauge("store_entries").set(self.entry_count)
        return blob

    def delete(self, key: StoreKey, kind: str, name: str) -> bool:
        with section("store", "store.delete", kind=kind), self._lock:
            rel = self._rel(key, kind, name)
            if rel not in self._index["entries"]:
                return False
            self._remove(rel)
            self._save_index()
            return True

    def names(self, key: StoreKey, kind: str) -> list[str]:
        """Entry names of one kind under a key, oldest (by insertion) first.

        Ordered by insertion, not LRU recency — peeking an entry with
        :meth:`get` must not change which one :meth:`take` drains next.
        """
        prefix = "/".join(key.parts()) + "/" + _sanitize(kind) + "-"
        with self._lock:
            matches = [
                (entry.get("created", entry["seq"]), rel)
                for rel, entry in self._index["entries"].items()
                if rel.startswith(prefix)
            ]
        return [
            rel[len(prefix) : -len(".bin")] for _, rel in sorted(matches)
        ]


# -- offline transcript codec ---------------------------------------------------
#
# One "offline" entry is everything HybridProtocol.run_offline computes:
# the per-layer mask/share vectors and every ReLU layer's garbled bundle.
# The circuit topologies are NOT stored — both parties derive them from
# the (public) network shape, the same convention the channel codec uses.


def _lp(blob: bytes) -> bytes:
    return struct.pack("<I", len(blob)) + blob


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def u32(self) -> int:
        (value,) = struct.unpack_from("<I", self.data, self.offset)
        self.offset += 4
        return value

    def blob(self) -> bytes:
        n = self.u32()
        out = self.data[self.offset : self.offset + n]
        self.offset += n
        return out

    def done(self) -> bool:
        return self.offset == len(self.data)


_ROLES = ("server", "client")


def serialize_offline_transcript(
    modulus: int,
    client_r: list[list[int]],
    server_s: list[list[int]],
    client_shares: list[list[int]],
    bundles: dict[int, tuple[int, list, list, list]],
    garbler_role: str = "server",
    truncate_bits: int = 0,
) -> bytes:
    """Pack one offline phase's outputs into a store entry.

    ``bundles`` maps ReLU step position to (mask_index, garbled circuits,
    input encodings, evaluator/garbler label maps). The garbler role and
    truncation are recorded so an importer with a different circuit shape
    (the mask owner flips between roles) is rejected instead of
    mis-binding stored labels to the wrong wires.
    """
    out = [
        # Container magic "RPC2": bumped with the wire-format versioning of
        # serialize.py (every embedded blob now carries a magic + version
        # header), so a store minted by a pre-versioning build is rejected
        # at the container level instead of crashing mid-parse.
        b"RPC2",
        struct.pack(
            "<BI", _ROLES.index(garbler_role), truncate_bits
        ),
        struct.pack("<I", len(client_r)),
    ]
    for r, s, share in zip(client_r, server_s, client_shares):
        out.append(_lp(serialize_field_vector(r, modulus)))
        out.append(_lp(serialize_field_vector(s, modulus)))
        out.append(_lp(serialize_field_vector(share, modulus)))
    out.append(struct.pack("<I", len(bundles)))
    for pos in sorted(bundles):
        mask_index, circuits, encodings, labels = bundles[pos]
        out.append(struct.pack("<III", pos, mask_index, len(circuits)))
        for i, garbled in enumerate(circuits):
            out.append(_lp(serialize_garbled_circuit(garbled)))
            out.append(_lp(serialize_input_encoding(encodings[i])))
            out.append(_lp(serialize_label_map(labels[i])))
    return b"".join(out)


def deserialize_offline_transcript(
    data: bytes,
    circuits_by_pos: dict[int, object],
    garbler_role: str | None = None,
    truncate_bits: int | None = None,
) -> tuple[list, list, list, dict]:
    """Unpack a store entry, rebinding each bundle to its public circuit.

    When ``garbler_role`` / ``truncate_bits`` are given, a transcript
    minted under a different role or truncation raises ``ValueError`` —
    those change the (public) circuit wire assignment, so the stored
    label maps would silently bind to the wrong wires.
    """
    if data[:4] == b"RPC1":
        raise ValueError(
            "offline transcript was minted by a pre-wire-versioning build "
            "(container RPC1); re-mint the precompute store"
        )
    if data[:4] != b"RPC2":
        raise ValueError("not an offline transcript blob")
    reader = _Reader(data)
    reader.offset = 4
    (role_index,) = struct.unpack_from("<B", data, reader.offset)
    reader.offset += 1
    stored_truncate = reader.u32()
    if role_index >= len(_ROLES):
        raise ValueError("unknown garbler role in offline transcript")
    if garbler_role is not None and _ROLES[role_index] != garbler_role:
        raise ValueError(
            f"stored transcript was minted for garbler={_ROLES[role_index]!r}, "
            f"not {garbler_role!r}"
        )
    if truncate_bits is not None and stored_truncate != truncate_bits:
        raise ValueError(
            f"stored transcript uses truncate_bits={stored_truncate}, "
            f"not {truncate_bits}"
        )
    n_linears = reader.u32()
    client_r, server_s, client_shares = [], [], []
    for _ in range(n_linears):
        client_r.append(deserialize_field_vector(reader.blob()))
        server_s.append(deserialize_field_vector(reader.blob()))
        client_shares.append(deserialize_field_vector(reader.blob()))
    bundles: dict[int, tuple[int, list, list, list]] = {}
    n_bundles = reader.u32()
    for _ in range(n_bundles):
        pos = reader.u32()
        mask_index = reader.u32()
        count = reader.u32()
        circuit = circuits_by_pos[pos]
        circuits, encodings, labels = [], [], []
        for _ in range(count):
            circuits.append(deserialize_garbled_circuit(reader.blob(), circuit))
            encodings.append(deserialize_input_encoding(reader.blob()))
            labels.append(deserialize_label_map(reader.blob()))
        bundles[pos] = (mask_index, circuits, encodings, labels)
    if not reader.done():
        raise ValueError("trailing bytes in offline transcript")
    return client_r, server_s, client_shares, bundles
