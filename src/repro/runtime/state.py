"""Per-process state management for pool workers (fork-safety).

The crypto substrate keeps process-global state for speed: the NTT-context
LRU in :mod:`repro.he.polynomial`, the :class:`~repro.backend.rns.RnsContext`
share cache, and the module-level backend selection in
:mod:`repro.backend`. Under ``fork`` start methods a worker inherits all of
it, which is *correct* for derived data (twiddle tables, CRT constants,
the modulus-factor registry — pure functions of their keys) but wrong for
*selections*: a worker must honor its own ``REPRO_BACKEND`` environment,
and must never continue the parent's RNG streams.

:func:`reset_process_state` is the one hook pool worker initializers call;
it drops the caches (cheap to rebuild, and rebuilding re-resolves backends
under the worker's own selection) and re-reads the backend environment.
Worker RNG state lives here too: each worker derives an independent
:class:`~repro.crypto.rng.SecureRandom` from (base seed, worker index) so
no two workers — and never the parent — share a stream.
"""

from __future__ import annotations

import hashlib

from repro.crypto.rng import SecureRandom

_worker_rng: SecureRandom | None = None
_worker_index: int | None = None


def reset_process_state() -> None:
    """Reset process-global crypto state after a fork (or fresh spawn).

    Clears the NTT-context LRU and the RnsContext share cache, and
    re-reads the backend selection from ``REPRO_BACKEND`` (dropping any
    programmatic ``set_backend`` the parent made). The modulus-factor
    registry in :mod:`repro.crypto.modmath` is deliberately *not* cleared:
    it holds derived, input-independent data (a factorization is a pure
    property of the modulus), so inherited copies are safe, and workers
    re-register on demand anyway.
    """
    from repro.backend import RnsContext, reset_backend_selection
    from repro.he.polynomial import clear_ntt_cache

    clear_ntt_cache()
    RnsContext.clear_cache()
    reset_backend_selection()


def derive_worker_seed(base_seed: int, worker_index: int) -> int:
    """Independent 128-bit seed for one worker, stable across runs.

    Hash-derived rather than ``base_seed + index`` so adjacent worker
    seeds share no structure with each other or with a parent that seeds
    its own generators from the same base.
    """
    material = b"repro.runtime.worker" + base_seed.to_bytes(
        32, "little", signed=False
    ) + worker_index.to_bytes(8, "little")
    return int.from_bytes(hashlib.sha256(material).digest()[:16], "little")


def init_worker_rng(base_seed: int | None, worker_index: int) -> None:
    """Install this worker's private RNG (None base = OS entropy)."""
    global _worker_rng, _worker_index
    _worker_index = worker_index
    if base_seed is None:
        _worker_rng = SecureRandom()
    else:
        _worker_rng = SecureRandom(derive_worker_seed(base_seed, worker_index))


def worker_rng() -> SecureRandom:
    """The per-worker RNG; falls back to OS entropy outside a pool worker."""
    global _worker_rng
    if _worker_rng is None:
        _worker_rng = SecureRandom()
    return _worker_rng


def worker_index() -> int | None:
    """This process's pool worker index (None outside a pool worker)."""
    return _worker_index
