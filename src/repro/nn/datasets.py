"""Dataset shape specifications and synthetic input generation.

Private-inference cost depends only on the input resolution and the network
architecture, never on pixel values, so synthetic uniformly random inputs
exercise exactly the same code paths as the real datasets (the substitution
the system design documents for CIFAR-100 / TinyImageNet / ImageNet).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.shapes import TensorShape


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    input_shape: TensorShape
    num_classes: int

    def synthetic_input(self, rng: np.random.Generator) -> np.ndarray:
        s = self.input_shape
        return rng.random((s.channels, s.height, s.width))

    def synthetic_field_input(
        self, rng: np.random.Generator, modulus: int
    ) -> np.ndarray:
        s = self.input_shape
        return rng.integers(
            0, modulus, size=(s.channels, s.height, s.width)
        ).astype(object)


CIFAR100 = DatasetSpec("CIFAR-100", TensorShape(3, 32, 32), 100)
TINY_IMAGENET = DatasetSpec("TinyImageNet", TensorShape(3, 64, 64), 200)
IMAGENET = DatasetSpec("ImageNet", TensorShape(3, 224, 224), 1000)

DATASETS = {d.name: d for d in (CIFAR100, TINY_IMAGENET, IMAGENET)}


def tiny_dataset(size: int = 8, channels: int = 1, classes: int = 4) -> DatasetSpec:
    """A miniature dataset spec for functional end-to-end protocol tests."""
    return DatasetSpec("Tiny", TensorShape(channels, size, size), classes)
