"""The Network container: shape inference, cost enumeration, execution."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Residual
from repro.nn.shapes import LinearLayerInfo, ReluLayerInfo, TensorShape


class Network:
    """An ordered stack of layers with an input shape.

    Besides running inferences (float or mod-p), the network enumerates its
    linear and ReLU layers — the two quantities every protocol cost in the
    paper is built from — including layers nested inside residual blocks.
    """

    def __init__(self, name: str, input_shape: TensorShape, layers: list[Layer]):
        self.name = name
        self.input_shape = input_shape
        self.layers = layers
        self._validate_shapes()

    def _validate_shapes(self) -> None:
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        self.output_shape = shape

    # -- execution -------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape != self._expected_input():
            raise ValueError(f"expected input {self._expected_input()}, got {x.shape}")
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        if x.shape != self._expected_input():
            raise ValueError(f"expected input {self._expected_input()}, got {x.shape}")
        for layer in self.layers:
            x = layer.forward_mod(x, modulus)
        return x

    def _expected_input(self) -> tuple:
        s = self.input_shape
        return (s.channels,) if s.is_flat else (s.channels, s.height, s.width)

    # -- cost enumeration --------------------------------------------------------

    def _walk(self, layers: list[Layer], shape: TensorShape, linear, relus):
        from repro.nn.layers import AvgPool2d, Conv2d, Linear, ReLU

        for layer in layers:
            out_shape = layer.output_shape(shape)
            if isinstance(layer, Residual):
                self._walk(layer.body, shape, linear, relus)
            elif isinstance(layer, Conv2d):
                linear.append(
                    LinearLayerInfo(
                        layer.name, "conv", shape, out_shape, layer.kernel, layer.stride
                    )
                )
            elif isinstance(layer, Linear):
                linear.append(
                    LinearLayerInfo(
                        layer.name,
                        "fc",
                        TensorShape(shape.elements),
                        out_shape,
                    )
                )
            elif isinstance(layer, ReLU):
                relus.append(ReluLayerInfo(layer.name, shape.elements))
            shape = out_shape

    def linear_layers(self) -> list[LinearLayerInfo]:
        linear: list[LinearLayerInfo] = []
        self._walk(self.layers, self.input_shape, linear, [])
        return linear

    def relu_layers(self) -> list[ReluLayerInfo]:
        relus: list[ReluLayerInfo] = []
        self._walk(self.layers, self.input_shape, [], relus)
        return relus

    @property
    def relu_count(self) -> int:
        return sum(r.count for r in self.relu_layers())

    @property
    def linear_layer_count(self) -> int:
        return len(self.linear_layers())

    @property
    def parameter_count(self) -> int:
        return sum(info.weight_count for info in self.linear_layers())

    @property
    def mac_count(self) -> int:
        return sum(info.macs for info in self.linear_layers())

    def randomize_weights(self, modulus: int, rng: np.random.Generator) -> None:
        """Fill every linear layer with uniform field weights (for tests)."""
        from repro.nn.layers import Conv2d, Linear

        def visit(layers):
            for layer in layers:
                if isinstance(layer, Residual):
                    visit(layer.body)
                elif isinstance(layer, (Conv2d, Linear)):
                    layer.weights = rng.integers(
                        0, modulus, size=layer.weights.shape
                    ).astype(object)

        visit(self.layers)

    def summary(self) -> str:
        lines = [f"{self.name}: input {self.input_shape}"]
        lines.append(f"  linear layers: {self.linear_layer_count}")
        lines.append(f"  ReLUs: {self.relu_count:,}")
        lines.append(f"  parameters: {self.parameter_count:,}")
        lines.append(f"  MACs: {self.mac_count:,}")
        return "\n".join(lines)
