"""Plaintext neural-network substrate: layers, models, datasets, shapes."""

from repro.nn.datasets import (
    CIFAR100,
    DATASETS,
    IMAGENET,
    TINY_IMAGENET,
    DatasetSpec,
    tiny_dataset,
)
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    ReLU,
    Residual,
)
from repro.nn.models import (
    MODEL_BUILDERS,
    resnet18,
    resnet32,
    tiny_cnn,
    tiny_mlp,
    vgg16,
)
from repro.nn.network import Network
from repro.nn.quantize import FixedPointEncoder, quantize_network
from repro.nn.shapes import LinearLayerInfo, ReluLayerInfo, TensorShape
from repro.nn.transforms import polynomialize_relus, prune_relus

__all__ = [
    "AvgPool2d",
    "CIFAR100",
    "Conv2d",
    "DATASETS",
    "DatasetSpec",
    "FixedPointEncoder",
    "Flatten",
    "polynomialize_relus",
    "prune_relus",
    "quantize_network",
    "GlobalAvgPool",
    "IMAGENET",
    "Layer",
    "Linear",
    "LinearLayerInfo",
    "MODEL_BUILDERS",
    "Network",
    "ReLU",
    "ReluLayerInfo",
    "Residual",
    "TINY_IMAGENET",
    "TensorShape",
    "resnet18",
    "resnet32",
    "tiny_cnn",
    "tiny_mlp",
    "vgg16",
]
