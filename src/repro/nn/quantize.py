"""Fixed-point quantization: run float networks under the integer protocol.

DELPHI evaluates fixed-point arithmetic over its prime field: reals are
scaled by 2^f and rounded, products carry scale 2^(2f), and the garbled
ReLU truncates back to 2^f. This module provides the encoder between the
float world and the field world, plus a helper that quantizes a float
network's weights in place, so the functional protocol (with
``truncate_bits=f``) approximates real-valued inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2d, Linear, Residual
from repro.nn.network import Network


@dataclass(frozen=True)
class FixedPointEncoder:
    """Maps reals to Z_p with ``fraction_bits`` of fractional precision."""

    modulus: int
    fraction_bits: int

    @property
    def scale(self) -> int:
        return 1 << self.fraction_bits

    @property
    def max_magnitude(self) -> float:
        """Largest representable magnitude (half the field, descaled)."""
        return (self.modulus // 2) / self.scale

    def encode(self, value: float) -> int:
        scaled = round(value * self.scale)
        if abs(scaled) > self.modulus // 2:
            raise OverflowError(
                f"{value} does not fit: |{scaled}| > {self.modulus // 2}"
            )
        return scaled % self.modulus

    def encode_vector(self, values) -> list[int]:
        return [self.encode(float(v)) for v in np.asarray(values).reshape(-1)]

    def decode(self, element: int, extra_scale_bits: int = 0) -> float:
        half = self.modulus // 2
        signed = element - self.modulus if element > half else element
        return signed / (1 << (self.fraction_bits + extra_scale_bits))

    def decode_vector(self, elements: list[int], extra_scale_bits: int = 0) -> list[float]:
        return [self.decode(e, extra_scale_bits) for e in elements]


def quantize_network(
    network: Network, encoder: FixedPointEncoder
) -> Network:
    """Replace every linear layer's float weights with field elements.

    The returned network shares topology with the input; its ``forward_mod``
    now computes the fixed-point pipeline the protocol evaluates.
    """

    def convert(layers):
        for layer in layers:
            if isinstance(layer, Residual):
                convert(layer.body)
            elif isinstance(layer, (Conv2d, Linear)):
                flat = [encoder.encode(float(w)) for w in layer.weights.reshape(-1)]
                layer.weights = np.array(flat, dtype=object).reshape(
                    layer.weights.shape
                )

    convert(network.layers)
    return network


def fixed_point_reference(
    network: Network, x_field: list[int], encoder: FixedPointEncoder
) -> list[float]:
    """Plaintext fixed-point pipeline with per-ReLU truncation.

    Mirrors what the protocol with ``truncate_bits = encoder.fraction_bits``
    computes: scale doubles across each linear layer and the truncating
    ReLU restores it, so the final logits carry 2f fractional bits.
    """
    from repro.core.protocol import lower_network

    p = encoder.modulus
    f = encoder.fraction_bits
    lowered = lower_network(network, p)
    vec = [v % p for v in x_field]
    threshold = (p + 1) // 2
    for kind, idx in lowered.steps:
        lin = lowered.linears[idx]
        if kind == "linear":
            vec = [
                sum(lin.matrix[i][j] * vec[j] for j in range(lin.n_in)) % p
                for i in range(lin.n_out)
            ]
        else:
            vec = [(v >> f) if v < threshold else 0 for v in vec]
    return encoder.decode_vector(vec, extra_scale_bits=f)
