"""Tensor shape bookkeeping for network cost analysis."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TensorShape:
    """A (channels, height, width) activation shape; FC activations use
    channels = n, height = width = 1."""

    channels: int
    height: int = 1
    width: int = 1

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width

    @property
    def is_flat(self) -> bool:
        return self.height == 1 and self.width == 1

    def __str__(self) -> str:
        if self.is_flat:
            return f"({self.channels},)"
        return f"({self.channels}, {self.height}, {self.width})"


@dataclass(frozen=True)
class LinearLayerInfo:
    """Shape summary of one linear (conv or FC) layer for the HE cost model."""

    name: str
    kind: str  # "conv" or "fc"
    in_shape: TensorShape
    out_shape: TensorShape
    kernel: int = 1
    stride: int = 1

    @property
    def weight_count(self) -> int:
        if self.kind == "conv":
            return (
                self.out_shape.channels
                * self.in_shape.channels
                * self.kernel
                * self.kernel
            )
        return self.in_shape.elements * self.out_shape.elements

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (plaintext FLOPs / 2)."""
        if self.kind == "conv":
            return (
                self.out_shape.elements
                * self.in_shape.channels
                * self.kernel
                * self.kernel
            )
        return self.weight_count


@dataclass(frozen=True)
class ReluLayerInfo:
    """One ReLU layer: the number of activations garbled per inference."""

    name: str
    count: int
