"""PI-friendly network transformations (§7: ReLU-lean architectures).

The paper's Figure 14 projects a 10x ReLU reduction from techniques like
DeepReDuce (ReLU pruning) and DELPHI/AESPA (replacing ReLUs with
polynomial activations evaluated under secret sharing). These transforms
model both on our Network objects so their system-level effect can be
studied with the same cost machinery:

* :func:`prune_relus` — drop a fraction of ReLU layers entirely
  (DeepReDuce-style), merging the adjacent linear regions.
* :func:`polynomialize_relus` — swap a fraction of ReLU layers for
  square activations costed as Beaver-triple SS work instead of GCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import Layer, ReLU, Residual
from repro.nn.network import Network


def _clone_layers(layers: list[Layer], keep_relu) -> list[Layer]:
    out = []
    for layer in layers:
        if isinstance(layer, Residual):
            out.append(Residual(_clone_layers(layer.body, keep_relu), layer.name))
        elif isinstance(layer, ReLU):
            if keep_relu(layer):
                out.append(layer)
        else:
            out.append(layer)
    return out


def prune_relus(network: Network, keep_fraction: float) -> Network:
    """Remove whole ReLU layers until only ~keep_fraction of ReLUs remain.

    Layers are dropped largest-first (the DeepReDuce observation that the
    widest early layers contribute the least accuracy per ReLU), so the
    ReLU count falls as fast as possible per removed layer.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    relus = network.relu_layers()
    total = sum(r.count for r in relus)
    target = keep_fraction * total
    by_size = sorted(relus, key=lambda r: -r.count)
    dropped: set[str] = set()
    remaining = total
    for info in by_size:
        if remaining <= target:
            break
        dropped.add(info.name)
        remaining -= info.count

    pruned = _clone_layers(network.layers, lambda l: l.name not in dropped)
    return Network(
        f"{network.name}+prune{keep_fraction:g}", network.input_shape, pruned
    )


@dataclass(frozen=True)
class PolynomializedCosts:
    """Cost shift from replacing ReLU layers with square activations."""

    network: Network
    gc_relus: int  # ReLUs still evaluated with garbled circuits
    poly_activations: int  # activations now costed as one Beaver multiply

    @property
    def gc_fraction(self) -> float:
        total = self.gc_relus + self.poly_activations
        return self.gc_relus / total if total else 0.0

    def beaver_triple_bytes(self, field_bytes: int = 6) -> int:
        """Extra offline bytes: one triple (3 shares) per activation."""
        return 3 * field_bytes * self.poly_activations

    def online_opening_bytes(self, field_bytes: int = 6) -> int:
        """Online openings: two masked values per multiplication, each way."""
        return 4 * field_bytes * self.poly_activations


def polynomialize_relus(network: Network, poly_fraction: float) -> PolynomializedCosts:
    """Cost model for converting a fraction of ReLU layers to x^2 (AESPA).

    Whole layers convert, largest first, until at least ``poly_fraction``
    of activations are polynomial. The network's shapes are unchanged —
    only the protocol costs move from GC to SS.
    """
    if not 0.0 <= poly_fraction <= 1.0:
        raise ValueError("poly_fraction must be in [0, 1]")
    relus = network.relu_layers()
    total = sum(r.count for r in relus)
    target = poly_fraction * total
    converted = 0
    for info in sorted(relus, key=lambda r: -r.count):
        if converted >= target:
            break
        converted += info.count
    return PolynomializedCosts(
        network=network,
        gc_relus=total - converted,
        poly_activations=converted,
    )
