"""Plaintext neural-network layers over floats and over Z_p.

The integer (``forward_mod``) path is the reference semantics for the
private protocols: linear layers are exact ring operations, ReLU uses the
centered-sign convention shared with the garbled circuit, and average
pooling is realized as *sum* pooling (the 1/k^2 scale is folded into the
next layer's weights in fixed-point deployments, and a pure scale never
changes shapes, ReLU counts, or protocol costs).
"""

from __future__ import annotations

import numpy as np

from repro.nn.shapes import TensorShape


class Layer:
    """Base layer interface."""

    name: str = "layer"

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float forward pass."""
        raise NotImplementedError

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        """Exact forward pass over Z_modulus (protocol reference)."""
        raise NotImplementedError

    @property
    def is_linear(self) -> bool:
        return False

    @property
    def is_relu(self) -> bool:
        return False


def _as_chw(x: np.ndarray) -> np.ndarray:
    if x.ndim != 3:
        raise ValueError(f"expected (C,H,W) input, got shape {x.shape}")
    return x


class Conv2d(Layer):
    """2-D convolution with 'same' padding at stride 1, or strided downsample."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        weights: np.ndarray | None = None,
        name: str = "conv",
    ):
        if kernel % 2 == 0:
            raise ValueError("only odd kernels are supported ('same' padding)")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = kernel // 2
        self.name = name
        if weights is None:
            weights = np.zeros((out_channels, in_channels, kernel, kernel))
        if weights.shape != (out_channels, in_channels, kernel, kernel):
            raise ValueError("weight shape mismatch")
        self.weights = weights

    @property
    def is_linear(self) -> bool:
        return True

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        if in_shape.channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} channels, got {in_shape}"
            )
        return TensorShape(
            self.out_channels,
            -(-in_shape.height // self.stride),
            -(-in_shape.width // self.stride),
        )

    def _conv(self, x: np.ndarray, accumulate_dtype) -> np.ndarray:
        x = _as_chw(x)
        c, h, w = x.shape
        k, pad, stride = self.kernel, self.padding, self.stride
        out_h, out_w = -(-h // stride), -(-w // stride)
        padded = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=accumulate_dtype)
        padded[:, pad : pad + h, pad : pad + w] = x
        out = np.zeros((self.out_channels, out_h, out_w), dtype=accumulate_dtype)
        weights = self.weights.astype(accumulate_dtype)
        for ky in range(k):
            for kx in range(k):
                window = padded[:, ky : ky + h : stride, kx : kx + w : stride]
                # (C_out, C_in) x (C_in, out_h*out_w)
                contrib = weights[:, :, ky, kx] @ window.reshape(c, -1)
                out += contrib.reshape(self.out_channels, out_h, out_w)
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._conv(x, np.float64)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        return self._conv(x.astype(object), object) % modulus


class Linear(Layer):
    """Fully connected layer on flattened activations."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weights: np.ndarray | None = None,
        name: str = "fc",
    ):
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        if weights is None:
            weights = np.zeros((out_features, in_features))
        if weights.shape != (out_features, in_features):
            raise ValueError("weight shape mismatch")
        self.weights = weights

    @property
    def is_linear(self) -> bool:
        return True

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        if in_shape.elements != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got {in_shape}"
            )
        return TensorShape(self.out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.weights @ x.reshape(-1)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        flat = x.reshape(-1).astype(object)
        return (self.weights.astype(object) @ flat) % modulus


class ReLU(Layer):
    """ReLU; in field mode, values in [ceil(p/2), p) are negative."""

    def __init__(self, name: str = "relu"):
        self.name = name

    @property
    def is_relu(self) -> bool:
        return True

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return in_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        threshold = (modulus + 1) // 2
        flat = x.reshape(-1)
        out = np.array(
            [v if v < threshold else 0 for v in flat.tolist()], dtype=object
        )
        return out.reshape(x.shape)


class AvgPool2d(Layer):
    """Average pooling (sum pooling over Z_p, see module docstring)."""

    def __init__(self, kernel: int = 2, name: str = "avgpool"):
        self.kernel = kernel
        self.name = name

    @property
    def is_linear(self) -> bool:
        return False  # folded into adjacent linear layers in the protocol

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        if in_shape.height % self.kernel or in_shape.width % self.kernel:
            raise ValueError(
                f"{self.name}: {in_shape} not divisible by kernel {self.kernel}"
            )
        return TensorShape(
            in_shape.channels,
            in_shape.height // self.kernel,
            in_shape.width // self.kernel,
        )

    def _pool(self, x: np.ndarray) -> np.ndarray:
        c, h, w = _as_chw(x).shape
        k = self.kernel
        return x.reshape(c, h // k, k, w // k, k).sum(axis=(2, 4))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._pool(x) / (self.kernel * self.kernel)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        return self._pool(x.astype(object)) % modulus


class GlobalAvgPool(Layer):
    """Global spatial pooling down to (C,) — sum semantics over Z_p."""

    def __init__(self, name: str = "gap"):
        self.name = name

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return TensorShape(in_shape.channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return _as_chw(x).mean(axis=(1, 2))

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        return _as_chw(x).astype(object).sum(axis=(1, 2)) % modulus


class Flatten(Layer):
    def __init__(self, name: str = "flatten"):
        self.name = name

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return TensorShape(in_shape.elements)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(-1)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        return x.reshape(-1)


class Residual(Layer):
    """A residual block: out = ReLU-free body(x) + shortcut(x).

    The body is a sub-network; the shortcut is identity (zero-padded across
    channels / strided spatially when shapes change, i.e. the paper's
    downsample-free 'option A' shortcut without projection convolutions).
    """

    def __init__(self, body: list[Layer], name: str = "residual"):
        self.body = body
        self.name = name

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        shape = in_shape
        for layer in self.body:
            shape = layer.output_shape(shape)
        return shape

    def _shortcut(self, x: np.ndarray, out_shape: tuple[int, int, int]) -> np.ndarray:
        c_out, h_out, w_out = out_shape
        c_in, h_in, w_in = x.shape
        stride_h = h_in // h_out if h_out else 1
        stride_w = w_in // w_out if w_out else 1
        strided = x[:, ::stride_h, ::stride_w]
        if c_out == c_in:
            return strided
        padded = np.zeros(out_shape, dtype=x.dtype)
        padded[:c_in] = strided
        return padded

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.body:
            out = layer.forward(out)
        return out + self._shortcut(x, out.shape)

    def forward_mod(self, x: np.ndarray, modulus: int) -> np.ndarray:
        out = x
        for layer in self.body:
            out = layer.forward_mod(out, modulus)
        return (out + self._shortcut(x, out.shape)) % modulus
