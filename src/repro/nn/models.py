"""Network architecture builders: ResNet-18, ResNet-32, VGG-16, tiny CNNs.

Following the paper's methodology (§3): CIFAR-style stems (3x3 stride-1
first convolution, no initial pooling) for every input resolution,
projection-free identity shortcuts ("remove downsampling"), and max pooling
replaced by average pooling. These choices reproduce the paper's ReLU
counts — e.g. ResNet-18 on 64x64 TinyImageNet yields ~2.23 M ReLUs, whose
garbled circuits are the 41 GB of Figure 3.
"""

from __future__ import annotations

from repro.nn.datasets import DatasetSpec
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    ReLU,
    Residual,
)
from repro.nn.network import Network


def _basic_block(in_ch: int, out_ch: int, stride: int, tag: str) -> list:
    """Two 3x3 convolutions with an identity shortcut and two ReLUs."""
    body = [
        Conv2d(in_ch, out_ch, 3, stride, name=f"{tag}.conv1"),
        ReLU(name=f"{tag}.relu1"),
        Conv2d(out_ch, out_ch, 3, 1, name=f"{tag}.conv2"),
    ]
    return [Residual(body, name=tag), ReLU(name=f"{tag}.relu2")]


def resnet18(dataset: DatasetSpec) -> Network:
    """ResNet-18 (4 stages x 2 basic blocks, 64-512 channels)."""
    layers = [
        Conv2d(dataset.input_shape.channels, 64, 3, 1, name="conv1"),
        ReLU(name="relu1"),
    ]
    in_ch = 64
    for stage, (out_ch, blocks) in enumerate(
        [(64, 2), (128, 2), (256, 2), (512, 2)], start=1
    ):
        for block in range(blocks):
            stride = 2 if stage > 1 and block == 0 else 1
            layers += _basic_block(in_ch, out_ch, stride, f"s{stage}b{block}")
            in_ch = out_ch
    layers += [GlobalAvgPool(), Linear(512, dataset.num_classes, name="fc")]
    return Network(f"ResNet-18/{dataset.name}", dataset.input_shape, layers)


def resnet32(dataset: DatasetSpec) -> Network:
    """CIFAR-style ResNet-32 (3 stages x 5 basic blocks, 16-64 channels)."""
    layers = [
        Conv2d(dataset.input_shape.channels, 16, 3, 1, name="conv1"),
        ReLU(name="relu1"),
    ]
    in_ch = 16
    for stage, (out_ch, blocks) in enumerate([(16, 5), (32, 5), (64, 5)], start=1):
        for block in range(blocks):
            stride = 2 if stage > 1 and block == 0 else 1
            layers += _basic_block(in_ch, out_ch, stride, f"s{stage}b{block}")
            in_ch = out_ch
    layers += [GlobalAvgPool(), Linear(64, dataset.num_classes, name="fc")]
    return Network(f"ResNet-32/{dataset.name}", dataset.input_shape, layers)


_VGG16_CONFIG = [64, 64, "P", 128, 128, "P", 256, 256, 256, "P", 512, 512, 512, "P", 512, 512, 512, "P"]


def vgg16(dataset: DatasetSpec) -> Network:
    """VGG-16 with average pooling; ImageNet keeps the two 4096 FC layers."""
    layers: list = []
    in_ch = dataset.input_shape.channels
    conv_index = 0
    for item in _VGG16_CONFIG:
        if item == "P":
            layers.append(AvgPool2d(2))
            continue
        conv_index += 1
        layers += [
            Conv2d(in_ch, item, 3, 1, name=f"conv{conv_index}"),
            ReLU(name=f"relu{conv_index}"),
        ]
        in_ch = item
    spatial = dataset.input_shape.height // 32  # five 2x poolings
    flat = 512 * spatial * spatial
    layers.append(Flatten())
    if dataset.input_shape.height >= 224:
        layers += [
            Linear(flat, 4096, name="fc1"),
            ReLU(name="fc1.relu"),
            Linear(4096, 4096, name="fc2"),
            ReLU(name="fc2.relu"),
            Linear(4096, dataset.num_classes, name="fc3"),
        ]
    else:
        layers.append(Linear(flat, dataset.num_classes, name="fc"))
    return Network(f"VGG-16/{dataset.name}", dataset.input_shape, layers)


def tiny_cnn(dataset: DatasetSpec, width: int = 2) -> Network:
    """A miniature conv-ReLU-conv-ReLU-FC network for functional 2PC tests.

    Small enough that the full DELPHI protocol — real BFV, real garbled
    circuits, real OT — runs in seconds under pure Python.
    """
    s = dataset.input_shape
    layers = [
        Conv2d(s.channels, width, 3, 1, name="conv1"),
        ReLU(name="relu1"),
        Conv2d(width, width, 3, 1, name="conv2"),
        ReLU(name="relu2"),
        Flatten(),
        Linear(width * s.height * s.width, dataset.num_classes, name="fc"),
    ]
    return Network(f"TinyCNN/{dataset.name}", s, layers)


def tiny_mlp(dataset: DatasetSpec, hidden: int = 8) -> Network:
    """A miniature MLP (FC-ReLU-FC) for the fastest protocol tests."""
    s = dataset.input_shape
    layers = [
        Flatten(),
        Linear(s.elements, hidden, name="fc1"),
        ReLU(name="relu1"),
        Linear(hidden, dataset.num_classes, name="fc2"),
    ]
    return Network(f"TinyMLP/{dataset.name}", s, layers)


MODEL_BUILDERS = {
    "ResNet-18": resnet18,
    "ResNet-32": resnet32,
    "VGG-16": vgg16,
}
