"""Pure-Python reference backend: ``list[int]`` vectors, exact for any q.

This is the seed implementation's arithmetic moved behind the backend
interface — every other backend is validated bit-for-bit against it
(``tests/test_backend_parity.py``). It has no modulus ceiling because
Python ints are arbitrary precision, which is why oversized moduli
(q >= 2^62) always land here.
"""

from __future__ import annotations

from typing import Sequence

from repro.backend.base import ComputeBackend, NttPlan
from repro.crypto.modmath import mod_inverse


def _iterative_ntt(values: list[int], root: int, q: int) -> list[int]:
    """In-place iterative Cooley-Tukey NTT; ``root`` is a primitive n-th root."""
    n = len(values)
    a = list(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            a[i], a[j] = a[j], a[i]
    length = 2
    while length <= n:
        w_len = pow(root, n // length, q)
        for start in range(0, n, length):
            w = 1
            half = length // 2
            for k in range(start, start + half):
                u = a[k]
                v = a[k + half] * w % q
                a[k] = (u + v) % q
                a[k + half] = (u - v) % q
                w = w * w_len % q
        length <<= 1
    return a


class _PythonRnsDigitPlan:
    """CRT constants for the exact reference base conversion."""

    __slots__ = ("q", "big", "base_bits")

    def __init__(self, q: int, big: tuple[int, ...], base_bits: int):
        self.q = q
        self.big = big
        self.base_bits = base_bits


class _PythonNttPlan(NttPlan):
    def __init__(self, n: int, q: int, root: int):
        self.n = n
        self.q = q
        self.root = root
        self.root_inv = mod_inverse(root, q)
        self.n_inv = mod_inverse(n, q)

    def forward(self, vec: list[int]) -> list[int]:
        return _iterative_ntt(vec, self.root, self.q)

    def inverse(self, vec: list[int]) -> list[int]:
        q = self.q
        out = _iterative_ntt(vec, self.root_inv, q)
        n_inv = self.n_inv
        return [v * n_inv % q for v in out]

    def inverse_unscaled(self, vec: list[int]) -> list[int]:
        return _iterative_ntt(vec, self.root_inv, self.q)


class PythonBackend(ComputeBackend):
    name = "python"

    def supports_modulus(self, q: int) -> bool:
        return True

    # -- vectors -----------------------------------------------------------

    def asvec(self, values: Sequence[int], q: int) -> list[int]:
        return [int(v) % q for v in values]

    def tolist(self, vec: list[int]) -> list[int]:
        return list(vec)

    def zeros(self, n: int, q: int) -> list[int]:
        return [0] * n

    def veclen(self, vec: list[int]) -> int:
        return len(vec)

    def eq(self, a: list[int], b: list[int]) -> bool:
        return a == b

    # -- elementwise -------------------------------------------------------

    def add(self, a, b, q):
        return [(x + y) % q for x, y in zip(a, b)]

    def sub(self, a, b, q):
        return [(x - y) % q for x, y in zip(a, b)]

    def neg(self, a, q):
        return [-x % q for x in a]

    def mul(self, a, b, q):
        return [x * y % q for x, y in zip(a, b)]

    def scalar_mul(self, a, scalar, q):
        scalar %= q
        return [x * scalar % q for x in a]

    def max_value(self, vec):
        return max(vec)

    # -- structure ---------------------------------------------------------

    def index_array(self, indices):
        return [int(i) for i in indices]

    def permute(self, vec, index):
        return [vec[i] for i in index]

    def automorphism(self, vec, galois_element, q):
        n = len(vec)
        two_n = 2 * n
        out = [0] * n
        for i, c in enumerate(vec):
            if not c:
                continue
            j = i * galois_element % two_n
            if j < n:
                out[j] = (out[j] + c) % q
            else:
                out[j - n] = (out[j - n] - c) % q
        return out

    def decompose(self, vec, base_bits, num_digits, q):
        mask = (1 << base_bits) - 1
        digits = []
        coeffs = list(vec)
        for _ in range(num_digits):
            digits.append([c & mask for c in coeffs])
            coeffs = [c >> base_bits for c in coeffs]
        return digits

    # -- RNS base conversion -----------------------------------------------

    def make_rns_digit_plan(self, primes, q, base_bits):
        # Arbitrary precision is native here, so the "plan" is just the
        # wide CRT constants; this is the reference semantics the numpy
        # limb kernel must match bit for bit.
        return _PythonRnsDigitPlan(
            q=q, big=tuple(q // p for p in primes), base_bits=base_bits
        )

    def rns_digit_split(self, ys, plan, num_digits):
        q, big, w = plan.q, plan.big, plan.base_bits
        mask = (1 << w) - 1
        coeffs = [
            sum(y[j] * m for y, m in zip(ys, big)) % q
            for j in range(len(ys[0]))
        ]
        digits = []
        for _ in range(num_digits):
            digits.append([c & mask for c in coeffs])
            coeffs = [c >> w for c in coeffs]
        return digits

    # -- transforms --------------------------------------------------------

    def make_ntt_plan(self, n, q, root):
        return _PythonNttPlan(n, q, root)

    # -- linear algebra ----------------------------------------------------

    def asmatrix(self, rows, q):
        return [[int(w) % q for w in row] for row in rows]

    def matvec_mod(self, matrix, vec, q):
        rows = matrix
        if hasattr(matrix, "tolist") and not isinstance(matrix, list):
            rows = matrix.tolist()  # ndarray handed across a backend switch
        v = [int(x) for x in vec]
        return [sum(w * x for w, x in zip(row, v)) % q for row in rows]
