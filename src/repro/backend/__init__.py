"""Pluggable vectorized compute backends for the crypto/HE/GC hot path.

The functional substrate (NTT, ring polynomials, BFV, garbled-circuit
label batches, lowered linear layers) runs on whichever
:class:`~repro.backend.base.ComputeBackend` the registry resolves:

* ``python`` — exact arbitrary-precision reference (any modulus).
* ``numpy``  — vectorized ``uint64`` residue arithmetic (moduli < 2^62),
  typically 10-100x faster; only registered when numpy imports.

Selection precedence, highest first:

1. an explicit ``backend=`` argument on the constructor being called
   (``RingPoly``, ``Ntt``, ``BfvParams.backend``, ``HybridProtocol``),
2. :func:`set_backend` (what the ``--backend`` CLI flag calls),
3. the ``REPRO_BACKEND`` environment variable (read at import),
4. ``auto``: numpy when available, python otherwise.

Whatever is selected, :func:`backend_for` silently falls back to the
python backend for any modulus the chosen backend cannot compute exactly
(q >= 2^62), so correctness never depends on configuration. Wide
ciphertext moduli avoid that fallback via :class:`RnsContext`
(:mod:`repro.backend.rns`): parameter sets carrying a CRT prime chain
represent ring elements as per-prime residues, every one of which the
vectorized backend handles exactly — see
:class:`repro.he.polynomial.RnsPoly`.
"""

from __future__ import annotations

import os

from repro.backend.base import ComputeBackend, NttPlan
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.python_backend import PythonBackend

__all__ = [
    "ComputeBackend",
    "NttPlan",
    "RnsContext",
    "available_backends",
    "active_backend_name",
    "backend_for",
    "get_backend",
    "reset_backend_selection",
    "set_backend",
]

_REGISTRY: dict[str, ComputeBackend] = {"python": PythonBackend()}
if NumpyBackend is not None:
    _REGISTRY["numpy"] = NumpyBackend()

_VALID = ("auto",) + tuple(sorted(_REGISTRY))

def _selection_from_env() -> str:
    name = os.environ.get("REPRO_BACKEND", "").strip().lower() or "auto"
    return name if name in _VALID else "auto"  # fail soft, stay functional


_active: str = _selection_from_env()


def reset_backend_selection() -> str:
    """Re-read the selection from ``REPRO_BACKEND``, dropping set_backend().

    Pool worker initializers call this (via
    :func:`repro.runtime.reset_process_state`) so a forked worker's
    selection is governed by the environment it actually runs in rather
    than whatever the parent last set programmatically.
    """
    global _active
    _active = _selection_from_env()
    return _active


def available_backends() -> tuple[str, ...]:
    """Names of the backends this interpreter can actually run."""
    return tuple(sorted(_REGISTRY))


def active_backend_name() -> str:
    """The current selection ('auto', 'python', or 'numpy')."""
    return _active


def set_backend(name: str) -> None:
    """Select the compute backend for subsequently built objects.

    Cached NTT contexts are keyed by backend, so switching is safe at any
    point; existing ``RingPoly`` instances keep the backend they were
    built with.
    """
    global _active
    name = name.strip().lower()
    if name not in _VALID:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {', '.join(_VALID)}"
        )
    _active = name


def get_backend(name: str | None = None) -> ComputeBackend:
    """Resolve a backend name ('auto'/None means the active selection)."""
    name = (name or _active).strip().lower()
    if name == "auto":
        return _REGISTRY.get("numpy", _REGISTRY["python"])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {', '.join(_VALID)}"
        ) from None


def backend_for(q: int, prefer: str | None = None) -> ComputeBackend:
    """The backend that will compute exactly for modulus ``q``.

    ``prefer`` overrides the active selection (used to honor
    ``BfvParams.backend``); an unavailable or unknown preference fails
    soft to the 'auto' resolution so configs stay portable across
    machines. Oversized moduli always fall back to the python reference
    backend regardless of selection.
    """
    name = prefer if prefer and prefer != "auto" else _active
    if name == "auto":
        backend = _REGISTRY.get("numpy", _REGISTRY["python"])
    else:
        backend = _REGISTRY.get(name.strip().lower())
        if backend is None:
            backend = _REGISTRY.get("numpy", _REGISTRY["python"])
    if backend.supports_modulus(q):
        return backend
    return _REGISTRY["python"]


# Imported last: repro.backend.rns resolves its per-prime backends through
# backend_for above, so it needs this module's registry to exist first.
from repro.backend.rns import RnsContext  # noqa: E402
