"""Residue-number-system (CRT) representation of a wide ciphertext modulus.

The numpy backend is exact only for moduli below 2^62, so the
paper-faithful 100/180-bit ciphertext moduli historically fell back to
the arbitrary-precision python ring. The standard fix — what SEAL and
every production HE library do — is to pick q as a *product* of small
NTT-friendly primes and keep ring elements as one residue vector per
prime: every ring operation (add, negacyclic multiply, automorphism,
scalar lift) commutes with the CRT isomorphism

    Z_q[X]/(X^n + 1)  ≅  ⨉_i  Z_{q_i}[X]/(X^n + 1),

so the whole chain runs on the vectorized backend. Only the
noise-sensitive steps that need the *integer representative* of a
coefficient reconstruct through the CRT: decryption rounding still does,
but key-switch digit decomposition now goes through
:meth:`RnsContext.decompose_digits`, an exact fast base conversion that
produces the digits of the representative directly from the residues on
small-int vectorized kernels (bit-identical to reconstruction, see
:meth:`repro.backend.base.ComputeBackend.rns_digit_split`) — the digits
it produces are small enough to convert straight back into every
residue base.

:class:`RnsContext` owns the chain: the primes, the per-prime compute
backends, and the precomputed CRT garbage (Q/q_i and its inverse mod
q_i). The ring element itself lives in
:class:`repro.he.polynomial.RnsPoly`, which pairs these residues with
the per-prime NTT contexts from the shared LRU cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.backend import backend_for
from repro.backend.base import ComputeBackend
from repro.crypto.modmath import mod_inverse


class RnsContext:
    """Precomputed constants for one RNS prime chain.

    Cheap to build but typically shared: use :meth:`for_primes` to get a
    cached instance keyed by (primes, resolved backend names) — a bounded
    LRU, so parameter sweeps over many chains cannot grow it without
    limit (same policy as the NTT-context cache).
    """

    __slots__ = ("primes", "q", "backends", "_m", "_m_inv", "_digit_plans")

    _cache: OrderedDict[tuple, "RnsContext"] = OrderedDict()
    _cache_max = 16

    def __init__(self, primes: Sequence[int], prefer: str | None = None):
        primes = tuple(int(p) for p in primes)
        if not primes:
            raise ValueError("RNS chain needs at least one prime")
        if len(set(primes)) != len(primes):
            raise ValueError("RNS chain primes must be distinct")
        self.primes = primes
        q = 1
        for p in primes:
            q *= p
        self.q = q
        self.backends: tuple[ComputeBackend, ...] = tuple(
            backend_for(p, prefer=prefer) for p in primes
        )
        self._m = tuple(q // p for p in primes)
        self._m_inv = tuple(
            mod_inverse(m % p, p) for m, p in zip(self._m, primes)
        )
        self._digit_plans: dict[int, object] = {}
        # Note: the composite q's factorization is registered with the
        # root finder by BfvParams.__post_init__, not here — RNS itself
        # never transforms at the composite modulus (only per prime), so
        # a standalone context has no use for it.

    @classmethod
    def for_primes(
        cls, primes: Sequence[int], prefer: str | None = None
    ) -> "RnsContext":
        """Shared context for a chain (re-resolves if the backend changed)."""
        primes = tuple(int(p) for p in primes)
        names = tuple(backend_for(p, prefer=prefer).name for p in primes)
        key = (primes, names)
        ctx = cls._cache.get(key)
        if ctx is None:
            ctx = cls._cache[key] = cls(primes, prefer=prefer)
            while len(cls._cache) > cls._cache_max:
                cls._cache.popitem(last=False)
        else:
            cls._cache.move_to_end(key)
        return ctx

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all shared contexts (fork-safety / test isolation hook).

        A context caches per-prime backend resolutions; pool workers clear
        it so their contexts re-resolve under the worker's own backend
        selection instead of state inherited across fork().
        """
        cls._cache.clear()

    def __len__(self) -> int:
        return len(self.primes)

    # -- base conversion ----------------------------------------------------

    def to_rns(self, values) -> list:
        """Residue vectors of ``values`` (ints, a list, or a native vector).

        Each backend's ``asvec`` handles the reduction, so small inputs
        (plaintext coefficients, key-switch digits, noise draws) take the
        vectorized path and only genuinely wide integers pay for
        arbitrary-precision reduction.
        """
        return [
            be.asvec(values, p) for p, be in zip(self.primes, self.backends)
        ]

    def from_rns(self, residues: Sequence) -> list[int]:
        """CRT reconstruction to integer coefficients in [0, q).

        The per-prime half (r_i * (Q/q_i)^-1 mod q_i) runs vectorized; only
        the final combination against the wide Q/q_i constants is
        arbitrary-precision, so reconstruction costs O(n*k) bigint
        multiply-adds for a chain of k primes.
        """
        parts = [
            be.tolist(be.scalar_mul(r, inv, p))
            for r, inv, p, be in zip(
                residues, self._m_inv, self.primes, self.backends
            )
        ]
        q = self.q
        big = self._m
        return [
            sum(part[j] * m for part, m in zip(parts, big)) % q
            for j in range(len(parts[0]))
        ]

    def decompose_digits(
        self, residues: Sequence, base_bits: int, num_digits: int
    ) -> list | None:
        """Base-2^w digits of the integer representative, backend-native.

        The key-switch hot path: equivalent to ``from_rns(residues)``
        followed by a mask/shift split, but runs entirely on the
        backend's small-int kernels when all residues share one backend
        with a fast :meth:`rns_digit_split`. Returns ``None`` when no
        exact fast kernel applies (mixed backends or a chain/width shape
        the backend declined); callers then take the reconstruction
        path. Each returned digit is a native vector of values
        < 2^base_bits, suitable for :meth:`to_rns`, and is REQUIRED (and
        tested) to be bit-identical to the reconstruction path.
        """
        be = self.backends[0]
        if any(other is not be for other in self.backends):
            return None  # ys must live on one backend to stack
        plan = self._digit_plans.get(base_bits)
        if plan is None:
            plan = be.make_rns_digit_plan(self.primes, self.q, base_bits)
            self._digit_plans[base_bits] = False if plan is None else plan
        if not plan:
            return None  # backend declined this shape (refusal is cached)
        ys = [
            be.scalar_mul(r, inv, p)
            for r, inv, p in zip(residues, self._m_inv, self.primes)
        ]
        return be.rns_digit_split(ys, plan, num_digits)
