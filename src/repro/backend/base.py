"""Abstract interface every compute backend implements.

A backend owns the representation of coefficient vectors over Z_q and
provides the vectorized modular kernels the HE/GC/protocol layers are
written against. Two implementations exist:

* :mod:`repro.backend.python_backend` — ``list[int]`` vectors with
  arbitrary-precision Python arithmetic. Exact for any modulus; this is
  the reference semantics every other backend must match bit for bit.
* :mod:`repro.backend.numpy_backend` — ``uint64`` ndarray vectors with
  Barrett/Shoup reduction. Exact for moduli below 2^62; larger moduli
  must fall back to the python backend (see
  :func:`repro.backend.backend_for`).

Vectors are opaque to callers: obtain one with :meth:`asvec`, convert
back with :meth:`tolist`, and never assume the concrete type. All kernels
are pure — they return fresh vectors and never mutate their inputs.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

Vec = Any  # backend-native vector (list[int] or np.ndarray)
Mat = Any  # backend-native 2D matrix (list[list[int]] or np.ndarray)
Index = Any  # backend-native gather index (list[int] or np.ndarray)


class NttPlan(abc.ABC):
    """Precomputed transform tables for one (n, q, root) triple.

    ``forward`` applies the size-n cyclic NTT; ``inverse`` applies the
    inverse transform including the 1/n scaling. Both consume and produce
    backend-native vectors of reduced residues.
    """

    @abc.abstractmethod
    def forward(self, vec: Vec) -> Vec: ...

    @abc.abstractmethod
    def inverse(self, vec: Vec) -> Vec: ...

    @abc.abstractmethod
    def inverse_unscaled(self, vec: Vec) -> Vec:
        """Inverse transform without the 1/n factor — callers that follow
        with a pointwise multiply (psi-untwisting) fold the factor into
        their own table, saving one full-vector pass.

        CONTRACT: the output may hold *unreduced* residues (congruent mod
        q but not canonical); it is only valid as input to a reducing
        pointwise multiply on the same backend.
        """

    def forward_pair(self, a: Vec, b: Vec) -> tuple[Vec, Vec]:
        """Two forward transforms; backends may batch them into one pass.

        Same contract as :meth:`inverse_unscaled`: outputs may be
        unreduced and must feed a reducing pointwise multiply.
        """
        return self.forward(a), self.forward(b)

    def forward_many(self, vecs: Sequence[Vec]) -> list[Vec]:
        """Forward transforms of every vector; backends may stack them
        into a single pass (one ufunc walk per butterfly stage instead of
        one per vector). Same unreduced-output contract as
        :meth:`inverse_unscaled`.
        """
        return [self.forward(v) for v in vecs]

    def inverse_unscaled_many(self, vecs: Sequence[Vec]) -> list[Vec]:
        """Unscaled inverse transforms of every vector, batchable like
        :meth:`forward_many`; outputs follow the :meth:`inverse_unscaled`
        unreduced contract.
        """
        return [self.inverse_unscaled(v) for v in vecs]


class ComputeBackend(abc.ABC):
    """Vectorized modular arithmetic over Z_q."""

    name: str = "abstract"

    @abc.abstractmethod
    def supports_modulus(self, q: int) -> bool:
        """Whether this backend computes exactly for modulus ``q``."""

    # -- vector construction / conversion ---------------------------------

    @abc.abstractmethod
    def asvec(self, values: Sequence[int], q: int) -> Vec:
        """Native vector of ``values`` reduced into [0, q)."""

    @abc.abstractmethod
    def tolist(self, vec: Vec) -> list[int]:
        """Plain Python ints, the interchange format between backends."""

    @abc.abstractmethod
    def zeros(self, n: int, q: int) -> Vec: ...

    @abc.abstractmethod
    def veclen(self, vec: Vec) -> int: ...

    @abc.abstractmethod
    def eq(self, a: Vec, b: Vec) -> bool: ...

    # -- elementwise mod-q kernels ----------------------------------------

    @abc.abstractmethod
    def add(self, a: Vec, b: Vec, q: int) -> Vec: ...

    @abc.abstractmethod
    def sub(self, a: Vec, b: Vec, q: int) -> Vec: ...

    @abc.abstractmethod
    def neg(self, a: Vec, q: int) -> Vec: ...

    @abc.abstractmethod
    def mul(self, a: Vec, b: Vec, q: int) -> Vec:
        """Elementwise product mod q (both operands reduced)."""

    @abc.abstractmethod
    def scalar_mul(self, a: Vec, scalar: int, q: int) -> Vec:
        """``a * scalar mod q``; entries of ``a`` need only be < q' <= q,
        so this also performs the plaintext lift c -> c * delta mod q."""

    @abc.abstractmethod
    def max_value(self, vec: Vec) -> int: ...

    # -- structural kernels ------------------------------------------------

    @abc.abstractmethod
    def index_array(self, indices: Sequence[int]) -> Index:
        """Precompiled gather index for :meth:`permute`."""

    @abc.abstractmethod
    def permute(self, vec: Vec, index: Index) -> Vec:
        """Gather: out[i] = vec[index[i]]."""

    @abc.abstractmethod
    def automorphism(self, vec: Vec, galois_element: int, q: int) -> Vec:
        """Apply X -> X^g in Z_q[X]/(X^n + 1); g must be odd."""

    @abc.abstractmethod
    def decompose(
        self, vec: Vec, base_bits: int, num_digits: int, q: int
    ) -> list[Vec]:
        """Digit decomposition: vec = sum_j digits[j] << (j * base_bits)."""

    # -- RNS base conversion -----------------------------------------------

    def make_rns_digit_plan(self, primes: Sequence[int], q: int, base_bits: int):
        """Precomputed constants for :meth:`rns_digit_split`, or ``None``.

        ``None`` means this backend has no exact fast kernel for the given
        chain/digit-width shape; the caller (:class:`repro.backend.rns
        .RnsContext`) then falls back to arbitrary-precision CRT
        reconstruction. The returned plan is opaque and backend-specific —
        it is only ever handed back to the same backend's
        :meth:`rns_digit_split`.
        """
        return None

    def rns_digit_split(self, ys: Sequence[Vec], plan, num_digits: int) -> list[Vec]:
        """Base-2^w digits of the CRT representative, without bigints.

        ``ys[i]`` holds y_i = x_i * (Q/q_i)^{-1} mod q_i for every
        coefficient (the per-prime halves of the CRT reconstruction, all
        on this backend). The integer representative is
        x = sum_i y_i*(Q/q_i) - alpha*Q for some alpha < k, and the
        output is its digit decomposition
        ``[x & mask, (x >> w) & mask, ...]`` — REQUIRED to be
        bit-identical to reconstructing x exactly and splitting, for any
        input. Digit vectors hold values < 2^base_bits.
        """
        raise NotImplementedError(
            f"{self.name} backend returned no rns digit plan"
        )

    # -- transforms --------------------------------------------------------

    @abc.abstractmethod
    def make_ntt_plan(self, n: int, q: int, root: int) -> NttPlan:
        """Plan for the size-n cyclic NTT with primitive n-th root ``root``."""

    # -- linear algebra ----------------------------------------------------

    @abc.abstractmethod
    def asmatrix(self, rows: Sequence[Sequence[int]], q: int) -> Mat:
        """Native 2D matrix with entries reduced into [0, q)."""

    @abc.abstractmethod
    def matvec_mod(self, matrix: Mat, vec: Sequence[int], q: int) -> list[int]:
        """``matrix @ vec mod q`` as plain ints (accepts either matrix
        representation so lowered networks survive backend switches)."""
