"""Vectorized ``uint64`` backend with Barrett/Shoup residue arithmetic.

All coefficients live in flat ``uint64`` ndarrays. Two reduction regimes,
chosen per modulus:

* **direct** (q < 2^31): residue products fit in 64 bits, so ``a * b % q``
  is exact with plain ufuncs. This covers the plaintext field t
  (17-41 bits needs the next tier) and small test moduli.
* **Shoup** (2^31 <= q < 2^62): products overflow 64 bits, so we compute
  the full 128-bit product from 32-bit limbs and reduce with Shoup's
  precomputed-quotient trick: for a constant w with
  w' = floor(w * 2^64 / q), the quotient estimate
  q_hat = mulhi64(x, w') satisfies x*w - q_hat*q in [0, 2q) for ANY
  x < 2^64, so one conditional subtraction finishes the job. A
  variable*variable product reduces its high word the same way against
  the constant 2^64 mod q.

The NTT additionally uses Harvey-style *lazy* butterflies: values stay in
[0, 2q) between stages, the quotient estimate drops the low-limb carry
(underestimating by at most 2, so remainders stay under 4q < 2^64 given
q < 2^62), and a single normalization pass lands the output in [0, q).

Everything is exact integer arithmetic — no floats — so results agree
bit for bit with the python reference backend (enforced by
``tests/test_backend_parity.py``). Moduli at or above 2^62 are rejected
by :meth:`supports_modulus`; the registry then falls back to python.

The module degrades gracefully when numpy is absent: ``NumpyBackend`` is
``None`` and the registry simply never offers the backend.
"""

from __future__ import annotations

from typing import Sequence

from repro.backend.base import ComputeBackend, NttPlan
from repro.backend.python_backend import PythonBackend
from repro.crypto.modmath import mod_inverse

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal images
    np = None

_PY_FALLBACK = PythonBackend()  # exact path for shapes uint64 cannot hold

_DIRECT_LIMIT = 1 << 31  # q below this: products of residues fit in uint64
_MODULUS_LIMIT = 1 << 62  # q below this: (lazy) Shoup reduction is exact

if np is not None:
    _M32 = np.uint64(0xFFFFFFFF)
    _S32 = np.uint64(32)


def _mulhi64(xh, xl, yh, yl):
    """High 64 bits of the 128-bit product given pre-split 32-bit limbs."""
    ll = xl * yl
    lh = xl * yh
    hl = xh * yl
    carry = (ll >> _S32) + (lh & _M32) + (hl & _M32)
    return xh * yh + (lh >> _S32) + (hl >> _S32) + (carry >> _S32)


def _cond_sub(s, q):
    """Reduce s in [0, 2q) into [0, q) with one ufunc: if s < q then s - q
    wraps past 2^63, so the minimum is always the reduced residue."""
    return np.minimum(s, s - q)


def _shoup_mulmod(x, w, w_sh_h, w_sh_l, q):
    """x * w mod q for constant w < q with w' = floor(w * 2^64 / q) pre-split.

    Exact for any x < 2^64 when q < 2^63 (the remainder estimate lies in
    [0, 2q) which still fits in 64 bits).
    """
    q_hat = _mulhi64(x >> _S32, x & _M32, w_sh_h, w_sh_l)
    r = x * w - q_hat * q  # both wrap mod 2^64; true value < 2q
    return _cond_sub(r, q)


class _ModContext:
    """Per-modulus constants for the Shoup reduction path."""

    __slots__ = ("q", "c64", "c64_sh_h", "c64_sh_l")

    def __init__(self, q: int):
        self.q = np.uint64(q)
        c64 = (1 << 64) % q
        c64_sh = (c64 << 64) // q
        self.c64 = np.uint64(c64)
        self.c64_sh_h = np.uint64(c64_sh >> 32)
        self.c64_sh_l = np.uint64(c64_sh & 0xFFFFFFFF)


def _scalar_shoup(scalar: int, q: int):
    """(w, w'_hi, w'_lo) uint64 scalars for a constant multiplier."""
    scalar %= q
    sh = (scalar << 64) // q
    return np.uint64(scalar), np.uint64(sh >> 32), np.uint64(sh & 0xFFFFFFFF)


class _NumpyRnsDigitPlan:
    """Precomputed limb tables for the vectorized exact base conversion.

    Reconstructs the integer representative x of a coefficient from its
    CRT halves y_i (= x_i * (Q/q_i)^{-1} mod q_i) entirely in uint64/int64
    lanes, BEHZ-style, but *exactly*:

        sum_i y_i * (Q/q_i) = x + alpha*Q,   alpha = floor(sum_i y_i/q_i)

    * ``m_limbs`` holds every Q/q_i in base-2^w limbs (w = the key-switch
      digit width), so the sum accumulates as an (n, L) uint64 matrix of
      lazy limbs — small-int multiply-adds only.
    * alpha is first *estimated* from below with the fixed-point
      reciprocals ``recips`` = floor(2^s / q_i): the estimate
      beta = floor(sum_i y_i*recips / 2^s) provably lies in
      {alpha-1, alpha} (lower bound with total error < k*q_max/2^s << 1).
    * subtracting beta*Q in limbs and carry-propagating yields
      x' = x or x + Q; one exact multi-limb conditional subtract of Q
      (the correction term) lands on x itself, so the resulting digits
      are bit-identical to bigint reconstruction for ANY input.

    Built by :meth:`_NumpyBackendImpl.make_rns_digit_plan`, which returns
    ``None`` when the (chain, digit width) shape could overflow a lane —
    the caller then uses the exact arbitrary-precision fallback.
    """

    __slots__ = (
        "base_bits", "mask", "limbs", "m_limbs", "q_limbs",
        "recips", "recip_shift", "num_primes",
    )

    def __init__(self, primes, q: int, base_bits: int):
        k = len(primes)
        w = base_bits
        mask = (1 << w) - 1
        # One spare limb so x + Q (the pre-correction candidate, < 2Q)
        # always fits, even when q.bit_length() is a multiple of w.
        limbs = -(-q.bit_length() // w) + 1
        self.base_bits = w
        self.mask = np.int64(mask)
        self.limbs = limbs
        self.num_primes = k
        self.m_limbs = np.asarray(
            [
                [((q // p) >> (j * w)) & mask for j in range(limbs)]
                for p in primes
            ],
            dtype=np.uint64,
        )
        self.q_limbs = np.asarray(
            [(q >> (j * w)) & mask for j in range(limbs)], dtype=np.int64
        )
        # Lower-bound reciprocals: shift chosen so sum_i y_i*recips[i]
        # stays under 2^63 (y_i < q_i and recips[i] <= 2^s/q_i).
        shift = 63 - k.bit_length()
        self.recip_shift = np.uint64(shift)
        self.recips = np.asarray(
            [(1 << shift) // p for p in primes], dtype=np.uint64
        )


class _NumpyNttPlan(NttPlan):
    """Precomputed bit-reversal permutation plus per-stage twiddle tables.

    Stage tables hold w_len^k for k < length/2 exactly as the reference
    iterative NTT generates them, so butterfly outputs match the python
    backend bit for bit.
    """

    def __init__(self, backend: "NumpyBackend", n: int, q: int, root: int):
        self.backend = backend
        self.n = n
        self.q = q
        self.n_inv = mod_inverse(n, q)
        self.perm = self._bit_reverse_indices(n)
        self.fwd_stages = self._stage_tables(root)
        self.inv_stages = self._stage_tables(mod_inverse(root, q))

    @staticmethod
    def _bit_reverse_indices(n: int):
        out = list(range(n))
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                out[i], out[j] = out[j], out[i]
        return np.asarray(out, dtype=np.intp)

    def _stage_tables(self, base: int):
        n, q = self.n, self.q
        small = q < _DIRECT_LIMIT
        stages = []
        length = 2
        while length <= n:
            w_len = pow(base, n // length, q)
            half = length // 2
            tbl = [1] * half
            for k in range(1, half):
                tbl[k] = tbl[k - 1] * w_len % q
            w = np.asarray(tbl, dtype=np.uint64)
            if small:
                stages.append((w, None, None))
            else:
                sh = [(t << 64) // q for t in tbl]
                stages.append(
                    (
                        w,
                        np.asarray([s >> 32 for s in sh], dtype=np.uint64),
                        np.asarray([s & 0xFFFFFFFF for s in sh], dtype=np.uint64),
                    )
                )
            length <<= 1
        return stages

    def _transform(self, vec, stages, normalize=True):
        """Transform the last axis; rows of a stacked input stay independent.

        Harvey-style lazy butterflies: stage values live in [0, 2q), the
        twiddle product uses a carry-free quotient estimate (off by at most
        2, keeping remainders under 4q < 2^64 for q < 2^62), and a single
        final pass normalizes into [0, q). All integer, hence bit-exact.
        With ``normalize=False`` the output stays in [0, 2q) — valid only
        when the caller follows with a reducing pointwise multiply.
        """
        q = np.uint64(self.q)
        # Fancy indexing copies (so in-place below is safe) but on stacked
        # input it returns an axis-moved layout whose reshape would copy
        # again and drop the butterfly writes — force C order.
        a = np.ascontiguousarray(vec[..., self.perm])
        if self.q < _DIRECT_LIMIT:
            for stage, (w, _, _) in enumerate(stages):
                half = w.shape[0]
                block = a.reshape(-1, 2 * half)
                u = block[:, :half]
                x = block[:, half:]
                v = x if stage == 0 else (x * w) % q
                s = _cond_sub(u + v, q)
                block[:, half:] = np.minimum(u - v, u + (q - v))
                block[:, :half] = s
            return a
        two_q = np.uint64(2 * self.q)
        for stage, (w, w_sh_h, w_sh_l) in enumerate(stages):
            half = w.shape[0]
            block = a.reshape(-1, 2 * half)
            u = block[:, :half]  # in [0, 2q)
            x = block[:, half:]
            if stage == 0:
                v = x  # first stage twiddle is always 1
            else:
                # Lazy Shoup: the quotient estimate drops the low-limb carry
                # (underestimate <= 2) on top of Shoup's slack of 1, so the
                # remainder lies in [0, 4q); one conditional lands it in [0, 2q).
                xh = x >> _S32
                xl = x & _M32
                q_hat = (
                    xh * w_sh_h + ((xh * w_sh_l) >> _S32) + ((xl * w_sh_h) >> _S32)
                )
                r = x * w - q_hat * q
                v = np.minimum(r, r - two_q)
            s = u + v  # < 4q
            d = u + (two_q - v)  # in (0, 4q)
            block[:, :half] = np.minimum(s, s - two_q)
            block[:, half:] = np.minimum(d, d - two_q)
        if normalize:
            return np.minimum(a, a - q)  # [0, 2q) -> [0, q)
        return a

    def forward(self, vec):
        return self._transform(vec, self.fwd_stages)

    def forward_pair(self, a, b):
        """Both forward transforms as one stacked pass (halves ufunc overhead).

        Outputs may be unreduced residues in [0, 2q) per the base-class
        contract — the pointwise multiply that consumes them reduces exactly.
        """
        stacked = self._transform(np.stack((a, b)), self.fwd_stages, normalize=False)
        return stacked[0], stacked[1]

    def forward_many(self, vecs):
        """All forward transforms as one stacked pass; outputs may be
        unreduced residues in [0, 2q) per the base-class contract."""
        if len(vecs) < 2:  # np.stack needs at least one array
            return [
                self._transform(v, self.fwd_stages, normalize=False)
                for v in vecs
            ]
        stacked = self._transform(np.stack(vecs), self.fwd_stages, normalize=False)
        return list(stacked)

    def inverse(self, vec):
        out = self._transform(vec, self.inv_stages)
        return self.backend.scalar_mul(out, self.n_inv, self.q)

    def inverse_unscaled(self, vec):
        """Inverse transform WITHOUT the 1/n factor (caller folds it in);
        output may be unreduced per the base-class contract."""
        return self._transform(vec, self.inv_stages, normalize=False)

    def inverse_unscaled_many(self, vecs):
        """All unscaled inverse transforms as one stacked pass (unreduced
        outputs, same contract as :meth:`inverse_unscaled`)."""
        if len(vecs) < 2:  # np.stack needs at least one array
            return [
                self._transform(v, self.inv_stages, normalize=False)
                for v in vecs
            ]
        stacked = self._transform(np.stack(vecs), self.inv_stages, normalize=False)
        return list(stacked)


class _NumpyBackendImpl(ComputeBackend):
    name = "numpy"

    def __init__(self):
        self._mod_contexts: dict[int, _ModContext] = {}

    def supports_modulus(self, q: int) -> bool:
        return 1 < q < _MODULUS_LIMIT

    def _ctx(self, q: int) -> _ModContext:
        ctx = self._mod_contexts.get(q)
        if ctx is None:
            ctx = self._mod_contexts[q] = _ModContext(q)
        return ctx

    # -- vectors -----------------------------------------------------------

    def asvec(self, values: Sequence[int], q: int):
        if isinstance(values, np.ndarray):
            if values.dtype == np.uint64:
                arr = values
            elif np.issubdtype(values.dtype, np.integer):
                # Signed arrays would wrap on an unsafe uint64 cast; reduce
                # in the signed domain first (exact: q < 2^62 fits int64 and
                # np.remainder is non-negative).
                return np.remainder(values, q).astype(np.uint64)
            else:
                return np.asarray(
                    [int(v) % q for v in values.tolist()], dtype=np.uint64
                )
        else:
            try:
                arr = np.asarray(values, dtype=np.uint64)
            except (OverflowError, TypeError, ValueError):
                # Negative or >= 2^64 entries (noise draws, delta-scaled
                # coefficients built by the python path): reduce exactly first.
                return np.asarray([int(v) % q for v in values], dtype=np.uint64)
        if arr.size and int(arr.max()) >= q:
            arr = np.remainder(arr, np.uint64(q))
        return arr

    def tolist(self, vec) -> list[int]:
        return vec.tolist()  # ndarray.tolist() yields plain Python ints

    def zeros(self, n: int, q: int):
        return np.zeros(n, dtype=np.uint64)

    def veclen(self, vec) -> int:
        return int(vec.shape[0])

    def eq(self, a, b) -> bool:
        return bool(np.array_equal(a, b))

    # -- elementwise -------------------------------------------------------

    def add(self, a, b, q):
        return _cond_sub(a + b, np.uint64(q))

    def sub(self, a, b, q):
        q = np.uint64(q)
        # a - b wraps huge when a < b; a + (q - b) wraps only when a >= b.
        return np.minimum(a - b, a + (q - b))

    def neg(self, a, q):
        q = np.uint64(q)
        return np.where(a == 0, a, q - a)

    def mul(self, a, b, q):
        if q < _DIRECT_LIMIT:
            return (a * b) % np.uint64(q)
        ctx = self._ctx(q)
        qv = ctx.q
        lo = a * b  # low 64 bits
        hi = _mulhi64(a >> _S32, a & _M32, b >> _S32, b & _M32)
        # a*b mod q = (hi * (2^64 mod q) + lo) mod q
        r = _shoup_mulmod(hi, ctx.c64, ctx.c64_sh_h, ctx.c64_sh_l, qv)
        return _cond_sub(r + np.remainder(lo, qv), qv)

    def scalar_mul(self, a, scalar, q):
        scalar %= q
        if q < _DIRECT_LIMIT:
            return (a * np.uint64(scalar)) % np.uint64(q)
        w, w_sh_h, w_sh_l = _scalar_shoup(scalar, q)
        return _shoup_mulmod(a, w, w_sh_h, w_sh_l, np.uint64(q))

    def max_value(self, vec) -> int:
        return int(vec.max()) if vec.size else 0

    # -- structure ---------------------------------------------------------

    def index_array(self, indices):
        return np.asarray(list(indices), dtype=np.intp)

    def permute(self, vec, index):
        return vec[index]

    def automorphism(self, vec, galois_element, q):
        n = vec.shape[0]
        qv = np.uint64(q)
        idx = (np.arange(n, dtype=np.int64) * galois_element) % (2 * n)
        wrap = idx >= n
        targets = np.where(wrap, idx - n, idx)
        values = np.where(wrap, self.neg(vec, q), vec)
        out = np.empty(n, dtype=np.uint64)
        out[targets] = values  # X -> X^g is a bijection: no collisions
        return out

    def decompose(self, vec, base_bits, num_digits, q):
        mask = np.uint64((1 << base_bits) - 1)
        shift = np.uint64(base_bits)
        digits = []
        work = vec
        for _ in range(num_digits):
            digits.append(work & mask)
            work = work >> shift
        return digits

    # -- RNS base conversion -----------------------------------------------

    def make_rns_digit_plan(self, primes, q, base_bits):
        k = len(primes)
        if any(p >= _DIRECT_LIMIT for p in primes):
            return None  # y_i must fit 31 bits for lane-safe accumulation
        # Limb accumulator bound: k products of y_i (< 2^31) by a 2^w limb
        # must stay under 2^62 so the int64 carry sweep cannot overflow.
        if 31 + base_bits + max(1, (k - 1).bit_length()) > 62:
            return None
        return _NumpyRnsDigitPlan(primes, q, base_bits)

    def rns_digit_split(self, ys, plan, num_digits):
        w = plan.base_bits
        mask = plan.mask
        y = np.stack(ys)  # (k, n) uint64, each row reduced mod its prime
        # beta = alpha or alpha - 1, never more (lower-bound fixed point).
        beta = (
            (y * plan.recips[:, None]).sum(axis=0) >> plan.recip_shift
        ).astype(np.int64)
        # Lazy limbs of sum_i y_i * (Q/q_i): (n, k) @ (k, L), lane-exact.
        acc = (y.T @ plan.m_limbs).astype(np.int64)
        n = acc.shape[0]
        # x' = sum - beta*Q via one signed carry sweep; x' = x or x + Q.
        carry = np.zeros(n, dtype=np.int64)
        cand = []
        for j in range(plan.limbs):
            t = carry + acc[:, j] - beta * plan.q_limbs[j]
            cand.append(t & mask)
            carry = t >> np.int64(w)
        # Exact correction: subtract Q once more iff x' >= Q (no borrow).
        borrow = np.zeros(n, dtype=np.int64)
        corrected = []
        for j in range(plan.limbs):
            t = cand[j] - plan.q_limbs[j] + borrow
            corrected.append(t & mask)
            borrow = t >> np.int64(w)
        overshoot = borrow == 0
        digits = []
        for j in range(num_digits):
            if j < plan.limbs:
                digits.append(
                    np.where(overshoot, corrected[j], cand[j]).astype(np.uint64)
                )
            else:  # x < Q < 2^(limbs*w): everything above is zero
                digits.append(np.zeros(n, dtype=np.uint64))
        return digits

    # -- transforms --------------------------------------------------------

    def make_ntt_plan(self, n, q, root):
        return _NumpyNttPlan(self, n, q, root)

    # -- linear algebra ----------------------------------------------------

    def asmatrix(self, rows, q):
        if 2 * int(q).bit_length() > 64:
            # A single q^2-sized product overflows uint64, so matvec_mod
            # would fall back to exact Python every call: keep the list
            # representation up front and skip per-call conversion.
            return _PY_FALLBACK.asmatrix(rows, q)
        if isinstance(rows, np.ndarray) and rows.dtype == np.uint64:
            return rows
        return np.asarray(
            [[int(w) % q for w in row] for row in rows], dtype=np.uint64
        )

    def matvec_mod(self, matrix, vec, q):
        # Dot products accumulate n_in terms of q^2-sized products; chunk the
        # columns so partial sums stay below 2^64, or run the exact Python
        # path when even a single product would overflow.
        qbits = int(q).bit_length()
        headroom = 64 - 2 * qbits
        if headroom < 0:
            return _PY_FALLBACK.matvec_mod(matrix, vec, q)
        mat = self.asmatrix(matrix, q)
        n_in = mat.shape[1] if mat.ndim == 2 else 0
        if n_in == 0:
            return []
        qv = np.uint64(q)
        v = self.asvec(vec, q)
        chunk = max(1, 1 << min(headroom, 30))
        acc = np.zeros(mat.shape[0], dtype=np.uint64)
        for start in range(0, n_in, chunk):
            part = mat[:, start : start + chunk] @ v[start : start + chunk]
            acc = self.add(acc, np.remainder(part, qv), q)
        return self.tolist(acc)


NumpyBackend = None if np is None else _NumpyBackendImpl
