"""Client energy accounting (§5.1's powertop study).

The paper measures, on the Atom board, 1.25 J per 10,000 ReLUs evaluated
and 2.33 J per 10,000 ReLUs garbled: switching to Client-Garbler raises
client GC energy 1.8x. This module extends that to full per-inference
energy budgets — GC work plus the client's HE encrypt/decrypt and radio
time — so deployments can weigh latency against battery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.bandwidth import TddLink
from repro.profiling import calibration as cal
from repro.profiling.devices import ATOM, DeviceProfile
from repro.profiling.model_costs import NetworkCostProfile, Protocol

# Representative embedded-device power draws (watts).
CPU_ACTIVE_WATTS = 2.0  # Atom-class SoC under sustained compute
RADIO_ACTIVE_WATTS = 1.2  # 5G modem during active transfer


@dataclass(frozen=True)
class EnergyBudget:
    """Joules spent by the client for one private inference."""

    gc_joules: float
    he_joules: float
    radio_joules: float

    @property
    def total_joules(self) -> float:
        return self.gc_joules + self.he_joules + self.radio_joules

    def battery_fraction(self, battery_wh: float = 15.0) -> float:
        """Share of a phone-class battery one inference consumes."""
        return self.total_joules / (battery_wh * 3600.0)


def client_energy(
    profile: NetworkCostProfile,
    protocol: Protocol,
    client: DeviceProfile = ATOM,
    link: TddLink | None = None,
) -> EnergyBudget:
    """Estimate the client's per-inference energy budget."""
    link = link or TddLink(1e9, 0.5)
    gc = profile.client_energy_joules(protocol)
    he = profile.client_he_seconds(client) * CPU_ACTIVE_WATTS
    volumes = profile.comm(protocol)
    radio_seconds = link.transfer_seconds(volumes.upload, volumes.download)
    radio = radio_seconds * RADIO_ACTIVE_WATTS
    return EnergyBudget(gc_joules=gc, he_joules=he, radio_joules=radio)


def garbling_energy_ratio(profile: NetworkCostProfile) -> float:
    """CG vs SG client GC energy ratio (paper: 1.8x)."""
    return profile.client_energy_joules(
        Protocol.CLIENT_GARBLER
    ) / profile.client_energy_joules(Protocol.SERVER_GARBLER)
