"""Calibration constants anchoring the cost model to the paper's testbed.

Every constant here is either (a) measured by the paper on its Atom/EPYC
testbed, or (b) derived from first principles by this library's own
cryptographic substrates (circuit sizes, OT formulas, ciphertext sizes).
The HE per-operation cost is fitted once so that the Gazelle op-count model
reproduces the paper's 1080 s sequential HE time for ResNet-18 on
TinyImageNet; everything else about HE (per-layer distribution, LPHE
speedups, other networks) then follows from the op counts alone.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gc.relu import garbled_relu_bytes, relu_and_gates
from repro.he.costmodel import HeOpCount, HeUnitCosts, conv_op_count, fc_op_count
from repro.nn.network import Network
from repro.nn.shapes import LinearLayerInfo

# --- field / packing parameters (DELPHI's SEAL configuration) ---------------
SHARE_BITS = 41  # DELPHI's share prime 2061584302081 is 41 bits
FIELD_BYTES = 6  # one share element on the wire
GAZELLE_SLOTS = 8192  # SEAL poly degree / slot count
HE_CIPHERTEXT_BYTES = 2 * GAZELLE_SLOTS * 23  # ~180-bit RNS modulus, 2 polys

# --- paper-measured storage constants (fancy-garbling profile, §4.1.1) ------
GC_CLIENT_BYTES_PER_RELU = 18_200  # evaluator-side garbled circuit storage
GC_GARBLER_BYTES_PER_RELU = 3_500  # garbler-side input encodings

# --- first-principles GC/OT wire constants ----------------------------------
ANDS_PER_RELU = relu_and_gates(SHARE_BITS)
GC_WIRE_BYTES_PER_RELU = garbled_relu_bytes(SHARE_BITS)
LABEL_BYTES = 16
WORD_LABEL_BYTES = SHARE_BITS * LABEL_BYTES  # labels for one 41-bit word
# Server-Garbler: the evaluator (client) inputs two words per ReLU (its share
# and the next-layer mask); Client-Garbler: the evaluator (server) inputs one.
SG_EVALUATOR_BITS_PER_RELU = 2 * SHARE_BITS
CG_EVALUATOR_BITS_PER_RELU = SHARE_BITS


def ot_pair_bytes(bits: int) -> int:
    """Masked message pairs for ``bits`` wire-label OTs (sender -> receiver)."""
    return 2 * LABEL_BYTES * bits


def ot_column_bytes(bits: int) -> int:
    """IKNP correction columns for ``bits`` OTs (receiver -> sender)."""
    return LABEL_BYTES * bits


# --- paper-measured compute anchors (ResNet-18 / TinyImageNet) ---------------
PAPER_SEQUENTIAL_HE_SECONDS = 1080.0  # Table 1 offline HE
PAPER_LPHE_HE_SECONDS = 141.0  # §5.2: 2.35 minutes
PAPER_SS_ONLINE_SECONDS = 0.61  # §4.1.2
PAPER_ATOM_GARBLE_SECONDS = 382.6  # §5.5
PAPER_ATOM_EVAL_SECONDS = 200.0  # Table 1 online GC
PAPER_EPYC_GARBLE_SECONDS = 25.1  # Table 1 offline GC
PAPER_EPYC_EVAL_SECONDS = 11.1  # §5.1

# --- energy (powertop on the Atom, per 10,000 ReLUs, §5.1) -------------------
GARBLE_JOULES_PER_RELU = 2.33e-4
EVAL_JOULES_PER_RELU = 1.25e-4

# --- HE op-cost fitting -------------------------------------------------------
HE_ROTATION_WEIGHT = 3.0  # one rotation ~ three plaintext multiplications
HE_ADDITION_WEIGHT = 0.1


def layer_op_count(info: LinearLayerInfo, slots: int = GAZELLE_SLOTS) -> HeOpCount:
    """Gazelle packed-kernel op count for one linear layer."""
    if info.kind == "conv":
        return conv_op_count(
            info.in_shape.height,
            info.in_shape.width,
            info.in_shape.channels,
            info.out_shape.channels,
            info.kernel,
            slots,
            info.stride,
        )
    return fc_op_count(info.in_shape.elements, info.out_shape.elements, slots)


def weighted_he_ops(ops: HeOpCount) -> float:
    """Scalar work measure combining mults, rotations, and additions."""
    return (
        ops.plain_mults
        + HE_ROTATION_WEIGHT * ops.rotations
        + HE_ADDITION_WEIGHT * ops.additions
    )


@lru_cache(maxsize=1)
def fitted_he_unit_costs() -> HeUnitCosts:
    """Per-op HE costs fitted to the paper's sequential-HE anchor.

    The single free parameter (seconds per plaintext multiplication on a
    reference server core) is chosen so the summed per-layer model equals
    1080 s for ResNet-18 on TinyImageNet.
    """
    from repro.nn.datasets import TINY_IMAGENET
    from repro.nn.models import resnet18

    network = resnet18(TINY_IMAGENET)
    total_weight = sum(
        weighted_he_ops(layer_op_count(info)) for info in network.linear_layers()
    )
    mult_seconds = PAPER_SEQUENTIAL_HE_SECONDS / total_weight
    return HeUnitCosts(
        plain_mult=mult_seconds,
        rotation=HE_ROTATION_WEIGHT * mult_seconds,
        addition=HE_ADDITION_WEIGHT * mult_seconds,
        encrypt=2.0 * mult_seconds,
        decrypt=1.0 * mult_seconds,
    )


@lru_cache(maxsize=1)
def fitted_ss_seconds_per_mac() -> float:
    """Online secret-sharing cost per MAC, anchored to the 0.61 s measurement."""
    from repro.nn.datasets import TINY_IMAGENET
    from repro.nn.models import resnet18

    return PAPER_SS_ONLINE_SECONDS / resnet18(TINY_IMAGENET).mac_count


def he_layer_seconds(network: Network, slots: int = GAZELLE_SLOTS) -> list[float]:
    """Server-side HE evaluation seconds for each linear layer."""
    costs = fitted_he_unit_costs()
    return [
        costs.layer_seconds(layer_op_count(info, slots))
        for info in network.linear_layers()
    ]


def he_ciphertext_counts(network: Network, slots: int = GAZELLE_SLOTS) -> tuple[int, int]:
    """(input, output) ciphertext counts across all linear layers."""
    counts = [layer_op_count(info, slots) for info in network.linear_layers()]
    return (
        sum(c.input_ciphertexts for c in counts),
        sum(c.output_ciphertexts for c in counts),
    )
