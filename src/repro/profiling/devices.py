"""Device profiles for the client and server hardware the paper models.

The paper measures on an Intel Atom Z8350 client (1.92 GHz, 4 cores, 2 GB)
and an AMD EPYC 7502 server (2.5 GHz, 32 cores, 256 GB), plus hypothetical
i5 / 2x i5 clients and 2x / 4x servers for the Figure 13 sensitivity study.

We model GC computation from circuit structure: garbling an AND gate costs
four correlation-robust hashes and evaluating costs two (half-gates), so a
device is characterized by its hash time. Fitting hash times to the
paper's four measurements (Atom garble 382.6 s / eval 200 s, EPYC garble
25.1 s / eval 11.1 s, ResNet-18 TinyImageNet, 2.23 M ReLUs x 534 ANDs)
reproduces all four within ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceProfile:
    """Compute capabilities of one party's hardware."""

    name: str
    cores: int
    gc_hash_seconds: float  # seconds per correlation-robust hash (1 core)
    he_scale: float  # HE op speed relative to the reference server core
    storage_bytes: float  # bytes available for protocol pre-computes

    def scaled(self, factor: float, name: str | None = None) -> "DeviceProfile":
        """A device ``factor`` times faster (the paper's 2x / 4x variants)."""
        return replace(
            self,
            name=name or f"{self.name} ({factor:g}x)",
            gc_hash_seconds=self.gc_hash_seconds / factor,
            he_scale=self.he_scale * factor,
        )

    def garble_seconds(self, and_gates: int, threads: int = 1) -> float:
        """Time to garble ``and_gates`` AND gates (4 hashes each)."""
        threads = max(1, min(threads, self.cores))
        return 4 * and_gates * self.gc_hash_seconds / threads

    def evaluate_seconds(self, and_gates: int, threads: int = 1) -> float:
        """Time to evaluate ``and_gates`` AND gates (2 hashes each)."""
        threads = max(1, min(threads, self.cores))
        return 2 * and_gates * self.gc_hash_seconds / threads


_GB = 1e9

# Hash times fitted to the paper's ResNet-18/TinyImageNet measurements
# (2,228,224 ReLUs x 534 AND gates; see module docstring).
ATOM = DeviceProfile("Intel Atom Z8350", cores=4, gc_hash_seconds=8.2e-8,
                     he_scale=0.066, storage_bytes=16 * _GB)
I5 = DeviceProfile("Intel i5", cores=4, gc_hash_seconds=2.25e-8,
                   he_scale=0.24, storage_bytes=16 * _GB)
I5_2X = I5.scaled(2.0, "Intel i5 (2x)")
EPYC = DeviceProfile("AMD EPYC 7502", cores=32, gc_hash_seconds=5.0e-9,
                     he_scale=1.0, storage_bytes=10_000 * _GB)
EPYC_2X = EPYC.scaled(2.0, "AMD EPYC (2x)")
EPYC_4X = EPYC.scaled(4.0, "AMD EPYC (4x)")

CLIENT_DEVICES = {"atom": ATOM, "i5": I5, "i5_2x": I5_2X}
SERVER_DEVICES = {"epyc": EPYC, "epyc_2x": EPYC_2X, "epyc_4x": EPYC_4X}


def with_storage(device: DeviceProfile, gigabytes: float) -> DeviceProfile:
    """The same device with a different storage budget."""
    return replace(device, storage_bytes=gigabytes * _GB)
