"""Device profiles, paper-anchored calibration, per-network cost synthesis."""

from repro.profiling.devices import (
    ATOM,
    CLIENT_DEVICES,
    EPYC,
    EPYC_2X,
    EPYC_4X,
    I5,
    I5_2X,
    SERVER_DEVICES,
    DeviceProfile,
    with_storage,
)

__all__ = [
    "ATOM",
    "CLIENT_DEVICES",
    "EPYC",
    "EPYC_2X",
    "EPYC_4X",
    "I5",
    "I5_2X",
    "SERVER_DEVICES",
    "DeviceProfile",
    "with_storage",
]
