"""Per-network physical cost profiles: compute seconds, bytes, joules.

``profile_network`` turns a :class:`~repro.nn.network.Network` into every
quantity the protocols and the system simulator need — per-layer HE times,
GC garble/evaluate times per device, storage footprints and communication
volumes for both the Server-Garbler and Client-Garbler protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.nn.network import Network
from repro.profiling import calibration as cal
from repro.profiling.devices import DeviceProfile

HE_KEY_BYTES = 20_000_000  # public + Galois keys shipped in the offline phase


class Protocol(Enum):
    SERVER_GARBLER = "server-garbler"
    CLIENT_GARBLER = "client-garbler"


@dataclass(frozen=True)
class CommVolumes:
    """Bytes exchanged per inference, split by phase and direction."""

    offline_up: float
    offline_down: float
    online_up: float
    online_down: float

    @property
    def upload(self) -> float:
        return self.offline_up + self.online_up

    @property
    def download(self) -> float:
        return self.offline_down + self.online_down

    @property
    def total(self) -> float:
        return self.upload + self.download


@dataclass(frozen=True)
class StorageFootprint:
    """Pre-compute bytes each party must hold for one buffered inference."""

    client_bytes: float
    server_bytes: float


@dataclass(frozen=True)
class NetworkCostProfile:
    """All physical costs of privately evaluating one network once."""

    network_name: str
    relu_count: int
    linear_layer_count: int
    mac_count: int
    input_elements: int
    output_elements: int
    share_elements: int  # total r / s vector elements across layers
    he_layer_seconds: tuple[float, ...]  # reference server core, per layer
    he_input_cts: int
    he_output_cts: int

    # -- computation -----------------------------------------------------------

    @property
    def and_gates(self) -> int:
        return self.relu_count * cal.ANDS_PER_RELU

    def garble_seconds(self, device: DeviceProfile) -> float:
        return device.garble_seconds(self.and_gates)

    def gc_eval_seconds(self, device: DeviceProfile) -> float:
        return device.evaluate_seconds(self.and_gates)

    def he_sequential_seconds(self, server: DeviceProfile) -> float:
        return sum(self.he_layer_seconds) / server.he_scale

    def he_lphe_seconds(self, server: DeviceProfile, cores: int | None = None) -> float:
        """Layer-parallel HE makespan with LPT scheduling onto ``cores``."""
        layers = [t / server.he_scale for t in self.he_layer_seconds]
        cores = cores if cores is not None else len(layers)
        cores = max(1, min(cores, len(layers)))
        bins = [0.0] * cores
        for duration in sorted(layers, reverse=True):
            bins[bins.index(min(bins))] += duration
        return max(bins)

    def client_he_seconds(self, client: DeviceProfile) -> float:
        costs = cal.fitted_he_unit_costs()
        raw = self.he_input_cts * costs.encrypt + self.he_output_cts * costs.decrypt
        return raw / client.he_scale

    def ss_online_seconds(self, server: DeviceProfile) -> float:
        return self.mac_count * cal.fitted_ss_seconds_per_mac() / server.he_scale

    # -- storage ---------------------------------------------------------------

    @property
    def share_bytes(self) -> float:
        return self.share_elements * cal.FIELD_BYTES

    def storage(self, protocol: Protocol) -> StorageFootprint:
        gc_side = self.relu_count * cal.GC_CLIENT_BYTES_PER_RELU + self.share_bytes
        garbler_side = (
            self.relu_count * cal.GC_GARBLER_BYTES_PER_RELU + self.share_bytes
        )
        if protocol is Protocol.SERVER_GARBLER:
            return StorageFootprint(client_bytes=gc_side, server_bytes=garbler_side)
        return StorageFootprint(client_bytes=garbler_side, server_bytes=gc_side)

    # -- communication -----------------------------------------------------------

    def comm(self, protocol: Protocol) -> CommVolumes:
        relu = self.relu_count
        ct = cal.HE_CIPHERTEXT_BYTES
        he_up = self.he_input_cts * ct + HE_KEY_BYTES
        he_down = self.he_output_cts * ct
        result_down = self.output_elements * cal.FIELD_BYTES
        input_up = self.input_elements * cal.FIELD_BYTES
        if protocol is Protocol.SERVER_GARBLER:
            bits = cal.SG_EVALUATOR_BITS_PER_RELU
            return CommVolumes(
                offline_up=he_up + relu * cal.ot_column_bytes(bits),
                offline_down=he_down
                + relu * (cal.GC_WIRE_BYTES_PER_RELU + cal.ot_pair_bytes(bits)),
                online_up=input_up + relu * cal.WORD_LABEL_BYTES,
                online_down=relu * cal.WORD_LABEL_BYTES + result_down,
            )
        bits = cal.CG_EVALUATOR_BITS_PER_RELU
        garbler_label_bytes = cal.SG_EVALUATOR_BITS_PER_RELU * cal.LABEL_BYTES
        return CommVolumes(
            offline_up=he_up
            + relu * (cal.GC_WIRE_BYTES_PER_RELU + garbler_label_bytes),
            offline_down=he_down,
            online_up=input_up + relu * cal.ot_pair_bytes(bits),
            online_down=relu * cal.ot_column_bytes(bits) + result_down,
        )

    # -- energy ---------------------------------------------------------------

    def client_energy_joules(self, protocol: Protocol) -> float:
        if protocol is Protocol.SERVER_GARBLER:
            return self.relu_count * cal.EVAL_JOULES_PER_RELU
        return self.relu_count * cal.GARBLE_JOULES_PER_RELU


def profile_network(network: Network, slots: int = cal.GAZELLE_SLOTS) -> NetworkCostProfile:
    """Compute the full cost profile of a network."""
    linear = network.linear_layers()
    in_cts, out_cts = cal.he_ciphertext_counts(network, slots)
    share_elements = sum(
        info.in_shape.elements + info.out_shape.elements for info in linear
    )
    return NetworkCostProfile(
        network_name=network.name,
        relu_count=network.relu_count,
        linear_layer_count=len(linear),
        mac_count=network.mac_count,
        input_elements=network.input_shape.elements,
        output_elements=network.output_shape.elements,
        share_elements=share_elements,
        he_layer_seconds=tuple(cal.he_layer_seconds(network, slots)),
        he_input_cts=in_cts,
        he_output_cts=out_cts,
    )
