"""The BFV (Brakerski/Fan-Vercauteren) homomorphic encryption scheme.

Implements exactly the surface DELPHI needs from SEAL: key generation,
encryption, decryption, ciphertext addition, plaintext multiplication and
addition, and slot rotations via Galois automorphisms with digit-decomposed
key switching. Ciphertext-ciphertext multiplication is deliberately absent —
the hybrid protocol never uses it.

The ciphertext-ring representation is resolved per parameter set (see
:meth:`repro.he.params.BfvParams.resolve_representation`): ``bigint``
keeps one coefficient vector mod q, ``rns`` keeps CRT residues per chain
prime so wide moduli run on the vectorized backend. Both produce
bit-identical transcripts under the same randomness; everything below the
construction helpers is representation-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend import RnsContext, backend_for
from repro.crypto.rng import SecureRandom
from repro.he.params import BfvParams
from repro.he.polynomial import (
    RingPoly,
    RnsPoly,
    key_switch_inner,
    multiply_shared,
)


@dataclass
class SecretKey:
    params: BfvParams
    s: "RingPoly | RnsPoly"


@dataclass
class PublicKey:
    params: BfvParams
    p0: "RingPoly | RnsPoly"  # -(a*s + e)
    p1: "RingPoly | RnsPoly"  # a

    @property
    def byte_size(self) -> int:
        return self.params.ciphertext_bytes


@dataclass
class GaloisKeys:
    """Key-switching keys for a set of Galois elements.

    ``keys`` holds the coefficient-domain components — the canonical,
    serialized form (``network/serialize.py`` reads exactly this, so
    wire formats are independent of any cached transform state). The
    evaluation-domain form every rotation actually multiplies against
    lives in ``_eval``: a derived cache (never serialized, excluded from
    equality) built once per Galois element via :meth:`eval_keys` —
    eagerly at keygen, lazily after deserialization.
    """

    params: BfvParams
    keys: dict[int, list[tuple["RingPoly | RnsPoly", "RingPoly | RnsPoly"]]]
    _eval: dict[int, list[tuple]] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def byte_size(self) -> int:
        per_digit = self.params.ciphertext_bytes
        return sum(len(digits) * per_digit for digits in self.keys.values())

    def eval_keys(self, galois_element: int) -> list[tuple]:
        """NTT-domain (k0, k1) pairs for one element (built once).

        The forward transforms here are the ones ``rotate`` no longer
        pays per invocation; the cached vectors survive `_NTT_CACHE`
        eviction because they are stored here, not in the NTT context.
        """
        pairs = self._eval.get(galois_element)
        if pairs is None:
            pairs = [
                (k0.to_eval(), k1.to_eval())
                for k0, k1 in self.keys[galois_element]
            ]
            self._eval[galois_element] = pairs
        return pairs


class Ciphertext:
    """A two-component BFV ciphertext (c0 + c1*s ≈ delta*m)."""

    __slots__ = ("params", "c0", "c1")

    def __init__(self, params: BfvParams, c0, c1):
        self.params = params
        self.c0 = c0
        self.c1 = c1

    @property
    def byte_size(self) -> int:
        return self.params.ciphertext_bytes

    def __add__(self, other: "Ciphertext") -> "Ciphertext":
        return Ciphertext(self.params, self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Ciphertext") -> "Ciphertext":
        return Ciphertext(self.params, self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Ciphertext":
        return Ciphertext(self.params, -self.c0, -self.c1)


def make_ring_element(coeffs, params: BfvParams):
    """Ciphertext-ring element in the params' resolved representation.

    The constructor deserialization and key loading go through, so wire
    bytes land directly in whichever representation the receiving context
    computes in.
    """
    if params.resolve_representation() == "rns":
        ctx = RnsContext.for_primes(params.rns_primes, prefer=params.backend)
        return RnsPoly.from_coeffs(ctx, coeffs)
    return RingPoly(
        coeffs, params.q, backend=backend_for(params.q, prefer=params.backend)
    )


def _same_representation(digit, key0) -> bool:
    """Whether the eval-domain key-switch fast path applies.

    The fused inner product multiplies digit and key vectors on one
    backend per ring, so the decomposed digits and the stored key
    components must agree on representation — same RNS chain and
    backends, or same bigint ring and backend instance. Anything else
    (a cross-representation ciphertext) takes the coercing fallback.
    """
    if isinstance(digit, RnsPoly):
        return (
            isinstance(key0, RnsPoly)
            and key0.ctx.primes == digit.ctx.primes
            and key0.ctx.backends == digit.ctx.backends
        )
    return (
        isinstance(key0, RingPoly)
        and key0.q == digit.q
        and key0.backend is digit.backend
    )


def _galois_digit_product(params: BfvParams, s, rotated_s, a_j, e_j, j: int):
    """One key-switching digit: k0 = -(a*s + e) + rotated_s * 2^(j*w).

    The single definition both the sequential loop and the pool job use,
    so the two execution paths cannot drift apart.
    """
    factor = pow(2, j * params.decomp_bits, params.q)
    return -(a_j * s + e_j) + rotated_s * factor


def galois_digit_block(args):
    """Pool job: the key products for one block of key-switching digits.

    Pure function of pre-drawn randomness — the parent keeps the RNG, so
    which worker runs which block never changes the keys. Coefficients
    travel as plain int lists (representation-independent and picklable).
    """
    params, s_coeffs, g, digit_draws = args
    if params.rns_primes:
        # Fresh interpreters (spawn workers) lack the parent's factor
        # registry; unpickling a frozen dataclass skips __post_init__.
        from repro.crypto.modmath import register_modulus_factors

        register_modulus_factors(params.q, params.rns_primes)
    ctx = BfvContext(params)
    s = ctx._ring_poly(s_coeffs)
    rotated_s = s.automorphism(g)
    out = []
    for j, a, e in digit_draws:
        k0 = _galois_digit_product(
            params, s, rotated_s, ctx._ring_poly(a), ctx._ring_poly(e), j
        )
        out.append((g, j, k0.coeffs))
    return out


class BfvContext:
    """Stateless algorithm bundle for one parameter set.

    Separate from the key material so the client and the server can share a
    context while holding different keys, mirroring how SEAL contexts are
    shared in DELPHI.
    """

    def __init__(self, params: BfvParams, rng: SecureRandom | None = None):
        self.params = params
        self._rng = rng or SecureRandom()
        # Resolved once so every polynomial this context creates agrees;
        # oversized q falls back to the exact python backend automatically.
        self._rq = backend_for(params.q, prefer=params.backend)
        self._rt = backend_for(params.t, prefer=params.backend)
        self.representation = params.resolve_representation()
        self._rns = (
            RnsContext.for_primes(params.rns_primes, prefer=params.backend)
            if self.representation == "rns"
            else None
        )

    def _ring_poly(self, coeffs):
        if self._rns is not None:
            return RnsPoly.from_coeffs(self._rns, coeffs)
        return RingPoly(coeffs, self.params.q, backend=self._rq)

    def _zero_poly(self):
        if self._rns is not None:
            return RnsPoly.zero(self._rns, self.params.n)
        return RingPoly.zero(self.params.n, self.params.q, backend=self._rq)

    def _lift_plain(self, plaintext: RingPoly):
        """Reinterpret a mod-t plaintext in the ciphertext ring."""
        if self._rns is not None:
            # Plaintext coefficients are < t; each backend reduces them
            # into its residue ring directly (vectorized when native).
            return RnsPoly.from_coeffs(self._rns, plaintext.vec)
        return plaintext.lift(self.params.q, backend=self._rq)

    def _scale_plain(self, plaintext: RingPoly):
        """The delta-scaling lift: coefficients * floor(q/t) mod q."""
        if self._rns is not None:
            return self._lift_plain(plaintext) * self.params.delta
        return plaintext.lift_scale(
            self.params.delta, self.params.q, backend=self._rq
        )

    # -- key generation ----------------------------------------------------

    def keygen(self) -> tuple[SecretKey, PublicKey]:
        p = self.params
        s = self._ring_poly([self._rng.ternary() for _ in range(p.n)])
        a = self._random_uniform()
        e = self._noise()
        pk = PublicKey(p, -(a * s + e), a)
        return SecretKey(p, s), pk

    def galois_keygen(
        self, sk: SecretKey, elements: list[int], pool=None
    ) -> GaloisKeys:
        """Generate key-switching keys for each Galois element.

        With ``pool`` (a :class:`repro.runtime.pool.PrecomputePool`) the
        per-digit key products — the NTT multiplies, which dominate at
        wide parameters — are sharded across worker processes. The
        randomness is drawn here either way, in the same (g, digit)
        order, so pooled keys are coefficient-identical to sequential
        ones under the same context RNG.
        """
        p = self.params
        if pool is not None and getattr(pool, "workers", 1) > 1:
            return self._galois_keygen_pooled(sk, elements, pool)
        keys: dict[int, list[tuple]] = {}
        for g in elements:
            rotated_s = sk.s.automorphism(g)
            digits = []
            for j in range(p.num_decomp_digits):
                a_j = self._random_uniform()
                e_j = self._noise()
                k0 = _galois_digit_product(p, sk.s, rotated_s, a_j, e_j, j)
                digits.append((k0, a_j))
            keys[g] = digits
        gk = GaloisKeys(p, keys)
        for g in elements:
            gk.eval_keys(g)  # pay the key-side forward NTTs once, here
        return gk

    def _galois_keygen_pooled(
        self, sk: SecretKey, elements: list[int], pool
    ) -> GaloisKeys:
        """Shard the per-(element, digit) key products across a pool."""
        p = self.params
        draws: list[tuple[int, list[tuple[int, list[int], list[int]]]]] = []
        for g in elements:
            per_digit = []
            for j in range(p.num_decomp_digits):
                # Exactly _random_uniform / _noise's draw order.
                a = [self._rng.field_element(p.q) for _ in range(p.n)]
                e = [self._rng.centered_binomial(p.noise_eta) for _ in range(p.n)]
                per_digit.append((j, a, e))
            draws.append((g, per_digit))
        s_coeffs = sk.s.coeffs
        jobs = []
        for g, per_digit in draws:
            for lo, hi in pool.shard_ranges(len(per_digit), min_shard=1):
                jobs.append((p, s_coeffs, g, per_digit[lo:hi]))
        keys: dict[int, list] = {
            g: [None] * p.num_decomp_digits for g in elements
        }
        uniform_draws = {
            (g, j): a for g, per_digit in draws for j, a, _ in per_digit
        }
        for block in pool.map_jobs(galois_digit_block, jobs):
            for g, j, k0_coeffs in block:
                keys[g][j] = (
                    self._ring_poly(k0_coeffs),
                    self._ring_poly(uniform_draws[g, j]),
                )
        gk = GaloisKeys(p, keys)
        for g in elements:
            gk.eval_keys(g)  # same eager transform as the sequential path
        return gk

    # -- encryption / decryption -------------------------------------------

    def encrypt(self, pk: PublicKey, plaintext: RingPoly) -> Ciphertext:
        """Encrypt a plaintext polynomial with coefficients in [0, t)."""
        p = self.params
        self._check_plaintext(plaintext)
        u = self._ring_poly([self._rng.ternary() for _ in range(p.n)])
        e1, e2 = self._noise(), self._noise()
        scaled = self._scale_plain(plaintext)
        c0 = pk.p0 * u + e1 + scaled
        c1 = pk.p1 * u + e2
        return Ciphertext(p, c0, c1)

    def decrypt(self, sk: SecretKey, ct: Ciphertext) -> RingPoly:
        """Decrypt to a plaintext polynomial over Z_t."""
        p = self.params
        noisy = ct.c0 + ct.c1 * sk.s
        # The rounding divide mixes q- and t-sized integers (c*t spans
        # ~q_bits + t_bits), so it runs on exact Python ints regardless of
        # backend or representation (RNS reconstructs through the CRT
        # here); decryption is once-per-ciphertext, not the hot loop.
        coeffs = [(c * p.t + p.q // 2) // p.q % p.t for c in noisy.coeffs]
        return RingPoly(coeffs, p.t, backend=self._rt)

    def noise_budget_bits(self, sk: SecretKey, ct: Ciphertext) -> int:
        """Remaining noise budget in bits (0 means decryption may fail)."""
        p = self.params
        noisy = ct.c0 + ct.c1 * sk.s
        message = self.decrypt(sk, ct)
        scaled = self._scale_plain(message)
        residual = noisy - scaled
        worst = max(
            min(c, p.q - c) for c in residual.coeffs
        )  # centered magnitude
        if worst == 0:
            return p.q_bits
        return max(0, (p.q // (2 * p.t)).bit_length() - worst.bit_length())

    # -- homomorphic operations ---------------------------------------------

    def add_plain(self, ct: Ciphertext, plaintext: RingPoly) -> Ciphertext:
        p = self.params
        self._check_plaintext(plaintext)
        scaled = self._scale_plain(plaintext)
        return Ciphertext(p, ct.c0 + scaled, ct.c1)

    def sub_plain(self, ct: Ciphertext, plaintext: RingPoly) -> Ciphertext:
        p = self.params
        self._check_plaintext(plaintext)
        scaled = self._scale_plain(plaintext)
        return Ciphertext(p, ct.c0 - scaled, ct.c1)

    def mul_plain(self, ct: Ciphertext, plaintext: RingPoly) -> Ciphertext:
        """Multiply by a plaintext polynomial (coefficients in [0, t)).

        The lifted plaintext multiplies both ciphertext components, so its
        forward NTT is shared and all transforms run as one batched pass
        per ring (see :func:`repro.he.polynomial.multiply_shared`).
        """
        p = self.params
        self._check_plaintext(plaintext)
        lifted = self._lift_plain(plaintext)
        c0, c1 = multiply_shared(lifted, (ct.c0, ct.c1))
        return Ciphertext(p, c0, c1)

    def rotate(self, ct: Ciphertext, galois_element: int, gk: GaloisKeys) -> Ciphertext:
        """Apply the automorphism X -> X^g and switch back to the original key.

        Hot path: the key-switch inner product runs against the stored
        eval-domain key components (:meth:`GaloisKeys.eval_keys`) — one
        stacked forward pass over all digits and a single two-vector
        inverse per ring, no key-side transforms and no accumulator
        allocations. Falls back to the per-digit coefficient-domain loop
        only when the ciphertext and keys disagree on representation
        (e.g. a deserialized bigint ciphertext under RNS keys); both
        paths are bit-identical.
        """
        p = self.params
        if galois_element not in gk.keys:
            raise KeyError(f"no Galois key for element {galois_element}")
        rotated_c0 = ct.c0.automorphism(galois_element)
        rotated_c1 = ct.c1.automorphism(galois_element)
        digits = rotated_c1.decompose(p.decomp_bits, p.num_decomp_digits)
        key_pairs = gk.keys[galois_element]
        if _same_representation(digits[0], key_pairs[0][0]):
            m0, m1 = key_switch_inner(digits, gk.eval_keys(galois_element))
            return Ciphertext(p, rotated_c0 + m0, m1)
        new_c0 = rotated_c0
        new_c1 = None
        for d_j, (k0, k1) in zip(digits, key_pairs):
            # Each digit hits both key components: share its forward NTT.
            m0, m1 = multiply_shared(d_j, (k0, k1))
            new_c0 = new_c0 + m0
            new_c1 = m1 if new_c1 is None else new_c1 + m1
        return Ciphertext(p, new_c0, new_c1)

    # -- helpers --------------------------------------------------------------

    def _random_uniform(self):
        p = self.params
        return self._ring_poly([self._rng.field_element(p.q) for _ in range(p.n)])

    def _noise(self):
        p = self.params
        return self._ring_poly(
            [self._rng.centered_binomial(p.noise_eta) for _ in range(p.n)]
        )

    def _check_plaintext(self, plaintext: RingPoly) -> None:
        p = self.params
        if plaintext.n != p.n:
            raise ValueError("plaintext degree mismatch")
        if plaintext.max_coeff() >= p.t:
            raise ValueError("plaintext coefficients must be reduced mod t")
