"""BFV batch (SIMD) encoding.

Maps vectors of n values in Z_t to plaintext polynomials such that
homomorphic operations act slot-wise, and Galois automorphisms X -> X^(3^r)
rotate the two n/2-slot rows cyclically — the packing DELPHI inherits from
Gazelle for its matrix-vector and convolution kernels.
"""

from __future__ import annotations

from repro.backend import backend_for
from repro.he.ntt import NegacyclicNtt
from repro.he.params import BfvParams
from repro.he.polynomial import RingPoly


class BatchEncoder:
    """Encode/decode between slot vectors and plaintext polynomials."""

    def __init__(self, params: BfvParams):
        self.params = params
        n = params.n
        self._backend = backend_for(params.t, prefer=params.backend)
        self._ntt = NegacyclicNtt(n, params.t, backend=self._backend)
        two_n = 2 * n
        # Slot i of row 0 lives at evaluation point zeta^(3^i); slot i of
        # row 1 at zeta^(-3^i). Forward negacyclic NTT output index k holds
        # the evaluation at zeta^(2k+1), hence the (e-1)/2 mapping.
        self._slot_to_eval = [0] * n
        e = 1
        for i in range(params.row_size):
            self._slot_to_eval[i] = (e - 1) // 2
            self._slot_to_eval[i + params.row_size] = (two_n - e - 1) // 2
            e = e * 3 % two_n
        self._eval_to_slot = [0] * n
        for slot, pos in enumerate(self._slot_to_eval):
            self._eval_to_slot[pos] = slot
        # Native gather indices: encode scatters values[slot] to position
        # slot_to_eval[slot], which is the gather values[eval_to_slot[pos]].
        self._gather_encode = self._backend.index_array(self._eval_to_slot)
        self._gather_decode = self._backend.index_array(self._slot_to_eval)

    @property
    def slot_count(self) -> int:
        return self.params.n

    @property
    def row_size(self) -> int:
        return self.params.row_size

    def encode(self, values) -> RingPoly:
        """Encode up to n values (padded with zeros) into a plaintext poly."""
        p = self.params
        be = self._backend
        if len(values) > p.n:
            raise ValueError(f"too many values for {p.n} slots")
        if len(values) < p.n:
            values = list(values) + [0] * (p.n - len(values))
        slots = be.asvec(values, p.t)
        evals = be.permute(slots, self._gather_encode)
        return RingPoly._from_vec(self._ntt.inverse_vec(evals), p.t, be)

    def decode(self, plaintext: RingPoly) -> list[int]:
        """Decode a plaintext polynomial back to its n slot values."""
        p = self.params
        be = self._backend
        if plaintext.n != p.n:
            raise ValueError("plaintext degree mismatch")
        vec = plaintext.vec if plaintext.backend is be else be.asvec(
            plaintext.coeffs, p.t
        )
        evals = self._ntt.forward_vec(vec)
        return be.tolist(be.permute(evals, self._gather_decode))

    def galois_element_for_rotation(self, steps: int) -> int:
        """Galois element realizing a cyclic row rotation by ``steps``.

        A positive step rotates slot contents left: new[i] = old[i + steps].
        """
        p = self.params
        steps %= p.row_size
        return pow(3, steps, 2 * p.n)

    def galois_element_for_row_swap(self) -> int:
        """Galois element swapping the two rows (conjugation, X -> X^(2n-1))."""
        return 2 * self.params.n - 1
