"""BFV batch (SIMD) encoding.

Maps vectors of n values in Z_t to plaintext polynomials such that
homomorphic operations act slot-wise, and Galois automorphisms X -> X^(3^r)
rotate the two n/2-slot rows cyclically — the packing DELPHI inherits from
Gazelle for its matrix-vector and convolution kernels.
"""

from __future__ import annotations

from repro.he.ntt import NegacyclicNtt
from repro.he.params import BfvParams
from repro.he.polynomial import RingPoly


class BatchEncoder:
    """Encode/decode between slot vectors and plaintext polynomials."""

    def __init__(self, params: BfvParams):
        self.params = params
        n = params.n
        self._ntt = NegacyclicNtt(n, params.t)
        two_n = 2 * n
        # Slot i of row 0 lives at evaluation point zeta^(3^i); slot i of
        # row 1 at zeta^(-3^i). Forward negacyclic NTT output index k holds
        # the evaluation at zeta^(2k+1), hence the (e-1)/2 mapping.
        self._slot_to_eval = [0] * n
        e = 1
        for i in range(params.row_size):
            self._slot_to_eval[i] = (e - 1) // 2
            self._slot_to_eval[i + params.row_size] = (two_n - e - 1) // 2
            e = e * 3 % two_n
        self._eval_to_slot = [0] * n
        for slot, pos in enumerate(self._slot_to_eval):
            self._eval_to_slot[pos] = slot

    @property
    def slot_count(self) -> int:
        return self.params.n

    @property
    def row_size(self) -> int:
        return self.params.row_size

    def encode(self, values: list[int]) -> RingPoly:
        """Encode up to n values (padded with zeros) into a plaintext poly."""
        p = self.params
        if len(values) > p.n:
            raise ValueError(f"too many values for {p.n} slots")
        evals = [0] * p.n
        for slot, value in enumerate(values):
            evals[self._slot_to_eval[slot]] = value % p.t
        return RingPoly(self._ntt.inverse(evals), p.t)

    def decode(self, plaintext: RingPoly) -> list[int]:
        """Decode a plaintext polynomial back to its n slot values."""
        p = self.params
        if plaintext.n != p.n:
            raise ValueError("plaintext degree mismatch")
        evals = self._ntt.forward(plaintext.coeffs)
        return [evals[self._slot_to_eval[slot]] for slot in range(p.n)]

    def galois_element_for_rotation(self, steps: int) -> int:
        """Galois element realizing a cyclic row rotation by ``steps``.

        A positive step rotates slot contents left: new[i] = old[i + steps].
        """
        p = self.params
        steps %= p.row_size
        return pow(3, steps, 2 * p.n)

    def galois_element_for_row_swap(self) -> int:
        """Galois element swapping the two rows (conjugation, X -> X^(2n-1))."""
        return 2 * self.params.n - 1
