"""Arithmetic in the RLWE ciphertext ring R_q = Z_q[X]/(X^n + 1)."""

from __future__ import annotations

from repro.he.ntt import NegacyclicNtt

_NTT_CACHE: dict[tuple[int, int], NegacyclicNtt] = {}


def _context(n: int, q: int) -> NegacyclicNtt:
    key = (n, q)
    ctx = _NTT_CACHE.get(key)
    if ctx is None:
        ctx = NegacyclicNtt(n, q)
        _NTT_CACHE[key] = ctx
    return ctx


class RingPoly:
    """Polynomial in Z_q[X]/(X^n + 1), coefficients stored reduced mod q."""

    __slots__ = ("n", "q", "coeffs")

    def __init__(self, coeffs: list[int], q: int):
        self.n = len(coeffs)
        self.q = q
        self.coeffs = [c % q for c in coeffs]

    @classmethod
    def zero(cls, n: int, q: int) -> "RingPoly":
        return cls([0] * n, q)

    @classmethod
    def constant(cls, value: int, n: int, q: int) -> "RingPoly":
        coeffs = [0] * n
        coeffs[0] = value % q
        return cls(coeffs, q)

    def _check(self, other: "RingPoly") -> None:
        if self.n != other.n or self.q != other.q:
            raise ValueError("ring mismatch between polynomials")

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        q = self.q
        return RingPoly(
            [(a + b) % q for a, b in zip(self.coeffs, other.coeffs)], q
        )

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        q = self.q
        return RingPoly(
            [(a - b) % q for a, b in zip(self.coeffs, other.coeffs)], q
        )

    def __neg__(self) -> "RingPoly":
        return RingPoly([-c % self.q for c in self.coeffs], self.q)

    def __mul__(self, other: "RingPoly | int") -> "RingPoly":
        if isinstance(other, int):
            scalar = other % self.q
            return RingPoly([c * scalar % self.q for c in self.coeffs], self.q)
        self._check(other)
        ctx = _context(self.n, self.q)
        return RingPoly(ctx.multiply(self.coeffs, other.coeffs), self.q)

    __rmul__ = __mul__

    def automorphism(self, galois_element: int) -> "RingPoly":
        """Apply X -> X^g; g must be odd so the map is a ring automorphism."""
        if galois_element % 2 == 0:
            raise ValueError("Galois element must be odd")
        n, q = self.n, self.q
        two_n = 2 * n
        out = [0] * n
        for i, c in enumerate(self.coeffs):
            if not c:
                continue
            j = i * galois_element % two_n
            if j < n:
                out[j] = (out[j] + c) % q
            else:
                out[j - n] = (out[j - n] - c) % q
        return RingPoly(out, q)

    def decompose(self, base_bits: int, num_digits: int) -> list["RingPoly"]:
        """Digit decomposition: self = sum_j digits[j] * 2^(j*base_bits)."""
        mask = (1 << base_bits) - 1
        digits = []
        coeffs = list(self.coeffs)
        for _ in range(num_digits):
            digits.append(RingPoly([c & mask for c in coeffs], self.q))
            coeffs = [c >> base_bits for c in coeffs]
        return digits

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RingPoly)
            and self.q == other.q
            and self.coeffs == other.coeffs
        )

    def __repr__(self) -> str:
        head = ", ".join(str(c) for c in self.coeffs[:4])
        return f"RingPoly(n={self.n}, q={self.q}, [{head}, ...])"
