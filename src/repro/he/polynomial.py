"""Arithmetic in the RLWE ciphertext ring R_q = Z_q[X]/(X^n + 1).

``RingPoly`` stores its coefficients as a backend-native vector (plain
``list[int]`` on the python backend, ``uint64`` ndarray on numpy) and
routes every operation through :mod:`repro.backend`, so a whole
ciphertext operation runs as a handful of vectorized kernels instead of
per-coefficient Python loops. The ``coeffs`` property materializes (and
caches) a plain-int list for serialization, decryption and tests.

Ring multiplications share :class:`~repro.he.ntt.NegacyclicNtt` contexts
through a bounded LRU cache keyed by (n, q, backend): parameter sweeps
used to grow the old unbounded dict without limit.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.backend import ComputeBackend, backend_for
from repro.he.ntt import NegacyclicNtt

_NTT_CACHE: OrderedDict[tuple[int, int, str], NegacyclicNtt] = OrderedDict()
_NTT_CACHE_MAX = 32


def _context(n: int, q: int, backend: ComputeBackend) -> NegacyclicNtt:
    key = (n, q, backend.name)
    ctx = _NTT_CACHE.get(key)
    if ctx is None:
        ctx = NegacyclicNtt(n, q, backend=backend)
        _NTT_CACHE[key] = ctx
        while len(_NTT_CACHE) > _NTT_CACHE_MAX:
            _NTT_CACHE.popitem(last=False)
    else:
        _NTT_CACHE.move_to_end(key)
    return ctx


def clear_ntt_cache() -> None:
    """Drop all cached NTT contexts (tests and parameter sweeps)."""
    _NTT_CACHE.clear()


def ntt_cache_size() -> int:
    return len(_NTT_CACHE)


class RingPoly:
    """Polynomial in Z_q[X]/(X^n + 1), coefficients stored reduced mod q."""

    __slots__ = ("n", "q", "_backend", "_vec", "_coeffs")

    def __init__(self, coeffs, q: int, backend: ComputeBackend | None = None):
        self._backend = backend or backend_for(q)
        self._vec = self._backend.asvec(coeffs, q)
        self.n = self._backend.veclen(self._vec)
        self.q = q
        self._coeffs: list[int] | None = None

    @classmethod
    def _from_vec(cls, vec, q: int, backend: ComputeBackend) -> "RingPoly":
        """Wrap an already-reduced backend vector without copying."""
        poly = cls.__new__(cls)
        poly._backend = backend
        poly._vec = vec
        poly.n = backend.veclen(vec)
        poly.q = q
        poly._coeffs = None
        return poly

    @classmethod
    def zero(cls, n: int, q: int, backend: ComputeBackend | None = None) -> "RingPoly":
        backend = backend or backend_for(q)
        return cls._from_vec(backend.zeros(n, q), q, backend)

    @classmethod
    def constant(cls, value: int, n: int, q: int) -> "RingPoly":
        coeffs = [0] * n
        coeffs[0] = value % q
        return cls(coeffs, q)

    # -- representation -----------------------------------------------------

    @property
    def coeffs(self) -> list[int]:
        """Coefficients as plain Python ints (computed once, then cached)."""
        if self._coeffs is None:
            self._coeffs = self._backend.tolist(self._vec)
        return self._coeffs

    @property
    def backend(self) -> ComputeBackend:
        return self._backend

    @property
    def vec(self):
        """Backend-native coefficient vector (treat as immutable)."""
        return self._vec

    def _coerce(self, other: "RingPoly"):
        """Other's vector on this poly's backend (same q is checked first)."""
        if other._backend is self._backend:
            return other._vec
        return self._backend.asvec(other.coeffs, self.q)

    def _check(self, other: "RingPoly") -> None:
        if self.n != other.n or self.q != other.q:
            raise ValueError("ring mismatch between polynomials")

    # -- ring operations ----------------------------------------------------

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        be = self._backend
        return RingPoly._from_vec(
            be.add(self._vec, self._coerce(other), self.q), self.q, be
        )

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        be = self._backend
        return RingPoly._from_vec(
            be.sub(self._vec, self._coerce(other), self.q), self.q, be
        )

    def __neg__(self) -> "RingPoly":
        be = self._backend
        return RingPoly._from_vec(be.neg(self._vec, self.q), self.q, be)

    def __mul__(self, other: "RingPoly | int") -> "RingPoly":
        be = self._backend
        if isinstance(other, int):
            return RingPoly._from_vec(
                be.scalar_mul(self._vec, other, self.q), self.q, be
            )
        self._check(other)
        ctx = _context(self.n, self.q, be)
        return RingPoly._from_vec(
            ctx.multiply_vec(self._vec, self._coerce(other)), self.q, be
        )

    __rmul__ = __mul__

    def automorphism(self, galois_element: int) -> "RingPoly":
        """Apply X -> X^g; g must be odd so the map is a ring automorphism."""
        if galois_element % 2 == 0:
            raise ValueError("Galois element must be odd")
        be = self._backend
        return RingPoly._from_vec(
            be.automorphism(self._vec, galois_element, self.q), self.q, be
        )

    def decompose(self, base_bits: int, num_digits: int) -> list["RingPoly"]:
        """Digit decomposition: self = sum_j digits[j] * 2^(j*base_bits)."""
        be = self._backend
        return [
            RingPoly._from_vec(digit, self.q, be)
            for digit in be.decompose(self._vec, base_bits, num_digits, self.q)
        ]

    # -- cross-modulus helpers (plaintext <-> ciphertext ring) --------------

    def lift(self, new_q: int) -> "RingPoly":
        """Reinterpret in Z_new_q (coefficients must already be < new_q)."""
        target = backend_for(new_q)
        if target is self._backend and new_q >= self.q:
            return RingPoly._from_vec(self._vec, new_q, target)
        return RingPoly(self.coeffs, new_q, backend=target)

    def lift_scale(self, factor: int, new_q: int) -> "RingPoly":
        """Coefficients * factor mod new_q, e.g. the delta-scaling lift."""
        target = backend_for(new_q)
        if target is self._backend:
            return RingPoly._from_vec(
                target.scalar_mul(self._vec, factor, new_q), new_q, target
            )
        factor %= new_q
        return RingPoly(
            [c * factor % new_q for c in self.coeffs], new_q, backend=target
        )

    def max_coeff(self) -> int:
        return self._backend.max_value(self._vec)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RingPoly) or self.q != other.q:
            return False
        if other._backend is self._backend:
            return self._backend.eq(self._vec, other._vec)
        return self.coeffs == other.coeffs

    def __repr__(self) -> str:
        head = ", ".join(str(c) for c in self.coeffs[:4])
        return f"RingPoly(n={self.n}, q={self.q}, [{head}, ...])"
