"""Arithmetic in the RLWE ciphertext ring R_q = Z_q[X]/(X^n + 1).

Two representations of a ring element are provided:

* ``RingPoly`` — one coefficient vector mod q ("bigint"): backend-native
  (plain ``list[int]`` on the python backend, ``uint64`` ndarray on
  numpy), exact for any q because oversized moduli resolve to the python
  backend. The reference semantics.
* ``RnsPoly`` — one residue vector per prime of an RNS (CRT) chain whose
  product is q. Every residue fits the numpy backend's exact reduction,
  so wide-modulus parameter sets (the paper-faithful 100/180-bit q)
  run vectorized. Bit-exact with ``RingPoly`` at the same q; enforced by
  ``tests/test_rns_parity.py``.

The ``coeffs`` property of either class materializes (and caches) a
plain-int list for serialization, decryption and tests — for ``RnsPoly``
that is the CRT reconstruction.

Long-lived operands that are always *multiplied* — Galois key components
in the key switch — additionally have an NTT-domain form
(``EvalRingPoly`` / ``EvalRnsPoly``, built with ``to_eval()``): the
psi-twisted forward transform is taken once at keygen, and
:func:`key_switch_inner` consumes it directly so rotations never
forward-transform key material again. Wire formats stay in the
coefficient domain; the eval form is a local cache, never serialized.

Ring multiplications share :class:`~repro.he.ntt.NegacyclicNtt` contexts
through a bounded LRU cache keyed by (n, q, backend): parameter sweeps
used to grow the old unbounded dict without limit. An RNS chain of k
primes occupies k slots (one per residue ring); the bound comfortably
exceeds any realistic chain so a chain never evicts its own contexts
mid-ciphertext-op (pinned by ``tests/test_ntt_cache.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.backend import ComputeBackend, RnsContext, backend_for
from repro.he.ntt import NegacyclicNtt

_NTT_CACHE: OrderedDict[tuple[int, int, str], NegacyclicNtt] = OrderedDict()
_NTT_CACHE_MAX = 32
# The get→insert→evict sequence is compound: the serving gateway's inline
# refill thread and its selector thread can both run HE work, and an
# unlocked eviction racing a move_to_end would KeyError. Twiddle-table
# construction happens outside the lock's hot path concern (building the
# same context twice would merely waste work, but the lock removes even
# that).
_NTT_CACHE_LOCK = threading.Lock()


def _context(n: int, q: int, backend: ComputeBackend) -> NegacyclicNtt:
    key = (n, q, backend.name)
    with _NTT_CACHE_LOCK:
        ctx = _NTT_CACHE.get(key)
        if ctx is not None:
            _NTT_CACHE.move_to_end(key)
            return ctx
    ctx = NegacyclicNtt(n, q, backend=backend)
    with _NTT_CACHE_LOCK:
        _NTT_CACHE[key] = ctx
        while len(_NTT_CACHE) > _NTT_CACHE_MAX:
            _NTT_CACHE.popitem(last=False)
    return ctx


def clear_ntt_cache() -> None:
    """Drop all cached NTT contexts (tests and parameter sweeps)."""
    _NTT_CACHE.clear()


def ntt_cache_size() -> int:
    return len(_NTT_CACHE)


def ntt_cache_keys() -> tuple[tuple[int, int, str], ...]:
    """Cache keys oldest-first (the LRU eviction order), for tests."""
    return tuple(_NTT_CACHE)


class RingPoly:
    """Polynomial in Z_q[X]/(X^n + 1), coefficients stored reduced mod q."""

    __slots__ = ("n", "q", "_backend", "_vec", "_coeffs")

    def __init__(self, coeffs, q: int, backend: ComputeBackend | None = None):
        self._backend = backend or backend_for(q)
        self._vec = self._backend.asvec(coeffs, q)
        self.n = self._backend.veclen(self._vec)
        self.q = q
        self._coeffs: list[int] | None = None

    @classmethod
    def _from_vec(cls, vec, q: int, backend: ComputeBackend) -> "RingPoly":
        """Wrap an already-reduced backend vector without copying."""
        poly = cls.__new__(cls)
        poly._backend = backend
        poly._vec = vec
        poly.n = backend.veclen(vec)
        poly.q = q
        poly._coeffs = None
        return poly

    @classmethod
    def zero(cls, n: int, q: int, backend: ComputeBackend | None = None) -> "RingPoly":
        backend = backend or backend_for(q)
        return cls._from_vec(backend.zeros(n, q), q, backend)

    @classmethod
    def constant(cls, value: int, n: int, q: int) -> "RingPoly":
        coeffs = [0] * n
        coeffs[0] = value % q
        return cls(coeffs, q)

    # -- representation -----------------------------------------------------

    @property
    def coeffs(self) -> list[int]:
        """Coefficients as plain Python ints (computed once, then cached)."""
        if self._coeffs is None:
            self._coeffs = self._backend.tolist(self._vec)
        return self._coeffs

    @property
    def backend(self) -> ComputeBackend:
        return self._backend

    @property
    def vec(self):
        """Backend-native coefficient vector (treat as immutable)."""
        return self._vec

    def _coerce(self, other: "RingPoly | RnsPoly"):
        """Other's vector on this poly's backend (same ring checked first).

        Accepts an :class:`RnsPoly` operand too (its ``coeffs`` are the
        CRT reconstruction), so cross-representation arithmetic works in
        either operand order.
        """
        backend = getattr(other, "_backend", None)
        if backend is self._backend:
            return other._vec
        return self._backend.asvec(other.coeffs, self.q)

    def _check(self, other: "RingPoly | RnsPoly") -> None:
        if self.n != other.n or self.q != other.q:
            raise ValueError("ring mismatch between polynomials")

    # -- ring operations ----------------------------------------------------

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        be = self._backend
        return RingPoly._from_vec(
            be.add(self._vec, self._coerce(other), self.q), self.q, be
        )

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        be = self._backend
        return RingPoly._from_vec(
            be.sub(self._vec, self._coerce(other), self.q), self.q, be
        )

    def __neg__(self) -> "RingPoly":
        be = self._backend
        return RingPoly._from_vec(be.neg(self._vec, self.q), self.q, be)

    def __mul__(self, other: "RingPoly | int") -> "RingPoly":
        be = self._backend
        if isinstance(other, int):
            return RingPoly._from_vec(
                be.scalar_mul(self._vec, other, self.q), self.q, be
            )
        self._check(other)
        ctx = _context(self.n, self.q, be)
        return RingPoly._from_vec(
            ctx.multiply_vec(self._vec, self._coerce(other)), self.q, be
        )

    __rmul__ = __mul__

    def automorphism(self, galois_element: int) -> "RingPoly":
        """Apply X -> X^g; g must be odd so the map is a ring automorphism."""
        if galois_element % 2 == 0:
            raise ValueError("Galois element must be odd")
        be = self._backend
        return RingPoly._from_vec(
            be.automorphism(self._vec, galois_element, self.q), self.q, be
        )

    def decompose(self, base_bits: int, num_digits: int) -> list["RingPoly"]:
        """Digit decomposition: self = sum_j digits[j] * 2^(j*base_bits)."""
        be = self._backend
        return [
            RingPoly._from_vec(digit, self.q, be)
            for digit in be.decompose(self._vec, base_bits, num_digits, self.q)
        ]

    def to_eval(self) -> "EvalRingPoly":
        """NTT-domain form (for key material that is only ever multiplied)."""
        ctx = _context(self.n, self.q, self._backend)
        return EvalRingPoly(
            ctx.forward_vec(self._vec), self.q, self._backend
        )

    # -- cross-modulus helpers (plaintext <-> ciphertext ring) --------------

    def lift(self, new_q: int, backend: ComputeBackend | None = None) -> "RingPoly":
        """Reinterpret in Z_new_q (coefficients must already be < new_q).

        ``backend`` pins the target backend (callers holding a resolved
        per-params preference); otherwise the registry resolves it.
        """
        target = backend or backend_for(new_q)
        if target is self._backend and new_q >= self.q:
            return RingPoly._from_vec(self._vec, new_q, target)
        return RingPoly(self.coeffs, new_q, backend=target)

    def lift_scale(
        self, factor: int, new_q: int, backend: ComputeBackend | None = None
    ) -> "RingPoly":
        """Coefficients * factor mod new_q, e.g. the delta-scaling lift."""
        target = backend or backend_for(new_q)
        if target is self._backend:
            return RingPoly._from_vec(
                target.scalar_mul(self._vec, factor, new_q), new_q, target
            )
        factor %= new_q
        return RingPoly(
            [c * factor % new_q for c in self.coeffs], new_q, backend=target
        )

    def max_coeff(self) -> int:
        return self._backend.max_value(self._vec)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RingPoly):
            if self.q != other.q:
                return False
            if other._backend is self._backend:
                return self._backend.eq(self._vec, other._vec)
            return self.coeffs == other.coeffs
        if isinstance(other, RnsPoly) and other.q == self.q:
            # Mirror RnsPoly.__eq__ so equality is symmetric across
            # representations.
            return self.coeffs == other.coeffs
        return False

    def __repr__(self) -> str:
        head = ", ".join(str(c) for c in self.coeffs[:4])
        return f"RingPoly(n={self.n}, q={self.q}, [{head}, ...])"


class EvalRingPoly:
    """Ring element held in the NTT (evaluation) domain.

    The vector is the psi-twisted forward transform of a
    :class:`RingPoly`, fully reduced. Deliberately *not* a ring element
    API — eval-domain values only support the one thing the key switch
    needs, being a pointwise-multiply operand inside
    :func:`key_switch_inner` — so there is no way to accidentally mix
    domains in ring arithmetic. ``to_coeff()`` round-trips back for
    serialization and tests.
    """

    __slots__ = ("n", "q", "_backend", "_vec")

    def __init__(self, vec, q: int, backend: ComputeBackend):
        self._backend = backend
        self._vec = vec
        self.n = backend.veclen(vec)
        self.q = q

    @property
    def backend(self) -> ComputeBackend:
        return self._backend

    @property
    def vec(self):
        """Backend-native eval-domain vector (treat as immutable)."""
        return self._vec

    def to_coeff(self) -> RingPoly:
        """Inverse-transform back to a coefficient-domain RingPoly."""
        ctx = _context(self.n, self.q, self._backend)
        return RingPoly._from_vec(
            ctx.inverse_vec(self._vec), self.q, self._backend
        )

    def __repr__(self) -> str:
        return f"EvalRingPoly(n={self.n}, q={self.q})"


class RnsPoly:
    """Polynomial in Z_q[X]/(X^n + 1) held as CRT residues, q = prod q_i.

    ``residues[i]`` is a backend-native coefficient vector mod the chain's
    i-th prime. All ring operations act residue-wise (they commute with
    the CRT isomorphism), so each runs as small-modulus vectorized
    kernels; only ``coeffs`` — and the operations that genuinely need the
    integer representative, decryption rounding and digit decomposition —
    pay for CRT reconstruction. Mirrors the :class:`RingPoly` surface the
    BFV layer uses, so ciphertexts are representation-agnostic.
    """

    __slots__ = ("ctx", "residues", "n", "_coeffs")

    def __init__(self, ctx: RnsContext, residues: list):
        self.ctx = ctx
        self.residues = residues
        self.n = ctx.backends[0].veclen(residues[0])
        self._coeffs: list[int] | None = None

    @classmethod
    def from_coeffs(cls, ctx: RnsContext, values) -> "RnsPoly":
        """Decompose integer (or backend-native) coefficients into residues."""
        return cls(ctx, ctx.to_rns(values))

    @classmethod
    def zero(cls, ctx: RnsContext, n: int) -> "RnsPoly":
        return cls(
            ctx,
            [be.zeros(n, p) for p, be in zip(ctx.primes, ctx.backends)],
        )

    # -- representation -----------------------------------------------------

    @property
    def q(self) -> int:
        return self.ctx.q

    @property
    def coeffs(self) -> list[int]:
        """CRT-reconstructed coefficients in [0, q) (computed once)."""
        if self._coeffs is None:
            self._coeffs = self.ctx.from_rns(self.residues)
        return self._coeffs

    def _coerce(self, other: "RnsPoly | RingPoly") -> "RnsPoly":
        if isinstance(other, RnsPoly):
            if other.ctx.primes != self.ctx.primes or other.n != self.n:
                raise ValueError("ring mismatch between RNS polynomials")
            return other
        if isinstance(other, RingPoly) and other.q == self.q:
            if other.n != self.n:
                raise ValueError("ring mismatch between polynomials")
            # Cross-representation operand (e.g. a deserialized bigint
            # ciphertext meeting RNS key material): decompose it.
            return RnsPoly.from_coeffs(self.ctx, other.coeffs)
        raise TypeError(f"cannot combine RnsPoly with {type(other).__name__}")

    def _map(self, op) -> "RnsPoly":
        return RnsPoly(
            self.ctx,
            [
                op(i, p, be)
                for i, (p, be) in enumerate(
                    zip(self.ctx.primes, self.ctx.backends)
                )
            ],
        )

    # -- ring operations ----------------------------------------------------

    def __add__(self, other) -> "RnsPoly":
        o = self._coerce(other)
        return self._map(
            lambda i, p, be: be.add(self.residues[i], o.residues[i], p)
        )

    def __sub__(self, other) -> "RnsPoly":
        o = self._coerce(other)
        return self._map(
            lambda i, p, be: be.sub(self.residues[i], o.residues[i], p)
        )

    def __neg__(self) -> "RnsPoly":
        return self._map(lambda i, p, be: be.neg(self.residues[i], p))

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, int):
            return self._map(
                lambda i, p, be: be.scalar_mul(self.residues[i], other, p)
            )
        o = self._coerce(other)
        return self._map(
            lambda i, p, be: _context(self.n, p, be).multiply_vec(
                self.residues[i], o.residues[i]
            )
        )

    __rmul__ = __mul__

    def mul_shared(self, others: list) -> list["RnsPoly"]:
        """self*o for each o, batching NTTs per residue ring (the paired
        c0/c1 transform: self is forward-transformed once per prime)."""
        coerced = [self._coerce(o) for o in others]
        per_prime = [
            _context(self.n, p, be).multiply_shared_vec(
                self.residues[i], [o.residues[i] for o in coerced]
            )
            for i, (p, be) in enumerate(
                zip(self.ctx.primes, self.ctx.backends)
            )
        ]
        return [
            RnsPoly(self.ctx, [prime_out[j] for prime_out in per_prime])
            for j in range(len(others))
        ]

    def automorphism(self, galois_element: int) -> "RnsPoly":
        """Apply X -> X^g residue-wise (the map commutes with the CRT)."""
        if galois_element % 2 == 0:
            raise ValueError("Galois element must be odd")
        return self._map(
            lambda i, p, be: be.automorphism(self.residues[i], galois_element, p)
        )

    def decompose(self, base_bits: int, num_digits: int) -> list["RnsPoly"]:
        """Digit decomposition of the *integer representative* of each
        coefficient — the exact base conversion the key switch needs, in
        one of two bit-identical flavours:

        * fast path: :meth:`RnsContext.decompose_digits` produces the
          digits straight from the residues on small-int vectorized
          kernels (no bigint reconstruction at all);
        * fallback (mixed backends, an already-reconstructed poly, or a
          chain/width shape the backend declined): reconstruct once
          through the CRT — reusing the cached ``coeffs`` if present —
          then mask/shift.

        Either way each (small) digit converts straight back into every
        residue base.
        """
        if self._coeffs is None:
            split = self.ctx.decompose_digits(
                self.residues, base_bits, num_digits
            )
            if split is not None:
                return [
                    RnsPoly.from_coeffs(self.ctx, digit) for digit in split
                ]
        mask = (1 << base_bits) - 1
        work = self.coeffs
        digits = []
        for _ in range(num_digits):
            digits.append(
                RnsPoly.from_coeffs(self.ctx, [c & mask for c in work])
            )
            work = [c >> base_bits for c in work]
        return digits

    def to_eval(self) -> "EvalRnsPoly":
        """NTT-domain form, residue-wise (see :class:`EvalRingPoly`)."""
        return EvalRnsPoly(
            self.ctx,
            [
                _context(self.n, p, be).forward_vec(r)
                for r, p, be in zip(
                    self.residues, self.ctx.primes, self.ctx.backends
                )
            ],
        )

    def max_coeff(self) -> int:
        return max(self.coeffs)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RnsPoly) and other.ctx.primes == self.ctx.primes:
            return all(
                be.eq(a, b)
                for a, b, be in zip(
                    self.residues, other.residues, self.ctx.backends
                )
            )
        if isinstance(other, (RnsPoly, RingPoly)) and other.q == self.q:
            return self.coeffs == other.coeffs
        return False

    def __repr__(self) -> str:
        bits = [p.bit_length() for p in self.ctx.primes]
        return f"RnsPoly(n={self.n}, chain={bits} bits)"


class EvalRnsPoly:
    """RNS ring element held in the NTT (evaluation) domain.

    One eval-domain vector per residue ring (the per-prime analogue of
    :class:`EvalRingPoly`); same deliberately narrow surface.
    """

    __slots__ = ("ctx", "evals", "n")

    def __init__(self, ctx: RnsContext, evals: list):
        self.ctx = ctx
        self.evals = evals
        self.n = ctx.backends[0].veclen(evals[0])

    @property
    def q(self) -> int:
        return self.ctx.q

    def to_coeff(self) -> RnsPoly:
        """Inverse-transform back to a coefficient-domain RnsPoly."""
        return RnsPoly(
            self.ctx,
            [
                _context(self.n, p, be).inverse_vec(v)
                for v, p, be in zip(
                    self.evals, self.ctx.primes, self.ctx.backends
                )
            ],
        )

    def __repr__(self) -> str:
        bits = [p.bit_length() for p in self.ctx.primes]
        return f"EvalRnsPoly(n={self.n}, chain={bits} bits)"


def key_switch_inner(digits, key_pairs):
    """(Σ_j d_j·k0_j, Σ_j d_j·k1_j) with eval-domain key components.

    ``digits`` are coefficient-domain ring elements (all the same
    representation); ``key_pairs`` are matching ``(k0, k1)`` tuples of
    :class:`EvalRingPoly` / :class:`EvalRnsPoly`. Dispatches to
    :meth:`~repro.he.ntt.NegacyclicNtt.key_switch_inner_vec` (per
    residue ring for RNS), so each ring pays one stacked digit forward
    pass and one two-vector inverse — key material is never
    forward-transformed here. Bit-identical to the per-digit
    ``multiply_shared`` + accumulate loop it replaces.
    """
    first = digits[0]
    if isinstance(first, RnsPoly):
        ctx = first.ctx
        out0, out1 = [], []
        for i, (p, be) in enumerate(zip(ctx.primes, ctx.backends)):
            ntt = _context(first.n, p, be)
            r0, r1 = ntt.key_switch_inner_vec(
                [d.residues[i] for d in digits],
                [k0.evals[i] for k0, _ in key_pairs],
                [k1.evals[i] for _, k1 in key_pairs],
            )
            out0.append(r0)
            out1.append(r1)
        return RnsPoly(ctx, out0), RnsPoly(ctx, out1)
    be = first.backend
    ntt = _context(first.n, first.q, be)
    v0, v1 = ntt.key_switch_inner_vec(
        [d.vec for d in digits],
        [k0.vec for k0, _ in key_pairs],
        [k1.vec for _, k1 in key_pairs],
    )
    return (
        RingPoly._from_vec(v0, first.q, be),
        RingPoly._from_vec(v1, first.q, be),
    )


def multiply_shared(shared, others):
    """Products shared*o for each ring element o, batching NTT transforms.

    The shared operand (a lifted plaintext in ``mul_plain``, a key-switch
    digit in ``rotate``) is forward-transformed once and all transforms
    run as stacked plan calls — see
    :meth:`~repro.he.ntt.NegacyclicNtt.multiply_shared_vec`. Dispatches on
    representation; results are bit-identical to ``[shared * o for o in
    others]`` either way.
    """
    others = list(others)
    if isinstance(shared, RnsPoly):
        return shared.mul_shared(others)
    coerced = []
    for o in others:
        shared._check(o)  # same ValueError the elementwise path raises
        coerced.append(shared._coerce(o))
    be = shared.backend
    ctx = _context(shared.n, shared.q, be)
    vecs = ctx.multiply_shared_vec(shared.vec, coerced)
    return [RingPoly._from_vec(v, shared.q, be) for v in vecs]
