"""Homomorphic linear-layer evaluation (Gazelle-style packed kernels).

The hybrid protocol's offline phase asks the server to compute ``W @ r`` on
an encrypted random vector ``r``. We implement the Halevi-Shoup diagonal
method for packed matrix-vector products, and evaluate convolutions by
lowering them to a matrix-vector product over the flattened input (the
im2col/Toeplitz matrix). Gazelle's rotation-optimized convolution kernels
differ only in *cost*, never in the computed function; their operation
counts are modeled separately in :mod:`repro.he.costmodel`.
"""

from __future__ import annotations

import numpy as np

from repro.he.bfv import BfvContext, Ciphertext, GaloisKeys, PublicKey, SecretKey
from repro.he.encoder import BatchEncoder


def required_rotation_steps(n_in: int) -> list[int]:
    """Rotation steps the diagonal method needs for an n_in-wide matvec."""
    return list(range(1, n_in))


class HomomorphicLinearEvaluator:
    """Server-side evaluator for encrypted matrix-vector products."""

    def __init__(self, ctx: BfvContext, encoder: BatchEncoder, galois_keys: GaloisKeys):
        self._ctx = ctx
        self._encoder = encoder
        self._galois_keys = galois_keys
        self.rotations_performed = 0
        self.plain_mults_performed = 0

    def _diagonal(self, matrix, d: int, n_in: int, n_out: int, row_size: int):
        """Generalized diagonal d padded to a full batching row.

        Vectorized gather when the matrix arrives as an ndarray (the
        lowered-network representation under the numpy backend); the list
        path keeps the reference loop.
        """
        t = self._encoder.params.t
        if isinstance(matrix, np.ndarray):
            rows = np.arange(n_out)
            diag = np.zeros(row_size, dtype=np.uint64)
            diag[:n_out] = matrix[rows, (rows + d) % n_in] % np.uint64(t)
            return diag
        return [
            matrix[i][(i + d) % n_in] % t if i < n_out else 0
            for i in range(row_size)
        ]

    @staticmethod
    def _both_rows(diag):
        """Replicate a row-sized diagonal into both batching rows."""
        if isinstance(diag, np.ndarray):
            return np.concatenate([diag, diag])
        return diag + diag

    def matvec(self, ct_x: Ciphertext, matrix) -> Ciphertext:
        """Homomorphically compute ``matrix @ x`` via the diagonal method.

        ``ct_x`` must encrypt x replicated to fill a batching row (see
        :meth:`pack_vector`); the matrix width must divide the row size.
        ``matrix`` is a 2D field matrix — list of rows or ndarray.
        """
        encoder = self._encoder
        row_size = encoder.row_size
        n_out = len(matrix)
        n_in = len(matrix[0])
        if row_size % n_in != 0:
            raise ValueError(f"matrix width {n_in} must divide row size {row_size}")
        if n_out > row_size:
            raise ValueError(f"matrix height {n_out} exceeds row size {row_size}")

        result: Ciphertext | None = None
        rotated = ct_x
        for d in range(n_in):
            if d > 0:
                g = encoder.galois_element_for_rotation(1)
                rotated = self._ctx.rotate(rotated, g, self._galois_keys)
                self.rotations_performed += 1
            diag = self._diagonal(matrix, d, n_in, n_out, row_size)
            # Replicate into the second row so both rows stay consistent.
            pt_diag = encoder.encode(self._both_rows(diag))
            term = self._ctx.mul_plain(rotated, pt_diag)
            self.plain_mults_performed += 1
            result = term if result is None else result + term
        assert result is not None
        return result

    def matvec_bsgs(
        self, ct_x: Ciphertext, matrix, baby_steps: int
    ) -> Ciphertext:
        """Baby-step/giant-step diagonal matvec (Gazelle's hoisting trick).

        Splits each diagonal index d = g*B + b: the B baby rotations of x
        are computed once and shared across giant steps, and each giant
        partial sum is rotated into place with a Horner-style pass, cutting
        rotations from n_in - 1 to (B - 1) + (G - 1). Requires Galois keys
        for single-step and B-step rotations.
        """
        encoder = self._encoder
        row_size = encoder.row_size
        n_out = len(matrix)
        n_in = len(matrix[0])
        if n_in % baby_steps != 0:
            raise ValueError("baby_steps must divide the matrix width")
        if row_size % n_in != 0:
            raise ValueError(f"matrix width {n_in} must divide row size {row_size}")
        if n_out > row_size:
            raise ValueError(f"matrix height {n_out} exceeds row size {row_size}")
        giant_steps = n_in // baby_steps
        g1 = encoder.galois_element_for_rotation(1)
        g_big = encoder.galois_element_for_rotation(baby_steps)

        babies = [ct_x]
        for _ in range(1, baby_steps):
            babies.append(self._ctx.rotate(babies[-1], g1, self._galois_keys))
            self.rotations_performed += 1

        result: Ciphertext | None = None
        for g in range(giant_steps - 1, -1, -1):
            shift = g * baby_steps
            partial: Ciphertext | None = None
            for b in range(baby_steps):
                diag = self._diagonal(matrix, shift + b, n_in, n_out, row_size)
                # Pre-rotate the plaintext right by the giant shift so the
                # final ciphertext rotation lands entries at the right slot.
                if isinstance(diag, np.ndarray):
                    pre = np.roll(diag, shift)
                else:
                    pre = [diag[(j - shift) % row_size] for j in range(row_size)]
                term = self._ctx.mul_plain(babies[b], encoder.encode(self._both_rows(pre)))
                self.plain_mults_performed += 1
                partial = term if partial is None else partial + term
            assert partial is not None
            if result is None:
                result = partial
            else:
                result = self._ctx.rotate(result, g_big, self._galois_keys) + partial
                self.rotations_performed += 1
        assert result is not None
        return result

    def pack_vector(self, vector: list[int]) -> list[int]:
        """Replicate a vector periodically across a full batching row.

        With the replicated layout, a cyclic row rotation by d places
        x[(i+d) mod n_in] at slot i, which is exactly what the diagonal
        method consumes.
        """
        row_size = self._encoder.row_size
        n_in = len(vector)
        if row_size % n_in != 0:
            raise ValueError(f"vector length {n_in} must divide row size {row_size}")
        reps = row_size // n_in
        row = list(vector) * reps
        return row + row  # both batching rows

    @staticmethod
    def conv_as_matrix(
        weights: np.ndarray, in_shape: tuple[int, int, int], padding: int, modulus: int
    ) -> list[list[int]]:
        """Lower a (C_out, C_in, k, k) convolution to an explicit matrix.

        The returned matrix maps the flattened (C_in, H, W) input to the
        flattened (C_out, H, W) output, 'same' spatial size with the given
        zero padding (stride 1, as in the paper's downsample-free networks).
        """
        c_out, c_in, k, _ = weights.shape
        channels, height, width = in_shape
        if channels != c_in:
            raise ValueError("input channel mismatch")
        n_in = c_in * height * width
        n_out = c_out * height * width
        matrix = [[0] * n_in for _ in range(n_out)]
        for oc in range(c_out):
            for oy in range(height):
                for ox in range(width):
                    row = (oc * height + oy) * width + ox
                    for ic in range(c_in):
                        for ky in range(k):
                            for kx in range(k):
                                iy = oy + ky - padding
                                ix = ox + kx - padding
                                if 0 <= iy < height and 0 <= ix < width:
                                    col = (ic * height + iy) * width + ix
                                    matrix[row][col] = int(weights[oc, ic, ky, kx]) % modulus
        return matrix


def make_client_he_material(
    ctx: BfvContext, encoder: BatchEncoder, max_width: int
) -> tuple[SecretKey, PublicKey, GaloisKeys]:
    """Client-side key generation covering every rotation the server needs."""
    sk, pk = ctx.keygen()
    g = encoder.galois_element_for_rotation(1)
    gk = ctx.galois_keygen(sk, [g])
    return sk, pk, gk
