"""Number-theoretic transforms over Z_q.

Two flavours are provided:

* :class:`Ntt` — the plain cyclic NTT (X^n - 1), used by the BFV batch
  encoder to map plaintext slot values to polynomial coefficients.
* :class:`NegacyclicNtt` — the negacyclic NTT (X^n + 1), used for fast
  multiplication in the RLWE ciphertext ring R_q = Z_q[X]/(X^n + 1).

Root finding and psi-twisting live here; the transform kernel itself is
delegated to the active compute backend (:mod:`repro.backend`): iterative
Cooley-Tukey over ``list[int]`` on the python backend, precomputed
twiddle-table stages over ``uint64`` ndarrays on the numpy backend. Both
produce bit-identical outputs.

The public ``forward``/``inverse``/``multiply`` methods keep the seed's
list-in/list-out contract; the ``*_vec`` variants operate on backend-native
vectors and are what :class:`repro.he.polynomial.RingPoly` uses so the hot
path never round-trips through Python lists.
"""

from __future__ import annotations

from repro.backend import ComputeBackend, backend_for
from repro.crypto.modmath import mod_inverse, primitive_root_of_unity


class Ntt:
    """Cyclic NTT of size n over Z_q (requires q ≡ 1 mod n)."""

    def __init__(
        self,
        n: int,
        q: int,
        root: int | None = None,
        backend: ComputeBackend | None = None,
    ):
        if n & (n - 1):
            raise ValueError("NTT size must be a power of two")
        self.n = n
        self.q = q
        self.backend = backend or backend_for(q)
        self.root = root if root is not None else primitive_root_of_unity(n, q)
        self.root_inv = mod_inverse(self.root, q)
        self.n_inv = mod_inverse(n, q)
        self._plan = self.backend.make_ntt_plan(n, q, self.root)

    def _check_length(self, values) -> None:
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(values)}")

    # -- backend-native API -------------------------------------------------

    def forward_vec(self, vec):
        return self._plan.forward(vec)

    def inverse_vec(self, vec):
        return self._plan.inverse(vec)

    # -- list API (reference semantics) ------------------------------------

    def forward(self, values: list[int]) -> list[int]:
        self._check_length(values)
        be = self.backend
        return be.tolist(self.forward_vec(be.asvec(values, self.q)))

    def inverse(self, values: list[int]) -> list[int]:
        self._check_length(values)
        be = self.backend
        return be.tolist(self.inverse_vec(be.asvec(values, self.q)))


class NegacyclicNtt:
    """Negacyclic NTT for R_q = Z_q[X]/(X^n + 1) (requires q ≡ 1 mod 2n).

    Uses the standard psi-twisting: multiply coefficient i by psi^i before a
    cyclic NTT, where psi is a primitive 2n-th root of unity, and by
    psi^{-i} after the inverse transform. Pointwise products in the
    transformed domain then realize negacyclic convolution.
    """

    def __init__(self, n: int, q: int, backend: ComputeBackend | None = None):
        if n & (n - 1):
            raise ValueError("ring degree must be a power of two")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q={q} is not NTT friendly for degree {n}")
        self.n = n
        self.q = q
        self.backend = backend or backend_for(q)
        self.psi = primitive_root_of_unity(2 * n, q)
        self.psi_inv = mod_inverse(self.psi, q)
        self._ntt = Ntt(n, q, root=self.psi * self.psi % q, backend=self.backend)
        self._psi_powers = self.backend.asvec(self._powers(self.psi), q)
        # 1/n folded into the untwist table: the inverse transform then skips
        # its separate scaling pass (identical values, one fewer vector op).
        n_inv = self._ntt.n_inv
        self._psi_inv_scaled = self.backend.asvec(
            [p * n_inv % q for p in self._powers(self.psi_inv)], q
        )

    def _powers(self, base: int) -> list[int]:
        powers = [1] * self.n
        for i in range(1, self.n):
            powers[i] = powers[i - 1] * base % self.q
        return powers

    # -- backend-native API -------------------------------------------------

    def forward_vec(self, vec):
        if self.backend.veclen(vec) != self.n:
            raise ValueError(f"expected {self.n} coefficients")
        twisted = self.backend.mul(vec, self._psi_powers, self.q)
        return self._ntt.forward_vec(twisted)

    def inverse_vec(self, vec):
        if self.backend.veclen(vec) != self.n:
            raise ValueError(f"expected {self.n} values")
        coeffs = self._ntt._plan.inverse_unscaled(vec)
        return self.backend.mul(coeffs, self._psi_inv_scaled, self.q)

    def multiply_vec(self, a, b):
        """Negacyclic product of two backend-native coefficient vectors."""
        be = self.backend
        ta = be.mul(a, self._psi_powers, self.q)
        tb = be.mul(b, self._psi_powers, self.q)
        fa, fb = self._ntt._plan.forward_pair(ta, tb)
        return self.inverse_vec(be.mul(fa, fb, self.q))

    def multiply_shared_vec(self, shared, others):
        """Products shared*o for every vector in ``others``.

        The shared operand is twisted and transformed exactly once, and all
        forward transforms (1 + len(others)) land in a single batched plan
        call — likewise the inverse transforms — so a two-component
        ciphertext op (c0, c1 against one plaintext or key digit) costs one
        stacked forward and one stacked inverse instead of four and two
        separate transforms. Outputs are fully reduced and bit-identical to
        ``[multiply_vec(shared, o) for o in others]``.
        """
        be = self.backend
        q = self.q
        twisted = [
            be.mul(v, self._psi_powers, q) for v in (shared, *others)
        ]
        transformed = self._ntt._plan.forward_many(twisted)
        f_shared = transformed[0]
        products = [be.mul(f_shared, f, q) for f in transformed[1:]]
        untwisted = self._ntt._plan.inverse_unscaled_many(products)
        return [be.mul(v, self._psi_inv_scaled, q) for v in untwisted]

    def key_switch_inner_vec(self, digit_vecs, key0_evals, key1_evals):
        """Fused key-switch inner product (Σ_j d_j·k0_j, Σ_j d_j·k1_j).

        ``digit_vecs`` are coefficient-domain backend vectors; the key
        components arrive already in the evaluation domain (stored eval
        form, :meth:`forward_vec` output), so no key-side forward
        transforms happen here. All D digit forwards run in one stacked
        :meth:`~repro.backend.base.NttPlan.forward_many` pass, the D
        pointwise products accumulate *in the eval domain*, and a single
        two-vector unscaled inverse + untwist finishes both components:
        D + 2 transform rows instead of the 5D (3 forward + 2 inverse
        per digit) a per-digit multiply-accumulate loop costs.

        Bit-identical to that loop: the backend's ``mul`` is exact mod q
        for the unreduced ``forward_many`` outputs, modular addition is
        associative, and the inverse transform is linear, so accumulating
        before the inverse yields the same canonical residues as summing
        per-digit inverses.
        """
        be = self.backend
        q = self.q
        twisted = [be.mul(v, self._psi_powers, q) for v in digit_vecs]
        transformed = self._ntt._plan.forward_many(twisted)
        acc0 = acc1 = None
        for f, k0, k1 in zip(transformed, key0_evals, key1_evals):
            p0 = be.mul(f, k0, q)
            p1 = be.mul(f, k1, q)
            acc0 = p0 if acc0 is None else be.add(acc0, p0, q)
            acc1 = p1 if acc1 is None else be.add(acc1, p1, q)
        untwisted = self._ntt._plan.inverse_unscaled_many([acc0, acc1])
        return (
            be.mul(untwisted[0], self._psi_inv_scaled, q),
            be.mul(untwisted[1], self._psi_inv_scaled, q),
        )

    # -- list API (reference semantics) ------------------------------------

    def forward(self, coeffs: list[int]) -> list[int]:
        be = self.backend
        return be.tolist(self.forward_vec(be.asvec(coeffs, self.q)))

    def inverse(self, values: list[int]) -> list[int]:
        be = self.backend
        return be.tolist(self.inverse_vec(be.asvec(values, self.q)))

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Negacyclic product of two coefficient vectors."""
        be = self.backend
        return be.tolist(
            self.multiply_vec(be.asvec(a, self.q), be.asvec(b, self.q))
        )
