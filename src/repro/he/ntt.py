"""Number-theoretic transforms over Z_q.

Two flavours are provided:

* :class:`Ntt` — the plain cyclic NTT (X^n - 1), used by the BFV batch
  encoder to map plaintext slot values to polynomial coefficients.
* :class:`NegacyclicNtt` — the negacyclic NTT (X^n + 1), used for fast
  multiplication in the RLWE ciphertext ring R_q = Z_q[X]/(X^n + 1).

Both operate on lists of Python ints so arbitrary-width moduli work exactly.
"""

from __future__ import annotations

from repro.crypto.modmath import mod_inverse, primitive_root_of_unity


def _bit_reverse_permute(values: list[int]) -> list[int]:
    n = len(values)
    out = list(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            out[i], out[j] = out[j], out[i]
    return out


def _iterative_ntt(values: list[int], root: int, q: int) -> list[int]:
    """In-place iterative Cooley-Tukey NTT; ``root`` is a primitive n-th root."""
    n = len(values)
    a = _bit_reverse_permute(values)
    length = 2
    while length <= n:
        w_len = pow(root, n // length, q)
        for start in range(0, n, length):
            w = 1
            half = length // 2
            for k in range(start, start + half):
                u = a[k]
                v = a[k + half] * w % q
                a[k] = (u + v) % q
                a[k + half] = (u - v) % q
                w = w * w_len % q
        length <<= 1
    return a


class Ntt:
    """Cyclic NTT of size n over Z_q (requires q ≡ 1 mod n)."""

    def __init__(self, n: int, q: int, root: int | None = None):
        if n & (n - 1):
            raise ValueError("NTT size must be a power of two")
        self.n = n
        self.q = q
        self.root = root if root is not None else primitive_root_of_unity(n, q)
        self.root_inv = mod_inverse(self.root, q)
        self.n_inv = mod_inverse(n, q)

    def forward(self, values: list[int]) -> list[int]:
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(values)}")
        return _iterative_ntt([v % self.q for v in values], self.root, self.q)

    def inverse(self, values: list[int]) -> list[int]:
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(values)}")
        out = _iterative_ntt([v % self.q for v in values], self.root_inv, self.q)
        return [v * self.n_inv % self.q for v in out]


class NegacyclicNtt:
    """Negacyclic NTT for R_q = Z_q[X]/(X^n + 1) (requires q ≡ 1 mod 2n).

    Uses the standard psi-twisting: multiply coefficient i by psi^i before a
    cyclic NTT, where psi is a primitive 2n-th root of unity, and by
    psi^{-i} after the inverse transform. Pointwise products in the
    transformed domain then realize negacyclic convolution.
    """

    def __init__(self, n: int, q: int):
        if n & (n - 1):
            raise ValueError("ring degree must be a power of two")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q={q} is not NTT friendly for degree {n}")
        self.n = n
        self.q = q
        self.psi = primitive_root_of_unity(2 * n, q)
        self.psi_inv = mod_inverse(self.psi, q)
        self._ntt = Ntt(n, q, root=self.psi * self.psi % q)
        self._psi_powers = self._powers(self.psi)
        self._psi_inv_powers = self._powers(self.psi_inv)

    def _powers(self, base: int) -> list[int]:
        powers = [1] * self.n
        for i in range(1, self.n):
            powers[i] = powers[i - 1] * base % self.q
        return powers

    def forward(self, coeffs: list[int]) -> list[int]:
        twisted = [c * p % self.q for c, p in zip(coeffs, self._psi_powers)]
        return self._ntt.forward(twisted)

    def inverse(self, values: list[int]) -> list[int]:
        coeffs = self._ntt.inverse(values)
        return [c * p % self.q for c, p in zip(coeffs, self._psi_inv_powers)]

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Negacyclic product of two coefficient vectors."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse([x * y % self.q for x, y in zip(fa, fb)])
