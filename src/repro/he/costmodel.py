"""Analytic operation counts for Gazelle-style packed HE linear layers.

The simulator needs per-layer HE latencies for real networks (ResNet-18 on
TinyImageNet has layers far too large to execute under pure-Python HE), so
we count the homomorphic operations Gazelle's packed kernels perform and
convert them to time with per-operation costs calibrated against the
paper's measurements (see :mod:`repro.profiling.calibration`).

The counts follow Gazelle's packed convolution (input-rotation variant) and
diagonal matrix-vector product:

* convolution, ``c_n = slots / (H*W)`` channels per ciphertext:
  - input ciphertexts  ``ci = ceil(C_in / c_n)``
  - output ciphertexts ``co = ceil(C_out / c_n)``
  - plaintext mults    ``k^2 * ci * C_out``
  - rotations          ``ci * (k^2 - 1) + co * log2(min(c_n, C_in))``
* fully connected (n_out x n_in):
  - plaintext mults    ``ceil(n_in * n_out / slots)``
  - rotations          ``mults + log2(slots / max(n_out, 1))``
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class HeOpCount:
    """Operation counts for one linear layer evaluated under HE."""

    input_ciphertexts: int
    output_ciphertexts: int
    plain_mults: int
    rotations: int
    additions: int

    def __add__(self, other: "HeOpCount") -> "HeOpCount":
        return HeOpCount(
            self.input_ciphertexts + other.input_ciphertexts,
            self.output_ciphertexts + other.output_ciphertexts,
            self.plain_mults + other.plain_mults,
            self.rotations + other.rotations,
            self.additions + other.additions,
        )


def conv_op_count(
    in_height: int,
    in_width: int,
    c_in: int,
    c_out: int,
    kernel: int,
    slots: int,
    stride: int = 1,
) -> HeOpCount:
    """Operation counts for a packed 'same' convolution layer.

    Input ciphertext counts are driven by the *input* resolution and output
    accumulation by the *output* resolution; strided layers therefore do
    roughly ``stride^2`` more multiplication work per output ciphertext,
    which is what makes stage-transition layers the longest-running ones
    (they bound the LPHE makespan, §5.2).
    """

    def packed(pixels: int, channels: int) -> tuple[int, int]:
        """(ciphertext count, channels per ciphertext) for one tensor."""
        if pixels > slots:
            blocks = math.ceil(pixels / slots)
            return blocks * channels, 1
        per_ct = max(1, slots // pixels)
        return math.ceil(channels / per_ct), per_ct

    in_pixels = in_height * in_width
    out_pixels = -(-in_height // stride) * (-(-in_width // stride))
    ci, _ = packed(in_pixels, c_in)
    co, out_per_ct = packed(out_pixels, c_out)
    mults = kernel * kernel * ci * c_out
    accum = co * max(0, math.ceil(math.log2(min(out_per_ct, max(c_in, 1)))))
    rotations = ci * (kernel * kernel - 1) + accum
    return HeOpCount(ci, co, mults, rotations, mults)


def fc_op_count(n_in: int, n_out: int, slots: int) -> HeOpCount:
    """Operation counts for a packed fully connected layer."""
    ci = math.ceil(n_in / slots)
    co = math.ceil(n_out / slots)
    mults = max(1, math.ceil(n_in * n_out / slots))
    rotations = mults + max(0, math.ceil(math.log2(max(1, slots // max(n_out, 1)))))
    return HeOpCount(ci, co, mults, rotations, mults)


@dataclass(frozen=True)
class HeUnitCosts:
    """Seconds per homomorphic operation on a reference server core."""

    plain_mult: float
    rotation: float
    addition: float
    encrypt: float
    decrypt: float

    def layer_seconds(self, ops: HeOpCount) -> float:
        """Server-side time to evaluate one layer with these unit costs."""
        return (
            ops.plain_mults * self.plain_mult
            + ops.rotations * self.rotation
            + ops.additions * self.addition
        )

    def client_seconds(self, ops: HeOpCount) -> float:
        """Client-side encrypt/decrypt time for one layer's ciphertexts."""
        return (
            ops.input_ciphertexts * self.encrypt
            + ops.output_ciphertexts * self.decrypt
        )
