"""BFV parameter sets.

The DELPHI/Gazelle pipeline only ever evaluates depth-1 circuits under HE
(one plaintext-ciphertext product plus additions and rotations per linear
layer), so a modest ciphertext modulus gives ample noise budget. The
plaintext modulus doubles as the secret-sharing field, exactly as in
DELPHI where the SEAL plain modulus equals the share prime.

Wide ciphertext moduli come in two representations (see
:mod:`repro.he.polynomial`):

* ``bigint`` — one coefficient vector mod q; exact on the python backend
  for any width. The oracle semantics.
* ``rns`` — q is a product of small NTT primes (``rns_primes``) and ring
  elements live as per-prime residue vectors, so the whole ciphertext
  ring runs on the vectorized numpy backend. SEAL does exactly this.

``representation="auto"`` (optionally overridden by the
``REPRO_REPRESENTATION`` environment variable) picks ``rns`` whenever the
parameter set carries a chain, the modulus is too wide for the numpy
backend directly (q >= 2^62), and a vectorized backend is active —
i.e. precisely the case where ``bigint`` would fall back to
arbitrary-precision Python.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto.modmath import (
    find_ntt_prime,
    generate_ntt_primes,
    register_modulus_factors,
)

_REPRESENTATIONS = ("auto", "bigint", "rns")


@dataclass(frozen=True)
class BfvParams:
    """Ring-LWE parameters for the BFV scheme.

    Attributes:
        n: polynomial ring degree (power of two); also the slot count.
        q: ciphertext coefficient modulus (≡ 1 mod 2n): a single NTT
            prime, or the product of the ``rns_primes`` chain.
        t: plaintext modulus (prime, ≡ 1 mod 2n so batching works).
        noise_eta: centered-binomial width for fresh encryption noise.
        decomp_bits: digit width for key-switching decomposition.
        backend: compute backend preference ('auto', 'python', 'numpy')
            for every object built from these params; whatever is chosen,
            moduli a backend cannot handle exactly fall back to python
            (see :mod:`repro.backend`).
        rns_primes: optional CRT chain of distinct NTT primes whose
            product is q; required for the ``rns`` representation.
        representation: ciphertext-ring representation ('auto', 'bigint',
            'rns'); resolve with :meth:`resolve_representation`.
    """

    n: int
    q: int
    t: int
    noise_eta: int = 4
    decomp_bits: int = 16
    backend: str = "auto"
    rns_primes: tuple[int, ...] | None = None
    representation: str = "auto"

    def __post_init__(self) -> None:
        if self.n & (self.n - 1):
            raise ValueError("ring degree must be a power of two")
        if (self.q - 1) % (2 * self.n) != 0:
            raise ValueError("q must be congruent to 1 mod 2n")
        if (self.t - 1) % (2 * self.n) != 0:
            raise ValueError("t must be congruent to 1 mod 2n for batching")
        if self.t >= self.q:
            raise ValueError("plaintext modulus must be below q")
        if self.representation not in _REPRESENTATIONS:
            raise ValueError(
                f"unknown representation {self.representation!r}; choose one "
                f"of {', '.join(_REPRESENTATIONS)}"
            )
        if self.rns_primes is not None:
            primes = tuple(int(p) for p in self.rns_primes)
            object.__setattr__(self, "rns_primes", primes)
            product = 1
            for p in primes:
                if (p - 1) % (2 * self.n) != 0:
                    raise ValueError(
                        f"RNS prime {p} is not NTT friendly for degree {self.n}"
                    )
                product *= p
            if product != self.q:
                raise ValueError("rns_primes must multiply to q")
            # Distinctness is checked here; the bigint oracle needs the
            # factorization to find roots of unity in the composite ring.
            register_modulus_factors(self.q, primes)
        elif self.representation == "rns":
            raise ValueError("representation='rns' requires rns_primes")

    def resolve_representation(self) -> str:
        """The concrete ciphertext-ring representation for these params.

        Explicit ``representation`` wins; ``auto`` consults the
        ``REPRO_REPRESENTATION`` environment variable and otherwise picks
        ``rns`` exactly when it beats bigint: a chain exists, q is too
        wide for direct vectorization, and the resolved backend for the
        chain's primes is vectorized. An env-forced ``rns`` on chainless
        params fails soft to ``bigint`` so configs stay portable.
        """
        rep = self.representation
        if rep == "auto":
            rep = os.environ.get("REPRO_REPRESENTATION", "").strip().lower()
            if rep not in ("bigint", "rns"):
                rep = "auto"
        if rep == "rns" and not self.rns_primes:
            return "bigint"
        if rep == "auto":
            if self.rns_primes is None or self.q < (1 << 62):
                return "bigint"
            from repro.backend import backend_for

            vectorized = (
                backend_for(max(self.rns_primes), prefer=self.backend).name
                != "python"
            )
            return "rns" if vectorized else "bigint"
        return rep

    @property
    def delta(self) -> int:
        """Plaintext scaling factor floor(q / t)."""
        return self.q // self.t

    @property
    def slot_count(self) -> int:
        return self.n

    @property
    def row_size(self) -> int:
        """Slots per batching row (n/2); rotations act within a row."""
        return self.n // 2

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of a fresh 2-component ciphertext."""
        return 2 * self.n * ((self.q_bits + 7) // 8)

    @property
    def num_decomp_digits(self) -> int:
        return -(-self.q_bits // self.decomp_bits)

    field_cache: dict = field(default_factory=dict, compare=False, hash=False)


def toy_params(n: int = 256, t_bits: int = 17) -> BfvParams:
    """Small, fast parameters for unit tests (insecure; functional only).

    The ~100-bit ciphertext modulus — a chain of four 25-bit NTT primes,
    so the ring runs RNS-vectorized whenever numpy is available — leaves
    enough noise headroom for a chain of row rotations followed by a
    plaintext multiplication with full-width weights, which is what the
    diagonal-method matvec performs.
    """
    primes = generate_ntt_primes(n, count=4, bits=25)
    q = 1
    for p in primes:
        q *= p
    t = find_ntt_prime(t_bits, n)
    return BfvParams(n=n, q=q, t=t, rns_primes=primes)


def fast_params(n: int = 256, t_bits: int = 17, backend: str = "auto") -> BfvParams:
    """Vectorization-friendly parameters (insecure; functional only).

    Like :func:`toy_params` but with a single 62-bit ciphertext prime —
    the widest the numpy backend's Shoup reduction handles exactly — so
    the whole BFV pipeline runs vectorized without RNS bookkeeping. The
    narrower q buys noise budget back by shrinking the key-switching
    digits to 4 bits (more digits per rotation, each contributing far
    less noise): a full-row diagonal matvec at a 17-bit plaintext field
    retains ~9 bits of budget, versus going negative with the default
    16-bit digits. The python backend computes these parameters exactly
    too, which is what makes cross-backend parity and benchmark
    comparisons apples-to-apples.
    """
    q = find_ntt_prime(62, n)
    t = find_ntt_prime(t_bits, n)
    return BfvParams(n=n, q=q, t=t, decomp_bits=4, backend=backend)


def delphi_params() -> BfvParams:
    """Parameters mirroring DELPHI's SEAL configuration in spirit.

    DELPHI uses degree 8192 with a ~41-bit plain modulus (the share prime
    2061584302081 ≈ 2^41). We keep the 41-bit plaintext field but use degree
    2048 so arbitrary-precision execution stays tractable; byte accounting
    exposes the true n so cost hooks can scale.

    The ciphertext modulus is a ~180-bit chain of six 30-bit NTT primes —
    the same shape as the RNS chain SEAL uses for this profile. A 41-bit
    plaintext modulus needs that much width to absorb plain-multiplication
    noise: the (q mod t)·k rounding term reaches ~n·t² ≈ 2^93, against a
    q/2t ≈ 2^138 budget. (A single wide prime chosen ≡ 1 mod t could kill
    that term at 120 bits, but no <2^31 chain prime can satisfy a 41-bit
    congruence, and the chain is what puts the ring on the vectorized
    backend — SEAL makes the same trade.)
    """
    n = 2048
    t = find_ntt_prime(41, n)
    primes = generate_ntt_primes(n, count=6, bits=30)
    q = 1
    for p in primes:
        q *= p
    return BfvParams(n=n, q=q, t=t, rns_primes=primes)
