"""BFV parameter sets.

The DELPHI/Gazelle pipeline only ever evaluates depth-1 circuits under HE
(one plaintext-ciphertext product plus additions and rotations per linear
layer), so a single 60-bit ciphertext modulus gives ample noise budget. The
plaintext modulus doubles as the secret-sharing field, exactly as in DELPHI
where the SEAL plain modulus equals the share prime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.modmath import find_ntt_prime, find_prime_one_mod


@dataclass(frozen=True)
class BfvParams:
    """Ring-LWE parameters for the BFV scheme.

    Attributes:
        n: polynomial ring degree (power of two); also the slot count.
        q: ciphertext coefficient modulus (prime, NTT friendly, ≡ 1 mod 2n).
        t: plaintext modulus (prime, ≡ 1 mod 2n so batching works).
        noise_eta: centered-binomial width for fresh encryption noise.
        decomp_bits: digit width for key-switching decomposition.
        backend: compute backend preference ('auto', 'python', 'numpy')
            for every object built from these params; whatever is chosen,
            moduli a backend cannot handle exactly fall back to python
            (see :mod:`repro.backend`).
    """

    n: int
    q: int
    t: int
    noise_eta: int = 4
    decomp_bits: int = 16
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n & (self.n - 1):
            raise ValueError("ring degree must be a power of two")
        if (self.q - 1) % (2 * self.n) != 0:
            raise ValueError("q must be congruent to 1 mod 2n")
        if (self.t - 1) % (2 * self.n) != 0:
            raise ValueError("t must be congruent to 1 mod 2n for batching")
        if self.t >= self.q:
            raise ValueError("plaintext modulus must be below q")

    @property
    def delta(self) -> int:
        """Plaintext scaling factor floor(q / t)."""
        return self.q // self.t

    @property
    def slot_count(self) -> int:
        return self.n

    @property
    def row_size(self) -> int:
        """Slots per batching row (n/2); rotations act within a row."""
        return self.n // 2

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of a fresh 2-component ciphertext."""
        return 2 * self.n * ((self.q_bits + 7) // 8)

    @property
    def num_decomp_digits(self) -> int:
        return -(-self.q_bits // self.decomp_bits)

    field_cache: dict = field(default_factory=dict, compare=False, hash=False)


def toy_params(n: int = 256, t_bits: int = 17) -> BfvParams:
    """Small, fast parameters for unit tests (insecure; functional only).

    The 100-bit ciphertext modulus leaves enough noise headroom for a chain
    of row rotations followed by a plaintext multiplication with full-width
    weights, which is what the diagonal-method matvec performs.
    """
    q = find_ntt_prime(100, n)
    t = find_ntt_prime(t_bits, n)
    return BfvParams(n=n, q=q, t=t)


def fast_params(n: int = 256, t_bits: int = 17, backend: str = "auto") -> BfvParams:
    """Vectorization-friendly parameters (insecure; functional only).

    Like :func:`toy_params` but with a 62-bit ciphertext modulus — the
    widest prime the numpy backend's Shoup reduction handles exactly — so
    the whole BFV pipeline runs vectorized instead of falling back to
    arbitrary-precision Python. The narrower q buys noise budget back by
    shrinking the key-switching digits to 4 bits (more digits per
    rotation, each contributing far less noise): a full-row diagonal
    matvec at a 17-bit plaintext field retains ~9 bits of budget, versus
    going negative with the default 16-bit digits. The python backend
    computes these parameters exactly too, which is what makes
    cross-backend parity and benchmark comparisons apples-to-apples.
    """
    q = find_ntt_prime(62, n)
    t = find_ntt_prime(t_bits, n)
    return BfvParams(n=n, q=q, t=t, decomp_bits=4, backend=backend)


def delphi_params() -> BfvParams:
    """Parameters mirroring DELPHI's SEAL configuration in spirit.

    DELPHI uses degree 8192 with a ~41-bit plain modulus (the share prime
    2061584302081 ≈ 2^41). We keep the 41-bit plaintext field but use degree
    2048 so pure-Python execution stays tractable; byte accounting exposes
    the true n so cost hooks can scale.
    """
    n = 2048
    t = find_ntt_prime(41, n)
    # A 41-bit plaintext modulus needs a wide ciphertext modulus to absorb
    # plain-multiplication noise (SEAL uses a ~180-bit RNS chain; a single
    # 120-bit prime gives the same headroom for depth-1 circuits). Choosing
    # q ≡ 1 mod t as well kills the (q mod t)·u plain-mult noise term that
    # would otherwise dominate at this plaintext width.
    q = find_prime_one_mod(120, 2 * n * t)
    return BfvParams(n=n, q=q, t=t)
