"""From-scratch BFV homomorphic encryption with batching and rotations."""

from repro.he.bfv import BfvContext, Ciphertext, GaloisKeys, PublicKey, SecretKey
from repro.he.costmodel import HeOpCount, HeUnitCosts, conv_op_count, fc_op_count
from repro.he.encoder import BatchEncoder
from repro.he.linear import HomomorphicLinearEvaluator, required_rotation_steps
from repro.he.ntt import NegacyclicNtt, Ntt
from repro.he.params import BfvParams, delphi_params, fast_params, toy_params
from repro.he.polynomial import RingPoly, clear_ntt_cache

__all__ = [
    "BatchEncoder",
    "BfvContext",
    "BfvParams",
    "Ciphertext",
    "GaloisKeys",
    "HeOpCount",
    "HeUnitCosts",
    "HomomorphicLinearEvaluator",
    "NegacyclicNtt",
    "Ntt",
    "PublicKey",
    "RingPoly",
    "SecretKey",
    "clear_ntt_cache",
    "conv_op_count",
    "delphi_params",
    "fast_params",
    "fc_op_count",
    "required_rotation_steps",
    "toy_params",
]
