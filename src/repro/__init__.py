"""repro: end-to-end systems for private inference (ASPLOS'23 reproduction).

Reproduces Garimella et al., "Characterizing and Optimizing End-to-End
Systems for Private Inference" (ASPLOS 2023): a functional DELPHI-style
hybrid protocol (BFV HE + additive secret sharing + garbled circuits + OT)
built from scratch, a calibrated cost model of the paper's Atom/EPYC
testbed, and a discrete-event system simulator for streaming inference
workloads with the paper's three optimizations — the Client-Garbler
protocol, layer-parallel HE, and wireless slot allocation.

Quick start::

    from repro import HybridProtocol, tiny_mlp, tiny_dataset, toy_params

    network = tiny_mlp(tiny_dataset(size=4))
    # ... randomize weights, run_offline(), run_online(x)

See examples/quickstart.py for a complete runnable walkthrough.
"""

from repro.backend import (
    available_backends,
    backend_for,
    get_backend,
    set_backend,
)
from repro.core import (
    ClientSession,
    HybridProtocol,
    OfflineParallelism,
    PiSystemSimulator,
    ServerSession,
    SpeedupKnobs,
    SystemConfig,
    estimate,
    simulate_mean_latency,
    waterfall,
)
from repro.he import BfvContext, BfvParams, delphi_params, fast_params, toy_params
from repro.nn import (
    CIFAR100,
    IMAGENET,
    TINY_IMAGENET,
    Network,
    resnet18,
    resnet32,
    tiny_cnn,
    tiny_dataset,
    tiny_mlp,
    vgg16,
)
from repro.profiling.devices import ATOM, EPYC, DeviceProfile
from repro.runtime import (
    PrecomputePool,
    PrecomputeStore,
    ServingLoop,
    ServingReport,
)
from repro.profiling.model_costs import (
    NetworkCostProfile,
    Protocol,
    profile_network,
)

__version__ = "1.0.0"

__all__ = [
    "ATOM",
    "BfvContext",
    "BfvParams",
    "CIFAR100",
    "ClientSession",
    "ServerSession",
    "DeviceProfile",
    "EPYC",
    "HybridProtocol",
    "IMAGENET",
    "Network",
    "NetworkCostProfile",
    "OfflineParallelism",
    "PiSystemSimulator",
    "PrecomputePool",
    "PrecomputeStore",
    "Protocol",
    "ServingLoop",
    "ServingReport",
    "SpeedupKnobs",
    "SystemConfig",
    "TINY_IMAGENET",
    "available_backends",
    "backend_for",
    "delphi_params",
    "estimate",
    "fast_params",
    "get_backend",
    "profile_network",
    "set_backend",
    "resnet18",
    "resnet32",
    "simulate_mean_latency",
    "tiny_cnn",
    "tiny_dataset",
    "tiny_mlp",
    "toy_params",
    "vgg16",
    "waterfall",
]
